// Example: Mudi on MIG instances.
//
// The paper notes Mudi "is fully compatible with MIG, treating each MIG
// instance as a distinct, smaller GPU" (§1). This example splits one A100
// into MIG instances, profiles inference on a whole GPU vs a half/quarter
// instance, and shows the piece-wise latency quantification working on the
// scaled-down device (the Tuner's Eq. 4 inversion included).
//
//   ./build/examples/mig_partitioning
#include <cstdio>

#include "src/cluster/policy.h"
#include "src/common/float_eq.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/tuner.h"
#include "src/gpu/gpu_device.h"
#include "src/gpu/perf_oracle.h"
#include "src/ml/piecewise_linear.h"

int main() {
  using namespace mudi;
  PerfOracle oracle(42);
  Rng rng(3);
  const InferenceServiceSpec& service = ModelZoo::InferenceServiceByName("BERT");
  const TrainingTaskSpec& task = ModelZoo::TrainingTaskByName("NCF");

  std::printf("== mig_partitioning: BERT inference + NCF training on MIG instances ==\n");
  Table table({"instance", "memory (GB)", "compute", "latency b=64 @50% (ms)",
               "fitted cutoff", "Eq.4 min GPU% (100 QPS)"});
  // Whole GPU followed by a 2-way and 4-way MIG split.
  std::vector<GpuDevice> devices;
  devices.emplace_back(0);
  for (auto& inst : MakeMigInstances(1, 2)) {
    devices.push_back(inst);
  }
  for (auto& inst : MakeMigInstances(3, 4)) {
    devices.push_back(inst);
  }

  Tuner tuner;
  size_t shown = 0;
  for (const GpuDevice& dev : devices) {
    if (shown != 0 && shown != 1 && shown != 3) {
      ++shown;
      continue;  // one representative per split level
    }
    ++shown;
    // Latency on this instance: oracle times divide by the compute scale.
    std::vector<ColocatedTraining> colocated{{&task, 0.4}};
    double latency =
        oracle.InferenceBatchLatency(service, 64, 0.5, colocated).total_ms() /
        dev.compute_scale();

    // Profile and fit the piece-wise curve *on this instance*.
    std::vector<double> x, y;
    for (double g : ProfilingGpuFractions()) {
      x.push_back(g);
      y.push_back(oracle.ObserveInferenceBatchLatency(service, 64, g, colocated, rng)
                      .total_ms() /
                  dev.compute_scale());
    }
    PiecewiseLinearModel curve = FitPiecewiseLinear(x, y);
    auto min_frac = tuner.MinimalFraction(curve, 64, 100.0, service.slo_ms);

    std::string label = ExactEq(dev.compute_scale(), 1.0)
                            ? "whole A100"
                            : (ExactEq(dev.compute_scale(), 0.5) ? "1/2 MIG" : "1/4 MIG");
    table.AddRow({label, Table::Num(dev.memory_mb() / 1024.0, 1),
                  Table::Pct(dev.compute_scale(), 0), Table::Num(latency, 1),
                  Table::Pct(curve.x0, 0),
                  min_frac ? Table::Pct(*min_frac, 0) : "infeasible"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Smaller instances run the same workload proportionally slower, need a\n"
              "larger share of the instance to hold the same SLO, and may become\n"
              "infeasible — exactly the trade Mudi's quantification exposes per device.\n");
  return 0;
}
