// Quickstart: multiplex DL inference services with training tasks on a small
// GPU cluster using Mudi, and print the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/core/mudi_policy.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/gpu/perf_oracle.h"
#include "src/sim/simulator.h"

int main() {
  mudi::SetLogLevel(mudi::LogLevel::kInfo);
  // A 3-node × 4-GPU cluster, six inference services (one replica per GPU),
  // and 60 training tasks arriving over time.
  mudi::ExperimentOptions options = mudi::PhysicalClusterOptions(/*num_tasks=*/60);
  options.record_util_series = true;

  // Record an event trace of the run: open the file in Perfetto
  // (https://ui.perfetto.dev) or chrome://tracing, or summarize it with
  // ./build/tools/trace_summary mudi_quickstart.trace.json
  options.telemetry.enabled = true;
  options.telemetry.trace_file = "mudi_quickstart.trace.json";

  // The profiling oracle stands in for Mudi's offline profiling GPU: it must
  // describe the same hardware as the experiment (same oracle seed).
  mudi::PerfOracle profiling_oracle(options.oracle_seed);
  mudi::MudiPolicy mudi_policy(profiling_oracle);

  mudi::ClusterExperiment experiment(options, &mudi_policy);
  mudi::ExperimentResult result = experiment.Run();

  std::printf("== Mudi quickstart ==\n");
  std::printf("policy: %s\n", result.policy_name.c_str());
  std::printf("completed tasks: %zu / %zu\n", result.CompletedTasks(), result.tasks.size());
  std::printf("makespan: %.1f s\n", result.makespan_ms / mudi::kMsPerSecond);
  std::printf("mean task completion time: %.1f s\n", result.MeanCtMs() / mudi::kMsPerSecond);
  std::printf("mean waiting time: %.1f s\n", result.MeanWaitingMs() / mudi::kMsPerSecond);
  std::printf("avg SM util: %.1f%%, avg mem util: %.1f%%\n", 100.0 * result.avg_sm_util,
              100.0 * result.avg_mem_util);
  std::printf("overall SLO violation rate: %.2f%%\n\n",
              100.0 * result.OverallSloViolationRate());

  mudi::Table table({"service", "SLO (ms)", "violation rate", "mean latency (ms)"});
  for (const auto& [name, metrics] : result.per_service) {
    table.AddRow({name,
                  mudi::Table::Num(mudi::ModelZoo::InferenceServiceByName(name).slo_ms, 0),
                  mudi::Table::Pct(metrics.slo_violation_rate(), 2),
                  mudi::Table::Num(metrics.mean_latency_ms, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("trace written to mudi_quickstart.trace.json (open in Perfetto, or run\n"
              "./build/tools/trace_summary mudi_quickstart.trace.json)\n");
  return 0;
}
