// Example: replaying a production-style training trace under different
// queueing disciplines, with Mudi multiplexing throughout.
//
// Mudi's multiplexing core is policy-agnostic (§1): the pending-task queue
// can be FCFS, shortest-job-first, priority, or fair-share without touching
// the co-location algorithms. This example replays one Philly-like arrival
// trace under each discipline and compares training efficiency.
//
//   ./build/examples/trace_replay_scheduling
#include <cstdio>

#include "src/common/table.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

int main() {
  using namespace mudi;

  Table table({"queue policy", "completed", "mean CT (s)", "mean wait (s)", "P95 CT (s)",
               "makespan (s)", "SLO violation"});
  for (QueuePolicy policy : {QueuePolicy::kFcfs, QueuePolicy::kShortestJobFirst,
                             QueuePolicy::kPriority, QueuePolicy::kFairShare}) {
    ExperimentOptions options = PhysicalClusterOptions(/*num_tasks=*/80);
    // Burstier arrivals so the queue actually builds up and ordering matters.
    options.trace.mean_interarrival_ms = 1.2 * kMsPerSecond;
    options.queue_policy = policy;

    PerfOracle profiling_oracle(options.oracle_seed);
    auto mudi = MakePolicy("Mudi", profiling_oracle);
    ClusterExperiment experiment(options, mudi.get());
    ExperimentResult result = experiment.Run();

    table.AddRow({QueuePolicyName(policy),
                  std::to_string(result.CompletedTasks()) + "/" +
                      std::to_string(result.tasks.size()),
                  Table::Num(result.MeanCtMs() / kMsPerSecond, 1),
                  Table::Num(result.MeanWaitingMs() / kMsPerSecond, 1),
                  Table::Num(result.P95CtMs() / kMsPerSecond, 1),
                  Table::Num(result.makespan_ms / kMsPerSecond, 1),
                  Table::Pct(result.OverallSloViolationRate(), 2)});
    std::printf("[%s done]\n", QueuePolicyName(policy));
  }
  std::printf("\n== trace_replay_scheduling: one trace, four queue disciplines ==\n%s\n",
              table.ToString().c_str());
  std::printf("Expected: SJF minimizes mean CT/wait; FairShare evens out task types;\n"
              "SLO compliance is unaffected — the queue only reorders pending tasks.\n");
  return 0;
}
