// Example: writing a custom multiplexing policy against the framework API.
//
// Implements "GreedyPack": place each arriving training task on the device
// whose inference service currently has the most measured SLO headroom, and
// give training a fixed 40% slice. ~60 lines of policy code plug into the
// same harness Mudi runs in — useful as a starting point for your own
// scheduler research.
//
//   ./build/examples/custom_policy
#include <cstdio>
#include <limits>

#include "src/baselines/baseline_util.h"
#include "src/cluster/policy.h"
#include "src/common/table.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

namespace {

using namespace mudi;

class GreedyPackPolicy : public MultiplexPolicy {
 public:
  std::string name() const override { return "GreedyPack"; }

  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override {
    std::optional<int> best;
    double best_headroom = -std::numeric_limits<double>::infinity();
    for (int id : EligibleDevices(env, task, MaxTrainingsPerDevice(), /*require_fit=*/true)) {
      const InferenceServiceSpec& service = env.ServiceOnDevice(id);
      double p99 = env.MeasuredP99(id);
      double headroom = (service.slo_ms - p99) / service.slo_ms;
      if (headroom > best_headroom) {
        best_headroom = headroom;
        best = id;
      }
    }
    return best;
  }

  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override {
    // Fixed split: 60% inference, 40% training; batch chosen by one probe.
    int batch = 128;
    if (env.ProbeInferenceLatencyMs(device_id, batch, 0.6) >
        PlanningLatencyBudgetMs(batch, std::max(env.MeasuredQps(device_id), 1.0),
                                env.ServiceOnDevice(device_id).slo_ms)) {
      batch = 32;
    }
    env.ApplyInferenceConfig(device_id, batch, 0.6);
    env.ApplyTrainingFraction(device_id, task.task_id, 0.4);
  }
};

}  // namespace

int main() {
  ExperimentOptions options = PhysicalClusterOptions(/*num_tasks=*/60);

  GreedyPackPolicy greedy;
  ClusterExperiment greedy_experiment(options, &greedy);
  ExperimentResult greedy_result = greedy_experiment.Run();

  PerfOracle profiling_oracle(options.oracle_seed);
  auto mudi = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment mudi_experiment(options, mudi.get());
  ExperimentResult mudi_result = mudi_experiment.Run();

  Table table({"policy", "SLO violation", "mean CT (s)", "makespan (s)"});
  for (const ExperimentResult* r : {&greedy_result, &mudi_result}) {
    table.AddRow({r->policy_name, Table::Pct(r->OverallSloViolationRate(), 2),
                  Table::Num(r->MeanCtMs() / kMsPerSecond, 1),
                  Table::Num(r->makespan_ms / kMsPerSecond, 1)});
  }
  std::printf("== custom_policy: GreedyPack vs Mudi, same cluster and trace ==\n%s\n",
              table.ToString().c_str());
  std::printf("GreedyPack ignores architecture-level interference and never retunes, so\n"
              "it trails Mudi on training efficiency and/or SLO compliance.\n");
  return 0;
}
