// Example: Mudi's device-level adaptation under a bursty request load.
//
// A single A100 hosts a ResNet50 inference service and a YOLOv5 training
// task. At t=60 s the request rate triples for one minute. Watch the Tuner
// re-batch and re-partition the GPU, and the Memory Manager swap training
// state to the host while the service's batch memory grows.
//
//   ./build/examples/bursty_autoscaling
#include <cstdio>

#include "src/common/table.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

int main() {
  using namespace mudi;

  // One long-lived YOLOv5 fine-tuning job shares the GPU for the whole run.
  TrainingArrival yolo;
  yolo.task_id = 0;
  yolo.arrival_ms = 5.0 * kMsPerSecond;
  yolo.type_index = 7;  // YOLOv5 (see ModelZoo::TrainingTasks)
  yolo.work_full_gpu_ms = 1e9;

  ExperimentOptions options;
  options.num_nodes = 1;
  options.gpus_per_node = 1;
  options.num_services = 1;
  options.service_offset = 0;  // ResNet50
  options.horizon_ms = 180.0 * kMsPerSecond;
  options.trace_override = {yolo};
  options.trace_device_id = 0;  // record the per-device time series
  options.qps_factory = [](size_t, int) -> std::shared_ptr<const QpsProfile> {
    auto base = std::make_shared<ConstantQps>(200.0);
    return std::make_shared<BurstyQps>(
        base,
        std::vector<BurstyQps::Burst>{{60.0 * kMsPerSecond, 120.0 * kMsPerSecond, 3.0}});
  };

  PerfOracle profiling_oracle(options.oracle_seed);
  auto mudi = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, mudi.get());
  ExperimentResult result = experiment.Run();

  std::printf("== bursty_autoscaling: ResNet50 + YOLOv5 on one GPU ==\n");
  Table table({"t (s)", "measured QPS", "batch", "inference GPU%", "training mem swapped (MB)"});
  size_t step = std::max<size_t>(1, result.device_series.size() / 18);
  for (size_t i = 0; i < result.device_series.size(); i += step) {
    const DeviceSeriesSample& s = result.device_series[i];
    table.AddRow({Table::Num(s.time_ms / kMsPerSecond, 0), Table::Num(s.qps, 0),
                  std::to_string(s.batch), Table::Pct(s.inference_fraction, 0),
                  Table::Num(s.swapped_mb, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("SLO violation rate: %s (SLO %d ms)\n",
              Table::Pct(result.OverallSloViolationRate(), 2).c_str(),
              static_cast<int>(ModelZoo::InferenceServices()[0].slo_ms));
  std::printf("memory swap events: %zu (%.1f GB moved)\n", result.swap_events,
              result.swap_total_mb / 1024.0);
  return 0;
}
