// trace_summary: load a Mudi trace (Chrome JSON or binary) and print
// per-device utilization, serving busy time, and decision counts.
//
// Usage: trace_summary <trace-file> [more-trace-files...]
#include <iostream>
#include <string>

#include "src/telemetry/trace_reader.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <trace.json | trace.bin> [...]\n"
              << "Prints per-device utilization and decision counts from a\n"
              << "trace written by MUDI_TRACE_FILE / --trace.\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string path = argv[i];
    mudi::telemetry::ParsedTrace trace;
    std::string error;
    if (!mudi::telemetry::LoadTraceFile(path, &trace, &error)) {
      std::cerr << path << ": " << error << "\n";
      ++failures;
      continue;
    }
    if (argc > 2) {
      std::cout << "=== " << path << " ===\n";
    }
    mudi::telemetry::TraceSummary summary = mudi::telemetry::SummarizeTrace(trace);
    mudi::telemetry::PrintTraceSummary(summary, std::cout);
  }
  return failures == 0 ? 0 : 1;
}
