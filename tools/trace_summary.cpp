// trace_summary: summarize Mudi run artifacts.
//
// Three input shapes, auto-detected per file:
//   * event traces (Chrome JSON or binary, written by MUDI_TRACE_FILE /
//     --trace): prints per-device utilization, serving busy time, and
//     decision counts;
//   * self-profiling perf reports (mudi.perf.v1 JSON objects, written by
//     --perf-report / PerfReport::WriteJson): prints the top-N hottest
//     regions ranked by total_ms, so "where did this run spend its time"
//     is one command away from any saved report;
//   * decision traces (mudi.decision_trace.v1, written by mudi_cli
//     --record): prints per-hook decision counts, the top-N devices by
//     SelectDevice choice, record-kind totals, and replay coverage.
//
// Usage: trace_summary [--top N] <trace-or-report-file> [more-files...]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/perf/json_check.h"
#include "src/replay/decision_trace.h"
#include "src/telemetry/trace_reader.h"

namespace {

struct RegionRow {
  std::string name;
  double count = 0.0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

double NumberField(const mudi::perf::JsonValue& obj, const std::string& key) {
  const mudi::perf::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number() : 0.0;
}

// Prints the top-N regions of one parsed perf report, hottest (largest
// total_ms) first. Returns false if the document is not a perf report.
bool PrintPerfReportSummary(const mudi::perf::JsonValue& root, size_t top_n) {
  const mudi::perf::JsonValue* regions = root.Find("regions");
  if (regions == nullptr || !regions->is_object()) {
    return false;
  }
  std::vector<RegionRow> rows;
  for (const auto& [name, value] : regions->object()) {
    if (!value.is_object()) {
      continue;
    }
    RegionRow row;
    row.name = name;
    row.count = NumberField(value, "count");
    row.total_ms = NumberField(value, "total_ms");
    row.mean_ms = NumberField(value, "mean_ms");
    row.p95_ms = NumberField(value, "p95_ms");
    row.max_ms = NumberField(value, "max_ms");
    rows.push_back(std::move(row));
  }
  // Hottest first; ties broken by name so the listing is deterministic.
  std::sort(rows.begin(), rows.end(), [](const RegionRow& a, const RegionRow& b) {
    if (a.total_ms != b.total_ms) {
      return a.total_ms > b.total_ms;
    }
    return a.name < b.name;
  });
  size_t shown = rows.size() < top_n ? rows.size() : top_n;
  std::printf("perf report: %zu region(s), showing top %zu by total_ms\n", rows.size(), shown);
  std::printf("%-36s %10s %12s %10s %10s %10s\n", "region", "count", "total_ms", "mean_ms",
              "p95_ms", "max_ms");
  for (size_t i = 0; i < shown; ++i) {
    const RegionRow& r = rows[i];
    std::printf("%-36s %10.0f %12.3f %10.4f %10.4f %10.4f\n", r.name.c_str(), r.count,
                r.total_ms, r.mean_ms, r.p95_ms, r.max_ms);
  }
  const mudi::perf::JsonValue* allocs = root.Find("allocs");
  if (allocs != nullptr && allocs->is_object()) {
    const mudi::perf::JsonValue* hooked = allocs->Find("hooked");
    if (hooked != nullptr && hooked->is_bool() && hooked->boolean()) {
      std::printf("allocs: %.0f allocations / %.0f bytes (hooked)\n",
                  NumberField(*allocs, "allocations"), NumberField(*allocs, "bytes_allocated"));
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_n = 10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed <= 0) {
        std::cerr << "trace_summary: --top expects a positive integer\n";
        return 2;
      }
      top_n = static_cast<size_t>(parsed);
    } else if (arg.rfind("--top=", 0) == 0) {
      long parsed = std::atol(arg.c_str() + 6);
      if (parsed <= 0) {
        std::cerr << "trace_summary: --top expects a positive integer\n";
        return 2;
      }
      top_n = static_cast<size_t>(parsed);
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: " << argv[0] << " [--top N] <trace.json | trace.bin | perf.json> [...]\n"
              << "Prints per-device utilization and decision counts from a\n"
              << "trace written by MUDI_TRACE_FILE / --trace, or the top-N\n"
              << "hottest regions (by total_ms) from a mudi.perf.v1 report\n"
              << "written by --perf-report.\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    if (paths.size() > 1) {
      std::cout << "=== " << path << " ===\n";
    }
    // A decision trace starts with its schema-tagged JSON header line, so
    // the strict reader accepts only genuine mudi.decision_trace.v1 files
    // and rejects everything else on the first line.
    mudi::StatusOr<mudi::replay::DecisionTrace> decision_trace =
        mudi::replay::ReadDecisionTrace(path);
    if (decision_trace.ok()) {
      std::fputs(mudi::replay::SummarizeDecisionTrace(*decision_trace, top_n).c_str(), stdout);
      continue;
    }
    // A perf report is a JSON object with a "regions" member; everything
    // else falls through to the trace reader (which handles both Chrome
    // JSON traces and the binary format).
    mudi::StatusOr<mudi::perf::JsonValue> parsed = mudi::perf::ParseJsonFile(path);
    if (parsed.ok() && PrintPerfReportSummary(*parsed, top_n)) {
      continue;
    }
    mudi::telemetry::ParsedTrace trace;
    std::string error;
    if (!mudi::telemetry::LoadTraceFile(path, &trace, &error)) {
      std::cerr << path << ": " << error << "\n";
      ++failures;
      continue;
    }
    mudi::telemetry::TraceSummary summary = mudi::telemetry::SummarizeTrace(trace);
    mudi::telemetry::PrintTraceSummary(summary, std::cout);
  }
  return failures == 0 ? 0 : 1;
}
