#include "tools/mudi_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_set>

namespace mudi::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// Per-line suppressions: line -> set of check ids; an empty set means every
// check is suppressed on that line (bare NOLINT).
using SuppressionMap = std::map<int, std::set<std::string>>;

// Parses NOLINT / NOLINTNEXTLINE directives out of one comment's text.
void ParseNolint(std::string_view comment, int line, SuppressionMap* suppressions) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string_view::npos) {
    size_t after = pos + 6;  // past "NOLINT"
    int target = line;
    if (comment.substr(pos).rfind("NOLINTNEXTLINE", 0) == 0) {
      target = line + 1;
      after = pos + 14;
    }
    std::set<std::string> checks;
    if (after < comment.size() && comment[after] == '(') {
      size_t close = comment.find(')', after);
      if (close != std::string_view::npos) {
        std::string list(comment.substr(after + 1, close - after - 1));
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
          item.erase(0, item.find_first_not_of(" \t"));
          item.erase(item.find_last_not_of(" \t") + 1);
          if (!item.empty()) {
            checks.insert(item);
          }
        }
        after = close + 1;
      }
    }
    // Convention: an empty set at a line means "suppress every check".
    auto it = suppressions->find(target);
    if (checks.empty()) {
      (*suppressions)[target] = {};
    } else if (it == suppressions->end()) {
      (*suppressions)[target] = std::move(checks);
    } else if (!it->second.empty()) {
      it->second.insert(checks.begin(), checks.end());
    }
    pos = after;
  }
}

struct TokenizeResult {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  // Raw #include directives in order: (line, path, quoted?).
  struct Include {
    int line;
    std::string path;
    bool quoted;
  };
  std::vector<Include> includes;
};

// The multi-character operators the checks care about. Longest-match first.
const char* const kMultiPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",
};

TokenizeResult TokenizeImpl(std::string_view src) {
  TokenizeResult result;
  size_t i = 0;
  int line = 1;
  bool in_preprocessor = false;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto push = [&](Token::Kind kind, std::string text, int tok_line) {
    result.tokens.push_back(Token{kind, std::move(text), tok_line, in_preprocessor});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      // A preprocessor directive ends at an unescaped newline.
      if (in_preprocessor && !(i >= 2 && src[i - 2] == '\\')) {
        in_preprocessor = false;
      }
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) {
        end = src.size();
      }
      ParseNolint(src.substr(i, end - i), line, &result.suppressions);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        end = src.size();
      } else {
        end += 2;
      }
      std::string_view body = src.substr(i, end - i);
      ParseNolint(body, line, &result.suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      in_preprocessor = true;
      at_line_start = false;
      // Parse #include targets for the include-hygiene check.
      size_t j = i + 1;
      while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) {
        ++j;
      }
      if (src.substr(j).rfind("include", 0) == 0) {
        j += 7;
        while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) {
          ++j;
        }
        if (j < src.size() && (src[j] == '"' || src[j] == '<')) {
          char open = src[j];
          char close = open == '"' ? '"' : '>';
          size_t end = src.find(close, j + 1);
          if (end != std::string_view::npos) {
            result.includes.push_back(
                {line, std::string(src.substr(j + 1, end - j - 1)), open == '"'});
          }
        }
      }
      push(Token::Kind::kPunct, "#", line);
      ++i;
      continue;
    }
    at_line_start = false;
    // Raw string literal: [prefix]R"delim( ... )delim".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      size_t open_paren = src.find('(', i + 2);
      if (open_paren != std::string_view::npos) {
        std::string delim(src.substr(i + 2, open_paren - (i + 2)));
        std::string terminator = ")" + delim + "\"";
        size_t end = src.find(terminator, open_paren + 1);
        if (end == std::string_view::npos) {
          end = src.size();
        } else {
          end += terminator.size();
        }
        std::string_view body = src.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        push(Token::Kind::kStringLiteral, "\"\"", line);
        i = end;
        continue;
      }
    }
    // String / char literal (body discarded so embedded code never fires).
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          ++j;
        }
        if (src[j] == '\n') {
          ++line;
        }
        ++j;
      }
      push(quote == '"' ? Token::Kind::kStringLiteral : Token::Kind::kCharLiteral,
           std::string(1, quote) + quote, line);
      i = j + 1;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < src.size() && IsIdentChar(src[j])) {
        ++j;
      }
      push(Token::Kind::kIdentifier, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Number (pp-number rule: digits, dots, exponents, separators, suffixes).
    if (IsDigit(c) || (c == '.' && i + 1 < src.size() && IsDigit(src[i + 1]))) {
      size_t j = i + 1;
      while (j < src.size()) {
        char n = src[j];
        if (IsIdentChar(n) || n == '.' || n == '\'') {
          ++j;
        } else if ((n == '+' || n == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                    src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Punctuation, longest multi-char operator first.
    bool matched = false;
    for (const char* op : kMultiPuncts) {
      size_t len = std::char_traits<char>::length(op);
      if (src.substr(i, len) == op) {
        push(Token::Kind::kPunct, op, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(Token::Kind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return result;
}

bool IsFloatLiteral(const std::string& text) {
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return false;  // hex (incl. hex floats; nobody ==-compares those here)
  }
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') {
      return true;
    }
  }
  return false;
}

double NumericValue(const std::string& text) {
  std::string cleaned;
  for (char c : text) {
    if (c != '\'') {
      cleaned.push_back(c);
    }
  }
  return std::strtod(cleaned.c_str(), nullptr);
}

bool CheckEnabled(const Options& options, const std::string& check) {
  return options.enabled_checks.empty() || options.enabled_checks.count(check) != 0;
}

// ---------------------------------------------------------------------------
// mudi-determinism
// ---------------------------------------------------------------------------

// Identifiers banned anywhere (types/objects whose mere presence signals
// ambient randomness or wall-clock time).
const std::unordered_set<std::string>& BannedIdentifiers() {
  static const std::unordered_set<std::string> kSet = {
      "random_device",  "system_clock", "steady_clock", "high_resolution_clock",
      "mt19937",        "mt19937_64",   "minstd_rand",  "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48",  "knuth_b",
      "random_shuffle",
  };
  return kSet;
}

// Identifiers banned as direct calls: `name(` not preceded by `.` or `->`
// (member functions named e.g. `time()` on our own types stay legal).
const std::unordered_set<std::string>& BannedCallIdentifiers() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
  };
  return kSet;
}

void CheckDeterminism(const std::string& path, const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (EndsWith(path, "src/common/rng.h") || EndsWith(path, "src/common/wallclock.h")) {
    return;  // the sanctioned randomness / wall-clock implementations
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    if (BannedIdentifiers().count(tok.text) != 0) {
      findings->push_back(
          {path, tok.line, "mudi-determinism", Severity::kError,
           "'" + tok.text +
               "' breaks seeded reproducibility; use mudi::Rng (src/common/rng.h) for "
               "randomness or mudi::WallTimer (src/common/wallclock.h) for observational "
               "wall-clock timing"});
      continue;
    }
    if (BannedCallIdentifiers().count(tok.text) != 0 && i + 1 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kPunct && tokens[i + 1].text == "(") {
      bool member = i > 0 && tokens[i - 1].kind == Token::Kind::kPunct &&
                    (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
      if (!member) {
        findings->push_back({path, tok.line, "mudi-determinism", Severity::kError,
                             "call to '" + tok.text +
                                 "()' is nondeterministic; simulation code must derive all "
                                 "randomness from a seeded mudi::Rng and all time from the "
                                 "Simulator virtual clock"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-fit-thread
// ---------------------------------------------------------------------------

// Thread-spawning primitives are confined to src/ml/fit_pool.h, the one
// sanctioned worker pool (deterministic sharding, fixed-order reduction,
// MUDI_FIT_THREADS-bounded). Ad-hoc std::thread/std::async anywhere else
// can introduce scheduling-order nondeterminism that the seeded-run
// bit-identity contract cannot tolerate.
void CheckFitThread(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  if (EndsWith(path, "src/ml/fit_pool.h")) {
    return;  // the sanctioned fit worker pool
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    // `#include <thread>` / `<future>`: the headers exist only to spawn.
    if (tok.preprocessor && (tok.text == "thread" || tok.text == "future") && i >= 2 &&
        tokens[i - 1].text == "<" && tokens[i - 2].text == "include") {
      findings->push_back({path, tok.line, "mudi-fit-thread", Severity::kError,
                           "#include <" + tok.text +
                               "> outside src/ml/fit_pool.h; spawn workers only through "
                               "FitPool::ParallelFor so parallelism stays deterministic"});
      continue;
    }
    // `std::thread` / `std::jthread` / `std::async` spawn sites.
    if ((tok.text == "thread" || tok.text == "jthread" || tok.text == "async") && i >= 2 &&
        tokens[i - 1].kind == Token::Kind::kPunct && tokens[i - 1].text == "::" &&
        tokens[i - 2].kind == Token::Kind::kIdentifier && tokens[i - 2].text == "std") {
      findings->push_back({path, tok.line, "mudi-fit-thread", Severity::kError,
                           "'std::" + tok.text +
                               "' outside src/ml/fit_pool.h; spawn workers only through "
                               "FitPool::ParallelFor (src/ml/fit_pool.h) so fits stay "
                               "bit-identical for any MUDI_FIT_THREADS"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-status
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& StatementKeywords() {
  static const std::unordered_set<std::string> kSet = {
      "return",   "if",     "else",    "while",  "for",       "do",      "switch",
      "case",     "break",  "continue", "goto",  "new",       "delete",  "throw",
      "co_return", "co_await", "using", "namespace", "class", "struct",  "enum",
      "template", "typedef", "static",  "const", "constexpr", "auto",    "void",
      "int",      "double", "float",   "bool",   "char",      "unsigned", "signed",
      "long",     "short",  "public",  "private", "protected", "friend", "virtual",
      "explicit", "inline", "operator", "sizeof", "typename", "default",
  };
  return kSet;
}

void CheckStatusDiscard(const std::string& path, const std::vector<Token>& tokens,
                        const Options& options, std::vector<Finding>* findings) {
  if (options.status_functions.empty()) {
    return;
  }
  bool statement_start = true;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.preprocessor) {
      continue;
    }
    if (tok.kind == Token::Kind::kPunct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}" || tok.text == ":")) {
      statement_start = true;
      continue;
    }
    if (!statement_start) {
      continue;
    }
    statement_start = false;
    if (tok.kind != Token::Kind::kIdentifier || StatementKeywords().count(tok.text) != 0) {
      continue;
    }
    // Parse a postfix chain: ident [args] ((:: | . | ->) ident [args])* ';'
    size_t j = i;
    int chain_line = tok.line;
    std::string last_called;
    std::string current = tok.text;
    ++j;
    while (j < tokens.size()) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct && t.text == "(") {
        int depth = 1;
        ++j;
        while (j < tokens.size() && depth > 0) {
          if (tokens[j].kind == Token::Kind::kPunct) {
            if (tokens[j].text == "(") {
              ++depth;
            } else if (tokens[j].text == ")") {
              --depth;
            }
          }
          ++j;
        }
        last_called = current;
        continue;
      }
      if (t.kind == Token::Kind::kPunct &&
          (t.text == "::" || t.text == "." || t.text == "->") &&
          j + 1 < tokens.size() && tokens[j + 1].kind == Token::Kind::kIdentifier) {
        current = tokens[j + 1].text;
        j += 2;
        continue;
      }
      break;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kPunct && tokens[j].text == ";" &&
        !last_called.empty() && options.status_functions.count(last_called) != 0) {
      findings->push_back(
          {path, chain_line, "mudi-status", Severity::kError,
           "result of Status-returning call '" + last_called +
               "()' is discarded; use MUDI_CHECK_OK, MUDI_RETURN_IF_ERROR, or an explicit "
               "`(void)` cast with a comment explaining why the error is ignorable"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-float-eq
// ---------------------------------------------------------------------------

void CheckFloatEquality(const std::string& path, const std::vector<Token>& tokens,
                        std::vector<Finding>* findings) {
  if (EndsWith(path, "src/common/float_eq.h")) {
    return;  // the sanctioned comparison helpers
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kPunct || (tok.text != "==" && tok.text != "!=")) {
      continue;
    }
    bool float_operand = false;
    if (i > 0 && tokens[i - 1].kind == Token::Kind::kNumber &&
        IsFloatLiteral(tokens[i - 1].text)) {
      float_operand = true;
    }
    size_t r = i + 1;
    if (r < tokens.size() && tokens[r].kind == Token::Kind::kPunct &&
        (tokens[r].text == "-" || tokens[r].text == "+")) {
      ++r;
    }
    if (r < tokens.size() && tokens[r].kind == Token::Kind::kNumber &&
        IsFloatLiteral(tokens[r].text)) {
      float_operand = true;
    }
    if (float_operand) {
      findings->push_back(
          {path, tok.line, "mudi-float-eq", Severity::kError,
           "'" + tok.text +
               "' against a floating-point literal; use ApproxEq (tolerance) or ExactEq "
               "(intentional sentinel compare) from src/common/float_eq.h"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-time-unit
// ---------------------------------------------------------------------------

struct TimeApi {
  const char* name;
  int time_args;  // leading arguments that are virtual-time values
};

const TimeApi kTimeApis[] = {
    {"ScheduleAt", 1},
    {"ScheduleAfter", 1},
    {"SchedulePeriodic", 2},
    {"RunUntil", 1},
};

void CheckTimeUnits(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  constexpr double kThresholdMs = 1000.0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    const TimeApi* api = nullptr;
    for (const TimeApi& candidate : kTimeApis) {
      if (tok.text == candidate.name) {
        api = &candidate;
        break;
      }
    }
    if (api == nullptr || tokens[i + 1].kind != Token::Kind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Scan the leading time arguments (stop at top-level commas).
    int depth = 1;
    int arg_index = 0;
    bool arg_has_ident = false;
    const Token* arg_big_literal = nullptr;
    size_t j = i + 2;
    auto finish_arg = [&]() {
      if (arg_index < api->time_args && arg_big_literal != nullptr && !arg_has_ident) {
        findings->push_back(
            {path, arg_big_literal->line, "mudi-time-unit", Severity::kError,
             "raw millisecond literal '" + arg_big_literal->text + "' passed to " +
                 std::string(api->name) +
                 "; spell durations >= 1s with kMsPerSecond/kMsPerMinute/kMsPerHour or a "
                 "named constant so the unit is visible"});
      }
      ++arg_index;
      arg_has_ident = false;
      arg_big_literal = nullptr;
    };
    while (j < tokens.size() && depth > 0 && arg_index < api->time_args) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          ++depth;
        } else if (t.text == ")" || t.text == "]" || t.text == "}") {
          --depth;
          if (depth == 0) {
            finish_arg();
            break;
          }
        } else if (t.text == "," && depth == 1) {
          finish_arg();
        }
      } else if (t.kind == Token::Kind::kIdentifier) {
        arg_has_ident = true;
      } else if (t.kind == Token::Kind::kNumber && NumericValue(t.text) >= kThresholdMs) {
        arg_big_literal = &t;
      }
      ++j;
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-retry
// ---------------------------------------------------------------------------

// Retry/backoff control flow is confined to src/common/retry.h (Retrier +
// BackoffDelayMs: capped exponential backoff, deterministic jitter, deadline,
// total_retries() accounting). Everywhere else, two shapes are banned:
//   (a) a while/for whose condition mentions a retry/attempt/backoff counter
//       — an ad-hoc retry loop with its own (unaudited) backoff policy;
//   (b) a Simulator schedule call (ScheduleAfter/ScheduleAt/SchedulePeriodic)
//       whose argument span performs a KvStore control-plane read
//       (CtrlGet/CtrlList/GetRequired/List) — naked polling that re-arms
//       itself instead of going through Retrier, so it neither backs off nor
//       shows up in the ctrl.retries telemetry.

bool IsRetryIdentifier(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("retry") != std::string::npos ||
         lower.find("retries") != std::string::npos ||
         lower.find("attempt") != std::string::npos ||
         lower.find("backoff") != std::string::npos;
}

const std::unordered_set<std::string>& KvReadApis() {
  static const std::unordered_set<std::string> kSet = {
      "CtrlGet", "CtrlList", "GetRequired", "List",
  };
  return kSet;
}

void CheckRetry(const std::string& path, const std::vector<Token>& tokens,
                std::vector<Finding>* findings) {
  if (EndsWith(path, "src/common/retry.h")) {
    return;  // the sanctioned retry/backoff implementation
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier || tokens[i + 1].kind != Token::Kind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    bool loop_head = tok.text == "while" || tok.text == "for";
    bool schedule_call = tok.text == "ScheduleAfter" || tok.text == "ScheduleAt" ||
                         tok.text == "SchedulePeriodic";
    if (!loop_head && !schedule_call) {
      continue;
    }
    // Scan the balanced-paren span: for loops that is the condition (plus the
    // init/step of a `for`, which is fine — a retry counter there is still a
    // retry loop); for schedule calls it includes any lambda body argument.
    int depth = 1;
    size_t j = i + 2;
    bool flagged = false;
    while (j < tokens.size() && depth > 0 && !flagged) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(") {
          ++depth;
        } else if (t.text == ")") {
          --depth;
        }
      } else if (t.kind == Token::Kind::kIdentifier) {
        if (loop_head && IsRetryIdentifier(t.text)) {
          findings->push_back(
              {path, tok.line, "mudi-retry", Severity::kError,
               "ad-hoc retry loop ('" + t.text + "' drives a '" + tok.text +
                   "'); route re-attempts through Retrier (src/common/retry.h) so backoff "
                   "is capped, deterministically jittered, and counted in ctrl.retries"});
          flagged = true;
        } else if (schedule_call && KvReadApis().count(t.text) != 0 && j > 0 &&
                   tokens[j - 1].kind == Token::Kind::kPunct &&
                   (tokens[j - 1].text == "." || tokens[j - 1].text == "->") &&
                   j + 1 < tokens.size() && tokens[j + 1].kind == Token::Kind::kPunct &&
                   tokens[j + 1].text == "(") {
          findings->push_back(
              {path, t.line, "mudi-retry", Severity::kError,
               "'" + t.text + "()' inside a " + tok.text +
                   " argument is naked KvStore polling; use Retrier::Start "
                   "(src/common/retry.h) so the re-read backs off and is accounted for"});
          flagged = true;
        }
      }
      ++j;
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-trace-sink
// ---------------------------------------------------------------------------

// Decision-trace emission is confined to src/replay/: DecisionRecorder is the
// sanctioned sink, and the raw framing layer underneath it (TraceWriter +
// EncodeTraceHeader) must not be driven from anywhere else. An ad-hoc writer
// elsewhere would emit oracle observations or policy decisions that skip the
// recorder's causal sequence numbers and header validation, producing trace
// files that ReplaySource and trace_diff cannot align. Read-side APIs
// (ReadDecisionTrace, SummarizeDecisionTrace, DiffTraces) are fine anywhere.
// tests/replay_test.cc is allowlisted: it round-trips the framing on purpose.

bool IsSanctionedTraceSink(const std::string& path) {
  return path.find("src/replay/") != std::string::npos ||
         EndsWith(path, "tests/replay_test.cc");
}

void CheckTraceSink(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  if (IsSanctionedTraceSink(path)) {
    return;
  }
  for (const Token& tok : tokens) {
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    if (tok.text == "TraceWriter" || tok.text == "EncodeTraceHeader") {
      findings->push_back(
          {path, tok.line, "mudi-trace-sink", Severity::kError,
           "'" + tok.text +
               "' outside src/replay/ is ad-hoc decision-trace emission; record "
               "oracle/policy events through DecisionRecorder "
               "(src/replay/decision_recorder.h) so every record carries the causal "
               "sequence number and validated mudi.decision_trace.v1 framing"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-include
// ---------------------------------------------------------------------------

void CheckIncludeHygiene(const std::string& path, const TokenizeResult& tokenized,
                         std::vector<Finding>* findings) {
  bool is_source = EndsWith(path, ".cc") || EndsWith(path, ".cpp");
  bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  if (is_source && !tokenized.includes.empty()) {
    // basename without extension
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    std::string own_header = base.substr(0, dot) + ".h";
    for (size_t k = 0; k < tokenized.includes.size(); ++k) {
      const auto& inc = tokenized.includes[k];
      if (!inc.quoted) {
        continue;
      }
      size_t inc_slash = inc.path.find_last_of('/');
      std::string inc_base =
          inc_slash == std::string::npos ? inc.path : inc.path.substr(inc_slash + 1);
      if (inc_base == own_header) {
        if (k != 0) {
          findings->push_back({path, inc.line, "mudi-include", Severity::kWarning,
                               "a .cc file must include its own header first (\"" + inc.path +
                                   "\" found after other includes); this keeps every header "
                                   "self-contained"});
        }
        break;
      }
    }
  }
  if (is_header) {
    const auto& tokens = tokenized.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind == Token::Kind::kIdentifier && tokens[i].text == "using" &&
          tokens[i + 1].kind == Token::Kind::kIdentifier &&
          tokens[i + 1].text == "namespace") {
        findings->push_back({path, tokens[i].line, "mudi-include", Severity::kWarning,
                             "'using namespace' in a header leaks into every includer; "
                             "qualify names or alias them instead"});
      }
    }
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": " << SeverityName(severity) << ": [" << check << "] "
     << message;
  if (suppressed) {
    os << " (suppressed)";
  }
  return os.str();
}

std::vector<std::string> CheckNames() {
  return {"mudi-determinism", "mudi-fit-thread", "mudi-float-eq", "mudi-include",
          "mudi-retry", "mudi-status", "mudi-time-unit", "mudi-trace-sink"};
}

std::vector<Token> Tokenize(std::string_view content) {
  return TokenizeImpl(content).tokens;
}

void CollectStatusFunctions(std::string_view content, std::set<std::string>* out) {
  std::vector<Token> tokens = Tokenize(content);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier ||
        (tok.text != "Status" && tok.text != "StatusOr")) {
      continue;
    }
    size_t j = i + 1;
    if (tok.text == "StatusOr") {
      if (j >= tokens.size() || tokens[j].kind != Token::Kind::kPunct ||
          tokens[j].text != "<") {
        continue;
      }
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].kind == Token::Kind::kPunct) {
          if (tokens[j].text == "<") {
            ++depth;
          } else if (tokens[j].text == ">") {
            --depth;
          } else if (tokens[j].text == ">>") {
            depth -= 2;
          }
        }
        ++j;
      }
    }
    // Optional qualified name: Ident (:: Ident)*, then '('.
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdentifier) {
      continue;
    }
    std::string name = tokens[j].text;
    ++j;
    while (j + 1 < tokens.size() && tokens[j].kind == Token::Kind::kPunct &&
           tokens[j].text == "::" && tokens[j + 1].kind == Token::Kind::kIdentifier) {
      name = tokens[j + 1].text;
      j += 2;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kPunct && tokens[j].text == "(") {
      out->insert(name);
    }
  }
}

std::vector<Finding> LintFile(const std::string& path, std::string_view content,
                              const Options& options) {
  TokenizeResult tokenized = TokenizeImpl(content);
  std::vector<Finding> findings;
  if (CheckEnabled(options, "mudi-determinism")) {
    CheckDeterminism(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-fit-thread")) {
    CheckFitThread(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-status")) {
    CheckStatusDiscard(path, tokenized.tokens, options, &findings);
  }
  if (CheckEnabled(options, "mudi-float-eq")) {
    CheckFloatEquality(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-time-unit")) {
    CheckTimeUnits(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-retry")) {
    CheckRetry(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-trace-sink")) {
    CheckTraceSink(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-include")) {
    CheckIncludeHygiene(path, tokenized, &findings);
  }
  // Apply suppressions.
  for (Finding& f : findings) {
    auto it = tokenized.suppressions.find(f.line);
    if (it != tokenized.suppressions.end() &&
        (it->second.empty() || it->second.count(f.check) != 0)) {
      f.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  return findings;
}

}  // namespace mudi::lint
