#include "tools/mudi_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_set>

#include "src/perf/json_check.h"

namespace mudi::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// Parses NOLINT / NOLINTNEXTLINE directives out of one comment's text.
void ParseNolint(std::string_view comment, int line, SuppressionMap* suppressions) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string_view::npos) {
    size_t after = pos + 6;  // past "NOLINT"
    int target = line;
    if (comment.substr(pos).rfind("NOLINTNEXTLINE", 0) == 0) {
      target = line + 1;
      after = pos + 14;
    }
    std::set<std::string> checks;
    if (after < comment.size() && comment[after] == '(') {
      size_t close = comment.find(')', after);
      if (close != std::string_view::npos) {
        std::string list(comment.substr(after + 1, close - after - 1));
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
          item.erase(0, item.find_first_not_of(" \t"));
          item.erase(item.find_last_not_of(" \t") + 1);
          if (!item.empty()) {
            checks.insert(item);
          }
        }
        after = close + 1;
      }
    }
    // Convention: an empty set at a line means "suppress every check".
    auto it = suppressions->find(target);
    if (checks.empty()) {
      (*suppressions)[target] = {};
    } else if (it == suppressions->end()) {
      (*suppressions)[target] = std::move(checks);
    } else if (!it->second.empty()) {
      it->second.insert(checks.begin(), checks.end());
    }
    pos = after;
  }
}

struct TokenizeResult {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  // Raw #include directives in order: (line, path, quoted?).
  struct Include {
    int line;
    std::string path;
    bool quoted;
  };
  std::vector<Include> includes;
  // [begin, end] line ranges bracketed by // MUDI_HOT_PATH markers. An
  // unclosed region runs to the last line of the file.
  std::vector<std::pair<int, int>> hot_regions;
};

// The multi-character operators the checks care about. Longest-match first.
const char* const kMultiPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",
};

TokenizeResult TokenizeImpl(std::string_view src) {
  TokenizeResult result;
  size_t i = 0;
  int line = 1;
  bool in_preprocessor = false;
  bool at_line_start = true;  // only whitespace seen so far on this line
  int open_hot = -1;          // line of an unclosed // MUDI_HOT_PATH marker

  auto push = [&](Token::Kind kind, std::string text, int tok_line) {
    result.tokens.push_back(Token{kind, std::move(text), tok_line, in_preprocessor});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      // A preprocessor directive ends at an unescaped newline.
      if (in_preprocessor && !(i >= 2 && src[i - 2] == '\\')) {
        in_preprocessor = false;
      }
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) {
        end = src.size();
      }
      std::string_view body = src.substr(i, end - i);
      ParseNolint(body, line, &result.suppressions);
      // Hot-path region markers live in line comments (mirroring NOLINT).
      // Only a comment whose first word IS the marker counts — prose that
      // merely mentions MUDI_HOT_PATH (like this one) must not open a region.
      std::string_view marker = body.substr(2);
      while (!marker.empty() && (marker.front() == ' ' || marker.front() == '\t')) {
        marker.remove_prefix(1);
      }
      size_t word_end = 0;
      while (word_end < marker.size() && (std::isalnum(static_cast<unsigned char>(marker[word_end])) || marker[word_end] == '_')) {
        ++word_end;
      }
      std::string_view word = marker.substr(0, word_end);
      if (word == "MUDI_HOT_PATH_END") {
        if (open_hot >= 0) {
          result.hot_regions.emplace_back(open_hot, line);
          open_hot = -1;
        }
      } else if (word == "MUDI_HOT_PATH") {
        if (open_hot < 0) {
          open_hot = line;
        }
      }
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        end = src.size();
      } else {
        end += 2;
      }
      std::string_view body = src.substr(i, end - i);
      ParseNolint(body, line, &result.suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      in_preprocessor = true;
      at_line_start = false;
      // Parse #include targets for the include-hygiene check.
      size_t j = i + 1;
      while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) {
        ++j;
      }
      if (src.substr(j).rfind("include", 0) == 0) {
        j += 7;
        while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) {
          ++j;
        }
        if (j < src.size() && (src[j] == '"' || src[j] == '<')) {
          char open = src[j];
          char close = open == '"' ? '"' : '>';
          size_t end = src.find(close, j + 1);
          if (end != std::string_view::npos) {
            result.includes.push_back(
                {line, std::string(src.substr(j + 1, end - j - 1)), open == '"'});
          }
        }
      }
      push(Token::Kind::kPunct, "#", line);
      ++i;
      continue;
    }
    at_line_start = false;
    // Raw string literal: [prefix]R"delim( ... )delim".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      size_t open_paren = src.find('(', i + 2);
      if (open_paren != std::string_view::npos) {
        std::string delim(src.substr(i + 2, open_paren - (i + 2)));
        std::string terminator = ")" + delim + "\"";
        size_t end = src.find(terminator, open_paren + 1);
        if (end == std::string_view::npos) {
          end = src.size();
        } else {
          end += terminator.size();
        }
        std::string_view body = src.substr(i, end - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        push(Token::Kind::kStringLiteral, "\"\"", line);
        i = end;
        continue;
      }
    }
    // String / char literal (body discarded so embedded code never fires).
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          ++j;
        }
        if (src[j] == '\n') {
          ++line;
        }
        ++j;
      }
      push(quote == '"' ? Token::Kind::kStringLiteral : Token::Kind::kCharLiteral,
           std::string(1, quote) + quote, line);
      i = j + 1;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < src.size() && IsIdentChar(src[j])) {
        ++j;
      }
      push(Token::Kind::kIdentifier, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Number (pp-number rule: digits, dots, exponents, separators, suffixes).
    if (IsDigit(c) || (c == '.' && i + 1 < src.size() && IsDigit(src[i + 1]))) {
      size_t j = i + 1;
      while (j < src.size()) {
        char n = src[j];
        if (IsIdentChar(n) || n == '.' || n == '\'') {
          ++j;
        } else if ((n == '+' || n == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                    src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(Token::Kind::kNumber, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Punctuation, longest multi-char operator first.
    bool matched = false;
    for (const char* op : kMultiPuncts) {
      size_t len = std::char_traits<char>::length(op);
      if (src.substr(i, len) == op) {
        push(Token::Kind::kPunct, op, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(Token::Kind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  if (open_hot >= 0) {
    result.hot_regions.emplace_back(open_hot, line);  // unclosed: runs to EOF
  }
  return result;
}

bool IsFloatLiteral(const std::string& text) {
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return false;  // hex (incl. hex floats; nobody ==-compares those here)
  }
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') {
      return true;
    }
  }
  return false;
}

double NumericValue(const std::string& text) {
  std::string cleaned;
  for (char c : text) {
    if (c != '\'') {
      cleaned.push_back(c);
    }
  }
  return std::strtod(cleaned.c_str(), nullptr);
}

bool CheckEnabled(const Options& options, const std::string& check) {
  return options.enabled_checks.empty() || options.enabled_checks.count(check) != 0;
}

// ---------------------------------------------------------------------------
// mudi-determinism
// ---------------------------------------------------------------------------

// Identifiers banned anywhere (types/objects whose mere presence signals
// ambient randomness or wall-clock time).
const std::unordered_set<std::string>& BannedIdentifiers() {
  static const std::unordered_set<std::string> kSet = {
      "random_device",  "system_clock", "steady_clock", "high_resolution_clock",
      "mt19937",        "mt19937_64",   "minstd_rand",  "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48",  "knuth_b",
      "random_shuffle",
  };
  return kSet;
}

// Identifiers banned as direct calls: `name(` not preceded by `.` or `->`
// (member functions named e.g. `time()` on our own types stay legal).
const std::unordered_set<std::string>& BannedCallIdentifiers() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
  };
  return kSet;
}

void CheckDeterminism(const std::string& path, const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (EndsWith(path, "src/common/rng.h") || EndsWith(path, "src/common/wallclock.h")) {
    return;  // the sanctioned randomness / wall-clock implementations
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    if (BannedIdentifiers().count(tok.text) != 0) {
      findings->push_back(
          {path, tok.line, "mudi-determinism", Severity::kError,
           "'" + tok.text +
               "' breaks seeded reproducibility; use mudi::Rng (src/common/rng.h) for "
               "randomness or mudi::WallTimer (src/common/wallclock.h) for observational "
               "wall-clock timing"});
      continue;
    }
    bool call_like = i + 1 < tokens.size() && tokens[i + 1].kind == Token::Kind::kPunct &&
                     tokens[i + 1].text == "(";
    bool member = i > 0 && tokens[i - 1].kind == Token::Kind::kPunct &&
                  (tokens[i - 1].text == "." || tokens[i - 1].text == "->");
    if (BannedCallIdentifiers().count(tok.text) != 0 && call_like && !member) {
      findings->push_back({path, tok.line, "mudi-determinism", Severity::kError,
                           "call to '" + tok.text +
                               "()' is nondeterministic; simulation code must derive all "
                               "randomness from a seeded mudi::Rng and all time from the "
                               "Simulator virtual clock"});
      continue;
    }
    // Raw environment reads are sanctioned only inside mudi::GetEnv itself.
    if ((tok.text == "getenv" || tok.text == "secure_getenv") && call_like && !member &&
        !EndsWith(path, "src/common/env.h")) {
      findings->push_back(
          {path, tok.line, "mudi-determinism", Severity::kError,
           "raw '" + tok.text +
               "()' call; read the environment through mudi::GetEnv (src/common/env.h) so "
               "every env-derived knob is funneled through one auditable entry point that a "
               "sharded run can capture and replicate"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-fit-thread
// ---------------------------------------------------------------------------

// Thread-spawning primitives are confined to src/ml/fit_pool.h, the one
// sanctioned worker pool (deterministic sharding, fixed-order reduction,
// MUDI_FIT_THREADS-bounded). Ad-hoc std::thread/std::async anywhere else
// can introduce scheduling-order nondeterminism that the seeded-run
// bit-identity contract cannot tolerate.
void CheckFitThread(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  if (EndsWith(path, "src/ml/fit_pool.h")) {
    return;  // the sanctioned fit worker pool
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    // `#include <thread>` / `<future>`: the headers exist only to spawn.
    if (tok.preprocessor && (tok.text == "thread" || tok.text == "future") && i >= 2 &&
        tokens[i - 1].text == "<" && tokens[i - 2].text == "include") {
      findings->push_back({path, tok.line, "mudi-fit-thread", Severity::kError,
                           "#include <" + tok.text +
                               "> outside src/ml/fit_pool.h; spawn workers only through "
                               "FitPool::ParallelFor so parallelism stays deterministic"});
      continue;
    }
    // `std::thread` / `std::jthread` / `std::async` spawn sites.
    if ((tok.text == "thread" || tok.text == "jthread" || tok.text == "async") && i >= 2 &&
        tokens[i - 1].kind == Token::Kind::kPunct && tokens[i - 1].text == "::" &&
        tokens[i - 2].kind == Token::Kind::kIdentifier && tokens[i - 2].text == "std") {
      findings->push_back({path, tok.line, "mudi-fit-thread", Severity::kError,
                           "'std::" + tok.text +
                               "' outside src/ml/fit_pool.h; spawn workers only through "
                               "FitPool::ParallelFor (src/ml/fit_pool.h) so fits stay "
                               "bit-identical for any MUDI_FIT_THREADS"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-status
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& StatementKeywords() {
  static const std::unordered_set<std::string> kSet = {
      "return",   "if",     "else",    "while",  "for",       "do",      "switch",
      "case",     "break",  "continue", "goto",  "new",       "delete",  "throw",
      "co_return", "co_await", "using", "namespace", "class", "struct",  "enum",
      "template", "typedef", "static",  "const", "constexpr", "auto",    "void",
      "int",      "double", "float",   "bool",   "char",      "unsigned", "signed",
      "long",     "short",  "public",  "private", "protected", "friend", "virtual",
      "explicit", "inline", "operator", "sizeof", "typename", "default",
  };
  return kSet;
}

void CheckStatusDiscard(const std::string& path, const std::vector<Token>& tokens,
                        const Options& options, std::vector<Finding>* findings) {
  if (options.status_functions.empty()) {
    return;
  }
  bool statement_start = true;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.preprocessor) {
      continue;
    }
    if (tok.kind == Token::Kind::kPunct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}" || tok.text == ":")) {
      statement_start = true;
      continue;
    }
    if (!statement_start) {
      continue;
    }
    statement_start = false;
    if (tok.kind != Token::Kind::kIdentifier || StatementKeywords().count(tok.text) != 0) {
      continue;
    }
    // Parse a postfix chain: ident [args] ((:: | . | ->) ident [args])* ';'
    size_t j = i;
    int chain_line = tok.line;
    std::string last_called;
    std::string current = tok.text;
    ++j;
    while (j < tokens.size()) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct && t.text == "(") {
        int depth = 1;
        ++j;
        while (j < tokens.size() && depth > 0) {
          if (tokens[j].kind == Token::Kind::kPunct) {
            if (tokens[j].text == "(") {
              ++depth;
            } else if (tokens[j].text == ")") {
              --depth;
            }
          }
          ++j;
        }
        last_called = current;
        continue;
      }
      if (t.kind == Token::Kind::kPunct &&
          (t.text == "::" || t.text == "." || t.text == "->") &&
          j + 1 < tokens.size() && tokens[j + 1].kind == Token::Kind::kIdentifier) {
        current = tokens[j + 1].text;
        j += 2;
        continue;
      }
      break;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kPunct && tokens[j].text == ";" &&
        !last_called.empty() && options.status_functions.count(last_called) != 0) {
      findings->push_back(
          {path, chain_line, "mudi-status", Severity::kError,
           "result of Status-returning call '" + last_called +
               "()' is discarded; use MUDI_CHECK_OK, MUDI_RETURN_IF_ERROR, or an explicit "
               "`(void)` cast with a comment explaining why the error is ignorable"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-float-eq
// ---------------------------------------------------------------------------

void CheckFloatEquality(const std::string& path, const std::vector<Token>& tokens,
                        std::vector<Finding>* findings) {
  if (EndsWith(path, "src/common/float_eq.h")) {
    return;  // the sanctioned comparison helpers
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kPunct || (tok.text != "==" && tok.text != "!=")) {
      continue;
    }
    bool float_operand = false;
    if (i > 0 && tokens[i - 1].kind == Token::Kind::kNumber &&
        IsFloatLiteral(tokens[i - 1].text)) {
      float_operand = true;
    }
    size_t r = i + 1;
    if (r < tokens.size() && tokens[r].kind == Token::Kind::kPunct &&
        (tokens[r].text == "-" || tokens[r].text == "+")) {
      ++r;
    }
    if (r < tokens.size() && tokens[r].kind == Token::Kind::kNumber &&
        IsFloatLiteral(tokens[r].text)) {
      float_operand = true;
    }
    if (float_operand) {
      findings->push_back(
          {path, tok.line, "mudi-float-eq", Severity::kError,
           "'" + tok.text +
               "' against a floating-point literal; use ApproxEq (tolerance) or ExactEq "
               "(intentional sentinel compare) from src/common/float_eq.h"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-time-unit
// ---------------------------------------------------------------------------

struct TimeApi {
  const char* name;
  int time_args;  // leading arguments that are virtual-time values
};

const TimeApi kTimeApis[] = {
    {"ScheduleAt", 1},
    {"ScheduleAfter", 1},
    {"SchedulePeriodic", 2},
    {"RunUntil", 1},
};

void CheckTimeUnits(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  constexpr double kThresholdMs = 1000.0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    const TimeApi* api = nullptr;
    for (const TimeApi& candidate : kTimeApis) {
      if (tok.text == candidate.name) {
        api = &candidate;
        break;
      }
    }
    if (api == nullptr || tokens[i + 1].kind != Token::Kind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Scan the leading time arguments (stop at top-level commas).
    int depth = 1;
    int arg_index = 0;
    bool arg_has_ident = false;
    const Token* arg_big_literal = nullptr;
    size_t j = i + 2;
    auto finish_arg = [&]() {
      if (arg_index < api->time_args && arg_big_literal != nullptr && !arg_has_ident) {
        findings->push_back(
            {path, arg_big_literal->line, "mudi-time-unit", Severity::kError,
             "raw millisecond literal '" + arg_big_literal->text + "' passed to " +
                 std::string(api->name) +
                 "; spell durations >= 1s with kMsPerSecond/kMsPerMinute/kMsPerHour or a "
                 "named constant so the unit is visible"});
      }
      ++arg_index;
      arg_has_ident = false;
      arg_big_literal = nullptr;
    };
    while (j < tokens.size() && depth > 0 && arg_index < api->time_args) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          ++depth;
        } else if (t.text == ")" || t.text == "]" || t.text == "}") {
          --depth;
          if (depth == 0) {
            finish_arg();
            break;
          }
        } else if (t.text == "," && depth == 1) {
          finish_arg();
        }
      } else if (t.kind == Token::Kind::kIdentifier) {
        arg_has_ident = true;
      } else if (t.kind == Token::Kind::kNumber && NumericValue(t.text) >= kThresholdMs) {
        arg_big_literal = &t;
      }
      ++j;
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-retry
// ---------------------------------------------------------------------------

// Retry/backoff control flow is confined to src/sim/retry.h (Retrier +
// BackoffDelayMs: capped exponential backoff, deterministic jitter, deadline,
// total_retries() accounting). Everywhere else, two shapes are banned:
//   (a) a while/for whose condition mentions a retry/attempt/backoff counter
//       — an ad-hoc retry loop with its own (unaudited) backoff policy;
//   (b) a Simulator schedule call (ScheduleAfter/ScheduleAt/SchedulePeriodic)
//       whose argument span performs a KvStore control-plane read
//       (CtrlGet/CtrlList/GetRequired/List) — naked polling that re-arms
//       itself instead of going through Retrier, so it neither backs off nor
//       shows up in the ctrl.retries telemetry.

bool IsRetryIdentifier(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower.find("retry") != std::string::npos ||
         lower.find("retries") != std::string::npos ||
         lower.find("attempt") != std::string::npos ||
         lower.find("backoff") != std::string::npos;
}

const std::unordered_set<std::string>& KvReadApis() {
  static const std::unordered_set<std::string> kSet = {
      "CtrlGet", "CtrlList", "GetRequired", "List",
  };
  return kSet;
}

void CheckRetry(const std::string& path, const std::vector<Token>& tokens,
                std::vector<Finding>* findings) {
  if (EndsWith(path, "src/sim/retry.h")) {
    return;  // the sanctioned retry/backoff implementation
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier || tokens[i + 1].kind != Token::Kind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    bool loop_head = tok.text == "while" || tok.text == "for";
    bool schedule_call = tok.text == "ScheduleAfter" || tok.text == "ScheduleAt" ||
                         tok.text == "SchedulePeriodic";
    if (!loop_head && !schedule_call) {
      continue;
    }
    // Scan the balanced-paren span: for loops that is the condition (plus the
    // init/step of a `for`, which is fine — a retry counter there is still a
    // retry loop); for schedule calls it includes any lambda body argument.
    int depth = 1;
    size_t j = i + 2;
    bool flagged = false;
    while (j < tokens.size() && depth > 0 && !flagged) {
      const Token& t = tokens[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "(") {
          ++depth;
        } else if (t.text == ")") {
          --depth;
        }
      } else if (t.kind == Token::Kind::kIdentifier) {
        if (loop_head && IsRetryIdentifier(t.text)) {
          findings->push_back(
              {path, tok.line, "mudi-retry", Severity::kError,
               "ad-hoc retry loop ('" + t.text + "' drives a '" + tok.text +
                   "'); route re-attempts through Retrier (src/sim/retry.h) so backoff "
                   "is capped, deterministically jittered, and counted in ctrl.retries"});
          flagged = true;
        } else if (schedule_call && KvReadApis().count(t.text) != 0 && j > 0 &&
                   tokens[j - 1].kind == Token::Kind::kPunct &&
                   (tokens[j - 1].text == "." || tokens[j - 1].text == "->") &&
                   j + 1 < tokens.size() && tokens[j + 1].kind == Token::Kind::kPunct &&
                   tokens[j + 1].text == "(") {
          findings->push_back(
              {path, t.line, "mudi-retry", Severity::kError,
               "'" + t.text + "()' inside a " + tok.text +
                   " argument is naked KvStore polling; use Retrier::Start "
                   "(src/sim/retry.h) so the re-read backs off and is accounted for"});
          flagged = true;
        }
      }
      ++j;
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-trace-sink
// ---------------------------------------------------------------------------

// Decision-trace emission is confined to src/replay/: DecisionRecorder is the
// sanctioned sink, and the raw framing layer underneath it (TraceWriter +
// EncodeTraceHeader) must not be driven from anywhere else. An ad-hoc writer
// elsewhere would emit oracle observations or policy decisions that skip the
// recorder's causal sequence numbers and header validation, producing trace
// files that ReplaySource and trace_diff cannot align. Read-side APIs
// (ReadDecisionTrace, SummarizeDecisionTrace, DiffTraces) are fine anywhere.
// tests/replay_test.cc is allowlisted: it round-trips the framing on purpose.

bool IsSanctionedTraceSink(const std::string& path) {
  return path.find("src/replay/") != std::string::npos ||
         EndsWith(path, "tests/replay_test.cc");
}

void CheckTraceSink(const std::string& path, const std::vector<Token>& tokens,
                    std::vector<Finding>* findings) {
  if (IsSanctionedTraceSink(path)) {
    return;
  }
  for (const Token& tok : tokens) {
    if (tok.kind != Token::Kind::kIdentifier) {
      continue;
    }
    if (tok.text == "TraceWriter" || tok.text == "EncodeTraceHeader") {
      findings->push_back(
          {path, tok.line, "mudi-trace-sink", Severity::kError,
           "'" + tok.text +
               "' outside src/replay/ is ad-hoc decision-trace emission; record "
               "oracle/policy events through DecisionRecorder "
               "(src/replay/decision_recorder.h) so every record carries the causal "
               "sequence number and validated mudi.decision_trace.v1 framing"});
    }
  }
}

// ---------------------------------------------------------------------------
// mudi-include
// ---------------------------------------------------------------------------

void CheckIncludeHygiene(const std::string& path, const TokenizeResult& tokenized,
                         std::vector<Finding>* findings) {
  bool is_source = EndsWith(path, ".cc") || EndsWith(path, ".cpp");
  bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  if (is_source && !tokenized.includes.empty()) {
    // basename without extension
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    std::string own_header = base.substr(0, dot) + ".h";
    for (size_t k = 0; k < tokenized.includes.size(); ++k) {
      const auto& inc = tokenized.includes[k];
      if (!inc.quoted) {
        continue;
      }
      size_t inc_slash = inc.path.find_last_of('/');
      std::string inc_base =
          inc_slash == std::string::npos ? inc.path : inc.path.substr(inc_slash + 1);
      if (inc_base == own_header) {
        if (k != 0) {
          findings->push_back({path, inc.line, "mudi-include", Severity::kWarning,
                               "a .cc file must include its own header first (\"" + inc.path +
                                   "\" found after other includes); this keeps every header "
                                   "self-contained"});
        }
        break;
      }
    }
  }
  if (is_header) {
    const auto& tokens = tokenized.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind == Token::Kind::kIdentifier && tokens[i].text == "using" &&
          tokens[i + 1].kind == Token::Kind::kIdentifier &&
          tokens[i + 1].text == "namespace") {
        findings->push_back({path, tokens[i].line, "mudi-include", Severity::kWarning,
                             "'using namespace' in a header leaks into every includer; "
                             "qualify names or alias them instead"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: model extraction (shared-state symbol table, sync-primitive sites,
// hot-path allocation sites)
// ---------------------------------------------------------------------------

// True when an annotation macro appears on `line` or up to two lines above it
// (the justification string often wraps onto its own line).
bool HasAnnotationNear(const std::set<int>& annotation_lines, int line) {
  auto it = annotation_lines.lower_bound(line - 2);
  return it != annotation_lines.end() && *it <= line;
}

// Named synchronization types under std:: (plus anything starting "atomic":
// atomic<T>, atomic_int, atomic_flag, atomic_ref, atomic_thread_fence, ...).
const std::unordered_set<std::string>& SyncTypeNames() {
  static const std::unordered_set<std::string> kSet = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "shared_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "condition_variable", "condition_variable_any", "once_flag",
      "counting_semaphore", "binary_semaphore", "latch", "barrier",
  };
  return kSet;
}

bool IsSyncTypeName(const std::string& text) {
  return SyncTypeNames().count(text) != 0 || text.rfind("atomic", 0) == 0;
}

// Standard headers whose only purpose is synchronization.
const std::unordered_set<std::string>& SyncHeaderNames() {
  static const std::unordered_set<std::string> kSet = {
      "mutex", "atomic", "condition_variable", "shared_mutex",
      "semaphore", "latch", "barrier", "stop_token",
  };
  return kSet;
}

// Identifiers that can never be the name of a declared object.
const std::unordered_set<std::string>& NonCandidateIdents() {
  static const std::unordered_set<std::string> kSet = {
      "nullptr", "true", "false", "this", "auto", "void", "operator",
      "default", "delete", "override", "final", "noexcept", "const",
  };
  return kSet;
}

// Advances past a balanced template-argument list starting at tokens[j] ==
// "<"; returns j unchanged when there is none. Bails at ';'/'{' so a stray
// less-than comparison cannot swallow the rest of the file.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t j) {
  if (j >= tokens.size() || tokens[j].kind != Token::Kind::kPunct || tokens[j].text != "<") {
    return j;
  }
  size_t start = j;
  int depth = 0;
  while (j < tokens.size()) {
    if (tokens[j].kind == Token::Kind::kPunct) {
      const std::string& t = tokens[j].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth <= 0) {
          return j + 1;
        }
      } else if (t == ">>") {
        depth -= 2;
        if (depth <= 0) {
          return j + 1;
        }
      } else if (t == ";" || t == "{" || t == "}") {
        return start;  // not a template-argument list after all
      }
    }
    ++j;
  }
  return start;
}

// Scope kinds tracked while walking brace nesting. The tracker is a
// heuristic (no real parse), tuned so misclassification errs toward false
// negatives: state is only recorded at namespace scope, or with an explicit
// `static`, so a function body mistaken for an expression scope loses a
// finding rather than inventing one.
enum class ScopeKind { kNamespace, kClass, kFunction, kExpr };

void ExtractStateSymbols(const std::vector<Token>& tokens, const std::set<int>& shard_lines,
                         FileModel* model) {
  std::vector<ScopeKind> scopes = {ScopeKind::kNamespace};  // file scope
  std::vector<const Token*> stmt;  // tokens since the last ; { } boundary
  int stmt_depth = 0;              // ( and [ nesting inside the statement
  bool resolved = false;           // statement already yielded its candidate

  auto stmt_has = [&](std::string_view word) {
    for (const Token* t : stmt) {
      if (t->kind == Token::Kind::kIdentifier && t->text == word) {
        return true;
      }
    }
    return false;
  };
  auto clear_stmt = [&] {
    stmt.clear();
    stmt_depth = 0;
    resolved = false;
  };

  auto record = [&](const Token* name_tok) {
    resolved = true;
    if (name_tok == nullptr || name_tok->kind != Token::Kind::kIdentifier ||
        NonCandidateIdents().count(name_tok->text) != 0) {
      return;
    }
    // Statements that are not mutable-object declarations. const/constexpr
    // anywhere in the statement is taken as "immutable" — a deliberate
    // heuristic (`const char* p` is a mutable pointer but reads as config).
    static const char* const kReject[] = {
        "using",     "typedef",   "namespace", "friend",    "template",  "operator",
        "return",    "if",        "while",     "for",       "switch",    "case",
        "goto",      "throw",     "do",        "else",      "break",     "continue",
        "public",    "private",   "protected", "extern",    "const",     "constexpr",
        "constinit", "consteval", "class",     "struct",    "union",     "enum",
        "sizeof",    "new",       "delete",    "try",       "catch",     "requires",
        "concept",   "static_assert", "alignas", "asm",     "co_return", "co_await",
        "co_yield",
    };
    for (const char* w : kReject) {
      if (stmt_has(w)) {
        return;
      }
    }
    ScopeKind scope = scopes.back();
    bool is_static = stmt_has("static");
    FileModel::StateSymbol::Kind kind;
    if (scope == ScopeKind::kNamespace) {
      kind = FileModel::StateSymbol::Kind::kGlobal;  // static or not: shared
    } else if (scope == ScopeKind::kClass) {
      if (!is_static) {
        return;  // plain data member: per-object state, not process-shared
      }
      kind = FileModel::StateSymbol::Kind::kClassStatic;
    } else {
      if (!is_static) {
        return;  // ordinary local
      }
      kind = FileModel::StateSymbol::Kind::kStaticLocal;
    }
    model->state_symbols.push_back({name_tok->line, name_tok->text, kind,
                                    HasAnnotationNear(shard_lines, name_tok->line)});
  };

  // Declared name immediately before a top-level `=` / `{`, skipping a
  // balanced array extent: `int kTable[4] =` resolves to kTable.
  auto decl_name_before = [&]() -> const Token* {
    int depth = 0;
    for (size_t k = stmt.size(); k-- > 0;) {
      const Token* t = stmt[k];
      if (t->kind == Token::Kind::kPunct) {
        if (t->text == "]") {
          ++depth;
        } else if (t->text == "[") {
          --depth;
        } else if (depth == 0) {
          return nullptr;
        }
      } else if (depth == 0) {
        return t->kind == Token::Kind::kIdentifier ? t : nullptr;
      }
    }
    return nullptr;
  };

  // Rule for `;`-terminated statements without an initializer: the last
  // top-level identifier not followed by a call `(` — `HookMarker g_marker;`
  // resolves to g_marker, `DoThing(a, b);` resolves to nothing.
  auto finalize_stmt = [&] {
    if (!resolved && !stmt.empty()) {
      const Token* cand = nullptr;
      bool cand_called = false;
      int depth = 0;
      for (size_t k = 0; k < stmt.size(); ++k) {
        const Token* t = stmt[k];
        if (t->kind == Token::Kind::kPunct) {
          if (t->text == "(") {
            if (depth == 0 && cand != nullptr && k > 0 && stmt[k - 1] == cand) {
              cand_called = true;
            }
            ++depth;
          } else if (t->text == "[") {
            ++depth;
          } else if ((t->text == ")" || t->text == "]") && depth > 0) {
            --depth;
          }
        } else if (t->kind == Token::Kind::kIdentifier && depth == 0) {
          cand = t;
          cand_called = false;
        }
      }
      if (!cand_called) {
        record(cand);
      }
    }
    clear_stmt();
  };

  for (const Token& tok : tokens) {
    if (tok.preprocessor || tok.kind == Token::Kind::kCharLiteral) {
      continue;
    }
    if (tok.kind != Token::Kind::kPunct) {
      stmt.push_back(&tok);
      continue;
    }
    const std::string& t = tok.text;
    if (t == "(" || t == "[") {
      ++stmt_depth;
      stmt.push_back(&tok);
    } else if (t == ")" || t == "]") {
      if (stmt_depth > 0) {
        --stmt_depth;
      }
      stmt.push_back(&tok);
    } else if (t == ";") {
      if (stmt_depth == 0) {
        finalize_stmt();
      } else {
        stmt.push_back(&tok);  // e.g. the ';'s of a for-header
      }
    } else if (t == "=" && stmt_depth == 0) {
      if (!resolved) {
        record(decl_name_before());
      }
      stmt.push_back(&tok);
    } else if (t == ":" && stmt.size() == 1 && stmt[0]->kind == Token::Kind::kIdentifier &&
               (stmt[0]->text == "public" || stmt[0]->text == "private" ||
                stmt[0]->text == "protected")) {
      clear_stmt();  // access specifier: start a fresh statement
    } else if (t == "{") {
      ScopeKind kind = ScopeKind::kExpr;
      if (stmt_depth == 0) {
        const Token* prev = stmt.empty() ? nullptr : stmt.back();
        bool has_paren = false;
        for (const Token* s : stmt) {
          if (s->kind == Token::Kind::kPunct && s->text == "(") {
            has_paren = true;
            break;
          }
        }
        if (stmt_has("namespace")) {
          kind = ScopeKind::kNamespace;
        } else if (!has_paren && (stmt_has("class") || stmt_has("struct") ||
                                  stmt_has("union") || stmt_has("enum"))) {
          kind = ScopeKind::kClass;
        } else if (prev == nullptr ||
                   (prev->kind == Token::Kind::kPunct && prev->text == ")") ||
                   (has_paren && prev->kind == Token::Kind::kIdentifier &&
                    (prev->text == "const" || prev->text == "noexcept" ||
                     prev->text == "override" || prev->text == "final" ||
                     prev->text == "try"))) {
          kind = ScopeKind::kFunction;  // fn body (or a bare block: same rules)
        } else if (prev->kind == Token::Kind::kIdentifier && !resolved) {
          record(decl_name_before());  // brace-init: `std::atomic<int> g{0};`
        }
      }
      scopes.push_back(kind);
      clear_stmt();
    } else if (t == "}") {
      if (scopes.size() > 1) {
        scopes.pop_back();
      }
      clear_stmt();
    } else {
      stmt.push_back(&tok);
    }
  }
}

void ExtractSyncUses(const TokenizeResult& tokenized, const std::set<int>& guarded_lines,
                     FileModel* model) {
  for (const auto& inc : tokenized.includes) {
    if (!inc.quoted && SyncHeaderNames().count(inc.path) != 0) {
      model->sync_uses.push_back(
          {inc.line, inc.path, FileModel::SyncUse::Kind::kInclude, false});
    }
  }
  const auto& tokens = tokenized.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier || tok.preprocessor ||
        !IsSyncTypeName(tok.text)) {
      continue;
    }
    if (!(i >= 2 && tokens[i - 1].kind == Token::Kind::kPunct && tokens[i - 1].text == "::" &&
          tokens[i - 2].kind == Token::Kind::kIdentifier && tokens[i - 2].text == "std")) {
      continue;
    }
    // Declaration vs use: a declaration is `std::sync_type<...> name`, with
    // no pointer/reference binding in between. Everything else (template
    // argument, member access, fence call, parameter reference) is a use.
    size_t j = SkipTemplateArgs(tokens, i + 1);
    bool pointer_like = false;
    while (j < tokens.size() && tokens[j].kind == Token::Kind::kPunct &&
           (tokens[j].text == "*" || tokens[j].text == "&" || tokens[j].text == "&&")) {
      pointer_like = true;
      ++j;
    }
    bool is_decl = !pointer_like && j < tokens.size() &&
                   tokens[j].kind == Token::Kind::kIdentifier &&
                   NonCandidateIdents().count(tokens[j].text) == 0;
    model->sync_uses.push_back(
        {tok.line, tok.text,
         is_decl ? FileModel::SyncUse::Kind::kDeclaration : FileModel::SyncUse::Kind::kUse,
         is_decl && HasAnnotationNear(guarded_lines, tok.line)});
  }
}

void ExtractHotAllocs(const TokenizeResult& tokenized, FileModel* model) {
  if (tokenized.hot_regions.empty()) {
    return;
  }
  auto in_hot = [&](int line) {
    for (const auto& r : tokenized.hot_regions) {
      if (line >= r.first && line <= r.second) {
        return true;
      }
    }
    return false;
  };
  static const std::unordered_set<std::string> kGrowthCalls = {
      "push_back", "emplace_back", "push", "emplace",
      "resize",    "reserve",      "insert", "append",
  };
  const auto& tokens = tokenized.tokens;
  auto add = [&](int line, std::string what) {
    model->hot_allocs.push_back({line, std::move(what)});
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier || tok.preprocessor || !in_hot(tok.line)) {
      continue;
    }
    bool next_is_paren = i + 1 < tokens.size() &&
                         tokens[i + 1].kind == Token::Kind::kPunct &&
                         tokens[i + 1].text == "(";
    if (tok.text == "new") {
      if (!next_is_paren) {  // placement new `new (addr) T` stays legal
        add(tok.line, "'new' expression");
      }
      continue;
    }
    if (tok.text == "make_unique" || tok.text == "make_shared") {
      add(tok.line, "std::" + tok.text);
      continue;
    }
    bool after_std = i >= 2 && tokens[i - 1].kind == Token::Kind::kPunct &&
                     tokens[i - 1].text == "::" &&
                     tokens[i - 2].kind == Token::Kind::kIdentifier &&
                     tokens[i - 2].text == "std";
    if (tok.text == "function" && after_std) {
      add(tok.line, "std::function (type-erased callable; allocates on capture)");
      continue;
    }
    if ((tok.text == "vector" || tok.text == "string") && after_std) {
      size_t j = SkipTemplateArgs(tokens, i + 1);
      bool ref_like = j < tokens.size() && tokens[j].kind == Token::Kind::kPunct &&
                      (tokens[j].text == "&" || tokens[j].text == "*" ||
                       tokens[j].text == "&&");
      if (!ref_like && j < tokens.size() && tokens[j].kind == Token::Kind::kIdentifier &&
          NonCandidateIdents().count(tokens[j].text) == 0) {
        add(tok.line, "by-value std::" + tok.text + " construction");
      }
      continue;
    }
    if (kGrowthCalls.count(tok.text) != 0 && next_is_paren && i > 0 &&
        tokens[i - 1].kind == Token::Kind::kPunct &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
      add(tok.line, "container growth call '" + tok.text + "()'");
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: cross-file checks
// ---------------------------------------------------------------------------

// mudi-layering: up-layer includes plus include-graph cycles (Tarjan SCC over
// the scanned files; only quoted includes that resolve to a scanned path form
// edges, so system headers never participate).
void CheckLayering(const RepoModel& model, std::vector<Finding>* findings) {
  for (const FileModel& f : model.files) {
    if (!f.in_src) {
      continue;  // tests/bench/tools/examples may reach any layer
    }
    int self = LayerOf(f.src_dir);
    if (self < 0) {
      findings->push_back(
          {f.path, 1, "mudi-layering", Severity::kError,
           "src/" + f.src_dir + "/ is not in the layer map; every first-level src/ "
           "directory must be assigned a layer in tools/mudi_lint (LayerMap) before code "
           "can live there"});
      continue;
    }
    for (const auto& inc : f.includes) {
      if (!inc.quoted || inc.path.rfind("src/", 0) != 0) {
        continue;
      }
      size_t slash = inc.path.find('/', 4);
      if (slash == std::string::npos) {
        continue;
      }
      std::string target_dir = inc.path.substr(4, slash - 4);
      int target = LayerOf(target_dir);
      if (target > self) {
        findings->push_back(
            {f.path, inc.line, "mudi-layering", Severity::kError,
             "up-layer include: \"" + inc.path + "\" (src/" + target_dir + ", layer " +
                 std::to_string(target) + ") may not be included from src/" + f.src_dir +
                 " (layer " + std::to_string(self) +
                 "); invert the dependency with an interface in the lower layer or move "
                 "the code"});
      }
    }
  }

  // Cycle detection over every scanned file (not just src/).
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < model.files.size(); ++i) {
    index[model.files[i].path] = i;
  }
  const size_t n = model.files.size();
  std::vector<std::vector<size_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& inc : model.files[i].includes) {
      if (!inc.quoted) {
        continue;
      }
      auto it = index.find(inc.path);
      if (it != index.end()) {
        adj[i].push_back(it->second);
      }
    }
  }
  // Iterative Tarjan (explicit stack; recursion depth is include-chain depth,
  // fine today, but the explicit form is immune to deep vendored trees).
  std::vector<int> idx(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int counter = 0;
  struct Frame {
    size_t v;
    size_t child;
  };
  for (size_t root = 0; root < n; ++root) {
    if (idx[root] != -1) {
      continue;
    }
    std::vector<Frame> frames{{root, 0}};
    idx[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.child < adj[fr.v].size()) {
        size_t w = adj[fr.v][fr.child++];
        if (idx[w] == -1) {
          idx[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], idx[w]);
        }
      } else {
        size_t v = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
        if (low[v] == idx[v]) {
          std::vector<size_t> scc;
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) {
              break;
            }
          }
          bool self_loop = scc.size() == 1 &&
                           std::find(adj[scc[0]].begin(), adj[scc[0]].end(), scc[0]) !=
                               adj[scc[0]].end();
          if (scc.size() > 1 || self_loop) {
            std::vector<std::string> members;
            members.reserve(scc.size());
            for (size_t w : scc) {
              members.push_back(model.files[w].path);
            }
            std::sort(members.begin(), members.end());
            // Anchor the finding at the anchor file's first include into the
            // cycle, so the report points at an actual edge.
            const std::string& anchor = members.front();
            size_t anchor_idx = index[anchor];
            int line = 1;
            std::set<std::string> member_set(members.begin(), members.end());
            for (const auto& inc : model.files[anchor_idx].includes) {
              if (inc.quoted && member_set.count(inc.path) != 0 &&
                  (scc.size() > 1 || inc.path == anchor)) {
                line = inc.line;
                break;
              }
            }
            std::string chain;
            for (const std::string& m : members) {
              chain += m + " -> ";
            }
            chain += members.front();
            findings->push_back(
                {anchor, line, "mudi-layering", Severity::kError,
                 "include cycle: " + chain +
                     "; break it with a forward declaration or an interface header — a "
                     "cyclic graph has no layer order at all"});
          }
        }
      }
    }
  }
}

void CheckGlobalState(const RepoModel& model, std::vector<Finding>* findings) {
  for (const FileModel& f : model.files) {
    if (!f.in_src) {
      continue;  // tests/bench/tools own their process; no shard boundary
    }
    for (const auto& sym : f.state_symbols) {
      if (sym.annotated) {
        continue;
      }
      const char* kind = "namespace-scope global";
      if (sym.kind == FileModel::StateSymbol::Kind::kClassStatic) {
        kind = "class-static member";
      } else if (sym.kind == FileModel::StateSymbol::Kind::kStaticLocal) {
        kind = "function-static local";
      }
      findings->push_back(
          {f.path, sym.line, "mudi-global-state", Severity::kError,
           std::string(kind) + " '" + sym.name +
               "' is mutable shared state without MUDI_SHARD_SHARED(\"why\") "
               "(src/common/thread_annotations.h); the sharded-simulator audit can only "
               "draw shard boundaries around state it knows about"});
    }
  }
}

// Files audited to hold synchronization primitives. Everything here predates
// the sharding work and is documented (at the declaration, via
// MUDI_GUARDED_STATE) for why the primitive is needed.
bool IsSanctionedSyncFile(const std::string& path) {
  static const char* const kAllow[] = {
      "src/common/logging.cc",          // log-level gate, set by tests/CLIs
      "src/common/thread_annotations.h",
      "src/ml/fit_cache.h",  "src/ml/fit_cache.cc",  // cross-fit memo table
      "src/ml/fit_pool.h",                           // the sanctioned pool
      "src/perf/mem_probe.h", "src/perf/mem_probe.cc",
      "src/perf/alloc_hook.cc",                      // global-new instrumentation
  };
  for (const char* p : kAllow) {
    if (EndsWith(path, p)) {
      return true;
    }
  }
  return false;
}

void CheckSyncPrimitive(const RepoModel& model, std::vector<Finding>* findings) {
  for (const FileModel& f : model.files) {
    if (!f.in_src) {
      continue;
    }
    bool sanctioned = IsSanctionedSyncFile(f.path);
    for (const auto& use : f.sync_uses) {
      if (!sanctioned) {
        std::string what = use.kind == FileModel::SyncUse::Kind::kInclude
                               ? "#include <" + use.token + ">"
                               : "'std::" + use.token + "'";
        findings->push_back(
            {f.path, use.line, "mudi-sync-primitive", Severity::kError,
             what + " outside the audited sync allowlist; simulation code must not "
                    "synchronize ad hoc — the sharded simulator owns cross-shard ordering. "
                    "If this file genuinely needs a primitive, add it to the allowlist in "
                    "tools/mudi_lint (IsSanctionedSyncFile) with review"});
      } else if (use.kind == FileModel::SyncUse::Kind::kDeclaration && !use.annotated) {
        findings->push_back(
            {f.path, use.line, "mudi-sync-primitive", Severity::kError,
             "sync-primitive declaration 'std::" + use.token +
                 "' missing MUDI_GUARDED_STATE(\"why\") "
                 "(src/common/thread_annotations.h); each instance must state what it "
                 "guards and why that survives sharding"});
      }
    }
  }
}

void CheckHotPathAlloc(const RepoModel& model, std::vector<Finding>* findings) {
  for (const FileModel& f : model.files) {
    for (const auto& alloc : f.hot_allocs) {
      findings->push_back(
          {f.path, alloc.line, "mudi-hot-path-alloc", Severity::kError,
           "heap allocation on the event hot path: " + alloc.what +
               " inside a MUDI_HOT_PATH region; the steady-state event loop is "
               "allocation-free (perf_test proves it with the alloc hook) — preallocate, "
               "or NOLINT with a justification if this is a sanctioned cold-path spill"});
    }
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": " << SeverityName(severity) << ": [" << check << "] "
     << message;
  if (suppressed) {
    os << " (suppressed)";
  }
  return os.str();
}

std::vector<std::string> CheckNames() {
  return {"mudi-determinism",    "mudi-fit-thread", "mudi-float-eq",
          "mudi-global-state",   "mudi-hot-path-alloc", "mudi-include",
          "mudi-layering",       "mudi-retry",      "mudi-status",
          "mudi-sync-primitive", "mudi-time-unit",  "mudi-trace-sink"};
}

std::vector<Token> Tokenize(std::string_view content) {
  return TokenizeImpl(content).tokens;
}

void CollectStatusFunctions(std::string_view content, std::set<std::string>* out) {
  std::vector<Token> tokens = Tokenize(content);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != Token::Kind::kIdentifier ||
        (tok.text != "Status" && tok.text != "StatusOr")) {
      continue;
    }
    size_t j = i + 1;
    if (tok.text == "StatusOr") {
      if (j >= tokens.size() || tokens[j].kind != Token::Kind::kPunct ||
          tokens[j].text != "<") {
        continue;
      }
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].kind == Token::Kind::kPunct) {
          if (tokens[j].text == "<") {
            ++depth;
          } else if (tokens[j].text == ">") {
            --depth;
          } else if (tokens[j].text == ">>") {
            depth -= 2;
          }
        }
        ++j;
      }
    }
    // Optional qualified name: Ident (:: Ident)*, then '('.
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdentifier) {
      continue;
    }
    std::string name = tokens[j].text;
    ++j;
    while (j + 1 < tokens.size() && tokens[j].kind == Token::Kind::kPunct &&
           tokens[j].text == "::" && tokens[j + 1].kind == Token::Kind::kIdentifier) {
      name = tokens[j + 1].text;
      j += 2;
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kPunct && tokens[j].text == "(") {
      out->insert(name);
    }
  }
}

std::vector<Finding> LintFile(const std::string& path, std::string_view content,
                              const Options& options) {
  TokenizeResult tokenized = TokenizeImpl(content);
  std::vector<Finding> findings;
  if (CheckEnabled(options, "mudi-determinism")) {
    CheckDeterminism(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-fit-thread")) {
    CheckFitThread(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-status")) {
    CheckStatusDiscard(path, tokenized.tokens, options, &findings);
  }
  if (CheckEnabled(options, "mudi-float-eq")) {
    CheckFloatEquality(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-time-unit")) {
    CheckTimeUnits(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-retry")) {
    CheckRetry(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-trace-sink")) {
    CheckTraceSink(path, tokenized.tokens, &findings);
  }
  if (CheckEnabled(options, "mudi-include")) {
    CheckIncludeHygiene(path, tokenized, &findings);
  }
  // Apply suppressions.
  for (Finding& f : findings) {
    auto it = tokenized.suppressions.find(f.line);
    if (it != tokenized.suppressions.end() &&
        (it->second.empty() || it->second.count(f.check) != 0)) {
      f.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  return findings;
}

const std::vector<std::pair<std::string, int>>& LayerMap() {
  // The layer order mirrors DESIGN.md §15: a file may include only its own
  // layer or below. Directories sharing a number are peers that must not
  // include each other's headers either — but peer edges are rare enough
  // (and legitimate enough, e.g. cluster <-> core) that only the numeric
  // order is enforced.
  static const std::vector<std::pair<std::string, int>> kMap = {
      {"common", 0},
      {"perf", 1},      {"telemetry", 1},
      {"sim", 2},
      {"gpu", 3},       {"workload", 3},
      {"ml", 4},
      {"solver", 5},
      {"baselines", 6}, {"cluster", 6}, {"core", 6},
      {"fault", 7},     {"replay", 7},
      {"exp", 8},
  };
  return kMap;
}

int LayerOf(std::string_view src_dir) {
  for (const auto& [dir, layer] : LayerMap()) {
    if (dir == src_dir) {
      return layer;
    }
  }
  return -1;
}

FileModel AnalyzeFile(const std::string& path, std::string_view content) {
  TokenizeResult tokenized = TokenizeImpl(content);
  FileModel model;
  model.path = path;
  model.in_src = path.rfind("src/", 0) == 0;
  if (model.in_src) {
    size_t slash = path.find('/', 4);
    if (slash != std::string::npos) {
      model.src_dir = path.substr(4, slash - 4);
    }
  }
  model.includes.reserve(tokenized.includes.size());
  for (const auto& inc : tokenized.includes) {
    model.includes.push_back({inc.line, inc.path, inc.quoted});
  }
  model.hot_regions = tokenized.hot_regions;
  model.suppressions = tokenized.suppressions;

  std::set<int> shard_lines;
  std::set<int> guarded_lines;
  for (const Token& t : tokenized.tokens) {
    if (t.kind == Token::Kind::kIdentifier && !t.preprocessor) {
      if (t.text == "MUDI_SHARD_SHARED") {
        shard_lines.insert(t.line);
      } else if (t.text == "MUDI_GUARDED_STATE") {
        guarded_lines.insert(t.line);
      }
    }
  }
  ExtractStateSymbols(tokenized.tokens, shard_lines, &model);
  ExtractSyncUses(tokenized, guarded_lines, &model);
  ExtractHotAllocs(tokenized, &model);
  return model;
}

RepoModel BuildRepoModel(std::vector<FileModel> files) {
  RepoModel model;
  model.files = std::move(files);
  std::sort(model.files.begin(), model.files.end(),
            [](const FileModel& a, const FileModel& b) { return a.path < b.path; });
  return model;
}

std::vector<Finding> LintRepoModel(const RepoModel& model, const Options& options) {
  std::vector<Finding> findings;
  if (CheckEnabled(options, "mudi-layering")) {
    CheckLayering(model, &findings);
  }
  if (CheckEnabled(options, "mudi-global-state")) {
    CheckGlobalState(model, &findings);
  }
  if (CheckEnabled(options, "mudi-sync-primitive")) {
    CheckSyncPrimitive(model, &findings);
  }
  if (CheckEnabled(options, "mudi-hot-path-alloc")) {
    CheckHotPathAlloc(model, &findings);
  }
  std::map<std::string, const SuppressionMap*> by_path;
  for (const FileModel& f : model.files) {
    by_path[f.path] = &f.suppressions;
  }
  for (Finding& f : findings) {
    auto it = by_path.find(f.file);
    if (it == by_path.end()) {
      continue;
    }
    auto sit = it->second->find(f.line);
    if (sit != it->second->end() && (sit->second.empty() || sit->second.count(f.check) != 0)) {
      f.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.check < b.check;
  });
  return findings;
}

namespace {

// Parses one source line as an #include directive; returns (quoted, path).
std::optional<std::pair<bool, std::string>> ParseIncludeLine(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') {
    return std::nullopt;
  }
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
    return std::nullopt;
  }
  i = line.find_first_not_of(" \t", i + 7);
  if (i == std::string::npos || (line[i] != '"' && line[i] != '<')) {
    return std::nullopt;
  }
  char close = line[i] == '"' ? '"' : '>';
  size_t end = line.find(close, i + 1);
  if (end == std::string::npos) {
    return std::nullopt;
  }
  return std::make_pair(line[i] == '"', line.substr(i + 1, end - i - 1));
}

}  // namespace

std::optional<IncludeFix> FixOwnHeaderFirst(const std::string& path,
                                            const std::string& content) {
  if (!EndsWith(path, ".cc") && !EndsWith(path, ".cpp")) {
    return std::nullopt;
  }
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  std::string own_header = base.substr(0, base.find_last_of('.')) + ".h";

  std::vector<std::string> lines;
  bool trailing_newline = !content.empty() && content.back() == '\n';
  for (size_t pos = 0; pos < content.size();) {
    size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(content.substr(pos));
      break;
    }
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }

  int first_include = -1;
  int own_index = -1;
  for (size_t k = 0; k < lines.size(); ++k) {
    auto inc = ParseIncludeLine(lines[k]);
    if (!inc.has_value()) {
      continue;
    }
    if (first_include < 0) {
      first_include = static_cast<int>(k);
    }
    if (own_index < 0 && inc->first) {
      size_t inc_slash = inc->second.find_last_of('/');
      std::string inc_base = inc_slash == std::string::npos
                                 ? inc->second
                                 : inc->second.substr(inc_slash + 1);
      if (inc_base == own_header) {
        own_index = static_cast<int>(k);
      }
    }
  }
  if (own_index < 0 || first_include < 0 || own_index == first_include) {
    return std::nullopt;  // no own header, or already first: nothing to do
  }

  IncludeFix fix;
  fix.moved_include = ParseIncludeLine(lines[own_index])->second;
  fix.from_line = own_index + 1;
  fix.to_line = first_include + 1;
  std::string moved = lines[own_index];
  lines.erase(lines.begin() + own_index);
  lines.insert(lines.begin() + first_include, moved);

  std::string out;
  out.reserve(content.size());
  for (size_t k = 0; k < lines.size(); ++k) {
    out += lines[k];
    if (k + 1 < lines.size() || trailing_newline) {
      out += '\n';
    }
  }
  fix.fixed_content = std::move(out);
  return fix;
}

Status ValidateLintJson(const std::string& text) {
  StatusOr<perf::JsonValue> parsed = perf::ParseJson(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const perf::JsonValue& root = *parsed;
  if (!root.is_object()) {
    return InvalidArgumentError("lint json: root must be an object");
  }
  const perf::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string() != "mudi.lint.v1") {
    return InvalidArgumentError("lint json: schema must be the string \"mudi.lint.v1\"");
  }
  const perf::JsonValue* files_scanned = root.Find("files_scanned");
  if (files_scanned == nullptr || !files_scanned->is_number() ||
      files_scanned->number() < 0) {
    return InvalidArgumentError("lint json: files_scanned must be a non-negative number");
  }

  const std::vector<std::string> names = CheckNames();
  const perf::JsonValue* checks = root.Find("checks");
  if (checks == nullptr || !checks->is_array() || checks->array().size() != names.size()) {
    return InvalidArgumentError("lint json: checks must be an array of exactly " +
                                std::to_string(names.size()) + " entries");
  }
  double per_check_suppressed = 0;
  double per_check_unsuppressed = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const perf::JsonValue& entry = checks->array()[i];
    if (!entry.is_object()) {
      return InvalidArgumentError("lint json: checks[" + std::to_string(i) +
                                  "] must be an object");
    }
    const perf::JsonValue* name = entry.Find("name");
    if (name == nullptr || !name->is_string() || name->string() != names[i]) {
      return InvalidArgumentError("lint json: checks[" + std::to_string(i) +
                                  "].name must be \"" + names[i] +
                                  "\" (the catalogue, in sorted order)");
    }
    for (const char* key : {"unsuppressed", "suppressed"}) {
      const perf::JsonValue* count = entry.Find(key);
      if (count == nullptr || !count->is_number() || count->number() < 0) {
        return InvalidArgumentError("lint json: checks[" + std::to_string(i) + "]." + key +
                                    " must be a non-negative number");
      }
    }
    per_check_unsuppressed += entry.Find("unsuppressed")->number();
    per_check_suppressed += entry.Find("suppressed")->number();
  }

  const perf::JsonValue* findings = root.Find("findings");
  if (findings == nullptr || !findings->is_array()) {
    return InvalidArgumentError("lint json: findings must be an array");
  }
  const std::set<std::string> catalogue(names.begin(), names.end());
  double suppressed_total = 0;
  double unsuppressed_total = 0;
  for (size_t i = 0; i < findings->array().size(); ++i) {
    const perf::JsonValue& f = findings->array()[i];
    std::string where = "lint json: findings[" + std::to_string(i) + "]";
    if (!f.is_object()) {
      return InvalidArgumentError(where + " must be an object");
    }
    const perf::JsonValue* file = f.Find("file");
    if (file == nullptr || !file->is_string() || file->string().empty()) {
      return InvalidArgumentError(where + ".file must be a non-empty string");
    }
    const perf::JsonValue* line = f.Find("line");
    if (line == nullptr || !line->is_number() || line->number() < 1) {
      return InvalidArgumentError(where + ".line must be a number >= 1");
    }
    const perf::JsonValue* check = f.Find("check");
    if (check == nullptr || !check->is_string() ||
        catalogue.count(check->string()) == 0) {
      return InvalidArgumentError(where + ".check must name a catalogue check");
    }
    const perf::JsonValue* severity = f.Find("severity");
    if (severity == nullptr || !severity->is_string() ||
        (severity->string() != "error" && severity->string() != "warning")) {
      return InvalidArgumentError(where + ".severity must be \"error\" or \"warning\"");
    }
    const perf::JsonValue* suppressed = f.Find("suppressed");
    if (suppressed == nullptr || !suppressed->is_bool()) {
      return InvalidArgumentError(where + ".suppressed must be a boolean");
    }
    const perf::JsonValue* message = f.Find("message");
    if (message == nullptr || !message->is_string() || message->string().empty()) {
      return InvalidArgumentError(where + ".message must be a non-empty string");
    }
    if (suppressed->boolean()) {
      suppressed_total += 1;
    } else {
      unsuppressed_total += 1;
    }
  }

  const perf::JsonValue* total_suppressed = root.Find("suppressed");
  const perf::JsonValue* total_unsuppressed = root.Find("unsuppressed");
  if (total_suppressed == nullptr || !total_suppressed->is_number() ||
      total_unsuppressed == nullptr || !total_unsuppressed->is_number()) {
    return InvalidArgumentError("lint json: suppressed/unsuppressed totals must be numbers");
  }
  if (total_suppressed->number() != suppressed_total ||
      total_unsuppressed->number() != unsuppressed_total) {
    return InvalidArgumentError(
        "lint json: suppressed/unsuppressed totals disagree with the findings array");
  }
  if (per_check_suppressed != suppressed_total ||
      per_check_unsuppressed != unsuppressed_total) {
    return InvalidArgumentError(
        "lint json: per-check counts disagree with the findings array");
  }
  return Status::Ok();
}

}  // namespace mudi::lint
