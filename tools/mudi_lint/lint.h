// mudi_lint: repo-specific static analysis for the Mudi codebase.
//
// A deliberately small, libclang-free check engine: a C++-aware tokenizer
// (comments and string literals stripped, lines tracked) plus per-file checks
// that enforce repo invariants the compiler and sanitizers cannot see:
//
//   mudi-determinism   no wall-clock / ambient-randomness primitives outside
//                      src/common/rng.h and src/common/wallclock.h. A seeded
//                      run must be byte-identical; rand(), time(),
//                      std::random_device and the std::chrono clocks break
//                      that silently.
//   mudi-fit-thread    no std::thread / std::async / <thread> / <future>
//                      outside src/ml/fit_pool.h, the one sanctioned worker
//                      pool. FitPool's deterministic sharding + fixed-order
//                      reduction is what keeps parallel fits bit-identical;
//                      ad-hoc threads would reintroduce scheduling
//                      nondeterminism invisibly.
//   mudi-status        a call to a Status/StatusOr-returning function whose
//                      result is discarded. Backed by [[nodiscard]] on the
//                      types themselves; the lint also catches call sites in
//                      not-yet-compiled code paths and macros.
//   mudi-float-eq      ==/!= against a floating-point literal. Use
//                      ApproxEq/ExactEq from src/common/float_eq.h so intent
//                      (tolerance vs. sentinel) is explicit.
//   mudi-time-unit     a raw numeric literal >= 1000 passed as a time argument
//                      to Simulator scheduling APIs. Large durations must be
//                      spelled with kMsPerSecond/kMsPerMinute/kMsPerHour or a
//                      named constant so the unit is visible.
//   mudi-include       include hygiene: a .cc file includes its own header
//                      first; headers never contain `using namespace`.
//   mudi-retry         retry/backoff control flow outside src/common/retry.h:
//                      a while/for condition driven by a retry/attempt/backoff
//                      counter (an ad-hoc retry loop), or a Simulator schedule
//                      call whose argument span performs a KvStore control
//                      read (CtrlGet/CtrlList/GetRequired/List) — naked
//                      polling that re-arms itself. All control-plane
//                      re-attempts go through Retrier so backoff is capped,
//                      deterministic, and counted in ctrl.retries.
//
// Suppression: append `// NOLINT(mudi-<check>)` to the offending line or put
// `// NOLINTNEXTLINE(mudi-<check>)` on the line above, with a justification
// comment. Bare `// NOLINT` (no check list) suppresses every check on the
// line. Suppressed findings are still returned (with suppressed=true) so the
// CLI can report counts; only unsuppressed findings fail the build.
#ifndef TOOLS_MUDI_LINT_LINT_H_
#define TOOLS_MUDI_LINT_LINT_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mudi::lint {

enum class Severity {
  kError,    // violates a repo invariant; fails the lint stage
  kWarning,  // style drift; reported but still fails when unsuppressed
};

const char* SeverityName(Severity severity);

struct Finding {
  std::string file;
  int line = 0;
  std::string check;     // e.g. "mudi-determinism"
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;  // an in-scope NOLINT covers this finding

  // "file:line: error: [mudi-check] message" (with a "(suppressed)" suffix).
  std::string ToString() const;
};

// All check ids the engine implements, sorted.
std::vector<std::string> CheckNames();

// Tokenizer output, exposed for tests and future checks.
struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct, kStringLiteral, kCharLiteral };
  Kind kind;
  std::string text;  // literals keep only their quote kind, not their body
  int line = 1;
  bool preprocessor = false;  // token belongs to a preprocessor directive
};

// Tokenizes `content`, stripping comments and literal bodies. NOLINT
// directives found in comments are recorded via `suppressions` (see
// LintFile); tokens never contain comment or string-body text, so banned
// identifiers inside strings do not fire checks.
std::vector<Token> Tokenize(std::string_view content);

// Scans declarations/definitions returning Status or StatusOr<...> and adds
// the bare function names to `out`. Run over every repo file first so
// call-site files can resolve names declared elsewhere.
void CollectStatusFunctions(std::string_view content, std::set<std::string>* out);

struct Options {
  // Function names whose return is Status/StatusOr (from
  // CollectStatusFunctions over the whole repo). "Release", "Validate", ...
  std::set<std::string> status_functions;
  // Restrict to a subset of checks; empty means all.
  std::set<std::string> enabled_checks;
};

// Lints one file. `path` is the repo-relative path (used both for reporting
// and for path-based allowlists: src/common/rng.h, src/common/wallclock.h,
// src/common/float_eq.h). Findings are sorted by line.
std::vector<Finding> LintFile(const std::string& path, std::string_view content,
                              const Options& options);

}  // namespace mudi::lint

#endif  // TOOLS_MUDI_LINT_LINT_H_
