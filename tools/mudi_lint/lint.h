// mudi_lint: repo-specific static analysis for the Mudi codebase.
//
// A deliberately small, libclang-free check engine, now two-pass:
//
//   pass 1  AnalyzeFile() tokenizes each file (comments and string literals
//           stripped, lines tracked) and extracts a FileModel: include
//           directives, MUDI_HOT_PATH regions, annotation lines, and a
//           symbol table of namespace-scope / static-local mutable state and
//           sync-primitive declarations. BuildRepoModel() assembles the
//           per-file models into a RepoModel holding the repo-wide include
//           graph and layer assignment.
//   pass 2  LintFile() runs the per-file checks; LintRepoModel() runs the
//           cross-file checks against the model.
//
// Per-file checks (LintFile):
//
//   mudi-determinism   no wall-clock / ambient-randomness primitives outside
//                      src/common/rng.h and src/common/wallclock.h, and no
//                      raw getenv() outside src/common/env.h. A seeded run
//                      must be byte-identical; rand(), time(),
//                      std::random_device and the std::chrono clocks break
//                      that silently, and unsanctioned env reads hide run
//                      configuration from the replay/shard story.
//   mudi-fit-thread    no std::thread / std::async / <thread> / <future>
//                      outside src/ml/fit_pool.h, the one sanctioned worker
//                      pool. FitPool's deterministic sharding + fixed-order
//                      reduction is what keeps parallel fits bit-identical;
//                      ad-hoc threads would reintroduce scheduling
//                      nondeterminism invisibly.
//   mudi-status        a call to a Status/StatusOr-returning function whose
//                      result is discarded. Backed by [[nodiscard]] on the
//                      types themselves; the lint also catches call sites in
//                      not-yet-compiled code paths and macros.
//   mudi-float-eq      ==/!= against a floating-point literal. Use
//                      ApproxEq/ExactEq from src/common/float_eq.h so intent
//                      (tolerance vs. sentinel) is explicit.
//   mudi-time-unit     a raw numeric literal >= 1000 passed as a time argument
//                      to Simulator scheduling APIs. Large durations must be
//                      spelled with kMsPerSecond/kMsPerMinute/kMsPerHour or a
//                      named constant so the unit is visible.
//   mudi-include       include hygiene: a .cc file includes its own header
//                      first; headers never contain `using namespace`.
//                      FixOwnHeaderFirst() implements `mudi_lint --fix` for
//                      the mechanical own-header-first reordering.
//   mudi-retry         retry/backoff control flow outside src/sim/retry.h:
//                      a while/for condition driven by a retry/attempt/backoff
//                      counter (an ad-hoc retry loop), or a Simulator schedule
//                      call whose argument span performs a KvStore control
//                      read (CtrlGet/CtrlList/GetRequired/List) — naked
//                      polling that re-arms itself. All control-plane
//                      re-attempts go through Retrier so backoff is capped,
//                      deterministic, and counted in ctrl.retries.
//   mudi-trace-sink    decision-trace framing (TraceWriter/EncodeTraceHeader)
//                      outside src/replay/; DecisionRecorder is the one
//                      sanctioned sink.
//
// Cross-file checks (LintRepoModel) — these fence the sharded-simulator
// leap: everything that silently breaks bit-identical distributed
// determinism (hidden shared state, ad-hoc synchronization, layer-crossing
// includes, allocations creeping into the 0-alloc event hot path) is
// invisible to the compiler and only probabilistically visible to TSan,
// so it is fenced statically here instead:
//
//   mudi-layering        src/ is layered
//                          common < telemetry,perf < sim < gpu,workload < ml
//                            < solver < cluster,core,baselines < fault,replay
//                            < exp
//                        and an include must point at the same or a lower
//                        layer; the include graph must also be acyclic.
//   mudi-global-state    namespace-scope / class-static / function-static
//                        mutable state must carry MUDI_SHARD_SHARED("why")
//                        (src/common/thread_annotations.h) on the
//                        declaration line or up to two lines above it. A
//                        shard boundary can only be drawn around state that
//                        is *known*.
//   mudi-sync-primitive  std::mutex / std::atomic / std::condition_variable
//                        (and friends, including their <mutex>/<atomic>/...
//                        headers) only inside the audited allowlist
//                        (logging, FitCache, FitPool, mem_probe/alloc_hook,
//                        thread_annotations), and every declaration there
//                        annotated MUDI_GUARDED_STATE("why").
//   mudi-hot-path-alloc  inside a region bracketed by // MUDI_HOT_PATH and
//                        // MUDI_HOT_PATH_END (to end of file if unclosed),
//                        heap-allocation idioms are flagged: non-placement
//                        `new`, make_unique/make_shared, std::function, a
//                        by-value std::vector/std::string declaration, and
//                        container growth calls (push_back/emplace_back/
//                        push/emplace/insert/resize/reserve/append). This
//                        statically guards the allocation-free steady state
//                        proven at runtime by perf_test's alloc-hook test.
//
// Suppression: append `// NOLINT(mudi-<check>)` to the offending line or put
// `// NOLINTNEXTLINE(mudi-<check>)` on the line above, with a justification
// comment. Bare `// NOLINT` (no check list) suppresses every check on the
// line. Suppressed findings are still returned (with suppressed=true) so the
// CLI can report counts; only unsuppressed findings fail the build.
#ifndef TOOLS_MUDI_LINT_LINT_H_
#define TOOLS_MUDI_LINT_LINT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace mudi::lint {

enum class Severity {
  kError,    // violates a repo invariant; fails the lint stage
  kWarning,  // style drift; reported but still fails when unsuppressed
};

const char* SeverityName(Severity severity);

struct Finding {
  std::string file;
  int line = 0;
  std::string check;     // e.g. "mudi-determinism"
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;  // an in-scope NOLINT covers this finding

  // "file:line: error: [mudi-check] message" (with a "(suppressed)" suffix).
  std::string ToString() const;
};

// All check ids the engine implements, sorted.
std::vector<std::string> CheckNames();

// Tokenizer output, exposed for tests and future checks.
struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct, kStringLiteral, kCharLiteral };
  Kind kind;
  std::string text;  // literals keep only their quote kind, not their body
  int line = 1;
  bool preprocessor = false;  // token belongs to a preprocessor directive
};

// Tokenizes `content`, stripping comments and literal bodies. NOLINT
// directives found in comments are recorded via `suppressions` (see
// LintFile); tokens never contain comment or string-body text, so banned
// identifiers inside strings do not fire checks.
std::vector<Token> Tokenize(std::string_view content);

// Scans declarations/definitions returning Status or StatusOr<...> and adds
// the bare function names to `out`. Run over every repo file first so
// call-site files can resolve names declared elsewhere.
void CollectStatusFunctions(std::string_view content, std::set<std::string>* out);

// Per-line suppressions parsed from comments: line -> suppressed check ids.
// An empty set means every check is suppressed on that line (bare NOLINT).
using SuppressionMap = std::map<int, std::set<std::string>>;

struct IncludeDirective {
  int line = 0;
  std::string path;
  bool quoted = false;
};

// Pass-1 product: everything the cross-file checks need to know about one
// file, with the token stream discarded.
struct FileModel {
  std::string path;
  bool in_src = false;   // repo-relative path starts with "src/"
  std::string src_dir;   // first component under src/ ("common", ...), else ""
  std::vector<IncludeDirective> includes;

  struct StateSymbol {
    enum class Kind { kGlobal, kClassStatic, kStaticLocal };
    int line = 0;
    std::string name;
    Kind kind = Kind::kGlobal;
    bool annotated = false;  // MUDI_SHARD_SHARED on the line or <=2 above
  };
  std::vector<StateSymbol> state_symbols;  // mutable state only

  struct SyncUse {
    enum class Kind { kDeclaration, kUse, kInclude };
    int line = 0;
    std::string token;  // "mutex", "atomic<...>" type name, or header name
    Kind kind = Kind::kUse;
    bool annotated = false;  // MUDI_GUARDED_STATE on the line or <=2 above
  };
  std::vector<SyncUse> sync_uses;

  struct HotAlloc {
    int line = 0;
    std::string what;  // human-readable idiom ("operator new", ...)
  };
  std::vector<HotAlloc> hot_allocs;  // only sites inside hot regions
  // [begin, end] line ranges of // MUDI_HOT_PATH .. // MUDI_HOT_PATH_END.
  std::vector<std::pair<int, int>> hot_regions;

  SuppressionMap suppressions;
};

// Layer index of a first-level src/ directory, or -1 when the directory is
// not in the layer map (a finding: the map must stay exhaustive).
int LayerOf(std::string_view src_dir);
// The full map, sorted by (layer, dir) — exposed for --layers and tests.
const std::vector<std::pair<std::string, int>>& LayerMap();

// Pass 1 over one file.
FileModel AnalyzeFile(const std::string& path, std::string_view content);

struct RepoModel {
  std::vector<FileModel> files;
};
RepoModel BuildRepoModel(std::vector<FileModel> files);

struct Options {
  // Function names whose return is Status/StatusOr (from
  // CollectStatusFunctions over the whole repo). "Release", "Validate", ...
  std::set<std::string> status_functions;
  // Restrict to a subset of checks; empty means all.
  std::set<std::string> enabled_checks;
};

// Pass 2, cross-file: mudi-layering, mudi-global-state, mudi-sync-primitive,
// mudi-hot-path-alloc. Suppressions from each FileModel are applied; findings
// are sorted by (file, line, check).
std::vector<Finding> LintRepoModel(const RepoModel& model, const Options& options);

// Lints one file (per-file checks only). `path` is the repo-relative path
// (used both for reporting and for path-based allowlists: src/common/rng.h,
// src/common/wallclock.h, src/common/env.h, src/common/float_eq.h,
// src/sim/retry.h, src/ml/fit_pool.h). Findings are sorted by line.
std::vector<Finding> LintFile(const std::string& path, std::string_view content,
                              const Options& options);

// --fix support for the mechanical mudi-include own-header-first reordering.
// Returns the rewritten content when `content` is a .cc/.cpp file whose own
// header is included after other includes; std::nullopt when there is
// nothing to fix (so applying the fix twice is a no-op).
struct IncludeFix {
  std::string fixed_content;
  std::string moved_include;  // the include path that was moved
  int from_line = 0;          // 1-based line it was removed from
  int to_line = 0;            // 1-based line it now occupies
};
std::optional<IncludeFix> FixOwnHeaderFirst(const std::string& path,
                                            const std::string& content);

// Schema gate for `mudi_lint --json` output (schema mudi.lint.v1), in the
// same spirit as ValidateBenchThroughputJson: parse with src/perf/json_check
// and verify the document shape, the 12-check catalogue, and that the
// summary counts are consistent with the findings array.
Status ValidateLintJson(const std::string& text);

}  // namespace mudi::lint

#endif  // TOOLS_MUDI_LINT_LINT_H_
