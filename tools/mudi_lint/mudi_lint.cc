// mudi_lint CLI: scans the repo (default: src/ tests/ bench/ tools/
// examples/) and reports repo-invariant violations. Exits non-zero when any unsuppressed
// finding remains — scripts/check.sh runs this as its `== lint ==` stage.
//
// Usage:
//   mudi_lint [--root DIR] [--json] [--check mudi-NAME]... [--list-checks]
//             [--fix] [--validate FILE] [path...]
//
// The run is two-pass: pass 1 reads every file, collects Status-returning
// function names, and builds the repo model (include graph, layer map,
// shared-state symbol table, hot-path regions); pass 2 runs the per-file
// checks plus the cross-file checks (mudi-layering, mudi-global-state,
// mudi-sync-primitive, mudi-hot-path-alloc) against that model.
//
// --fix applies the mechanical own-header-first include reordering in place
// (idempotent; prints one summary line per rewritten file) before linting.
// --validate FILE checks a previously emitted --json report against the
// mudi.lint.v1 schema and exits (0 valid / 1 invalid), the same gate shape
// as `bench_throughput --validate`.
//
// Paths are files or directories relative to --root (default: the current
// directory). See tools/mudi_lint/lint.h for the check catalogue and the
// NOLINT(mudi-<check>) suppression syntax.
#include "tools/mudi_lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool HasLintableExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream os;
  os << in.rdbuf();
  *ok = true;
  return os.str();
}

// JSON string escaping for the --json report.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: mudi_lint [--root DIR] [--json] [--check mudi-NAME]... "
               "[--list-checks] [--fix] [--validate FILE] [path...]\n"
               "default paths: src tests bench tools examples\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  bool fix = false;
  std::string validate_path;
  std::set<std::string> enabled_checks;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--validate" && i + 1 < argc) {
      validate_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      enabled_checks.insert(argv[++i]);
    } else if (arg == "--list-checks") {
      for (const std::string& name : mudi::lint::CheckNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mudi_lint: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (!validate_path.empty()) {
    bool ok = false;
    std::string text = ReadFile(validate_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "mudi_lint: cannot read %s\n", validate_path.c_str());
      return 2;
    }
    mudi::Status status = mudi::lint::ValidateLintJson(text);
    if (!status.ok()) {
      std::fprintf(stderr, "mudi_lint: %s: %s\n", validate_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("mudi_lint: %s: valid mudi.lint.v1\n", validate_path.c_str());
    return 0;
  }

  if (paths.empty()) {
    paths = {"src", "tests", "bench", "tools", "examples"};
  }
  for (const std::string& check : enabled_checks) {
    const auto known = mudi::lint::CheckNames();
    if (std::find(known.begin(), known.end(), check) == known.end()) {
      std::fprintf(stderr, "mudi_lint: unknown check '%s' (see --list-checks)\n",
                   check.c_str());
      return 2;
    }
  }

  const fs::path root_path(root);
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path full = root_path / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end; it != end;
           it.increment(ec)) {
        if (!ec && it->is_regular_file() && HasLintableExtension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      std::fprintf(stderr, "mudi_lint: no such file or directory: %s\n",
                   full.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: read every file, apply --fix rewrites, collect Status-returning
  // function names, and build the per-file models for the cross-file checks.
  mudi::lint::Options options;
  options.enabled_checks = enabled_checks;
  std::vector<std::pair<std::string, std::string>> contents;  // (rel path, text)
  std::vector<mudi::lint::FileModel> models;
  contents.reserve(files.size());
  models.reserve(files.size());
  size_t fixed_files = 0;
  for (const fs::path& file : files) {
    bool ok = false;
    std::string text = ReadFile(file, &ok);
    if (!ok) {
      std::fprintf(stderr, "mudi_lint: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::error_code ec;
    fs::path rel = fs::relative(file, root_path, ec);
    std::string rel_str = ec ? file.string() : rel.generic_string();
    if (fix) {
      auto rewritten = mudi::lint::FixOwnHeaderFirst(rel_str, text);
      if (rewritten.has_value()) {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        if (!out) {
          std::fprintf(stderr, "mudi_lint: cannot write %s\n", file.string().c_str());
          return 2;
        }
        out << rewritten->fixed_content;
        out.close();
        std::printf("mudi_lint: fixed %s: moved \"%s\" from line %d to line %d\n",
                    rel_str.c_str(), rewritten->moved_include.c_str(),
                    rewritten->from_line, rewritten->to_line);
        text = std::move(rewritten->fixed_content);
        ++fixed_files;
      }
    }
    mudi::lint::CollectStatusFunctions(text, &options.status_functions);
    models.push_back(mudi::lint::AnalyzeFile(rel_str, text));
    contents.emplace_back(rel_str, std::move(text));
  }
  if (fix && fixed_files > 0) {
    std::printf("mudi_lint: --fix rewrote %zu file(s)\n", fixed_files);
  }

  // Pass 2: per-file checks, then the cross-file checks on the repo model.
  std::vector<mudi::lint::Finding> findings;
  for (const auto& [rel, text] : contents) {
    std::vector<mudi::lint::Finding> file_findings =
        mudi::lint::LintFile(rel, text, options);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  mudi::lint::RepoModel repo = mudi::lint::BuildRepoModel(std::move(models));
  std::vector<mudi::lint::Finding> cross = mudi::lint::LintRepoModel(repo, options);
  findings.insert(findings.end(), cross.begin(), cross.end());
  std::sort(findings.begin(), findings.end(),
            [](const mudi::lint::Finding& a, const mudi::lint::Finding& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.check < b.check;
            });

  size_t suppressed = 0;
  size_t unsuppressed = 0;
  std::map<std::string, std::pair<size_t, size_t>> per_check;  // (unsup, sup)
  for (const std::string& name : mudi::lint::CheckNames()) {
    per_check[name] = {0, 0};
  }
  for (const auto& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      ++per_check[f.check].second;
    } else {
      ++unsuppressed;
      ++per_check[f.check].first;
    }
  }

  if (json) {
    std::printf("{\n  \"schema\": \"mudi.lint.v1\",\n  \"files_scanned\": %zu,\n",
                contents.size());
    std::printf("  \"checks\": [");
    bool first = true;
    for (const auto& [name, counts] : per_check) {
      std::printf("%s\n    {\"name\": \"%s\", \"unsuppressed\": %zu, \"suppressed\": %zu}",
                  first ? "" : ",", name.c_str(), counts.first, counts.second);
      first = false;
    }
    std::printf("\n  ],\n  \"findings\": [");
    first = true;
    for (const auto& f : findings) {
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, \"check\": \"%s\", "
                  "\"severity\": \"%s\", \"suppressed\": %s, \"message\": \"%s\"}",
                  first ? "" : ",", JsonEscape(f.file).c_str(), f.line, f.check.c_str(),
                  mudi::lint::SeverityName(f.severity), f.suppressed ? "true" : "false",
                  JsonEscape(f.message).c_str());
      first = false;
    }
    std::printf("\n  ],\n  \"suppressed\": %zu,\n  \"unsuppressed\": %zu\n}\n", suppressed,
                unsuppressed);
  } else {
    for (const auto& f : findings) {
      if (!f.suppressed) {
        std::printf("%s\n", f.ToString().c_str());
      }
    }
    std::printf("mudi_lint: %zu file(s) scanned, %zu finding(s) (%zu suppressed)\n",
                contents.size(), unsuppressed + suppressed, suppressed);
    for (const auto& [name, counts] : per_check) {
      if (counts.first + counts.second > 0) {
        std::printf("mudi_lint:   %-21s %zu unsuppressed, %zu suppressed\n", name.c_str(),
                    counts.first, counts.second);
      }
    }
  }
  return unsuppressed == 0 ? 0 : 1;
}
