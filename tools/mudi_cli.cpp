// mudi_cli — run a multiplexing experiment from the command line.
//
// Examples:
//   mudi_cli --policy Mudi --nodes 3 --gpus 4 --tasks 120
//   mudi_cli --policy MuxFlow --tasks 300 --queue SJF --load 2.0 --csv out.csv
//   mudi_cli --policy Mudi --nodes 250 --gpus 4 --tasks 2000 --tick-ms 20
//
// Prints the headline metrics; --csv appends one summary row per run, so a
// shell loop over policies/seeds builds a results table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include "src/common/float_eq.h"
#include <fstream>
#include <string>

#include "src/common/table.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/perf/perf_collector.h"
#include "src/perf/perf_report.h"

namespace {

struct CliArgs {
  std::string policy = "Mudi";
  int nodes = 3;
  int gpus = 4;
  size_t tasks = 120;
  uint64_t seed = 5;
  std::string queue = "FCFS";
  double load = 1.0;
  double compression = 800.0;
  double tick_ms = 0.0;
  bool chaos = false;
  bool ctrl_chaos = false;
  std::string csv;
  bool util_series = false;
  std::string trace_file;
  size_t trace_ring = 0;
  std::string metrics_json;
  std::string metrics_csv;
  std::string perf_report;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: mudi_cli [options]\n"
      "  --policy NAME      Mudi | Mudi-more | Mudi-cluster-only | Mudi-device-only |\n"
      "                     GSLICE | gpulets | MuxFlow | Random | Optimal   (default Mudi)\n"
      "  --nodes N          cluster nodes (default 3)\n"
      "  --gpus N           GPUs per node (default 4)\n"
      "  --tasks N          training tasks to replay (default 120)\n"
      "  --seed S           RNG seed (default 5)\n"
      "  --queue P          FCFS | SJF | Priority | FairShare (default FCFS)\n"
      "  --load F           QPS scale factor (default 1.0)\n"
      "  --compression F    duration compression (default 800)\n"
      "  --tick-ms F        arrival cohort tick override (default auto)\n"
      "  --chaos            arm the standard fault schedule (StandardChaosPlan)\n"
      "  --ctrl-chaos       arm the standard control-plane fault schedule\n"
      "                     (StandardControlChaosPlan: degraded KvStore watches,\n"
      "                     partitions, watch loss, scheduler crashes)\n"
      "  --util             record the utilization time series\n"
      "  --csv FILE         append a summary row to FILE (with header if new)\n"
      "  --trace FILE       write an event trace (.json = Chrome trace, else binary)\n"
      "  --trace-ring N     bound the trace to the newest N events (0 = unbounded)\n"
      "  --metrics-json F   append a telemetry metrics JSON line to F\n"
      "  --metrics-csv F    write the telemetry snapshot time series to F\n"
      "  --perf-report F    write a src/perf self-profiling report (JSON) to F\n"
      "                     ('-' prints to stdout); observe-only, results unchanged\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      args->help = true;
      return true;
    } else if (flag == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      args->policy = v;
    } else if (flag == "--nodes") {
      const char* v = next();
      if (v == nullptr) return false;
      args->nodes = std::atoi(v);
    } else if (flag == "--gpus") {
      const char* v = next();
      if (v == nullptr) return false;
      args->gpus = std::atoi(v);
    } else if (flag == "--tasks") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tasks = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--queue") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queue = v;
    } else if (flag == "--load") {
      const char* v = next();
      if (v == nullptr) return false;
      args->load = std::atof(v);
    } else if (flag == "--compression") {
      const char* v = next();
      if (v == nullptr) return false;
      args->compression = std::atof(v);
    } else if (flag == "--tick-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tick_ms = std::atof(v);
    } else if (flag == "--chaos") {
      args->chaos = true;
    } else if (flag == "--ctrl-chaos") {
      args->ctrl_chaos = true;
    } else if (flag == "--util") {
      args->util_series = true;
    } else if (flag == "--csv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->csv = v;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_file = v;
    } else if (flag == "--trace-ring") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_ring = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_json = v;
    } else if (flag == "--metrics-csv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_csv = v;
    } else if (flag == "--perf-report") {
      const char* v = next();
      if (v == nullptr) return false;
      args->perf_report = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

mudi::QueuePolicy ParseQueue(const std::string& name) {
  if (name == "SJF") {
    return mudi::QueuePolicy::kShortestJobFirst;
  }
  if (name == "Priority") {
    return mudi::QueuePolicy::kPriority;
  }
  if (name == "FairShare") {
    return mudi::QueuePolicy::kFairShare;
  }
  return mudi::QueuePolicy::kFcfs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mudi;
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 1;
  }
  if (args.help) {
    PrintUsage();
    return 0;
  }

  ExperimentOptions options = PhysicalClusterOptions(args.tasks, args.seed);
  options.num_nodes = args.nodes;
  options.gpus_per_node = args.gpus;
  options.trace.duration_compression = args.compression;
  options.queue_policy = ParseQueue(args.queue);
  options.record_util_series = args.util_series;
  if (args.tick_ms > 0.0) {
    options.arrival_tick_ms = args.tick_ms;
  }
  if (!ExactEq(args.load, 1.0)) {
    ScaleQps(options, args.load);
  }
  if (args.chaos) {
    options.fault_plan =
        StandardChaosPlan(args.nodes * args.gpus, args.nodes);
  }
  if (args.ctrl_chaos) {
    options.ctrl_fault_plan = StandardControlChaosPlan();
  }
  if (!args.trace_file.empty() || !args.metrics_json.empty() || !args.metrics_csv.empty()) {
    options.telemetry.enabled = true;
    options.telemetry.trace_file = args.trace_file;
    options.telemetry.trace_ring_capacity = args.trace_ring;
    options.telemetry.metrics_json = args.metrics_json;
    options.telemetry.metrics_csv = args.metrics_csv;
  }

  perf::PerfCollector perf_collector;
  if (!args.perf_report.empty()) {
    options.perf = &perf_collector;
  }

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(args.policy, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  if (!args.perf_report.empty()) {
    perf::PerfReport report = perf::PerfReport::FromCollector(perf_collector);
    if (args.perf_report == "-") {
      std::printf("%s\n", report.ToJsonString().c_str());
    } else {
      std::ofstream out(args.perf_report);
      out << report.ToJsonString() << '\n';
    }
  }

  std::printf("== mudi_cli: %s on %d nodes x %d GPUs, %zu tasks, queue=%s, load=%.1fx ==\n",
              result.policy_name.c_str(), args.nodes, args.gpus, args.tasks,
              args.queue.c_str(), args.load);
  Table table({"metric", "value"});
  table.AddRow({"completed tasks", std::to_string(result.CompletedTasks()) + "/" +
                                       std::to_string(result.tasks.size())});
  table.AddRow({"SLO violation rate", Table::Pct(result.OverallSloViolationRate(), 2)});
  table.AddRow({"mean CT (s)", Table::Num(result.MeanCtMs() / kMsPerSecond, 1)});
  table.AddRow({"P95 CT (s)", Table::Num(result.P95CtMs() / kMsPerSecond, 1)});
  table.AddRow({"mean wait (s)", Table::Num(result.MeanWaitingMs() / kMsPerSecond, 1)});
  table.AddRow({"makespan (s)", Table::Num(result.makespan_ms / kMsPerSecond, 1)});
  table.AddRow({"avg SM util", Table::Pct(result.avg_sm_util, 1)});
  table.AddRow({"avg mem util", Table::Pct(result.avg_mem_util, 1)});
  table.AddRow({"swap events", std::to_string(result.swap_events)});
  std::printf("%s", table.ToString().c_str());
  for (const auto& [name, metrics] : result.per_service) {
    std::printf("  %-10s SLO violation %s  (mean latency %.1f ms)\n", name.c_str(),
                Table::Pct(metrics.slo_violation_rate(), 2).c_str(), metrics.mean_latency_ms);
  }
  if (result.faults.any()) {
    const FaultMetrics& fm = result.faults;
    std::printf("-- faults --\n");
    Table ft({"metric", "value"});
    ft.AddRow({"faults injected", std::to_string(fm.faults_injected)});
    ft.AddRow({"device failures / recoveries", std::to_string(fm.device_failures) + " / " +
                                                   std::to_string(fm.devices_recovered)});
    ft.AddRow({"total downtime (s)", Table::Num(fm.total_downtime_ms / kMsPerSecond, 1)});
    ft.AddRow({"trainings displaced / replaced", std::to_string(fm.trainings_displaced) + " / " +
                                                     std::to_string(fm.trainings_replaced)});
    ft.AddRow({"mean re-place latency (s)",
               Table::Num(fm.mean_replacement_ms / kMsPerSecond, 1)});
    ft.AddRow({"work lost (full-GPU s)", Table::Num(fm.work_lost_ms / kMsPerSecond, 1)});
    ft.AddRow({"requests failed / rerouted",
               Table::Num(fm.failed_requests, 0) + " / " + Table::Num(fm.rerouted_requests, 0)});
    ft.AddRow({"goodput (req/s)", Table::Num(fm.goodput_rps, 1)});
    ft.AddRow({"violated windows (failure/load)",
               std::to_string(result.TotalWindowsViolatedFailure()) + " / " +
                   std::to_string(result.TotalWindowsViolatedLoad())});
    std::printf("%s", ft.ToString().c_str());
  }
  if (result.ctrl.any()) {
    const ControlMetrics& cm = result.ctrl;
    std::printf("-- control plane --\n");
    Table ct({"metric", "value"});
    ct.AddRow({"ctrl events injected", std::to_string(cm.events_injected)});
    ct.AddRow({"kv partitions / watch losses", std::to_string(cm.kv_partitions) + " / " +
                                                   std::to_string(cm.watch_losses)});
    ct.AddRow({"scheduler crashes / recoveries", std::to_string(cm.scheduler_crashes) + " / " +
                                                     std::to_string(cm.scheduler_recoveries)});
    ct.AddRow({"mean recovery (s)", Table::Num(cm.MeanRecoveryMs() / kMsPerSecond, 2)});
    ct.AddRow({"retries (sanctioned backoff)", std::to_string(cm.retries)});
    ct.AddRow({"stale / unavailable reads",
               std::to_string(cm.stale_reads) + " / " + std::to_string(cm.unavailable_reads)});
    ct.AddRow({"watch delivered / dropped / lost",
               std::to_string(cm.watch_delivered) + " / " + std::to_string(cm.watch_dropped) +
                   " / " + std::to_string(cm.watch_lost_partition)});
    ct.AddRow({"configs published / applied / lost",
               std::to_string(cm.configs_published) + " / " + std::to_string(cm.configs_applied) +
                   " / " + std::to_string(cm.configs_lost())});
    ct.AddRow({"stale recovery-scan entries", std::to_string(cm.stale_scan_entries)});
    std::printf("%s", ct.ToString().c_str());
  }

  if (!args.csv.empty()) {
    bool fresh = !std::ifstream(args.csv).good();
    std::ofstream out(args.csv, std::ios::app);
    if (fresh) {
      out << "policy,nodes,gpus,tasks,seed,queue,load,slo_violation,mean_ct_s,mean_wait_s,"
             "makespan_s,avg_sm_util,avg_mem_util\n";
    }
    out << result.policy_name << ',' << args.nodes << ',' << args.gpus << ',' << args.tasks
        << ',' << args.seed << ',' << args.queue << ',' << args.load << ','
        << result.OverallSloViolationRate() << ',' << result.MeanCtMs() / kMsPerSecond << ','
        << result.MeanWaitingMs() / kMsPerSecond << ',' << result.makespan_ms / kMsPerSecond
        << ',' << result.avg_sm_util << ',' << result.avg_mem_util << '\n';
  }
  return 0;
}
