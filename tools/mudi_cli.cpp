// mudi_cli — run a multiplexing experiment from the command line.
//
// Examples:
//   mudi_cli --policy Mudi --nodes 3 --gpus 4 --tasks 120
//   mudi_cli --policy MuxFlow --tasks 300 --queue SJF --load 2.0 --csv out.csv
//   mudi_cli --policy Mudi --nodes 250 --gpus 4 --tasks 2000 --tick-ms 20
//
// Prints the headline metrics; --csv appends one summary row per run, so a
// shell loop over policies/seeds builds a results table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include "src/common/float_eq.h"
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "src/common/table.h"
#include "src/common/wallclock.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/perf/perf_collector.h"
#include "src/perf/perf_report.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/replay_run.h"
#include "src/replay/replay_source.h"

namespace {

struct CliArgs {
  std::string policy = "Mudi";
  int nodes = 3;
  int gpus = 4;
  size_t tasks = 120;
  uint64_t seed = 5;
  std::string queue = "FCFS";
  double load = 1.0;
  double compression = 800.0;
  double tick_ms = 0.0;
  bool chaos = false;
  bool ctrl_chaos = false;
  std::string csv;
  bool util_series = false;
  std::string trace_file;
  size_t trace_ring = 0;
  std::string metrics_json;
  std::string metrics_csv;
  std::string perf_report;
  std::string record_file;
  std::string replay_file;
  std::string replay_verify_file;
  std::string whatif_file;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: mudi_cli [options]\n"
      "  --policy NAME      Mudi | Mudi-more | Mudi-cluster-only | Mudi-device-only |\n"
      "                     GSLICE | gpulets | MuxFlow | Random | Optimal   (default Mudi)\n"
      "  --nodes N          cluster nodes (default 3)\n"
      "  --gpus N           GPUs per node (default 4)\n"
      "  --tasks N          training tasks to replay (default 120)\n"
      "  --seed S           RNG seed (default 5)\n"
      "  --queue P          FCFS | SJF | Priority | FairShare (default FCFS)\n"
      "  --load F           QPS scale factor (default 1.0)\n"
      "  --compression F    duration compression (default 800)\n"
      "  --tick-ms F        arrival cohort tick override (default auto)\n"
      "  --chaos            arm the standard fault schedule (StandardChaosPlan)\n"
      "  --ctrl-chaos       arm the standard control-plane fault schedule\n"
      "                     (StandardControlChaosPlan: degraded KvStore watches,\n"
      "                     partitions, watch loss, scheduler crashes)\n"
      "  --util             record the utilization time series\n"
      "  --csv FILE         append a summary row to FILE (with header if new)\n"
      "  --trace FILE       write an event trace (.json = Chrome trace, else binary)\n"
      "  --trace-ring N     bound the trace to the newest N events (0 = unbounded)\n"
      "  --metrics-json F   append a telemetry metrics JSON line to F\n"
      "  --metrics-csv F    write the telemetry snapshot time series to F\n"
      "  --perf-report F    write a src/perf self-profiling report (JSON) to F\n"
      "                     ('-' prints to stdout); observe-only, results unchanged\n"
      "  --record F         record a decision trace (mudi.decision_trace.v1) to F;\n"
      "                     observe-only, results unchanged\n"
      "  --replay F         fidelity replay: run the full simulation but serve curves,\n"
      "                     probes, and predictions from the trace at F (no re-profiling)\n"
      "  --replay-verify F  record the run to F, replay it, and assert byte-identical\n"
      "                     metrics plus >=90%% profiler-invocation skip (exit 1 on fail)\n"
      "  --whatif F         counterfactual replay: drive --policy over the decision\n"
      "                     stream recorded at F with NO simulation; reports the first\n"
      "                     divergent decision (--record writes the what-if trace)\n");
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      args->help = true;
      return true;
    } else if (flag == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      args->policy = v;
    } else if (flag == "--nodes") {
      const char* v = next();
      if (v == nullptr) return false;
      args->nodes = std::atoi(v);
    } else if (flag == "--gpus") {
      const char* v = next();
      if (v == nullptr) return false;
      args->gpus = std::atoi(v);
    } else if (flag == "--tasks") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tasks = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--queue") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queue = v;
    } else if (flag == "--load") {
      const char* v = next();
      if (v == nullptr) return false;
      args->load = std::atof(v);
    } else if (flag == "--compression") {
      const char* v = next();
      if (v == nullptr) return false;
      args->compression = std::atof(v);
    } else if (flag == "--tick-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tick_ms = std::atof(v);
    } else if (flag == "--chaos") {
      args->chaos = true;
    } else if (flag == "--ctrl-chaos") {
      args->ctrl_chaos = true;
    } else if (flag == "--util") {
      args->util_series = true;
    } else if (flag == "--csv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->csv = v;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_file = v;
    } else if (flag == "--trace-ring") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_ring = static_cast<size_t>(std::atoll(v));
    } else if (flag == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_json = v;
    } else if (flag == "--metrics-csv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_csv = v;
    } else if (flag == "--perf-report") {
      const char* v = next();
      if (v == nullptr) return false;
      args->perf_report = v;
    } else if (flag == "--record") {
      const char* v = next();
      if (v == nullptr) return false;
      args->record_file = v;
    } else if (flag == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replay_file = v;
    } else if (flag == "--replay-verify") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replay_verify_file = v;
    } else if (flag == "--whatif") {
      const char* v = next();
      if (v == nullptr) return false;
      args->whatif_file = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

mudi::QueuePolicy ParseQueue(const std::string& name) {
  if (name == "SJF") {
    return mudi::QueuePolicy::kShortestJobFirst;
  }
  if (name == "Priority") {
    return mudi::QueuePolicy::kPriority;
  }
  if (name == "FairShare") {
    return mudi::QueuePolicy::kFairShare;
  }
  return mudi::QueuePolicy::kFcfs;
}

mudi::replay::TraceHeader MakeTraceHeader(const mudi::ExperimentOptions& options,
                                          const std::string& policy, const std::string& mode,
                                          const std::string& base_policy) {
  mudi::replay::TraceHeader header;
  header.policy = policy;
  header.mode = mode;
  header.base_policy = base_policy;
  header.seed = options.seed;
  header.oracle_seed = options.oracle_seed;
  header.num_devices = static_cast<uint32_t>(options.num_nodes * options.gpus_per_node);
  header.num_services = static_cast<uint32_t>(options.num_services);
  header.service_offset = static_cast<uint32_t>(options.service_offset);
  return header;
}

// Every headline metric, rendered with %.17g so the string round-trips the
// double bits exactly: equal fingerprints == byte-identical results.
std::string MetricsFingerprint(const mudi::ExperimentResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "makespan=%.17g slo=%.17g mean_ct=%.17g p95_ct=%.17g wait=%.17g sm=%.17g "
                "mem=%.17g swap_events=%zu swap_mb=%.17g completed=%zu",
                r.makespan_ms, r.OverallSloViolationRate(), r.MeanCtMs(), r.P95CtMs(),
                r.MeanWaitingMs(), r.avg_sm_util, r.avg_mem_util, r.swap_events, r.swap_total_mb,
                r.CompletedTasks());
  std::string out = buf;
  for (const auto& [name, m] : r.per_service) {
    std::snprintf(buf, sizeof(buf), " %s=%zu/%zu/%zu/%.17g/%.17g", name.c_str(),
                  m.windows_violated, m.windows_total, m.windows_violated_failure,
                  m.mean_latency_ms, m.served_requests);
    out += buf;
  }
  return out;
}

mudi::ExperimentResult RunOnce(const mudi::ExperimentOptions& options,
                               const std::string& policy_name) {
  mudi::PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = mudi::MakePolicy(policy_name, profiling_oracle);
  mudi::ClusterExperiment experiment(options, policy.get());
  return experiment.Run();
}

// --replay-verify: record a live run, replay the trace through a fresh
// policy, and prove (a) byte-identical headline metrics and (b) that replay
// actually skipped the profiler (>=90% of oracle/modeler lookups served from
// the trace — in practice 100%, since a fidelity replay asks exactly the
// recorded questions).
int RunReplayVerify(const mudi::ExperimentOptions& base_options, const CliArgs& args) {
  using namespace mudi;
  auto recorder_or = replay::DecisionRecorder::Create(
      args.replay_verify_file, MakeTraceHeader(base_options, args.policy, "record", ""));
  if (!recorder_or.ok()) {
    std::fprintf(stderr, "replay-verify: %s\n", recorder_or.status().message().c_str());
    return 1;
  }
  std::unique_ptr<replay::DecisionRecorder> recorder = std::move(*recorder_or);
  ExperimentOptions record_options = base_options;
  record_options.recorder = recorder.get();
  ExperimentResult live = RunOnce(record_options, args.policy);
  Status finish = recorder->Close();
  if (!finish.ok()) {
    std::fprintf(stderr, "replay-verify: %s\n", finish.message().c_str());
    return 1;
  }
  std::printf("recorded: %llu decisions, %llu observations -> %s\n",
              static_cast<unsigned long long>(recorder->decisions_recorded()),
              static_cast<unsigned long long>(recorder->observations_recorded()),
              args.replay_verify_file.c_str());

  auto source_or = replay::ReplaySource::Load(args.replay_verify_file);
  if (!source_or.ok()) {
    std::fprintf(stderr, "replay-verify: %s\n", source_or.status().message().c_str());
    return 1;
  }
  replay::ReplaySource source = std::move(*source_or);
  ExperimentOptions replay_options = base_options;
  replay_options.replay = &source;
  ExperimentResult replayed = RunOnce(replay_options, args.policy);

  uint64_t lookups = source.hits() + source.sticky_hits() + source.misses();
  double skip_rate =
      lookups > 0 ? static_cast<double>(source.hits() + source.sticky_hits()) /
                        static_cast<double>(lookups)
                  : 0.0;
  std::printf("replay: %llu trace hits, %llu sticky, %llu misses (%.1f%% profiler skip)\n",
              static_cast<unsigned long long>(source.hits()),
              static_cast<unsigned long long>(source.sticky_hits()),
              static_cast<unsigned long long>(source.misses()), skip_rate * 100.0);

  bool ok = true;
  std::string live_fp = MetricsFingerprint(live);
  std::string replay_fp = MetricsFingerprint(replayed);
  if (live_fp != replay_fp) {
    std::fprintf(stderr,
                 "replay-verify: FAIL metrics diverge\n  live:   %s\n  replay: %s\n",
                 live_fp.c_str(), replay_fp.c_str());
    ok = false;
  }
  if (lookups == 0 || skip_rate < 0.9) {
    std::fprintf(stderr, "replay-verify: FAIL profiler skip %.1f%% < 90%% (%llu lookups)\n",
                 skip_rate * 100.0, static_cast<unsigned long long>(lookups));
    ok = false;
  }
  if (ok) {
    std::printf("replay-verify: PASS byte-identical metrics, %.1f%% profiler skip\n",
                skip_rate * 100.0);
  }
  return ok ? 0 : 1;
}

// --whatif: counterfactual replay of a recorded decision stream through
// --policy, no simulation at all.
int RunWhatIfMode(const CliArgs& args) {
  using namespace mudi;
  auto source_or = replay::ReplaySource::Load(args.whatif_file);
  if (!source_or.ok()) {
    std::fprintf(stderr, "whatif: %s\n", source_or.status().message().c_str());
    return 1;
  }
  replay::ReplaySource source = std::move(*source_or);
  const replay::TraceHeader& header = source.trace().header;

  PerfOracle profiling_oracle(header.oracle_seed);
  auto policy = MakePolicy(args.policy, profiling_oracle);

  std::unique_ptr<replay::DecisionRecorder> whatif_recorder;
  if (!args.record_file.empty()) {
    replay::TraceHeader out = header;
    out.policy = policy->name();
    out.mode = "counterfactual";
    out.base_policy = header.policy;
    auto rec_or = replay::DecisionRecorder::Create(args.record_file, out);
    if (!rec_or.ok()) {
      std::fprintf(stderr, "whatif: %s\n", rec_or.status().message().c_str());
      return 1;
    }
    whatif_recorder = std::move(*rec_or);
  }

  replay::WhatIfOptions options;
  options.recorder = whatif_recorder.get();
  WallTimer timer;
  auto result_or = replay::RunWhatIf(source, *policy, options);
  double wall_ms = timer.ElapsedMs();
  if (!result_or.ok()) {
    std::fprintf(stderr, "whatif: %s\n", result_or.status().message().c_str());
    return 1;
  }
  const replay::WhatIfResult& result = *result_or;
  if (whatif_recorder != nullptr) {
    Status finish = whatif_recorder->Close();
    if (!finish.ok()) {
      std::fprintf(stderr, "whatif: %s\n", finish.message().c_str());
      return 1;
    }
  }

  std::printf("== whatif: %s over a %s trace of %s ==\n", policy->name().c_str(),
              header.mode.c_str(), header.policy.c_str());
  std::printf("decisions replayed: %llu in %.1f ms (no simulation)\n",
              static_cast<unsigned long long>(result.decisions_replayed), wall_ms);
  uint64_t lookups = result.probe_hits + result.probe_sticky_hits + result.probe_misses;
  if (lookups > 0) {
    std::printf("probe lookups: %llu hits, %llu sticky, %llu misses (%.1f%% from trace)\n",
                static_cast<unsigned long long>(result.probe_hits),
                static_cast<unsigned long long>(result.probe_sticky_hits),
                static_cast<unsigned long long>(result.probe_misses),
                100.0 * static_cast<double>(result.probe_hits + result.probe_sticky_hits) /
                    static_cast<double>(lookups));
  }
  if (result.diverged) {
    std::printf("diverged at %llu of %llu decisions\nfirst divergence: %s\n",
                static_cast<unsigned long long>(result.diverged_decisions),
                static_cast<unsigned long long>(result.decisions_replayed),
                result.first_divergence_detail.c_str());
  } else {
    std::printf("no divergence: %s reproduces every recorded decision\n",
                policy->name().c_str());
  }
  if (whatif_recorder != nullptr) {
    std::printf("what-if trace written to %s (diff with tools/trace_diff)\n",
                args.record_file.c_str());
  }
  std::printf("whatif_wall_ms=%.3f\n", wall_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mudi;
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 1;
  }
  if (args.help) {
    PrintUsage();
    return 0;
  }

  ExperimentOptions options = PhysicalClusterOptions(args.tasks, args.seed);
  options.num_nodes = args.nodes;
  options.gpus_per_node = args.gpus;
  options.trace.duration_compression = args.compression;
  options.queue_policy = ParseQueue(args.queue);
  options.record_util_series = args.util_series;
  if (args.tick_ms > 0.0) {
    options.arrival_tick_ms = args.tick_ms;
  }
  if (!ExactEq(args.load, 1.0)) {
    ScaleQps(options, args.load);
  }
  if (args.chaos) {
    options.fault_plan =
        StandardChaosPlan(args.nodes * args.gpus, args.nodes);
  }
  if (args.ctrl_chaos) {
    options.ctrl_fault_plan = StandardControlChaosPlan();
  }
  if (!args.trace_file.empty() || !args.metrics_json.empty() || !args.metrics_csv.empty()) {
    options.telemetry.enabled = true;
    options.telemetry.trace_file = args.trace_file;
    options.telemetry.trace_ring_capacity = args.trace_ring;
    options.telemetry.metrics_json = args.metrics_json;
    options.telemetry.metrics_csv = args.metrics_csv;
  }

  perf::PerfCollector perf_collector;
  if (!args.perf_report.empty()) {
    options.perf = &perf_collector;
  }

  if (!args.whatif_file.empty()) {
    return RunWhatIfMode(args);
  }
  if (!args.replay_verify_file.empty()) {
    return RunReplayVerify(options, args);
  }

  std::unique_ptr<replay::DecisionRecorder> recorder;
  if (!args.record_file.empty()) {
    auto recorder_or = replay::DecisionRecorder::Create(
        args.record_file, MakeTraceHeader(options, args.policy, "record", ""));
    if (!recorder_or.ok()) {
      std::fprintf(stderr, "record: %s\n", recorder_or.status().message().c_str());
      return 1;
    }
    recorder = std::move(*recorder_or);
    options.recorder = recorder.get();
  }
  std::optional<replay::ReplaySource> replay_source;
  if (!args.replay_file.empty()) {
    auto source_or = replay::ReplaySource::Load(args.replay_file);
    if (!source_or.ok()) {
      std::fprintf(stderr, "replay: %s\n", source_or.status().message().c_str());
      return 1;
    }
    replay_source.emplace(std::move(*source_or));
    options.replay = &*replay_source;
  }

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(args.policy, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  if (recorder != nullptr) {
    Status finish = recorder->Close();
    if (!finish.ok()) {
      std::fprintf(stderr, "record: %s\n", finish.message().c_str());
      return 1;
    }
    std::printf("recorded: %llu decisions, %llu observations -> %s\n",
                static_cast<unsigned long long>(recorder->decisions_recorded()),
                static_cast<unsigned long long>(recorder->observations_recorded()),
                args.record_file.c_str());
  }
  if (replay_source.has_value()) {
    std::printf("replay: %llu trace hits, %llu sticky, %llu misses\n",
                static_cast<unsigned long long>(replay_source->hits()),
                static_cast<unsigned long long>(replay_source->sticky_hits()),
                static_cast<unsigned long long>(replay_source->misses()));
  }

  if (!args.perf_report.empty()) {
    perf::PerfReport report = perf::PerfReport::FromCollector(perf_collector);
    if (args.perf_report == "-") {
      std::printf("%s\n", report.ToJsonString().c_str());
    } else {
      std::ofstream out(args.perf_report);
      out << report.ToJsonString() << '\n';
    }
  }

  std::printf("== mudi_cli: %s on %d nodes x %d GPUs, %zu tasks, queue=%s, load=%.1fx ==\n",
              result.policy_name.c_str(), args.nodes, args.gpus, args.tasks,
              args.queue.c_str(), args.load);
  Table table({"metric", "value"});
  table.AddRow({"completed tasks", std::to_string(result.CompletedTasks()) + "/" +
                                       std::to_string(result.tasks.size())});
  table.AddRow({"SLO violation rate", Table::Pct(result.OverallSloViolationRate(), 2)});
  table.AddRow({"mean CT (s)", Table::Num(result.MeanCtMs() / kMsPerSecond, 1)});
  table.AddRow({"P95 CT (s)", Table::Num(result.P95CtMs() / kMsPerSecond, 1)});
  table.AddRow({"mean wait (s)", Table::Num(result.MeanWaitingMs() / kMsPerSecond, 1)});
  table.AddRow({"makespan (s)", Table::Num(result.makespan_ms / kMsPerSecond, 1)});
  table.AddRow({"avg SM util", Table::Pct(result.avg_sm_util, 1)});
  table.AddRow({"avg mem util", Table::Pct(result.avg_mem_util, 1)});
  table.AddRow({"swap events", std::to_string(result.swap_events)});
  std::printf("%s", table.ToString().c_str());
  for (const auto& [name, metrics] : result.per_service) {
    std::printf("  %-10s SLO violation %s  (mean latency %.1f ms)\n", name.c_str(),
                Table::Pct(metrics.slo_violation_rate(), 2).c_str(), metrics.mean_latency_ms);
  }
  if (result.faults.any()) {
    const FaultMetrics& fm = result.faults;
    std::printf("-- faults --\n");
    Table ft({"metric", "value"});
    ft.AddRow({"faults injected", std::to_string(fm.faults_injected)});
    ft.AddRow({"device failures / recoveries", std::to_string(fm.device_failures) + " / " +
                                                   std::to_string(fm.devices_recovered)});
    ft.AddRow({"total downtime (s)", Table::Num(fm.total_downtime_ms / kMsPerSecond, 1)});
    ft.AddRow({"trainings displaced / replaced", std::to_string(fm.trainings_displaced) + " / " +
                                                     std::to_string(fm.trainings_replaced)});
    ft.AddRow({"mean re-place latency (s)",
               Table::Num(fm.mean_replacement_ms / kMsPerSecond, 1)});
    ft.AddRow({"work lost (full-GPU s)", Table::Num(fm.work_lost_ms / kMsPerSecond, 1)});
    ft.AddRow({"requests failed / rerouted",
               Table::Num(fm.failed_requests, 0) + " / " + Table::Num(fm.rerouted_requests, 0)});
    ft.AddRow({"goodput (req/s)", Table::Num(fm.goodput_rps, 1)});
    ft.AddRow({"violated windows (failure/load)",
               std::to_string(result.TotalWindowsViolatedFailure()) + " / " +
                   std::to_string(result.TotalWindowsViolatedLoad())});
    std::printf("%s", ft.ToString().c_str());
  }
  if (result.ctrl.any()) {
    const ControlMetrics& cm = result.ctrl;
    std::printf("-- control plane --\n");
    Table ct({"metric", "value"});
    ct.AddRow({"ctrl events injected", std::to_string(cm.events_injected)});
    ct.AddRow({"kv partitions / watch losses", std::to_string(cm.kv_partitions) + " / " +
                                                   std::to_string(cm.watch_losses)});
    ct.AddRow({"scheduler crashes / recoveries", std::to_string(cm.scheduler_crashes) + " / " +
                                                     std::to_string(cm.scheduler_recoveries)});
    ct.AddRow({"mean recovery (s)", Table::Num(cm.MeanRecoveryMs() / kMsPerSecond, 2)});
    ct.AddRow({"retries (sanctioned backoff)", std::to_string(cm.retries)});
    ct.AddRow({"stale / unavailable reads",
               std::to_string(cm.stale_reads) + " / " + std::to_string(cm.unavailable_reads)});
    ct.AddRow({"watch delivered / dropped / lost",
               std::to_string(cm.watch_delivered) + " / " + std::to_string(cm.watch_dropped) +
                   " / " + std::to_string(cm.watch_lost_partition)});
    ct.AddRow({"configs published / applied / lost",
               std::to_string(cm.configs_published) + " / " + std::to_string(cm.configs_applied) +
                   " / " + std::to_string(cm.configs_lost())});
    ct.AddRow({"stale recovery-scan entries", std::to_string(cm.stale_scan_entries)});
    std::printf("%s", ct.ToString().c_str());
  }

  if (!args.csv.empty()) {
    bool fresh = !std::ifstream(args.csv).good();
    std::ofstream out(args.csv, std::ios::app);
    if (fresh) {
      out << "policy,nodes,gpus,tasks,seed,queue,load,slo_violation,mean_ct_s,mean_wait_s,"
             "makespan_s,avg_sm_util,avg_mem_util\n";
    }
    out << result.policy_name << ',' << args.nodes << ',' << args.gpus << ',' << args.tasks
        << ',' << args.seed << ',' << args.queue << ',' << args.load << ','
        << result.OverallSloViolationRate() << ',' << result.MeanCtMs() / kMsPerSecond << ','
        << result.MeanWaitingMs() / kMsPerSecond << ',' << result.makespan_ms / kMsPerSecond
        << ',' << result.avg_sm_util << ',' << result.avg_mem_util << '\n';
  }
  return 0;
}
