// trace_diff: compare two decision traces (mudi.decision_trace.v1).
//
// Aligns the decision streams on the causal order, reports the first
// divergent decision (with candidate scores when the policies attached
// them), per-hook decision-latency deltas, and SLO-attribution differences
// from the run summaries.
//
// Usage: trace_diff <trace-a> <trace-b>
// Exit status: 0 = streams identical, 1 = diverged, 2 = bad input.
#include "src/replay/trace_diff.h"

#include <cstdio>
#include <string>

#include "src/replay/decision_trace.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <trace-a> <trace-b>\n", argv[0]);
    return 2;
  }
  mudi::StatusOr<mudi::replay::DecisionTrace> a = mudi::replay::ReadDecisionTrace(argv[1]);
  if (!a.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[1], a.status().message().c_str());
    return 2;
  }
  mudi::StatusOr<mudi::replay::DecisionTrace> b = mudi::replay::ReadDecisionTrace(argv[2]);
  if (!b.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[2], b.status().message().c_str());
    return 2;
  }
  mudi::replay::TraceDiffResult diff = mudi::replay::DiffTraces(*a, *b);
  std::fputs(mudi::replay::FormatTraceDiff(diff).c_str(), stdout);
  return diff.first_divergence.has_value() ? 1 : 0;
}
