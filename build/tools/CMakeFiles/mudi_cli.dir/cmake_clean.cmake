file(REMOVE_RECURSE
  "CMakeFiles/mudi_cli.dir/mudi_cli.cpp.o"
  "CMakeFiles/mudi_cli.dir/mudi_cli.cpp.o.d"
  "mudi_cli"
  "mudi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
