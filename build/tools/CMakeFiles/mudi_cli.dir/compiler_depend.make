# Empty compiler generated dependencies file for mudi_cli.
# This may be replaced when dependencies are built.
