# Empty dependencies file for bench_fig16_bursty_case.
# This may be replaced when dependencies are built.
