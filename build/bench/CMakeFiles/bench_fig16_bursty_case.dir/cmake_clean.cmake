file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_bursty_case.dir/bench_fig16_bursty_case.cpp.o"
  "CMakeFiles/bench_fig16_bursty_case.dir/bench_fig16_bursty_case.cpp.o.d"
  "bench_fig16_bursty_case"
  "bench_fig16_bursty_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_bursty_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
