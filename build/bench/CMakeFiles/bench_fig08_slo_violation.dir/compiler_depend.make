# Empty compiler generated dependencies file for bench_fig08_slo_violation.
# This may be replaced when dependencies are built.
