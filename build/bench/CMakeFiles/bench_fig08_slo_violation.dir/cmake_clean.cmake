file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_slo_violation.dir/bench_fig08_slo_violation.cpp.o"
  "CMakeFiles/bench_fig08_slo_violation.dir/bench_fig08_slo_violation.cpp.o.d"
  "bench_fig08_slo_violation"
  "bench_fig08_slo_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_slo_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
