file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_fitting_error.dir/bench_tab02_fitting_error.cpp.o"
  "CMakeFiles/bench_tab02_fitting_error.dir/bench_tab02_fitting_error.cpp.o.d"
  "bench_tab02_fitting_error"
  "bench_tab02_fitting_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_fitting_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
