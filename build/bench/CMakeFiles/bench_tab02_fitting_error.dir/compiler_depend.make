# Empty compiler generated dependencies file for bench_tab02_fitting_error.
# This may be replaced when dependencies are built.
