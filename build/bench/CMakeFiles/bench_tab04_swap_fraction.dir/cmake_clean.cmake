file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_swap_fraction.dir/bench_tab04_swap_fraction.cpp.o"
  "CMakeFiles/bench_tab04_swap_fraction.dir/bench_tab04_swap_fraction.cpp.o.d"
  "bench_tab04_swap_fraction"
  "bench_tab04_swap_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_swap_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
