# Empty compiler generated dependencies file for bench_tab04_swap_fraction.
# This may be replaced when dependencies are built.
