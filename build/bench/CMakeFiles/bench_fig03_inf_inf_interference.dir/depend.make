# Empty dependencies file for bench_fig03_inf_inf_interference.
# This may be replaced when dependencies are built.
