file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_inf_inf_interference.dir/bench_fig03_inf_inf_interference.cpp.o"
  "CMakeFiles/bench_fig03_inf_inf_interference.dir/bench_fig03_inf_inf_interference.cpp.o.d"
  "bench_fig03_inf_inf_interference"
  "bench_fig03_inf_inf_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_inf_inf_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
