file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_incremental.dir/bench_fig12_incremental.cpp.o"
  "CMakeFiles/bench_fig12_incremental.dir/bench_fig12_incremental.cpp.o.d"
  "bench_fig12_incremental"
  "bench_fig12_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
