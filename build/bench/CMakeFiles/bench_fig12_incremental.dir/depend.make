# Empty dependencies file for bench_fig12_incremental.
# This may be replaced when dependencies are built.
