# Empty dependencies file for bench_fig07_layer_census.
# This may be replaced when dependencies are built.
