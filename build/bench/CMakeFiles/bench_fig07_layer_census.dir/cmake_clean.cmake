file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_layer_census.dir/bench_fig07_layer_census.cpp.o"
  "CMakeFiles/bench_fig07_layer_census.dir/bench_fig07_layer_census.cpp.o.d"
  "bench_fig07_layer_census"
  "bench_fig07_layer_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_layer_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
