
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02_training_traces.cpp" "bench/CMakeFiles/bench_fig02_training_traces.dir/bench_fig02_training_traces.cpp.o" "gcc" "bench/CMakeFiles/bench_fig02_training_traces.dir/bench_fig02_training_traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/mudi_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mudi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mudi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mudi_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mudi_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mudi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mudi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mudi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
