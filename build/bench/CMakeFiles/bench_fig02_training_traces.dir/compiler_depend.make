# Empty compiler generated dependencies file for bench_fig02_training_traces.
# This may be replaced when dependencies are built.
