# Empty dependencies file for bench_fig14_max_throughput.
# This may be replaced when dependencies are built.
