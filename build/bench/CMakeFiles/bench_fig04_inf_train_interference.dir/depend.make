# Empty dependencies file for bench_fig04_inf_train_interference.
# This may be replaced when dependencies are built.
