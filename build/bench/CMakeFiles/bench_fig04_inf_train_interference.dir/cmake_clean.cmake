file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_inf_train_interference.dir/bench_fig04_inf_train_interference.cpp.o"
  "CMakeFiles/bench_fig04_inf_train_interference.dir/bench_fig04_inf_train_interference.cpp.o.d"
  "bench_fig04_inf_train_interference"
  "bench_fig04_inf_train_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_inf_train_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
