# Empty dependencies file for bench_fig17_mudi_more.
# This may be replaced when dependencies are built.
