file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mudi_more.dir/bench_fig17_mudi_more.cpp.o"
  "CMakeFiles/bench_fig17_mudi_more.dir/bench_fig17_mudi_more.cpp.o.d"
  "bench_fig17_mudi_more"
  "bench_fig17_mudi_more.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mudi_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
