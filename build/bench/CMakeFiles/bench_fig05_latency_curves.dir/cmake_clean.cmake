file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_latency_curves.dir/bench_fig05_latency_curves.cpp.o"
  "CMakeFiles/bench_fig05_latency_curves.dir/bench_fig05_latency_curves.cpp.o.d"
  "bench_fig05_latency_curves"
  "bench_fig05_latency_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_latency_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
