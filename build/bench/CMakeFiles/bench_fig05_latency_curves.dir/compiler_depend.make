# Empty compiler generated dependencies file for bench_fig05_latency_curves.
# This may be replaced when dependencies are built.
