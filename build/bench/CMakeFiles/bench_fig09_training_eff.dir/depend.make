# Empty dependencies file for bench_fig09_training_eff.
# This may be replaced when dependencies are built.
