file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_training_eff.dir/bench_fig09_training_eff.cpp.o"
  "CMakeFiles/bench_fig09_training_eff.dir/bench_fig09_training_eff.cpp.o.d"
  "bench_fig09_training_eff"
  "bench_fig09_training_eff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_training_eff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
