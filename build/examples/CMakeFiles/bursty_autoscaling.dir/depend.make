# Empty dependencies file for bursty_autoscaling.
# This may be replaced when dependencies are built.
