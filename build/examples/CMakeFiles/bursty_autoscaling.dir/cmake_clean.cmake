file(REMOVE_RECURSE
  "CMakeFiles/bursty_autoscaling.dir/bursty_autoscaling.cpp.o"
  "CMakeFiles/bursty_autoscaling.dir/bursty_autoscaling.cpp.o.d"
  "bursty_autoscaling"
  "bursty_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
