file(REMOVE_RECURSE
  "CMakeFiles/trace_replay_scheduling.dir/trace_replay_scheduling.cpp.o"
  "CMakeFiles/trace_replay_scheduling.dir/trace_replay_scheduling.cpp.o.d"
  "trace_replay_scheduling"
  "trace_replay_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
