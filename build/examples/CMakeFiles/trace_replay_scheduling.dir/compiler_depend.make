# Empty compiler generated dependencies file for trace_replay_scheduling.
# This may be replaced when dependencies are built.
