# Empty compiler generated dependencies file for mig_partitioning.
# This may be replaced when dependencies are built.
