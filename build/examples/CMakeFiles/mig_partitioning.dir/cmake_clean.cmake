file(REMOVE_RECURSE
  "CMakeFiles/mig_partitioning.dir/mig_partitioning.cpp.o"
  "CMakeFiles/mig_partitioning.dir/mig_partitioning.cpp.o.d"
  "mig_partitioning"
  "mig_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mig_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
