# Empty dependencies file for ml_regressor_test.
# This may be replaced when dependencies are built.
