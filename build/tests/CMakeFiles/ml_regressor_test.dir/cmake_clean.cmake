file(REMOVE_RECURSE
  "CMakeFiles/ml_regressor_test.dir/ml_regressor_test.cc.o"
  "CMakeFiles/ml_regressor_test.dir/ml_regressor_test.cc.o.d"
  "ml_regressor_test"
  "ml_regressor_test.pdb"
  "ml_regressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_regressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
