file(REMOVE_RECURSE
  "CMakeFiles/core_tuner_test.dir/core_tuner_test.cc.o"
  "CMakeFiles/core_tuner_test.dir/core_tuner_test.cc.o.d"
  "core_tuner_test"
  "core_tuner_test.pdb"
  "core_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
