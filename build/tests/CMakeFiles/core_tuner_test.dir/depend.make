# Empty dependencies file for core_tuner_test.
# This may be replaced when dependencies are built.
