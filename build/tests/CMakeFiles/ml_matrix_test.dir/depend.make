# Empty dependencies file for ml_matrix_test.
# This may be replaced when dependencies are built.
