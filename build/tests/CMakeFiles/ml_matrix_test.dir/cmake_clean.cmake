file(REMOVE_RECURSE
  "CMakeFiles/ml_matrix_test.dir/ml_matrix_test.cc.o"
  "CMakeFiles/ml_matrix_test.dir/ml_matrix_test.cc.o.d"
  "ml_matrix_test"
  "ml_matrix_test.pdb"
  "ml_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
