# Empty compiler generated dependencies file for ml_gp_bo_test.
# This may be replaced when dependencies are built.
