file(REMOVE_RECURSE
  "CMakeFiles/ml_gp_bo_test.dir/ml_gp_bo_test.cc.o"
  "CMakeFiles/ml_gp_bo_test.dir/ml_gp_bo_test.cc.o.d"
  "ml_gp_bo_test"
  "ml_gp_bo_test.pdb"
  "ml_gp_bo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_gp_bo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
