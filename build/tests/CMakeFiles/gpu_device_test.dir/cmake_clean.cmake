file(REMOVE_RECURSE
  "CMakeFiles/gpu_device_test.dir/gpu_device_test.cc.o"
  "CMakeFiles/gpu_device_test.dir/gpu_device_test.cc.o.d"
  "gpu_device_test"
  "gpu_device_test.pdb"
  "gpu_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
