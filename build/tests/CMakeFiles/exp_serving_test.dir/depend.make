# Empty dependencies file for exp_serving_test.
# This may be replaced when dependencies are built.
