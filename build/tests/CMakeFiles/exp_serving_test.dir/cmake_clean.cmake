file(REMOVE_RECURSE
  "CMakeFiles/exp_serving_test.dir/exp_serving_test.cc.o"
  "CMakeFiles/exp_serving_test.dir/exp_serving_test.cc.o.d"
  "exp_serving_test"
  "exp_serving_test.pdb"
  "exp_serving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_serving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
