file(REMOVE_RECURSE
  "CMakeFiles/exp_metrics_test.dir/exp_metrics_test.cc.o"
  "CMakeFiles/exp_metrics_test.dir/exp_metrics_test.cc.o.d"
  "exp_metrics_test"
  "exp_metrics_test.pdb"
  "exp_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
