# Empty compiler generated dependencies file for exp_metrics_test.
# This may be replaced when dependencies are built.
