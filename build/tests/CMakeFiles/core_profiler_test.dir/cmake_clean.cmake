file(REMOVE_RECURSE
  "CMakeFiles/core_profiler_test.dir/core_profiler_test.cc.o"
  "CMakeFiles/core_profiler_test.dir/core_profiler_test.cc.o.d"
  "core_profiler_test"
  "core_profiler_test.pdb"
  "core_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
