# Empty compiler generated dependencies file for ml_fit_test.
# This may be replaced when dependencies are built.
