file(REMOVE_RECURSE
  "CMakeFiles/ml_fit_test.dir/ml_fit_test.cc.o"
  "CMakeFiles/ml_fit_test.dir/ml_fit_test.cc.o.d"
  "ml_fit_test"
  "ml_fit_test.pdb"
  "ml_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
