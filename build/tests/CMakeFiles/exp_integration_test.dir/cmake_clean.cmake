file(REMOVE_RECURSE
  "CMakeFiles/exp_integration_test.dir/exp_integration_test.cc.o"
  "CMakeFiles/exp_integration_test.dir/exp_integration_test.cc.o.d"
  "exp_integration_test"
  "exp_integration_test.pdb"
  "exp_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
