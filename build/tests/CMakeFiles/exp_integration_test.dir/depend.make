# Empty dependencies file for exp_integration_test.
# This may be replaced when dependencies are built.
