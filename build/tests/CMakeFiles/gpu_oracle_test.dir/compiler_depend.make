# Empty compiler generated dependencies file for gpu_oracle_test.
# This may be replaced when dependencies are built.
