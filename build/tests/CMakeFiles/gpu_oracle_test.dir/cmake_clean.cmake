file(REMOVE_RECURSE
  "CMakeFiles/gpu_oracle_test.dir/gpu_oracle_test.cc.o"
  "CMakeFiles/gpu_oracle_test.dir/gpu_oracle_test.cc.o.d"
  "gpu_oracle_test"
  "gpu_oracle_test.pdb"
  "gpu_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
