# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/core_tuner_test[1]_include.cmake")
include("/root/repo/build/tests/exp_integration_test[1]_include.cmake")
include("/root/repo/build/tests/exp_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/exp_serving_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_device_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/ml_fit_test[1]_include.cmake")
include("/root/repo/build/tests/ml_gp_bo_test[1]_include.cmake")
include("/root/repo/build/tests/ml_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/ml_regressor_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
