file(REMOVE_RECURSE
  "libmudi_sim.a"
)
