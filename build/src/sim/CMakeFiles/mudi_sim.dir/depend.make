# Empty dependencies file for mudi_sim.
# This may be replaced when dependencies are built.
