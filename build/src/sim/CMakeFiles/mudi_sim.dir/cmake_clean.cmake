file(REMOVE_RECURSE
  "CMakeFiles/mudi_sim.dir/simulator.cc.o"
  "CMakeFiles/mudi_sim.dir/simulator.cc.o.d"
  "libmudi_sim.a"
  "libmudi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
