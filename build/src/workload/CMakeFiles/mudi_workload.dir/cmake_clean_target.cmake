file(REMOVE_RECURSE
  "libmudi_workload.a"
)
