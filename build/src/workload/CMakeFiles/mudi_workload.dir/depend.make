# Empty dependencies file for mudi_workload.
# This may be replaced when dependencies are built.
