
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/layers.cc" "src/workload/CMakeFiles/mudi_workload.dir/layers.cc.o" "gcc" "src/workload/CMakeFiles/mudi_workload.dir/layers.cc.o.d"
  "/root/repo/src/workload/models.cc" "src/workload/CMakeFiles/mudi_workload.dir/models.cc.o" "gcc" "src/workload/CMakeFiles/mudi_workload.dir/models.cc.o.d"
  "/root/repo/src/workload/request_generator.cc" "src/workload/CMakeFiles/mudi_workload.dir/request_generator.cc.o" "gcc" "src/workload/CMakeFiles/mudi_workload.dir/request_generator.cc.o.d"
  "/root/repo/src/workload/training_trace.cc" "src/workload/CMakeFiles/mudi_workload.dir/training_trace.cc.o" "gcc" "src/workload/CMakeFiles/mudi_workload.dir/training_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
