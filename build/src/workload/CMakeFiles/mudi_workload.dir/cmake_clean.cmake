file(REMOVE_RECURSE
  "CMakeFiles/mudi_workload.dir/layers.cc.o"
  "CMakeFiles/mudi_workload.dir/layers.cc.o.d"
  "CMakeFiles/mudi_workload.dir/models.cc.o"
  "CMakeFiles/mudi_workload.dir/models.cc.o.d"
  "CMakeFiles/mudi_workload.dir/request_generator.cc.o"
  "CMakeFiles/mudi_workload.dir/request_generator.cc.o.d"
  "CMakeFiles/mudi_workload.dir/training_trace.cc.o"
  "CMakeFiles/mudi_workload.dir/training_trace.cc.o.d"
  "libmudi_workload.a"
  "libmudi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
