
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_util.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/baseline_util.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/baseline_util.cc.o.d"
  "/root/repo/src/baselines/gpulets_policy.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/gpulets_policy.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/gpulets_policy.cc.o.d"
  "/root/repo/src/baselines/gslice_policy.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/gslice_policy.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/gslice_policy.cc.o.d"
  "/root/repo/src/baselines/muxflow_policy.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/muxflow_policy.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/muxflow_policy.cc.o.d"
  "/root/repo/src/baselines/optimal_policy.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/optimal_policy.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/optimal_policy.cc.o.d"
  "/root/repo/src/baselines/random_policy.cc" "src/baselines/CMakeFiles/mudi_baselines.dir/random_policy.cc.o" "gcc" "src/baselines/CMakeFiles/mudi_baselines.dir/random_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mudi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mudi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mudi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
