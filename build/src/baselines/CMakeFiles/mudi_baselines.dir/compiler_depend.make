# Empty compiler generated dependencies file for mudi_baselines.
# This may be replaced when dependencies are built.
