file(REMOVE_RECURSE
  "libmudi_baselines.a"
)
