file(REMOVE_RECURSE
  "CMakeFiles/mudi_baselines.dir/baseline_util.cc.o"
  "CMakeFiles/mudi_baselines.dir/baseline_util.cc.o.d"
  "CMakeFiles/mudi_baselines.dir/gpulets_policy.cc.o"
  "CMakeFiles/mudi_baselines.dir/gpulets_policy.cc.o.d"
  "CMakeFiles/mudi_baselines.dir/gslice_policy.cc.o"
  "CMakeFiles/mudi_baselines.dir/gslice_policy.cc.o.d"
  "CMakeFiles/mudi_baselines.dir/muxflow_policy.cc.o"
  "CMakeFiles/mudi_baselines.dir/muxflow_policy.cc.o.d"
  "CMakeFiles/mudi_baselines.dir/optimal_policy.cc.o"
  "CMakeFiles/mudi_baselines.dir/optimal_policy.cc.o.d"
  "CMakeFiles/mudi_baselines.dir/random_policy.cc.o"
  "CMakeFiles/mudi_baselines.dir/random_policy.cc.o.d"
  "libmudi_baselines.a"
  "libmudi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
