file(REMOVE_RECURSE
  "libmudi_solver.a"
)
