file(REMOVE_RECURSE
  "CMakeFiles/mudi_solver.dir/monotone_solver.cc.o"
  "CMakeFiles/mudi_solver.dir/monotone_solver.cc.o.d"
  "libmudi_solver.a"
  "libmudi_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
