# Empty compiler generated dependencies file for mudi_solver.
# This may be replaced when dependencies are built.
