# Empty compiler generated dependencies file for mudi_core.
# This may be replaced when dependencies are built.
