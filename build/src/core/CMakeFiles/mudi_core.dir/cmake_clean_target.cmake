file(REMOVE_RECURSE
  "libmudi_core.a"
)
