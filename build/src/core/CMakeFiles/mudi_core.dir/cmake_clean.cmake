file(REMOVE_RECURSE
  "CMakeFiles/mudi_core.dir/interference_modeler.cc.o"
  "CMakeFiles/mudi_core.dir/interference_modeler.cc.o.d"
  "CMakeFiles/mudi_core.dir/latency_profiler.cc.o"
  "CMakeFiles/mudi_core.dir/latency_profiler.cc.o.d"
  "CMakeFiles/mudi_core.dir/memory_manager.cc.o"
  "CMakeFiles/mudi_core.dir/memory_manager.cc.o.d"
  "CMakeFiles/mudi_core.dir/mudi_policy.cc.o"
  "CMakeFiles/mudi_core.dir/mudi_policy.cc.o.d"
  "CMakeFiles/mudi_core.dir/online_multiplexer.cc.o"
  "CMakeFiles/mudi_core.dir/online_multiplexer.cc.o.d"
  "CMakeFiles/mudi_core.dir/tuner.cc.o"
  "CMakeFiles/mudi_core.dir/tuner.cc.o.d"
  "libmudi_core.a"
  "libmudi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
