
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/interference_modeler.cc" "src/core/CMakeFiles/mudi_core.dir/interference_modeler.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/interference_modeler.cc.o.d"
  "/root/repo/src/core/latency_profiler.cc" "src/core/CMakeFiles/mudi_core.dir/latency_profiler.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/latency_profiler.cc.o.d"
  "/root/repo/src/core/memory_manager.cc" "src/core/CMakeFiles/mudi_core.dir/memory_manager.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/memory_manager.cc.o.d"
  "/root/repo/src/core/mudi_policy.cc" "src/core/CMakeFiles/mudi_core.dir/mudi_policy.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/mudi_policy.cc.o.d"
  "/root/repo/src/core/online_multiplexer.cc" "src/core/CMakeFiles/mudi_core.dir/online_multiplexer.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/online_multiplexer.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/mudi_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/mudi_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mudi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mudi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mudi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mudi_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mudi_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
