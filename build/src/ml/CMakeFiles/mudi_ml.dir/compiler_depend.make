# Empty compiler generated dependencies file for mudi_ml.
# This may be replaced when dependencies are built.
