file(REMOVE_RECURSE
  "CMakeFiles/mudi_ml.dir/bayesopt.cc.o"
  "CMakeFiles/mudi_ml.dir/bayesopt.cc.o.d"
  "CMakeFiles/mudi_ml.dir/gaussian_process.cc.o"
  "CMakeFiles/mudi_ml.dir/gaussian_process.cc.o.d"
  "CMakeFiles/mudi_ml.dir/knn.cc.o"
  "CMakeFiles/mudi_ml.dir/knn.cc.o.d"
  "CMakeFiles/mudi_ml.dir/linear_regression.cc.o"
  "CMakeFiles/mudi_ml.dir/linear_regression.cc.o.d"
  "CMakeFiles/mudi_ml.dir/matrix.cc.o"
  "CMakeFiles/mudi_ml.dir/matrix.cc.o.d"
  "CMakeFiles/mudi_ml.dir/mlp.cc.o"
  "CMakeFiles/mudi_ml.dir/mlp.cc.o.d"
  "CMakeFiles/mudi_ml.dir/model_selection.cc.o"
  "CMakeFiles/mudi_ml.dir/model_selection.cc.o.d"
  "CMakeFiles/mudi_ml.dir/piecewise_linear.cc.o"
  "CMakeFiles/mudi_ml.dir/piecewise_linear.cc.o.d"
  "CMakeFiles/mudi_ml.dir/polynomial.cc.o"
  "CMakeFiles/mudi_ml.dir/polynomial.cc.o.d"
  "CMakeFiles/mudi_ml.dir/random_forest.cc.o"
  "CMakeFiles/mudi_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/mudi_ml.dir/regressor.cc.o"
  "CMakeFiles/mudi_ml.dir/regressor.cc.o.d"
  "CMakeFiles/mudi_ml.dir/svr.cc.o"
  "CMakeFiles/mudi_ml.dir/svr.cc.o.d"
  "libmudi_ml.a"
  "libmudi_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
