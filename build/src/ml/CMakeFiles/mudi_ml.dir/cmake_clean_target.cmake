file(REMOVE_RECURSE
  "libmudi_ml.a"
)
