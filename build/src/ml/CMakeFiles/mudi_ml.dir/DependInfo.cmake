
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bayesopt.cc" "src/ml/CMakeFiles/mudi_ml.dir/bayesopt.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/bayesopt.cc.o.d"
  "/root/repo/src/ml/gaussian_process.cc" "src/ml/CMakeFiles/mudi_ml.dir/gaussian_process.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/gaussian_process.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/mudi_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/ml/CMakeFiles/mudi_ml.dir/linear_regression.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/linear_regression.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/mudi_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/mudi_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/ml/CMakeFiles/mudi_ml.dir/model_selection.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/model_selection.cc.o.d"
  "/root/repo/src/ml/piecewise_linear.cc" "src/ml/CMakeFiles/mudi_ml.dir/piecewise_linear.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/piecewise_linear.cc.o.d"
  "/root/repo/src/ml/polynomial.cc" "src/ml/CMakeFiles/mudi_ml.dir/polynomial.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/polynomial.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/mudi_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/regressor.cc" "src/ml/CMakeFiles/mudi_ml.dir/regressor.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/regressor.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/ml/CMakeFiles/mudi_ml.dir/svr.cc.o" "gcc" "src/ml/CMakeFiles/mudi_ml.dir/svr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
