file(REMOVE_RECURSE
  "libmudi_cluster.a"
)
