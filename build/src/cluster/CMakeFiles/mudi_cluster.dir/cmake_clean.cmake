file(REMOVE_RECURSE
  "CMakeFiles/mudi_cluster.dir/cluster_state.cc.o"
  "CMakeFiles/mudi_cluster.dir/cluster_state.cc.o.d"
  "CMakeFiles/mudi_cluster.dir/kv_store.cc.o"
  "CMakeFiles/mudi_cluster.dir/kv_store.cc.o.d"
  "CMakeFiles/mudi_cluster.dir/monitor.cc.o"
  "CMakeFiles/mudi_cluster.dir/monitor.cc.o.d"
  "CMakeFiles/mudi_cluster.dir/task_queue.cc.o"
  "CMakeFiles/mudi_cluster.dir/task_queue.cc.o.d"
  "libmudi_cluster.a"
  "libmudi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
