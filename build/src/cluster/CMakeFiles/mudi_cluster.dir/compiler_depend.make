# Empty compiler generated dependencies file for mudi_cluster.
# This may be replaced when dependencies are built.
