
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_state.cc" "src/cluster/CMakeFiles/mudi_cluster.dir/cluster_state.cc.o" "gcc" "src/cluster/CMakeFiles/mudi_cluster.dir/cluster_state.cc.o.d"
  "/root/repo/src/cluster/kv_store.cc" "src/cluster/CMakeFiles/mudi_cluster.dir/kv_store.cc.o" "gcc" "src/cluster/CMakeFiles/mudi_cluster.dir/kv_store.cc.o.d"
  "/root/repo/src/cluster/monitor.cc" "src/cluster/CMakeFiles/mudi_cluster.dir/monitor.cc.o" "gcc" "src/cluster/CMakeFiles/mudi_cluster.dir/monitor.cc.o.d"
  "/root/repo/src/cluster/task_queue.cc" "src/cluster/CMakeFiles/mudi_cluster.dir/task_queue.cc.o" "gcc" "src/cluster/CMakeFiles/mudi_cluster.dir/task_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mudi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mudi_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
