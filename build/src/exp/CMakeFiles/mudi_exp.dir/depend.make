# Empty dependencies file for mudi_exp.
# This may be replaced when dependencies are built.
