file(REMOVE_RECURSE
  "libmudi_exp.a"
)
