file(REMOVE_RECURSE
  "CMakeFiles/mudi_exp.dir/cluster_experiment.cc.o"
  "CMakeFiles/mudi_exp.dir/cluster_experiment.cc.o.d"
  "CMakeFiles/mudi_exp.dir/metrics.cc.o"
  "CMakeFiles/mudi_exp.dir/metrics.cc.o.d"
  "CMakeFiles/mudi_exp.dir/presets.cc.o"
  "CMakeFiles/mudi_exp.dir/presets.cc.o.d"
  "libmudi_exp.a"
  "libmudi_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
