file(REMOVE_RECURSE
  "libmudi_common.a"
)
