# Empty compiler generated dependencies file for mudi_common.
# This may be replaced when dependencies are built.
