file(REMOVE_RECURSE
  "CMakeFiles/mudi_common.dir/logging.cc.o"
  "CMakeFiles/mudi_common.dir/logging.cc.o.d"
  "CMakeFiles/mudi_common.dir/stats.cc.o"
  "CMakeFiles/mudi_common.dir/stats.cc.o.d"
  "CMakeFiles/mudi_common.dir/status.cc.o"
  "CMakeFiles/mudi_common.dir/status.cc.o.d"
  "CMakeFiles/mudi_common.dir/table.cc.o"
  "CMakeFiles/mudi_common.dir/table.cc.o.d"
  "libmudi_common.a"
  "libmudi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
