file(REMOVE_RECURSE
  "libmudi_gpu.a"
)
