
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/gpu_device.cc" "src/gpu/CMakeFiles/mudi_gpu.dir/gpu_device.cc.o" "gcc" "src/gpu/CMakeFiles/mudi_gpu.dir/gpu_device.cc.o.d"
  "/root/repo/src/gpu/perf_oracle.cc" "src/gpu/CMakeFiles/mudi_gpu.dir/perf_oracle.cc.o" "gcc" "src/gpu/CMakeFiles/mudi_gpu.dir/perf_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mudi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mudi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mudi_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
