file(REMOVE_RECURSE
  "CMakeFiles/mudi_gpu.dir/gpu_device.cc.o"
  "CMakeFiles/mudi_gpu.dir/gpu_device.cc.o.d"
  "CMakeFiles/mudi_gpu.dir/perf_oracle.cc.o"
  "CMakeFiles/mudi_gpu.dir/perf_oracle.cc.o.d"
  "libmudi_gpu.a"
  "libmudi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mudi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
