# Empty dependencies file for mudi_gpu.
# This may be replaced when dependencies are built.
