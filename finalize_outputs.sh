#!/bin/bash
# Produces the required final artifacts.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
{
  for f in bench_results/bench_*.txt; do
    echo "##### $(basename $f .txt) #####"
    cat "$f"
    echo
  done
} 2>&1 | tee /root/repo/bench_output.txt
