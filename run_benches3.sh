#!/bin/bash
cd /root/repo
until grep -q CAMPAIGN2_COMPLETE bench_results/campaign2.log; do sleep 30; done
for b in bench_fig17_mudi_more bench_fig14_max_throughput; do
  echo "=== RUNNING $b ==="
  MUDI_TELEMETRY_JSON=bench_results/BENCH_$b.json \
    ./build/bench/$b > bench_results/$b.txt 2> bench_results/$b.err
  echo "=== DONE $b (rc=$?) ==="
done
echo CAMPAIGN3_COMPLETE
