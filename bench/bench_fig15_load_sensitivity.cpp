// Fig. 15 reproduction: sensitivity to heavy inference loads — SLO violation
// rate and training CT as all services' request rates scale 1×, 2×, 3×, 4×.
//
// Paper shape: violations and CT rise with load for every system, but Mudi
// stays lowest and its violation rate escalates more slowly; gpulets/GSLICE
// CT grows ~linearly while Mudi grows sub-linearly.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;
  std::vector<double> loads{1.0, 2.0, 3.0, 4.0};
  std::vector<std::string> systems = EndToEndSystemNames();

  Table slo({"load", systems[0], systems[1], systems[2], systems[3]});
  Table ct({"load", systems[0], systems[1], systems[2], systems[3]});
  Table done({"load", systems[0], systems[1], systems[2], systems[3]});
  for (double load : loads) {
    ExperimentOptions options = PhysicalClusterOptions(ScaledCount(150));
    ScaleQps(options, load);
    // Fixed horizon: sustained overload can leave training preempted
    // indefinitely (the correct §5.3.2 behaviour), so heavy-load runs are
    // compared over the same window; CT averages completed tasks.
    options.horizon_ms = 1800.0 * kMsPerSecond;
    auto results = RunSystems(options, systems);
    std::vector<std::string> slo_row{Table::Num(load, 0) + "x"};
    std::vector<std::string> ct_row{Table::Num(load, 0) + "x"};
    std::vector<std::string> done_row{Table::Num(load, 0) + "x"};
    for (const auto& name : systems) {
      const ExperimentResult& r = results.at(name);
      slo_row.push_back(Table::Pct(r.OverallSloViolationRate(), 2));
      ct_row.push_back(Table::Num(r.MeanCtMs() / kMsPerSecond, 1));
      done_row.push_back(std::to_string(r.CompletedTasks()) + "/" +
                         std::to_string(r.tasks.size()));
    }
    slo.AddRow(slo_row);
    ct.AddRow(ct_row);
    done.AddRow(done_row);
  }
  std::printf("== Fig. 15(a): SLO violation rate vs load ==\n%s\n", slo.ToString().c_str());
  std::printf("== Fig. 15(b): mean training CT (s) vs load, completed tasks only ==\n%s\n",
              ct.ToString().c_str());
  std::printf("completed tasks within the 1800 s window:\n%s\n", done.ToString().c_str());
  std::printf("Paper shape: Mudi lowest violations at every load with the slowest\n"
              "escalation; baselines' CT grows roughly linearly with load.\n");
  return 0;
}
