// Fig. 14 reproduction: the maximum QPS each system can sustain per
// inference service while holding the SLO, with a training task multiplexed
// (at least 10% of the GPU reserved for training).
//
// Method: per (service, system), ramp the request rate on a dedicated device
// hosting that service with one long-running training task, and report the
// highest rate whose SLO-violation fraction stays under 5%.
//
// Paper shape: Mudi sustains the highest throughput everywhere, +67% to
// +103% over the weakest baseline per service.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace mudi;

double MaxThroughput(const std::string& system, size_t service_index) {
  // One task that outlives the horizon keeps the device multiplexed.
  TrainingArrival long_task;
  long_task.task_id = 0;
  long_task.arrival_ms = 1000.0;
  long_task.type_index = 6;  // BERT fine-tuning: a heavyweight co-runner
  long_task.work_full_gpu_ms = 1e9;

  double best = 0.0;
  for (double qps = 100.0; qps <= 2400.0; qps += 100.0) {
    ExperimentOptions options;
    options.num_nodes = 1;
    options.gpus_per_node = 2;  // two replicas for window statistics
    options.num_services = 1;
    options.service_offset = service_index;
    options.horizon_ms = 60.0 * kMsPerSecond;
    options.trace_override = {long_task};
    options.qps_factory = [qps](size_t, int) -> std::shared_ptr<const QpsProfile> {
      return std::make_shared<ConstantQps>(qps);
    };
    PerfOracle profiling_oracle(options.oracle_seed);
    auto policy = MakePolicy(system, profiling_oracle);
    ClusterExperiment experiment(options, policy.get());
    ExperimentResult result = experiment.Run();
    if (result.OverallSloViolationRate() <= 0.05) {
      best = qps;
    } else {
      break;  // past the knee; rates only get worse
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace mudi;
  std::vector<std::string> systems = EndToEndSystemNames();
  std::vector<std::string> headers{"service"};
  for (const auto& s : systems) {
    headers.push_back(s + " (QPS)");
  }
  headers.push_back("Mudi gain vs worst");
  Table table(headers);

  for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
    std::vector<std::string> row{ModelZoo::InferenceServices()[s].name};
    double mudi_qps = 0.0, worst = 1e18;
    for (const auto& system : systems) {
      double qps = MaxThroughput(system, s);
      row.push_back(Table::Num(qps, 0));
      if (system == "Mudi") {
        mudi_qps = qps;
      }
      worst = std::min(worst, std::max(qps, 1.0));
    }
    row.push_back("+" + Table::Num(100.0 * (mudi_qps / worst - 1.0), 0) + "%");
    table.AddRow(row);
    std::fprintf(stderr, "[bench] fig14 %s done\n",
                 ModelZoo::InferenceServices()[s].name.c_str());
  }
  std::printf("== Fig. 14: max sustainable QPS per service while holding SLOs ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: Mudi +78/103/67/89/85/73%% over the baselines per service.\n");
  return 0;
}
