// Micro-benchmarks of the hot substrate paths (google-benchmark): the
// event engine, the performance oracle, piece-wise fitting, the GP
// surrogate, and the interference learners. These bound how far the cluster
// simulation scales (events/sec) and how cheap Mudi's decision math is.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/gpu/perf_oracle.h"
#include "src/ml/gaussian_process.h"
#include "src/ml/piecewise_linear.h"
#include "src/ml/random_forest.h"
#include "src/sim/simulator.h"

namespace {

using namespace mudi;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(static_cast<double>(i), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(10000)->Arg(100000);

void BM_OracleInferenceLatency(benchmark::State& state) {
  PerfOracle oracle(42);
  const auto& service = ModelZoo::InferenceServices()[0];
  const auto& task = ModelZoo::TrainingTasks()[0];
  std::vector<ColocatedTraining> colocated{{&task, 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle.InferenceBatchLatency(service, 64, 0.5, colocated).total_ms());
  }
}
BENCHMARK(BM_OracleInferenceLatency);

void BM_OracleTrainingIteration(benchmark::State& state) {
  PerfOracle oracle(42);
  const auto& service = ModelZoo::InferenceServices()[2];
  const auto& task = ModelZoo::TrainingTasks()[1];
  InferenceLoad load{&service, 64, 0.5, 200.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.TrainingIterationMs(task, 0.4, load, {}));
  }
}
BENCHMARK(BM_OracleTrainingIteration);

void BM_PiecewiseFit(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> x, y;
  PiecewiseLinearModel truth{-80.0, -4.0, 0.4, 50.0};
  for (double g = 0.1; g <= 0.91; g += 0.1) {
    x.push_back(g);
    y.push_back(truth.Eval(g) * rng.LogNormalFactor(0.03));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitPiecewiseLinear(x, y));
  }
}
BENCHMARK(BM_PiecewiseFit);

void BM_GpPosteriorUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    GaussianProcess gp;
    for (size_t i = 0; i < n; ++i) {
      gp.AddObservation({static_cast<double>(i) / n}, static_cast<double>(i % 3));
    }
    benchmark::DoNotOptimize(gp.Predict({0.5}).mean);
  }
}
BENCHMARK(BM_GpPosteriorUpdate)->Arg(10)->Arg(25);

void BM_RandomForestPredict(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(12);
    for (auto& v : row) {
      v = rng.Uniform();
    }
    y.push_back(row[0] * 3.0 + row[5]);
    x.push_back(std::move(row));
  }
  RandomForestRegressor model;
  model.Fit(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x[17]));
  }
}
BENCHMARK(BM_RandomForestPredict);

}  // namespace

BENCHMARK_MAIN();
