// Fig. 19 (extension): availability under the standard chaos schedule.
//
// Runs the end-to-end systems on the physical-scale cluster with
// StandardChaosPlan armed (transient GPU failure, straggler episode, monitor
// feedback loss, one permanent GPU failure, one transient node failure) and
// reports recovery behaviour: every displaced training must be re-placed and
// complete, SLO-window violations are split into failure-attributed vs
// load-attributed, and goodput/downtime quantify the availability cost.
// A fault-free Mudi row anchors the comparison.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

void Report(const std::map<std::string, mudi::ExperimentResult>& results) {
  using mudi::Table;
  std::printf("== Fig. 19: fault injection & recovery (standard chaos schedule) ==\n");
  Table table({"system", "completed", "viol(fail)", "viol(load)", "mean CT (s)", "downtime (s)",
               "displaced", "replaced", "re-place (s)", "work lost (s)", "goodput (r/s)"});
  for (const auto& [name, result] : results) {
    const mudi::FaultMetrics& fm = result.faults;
    table.AddRow({name,
                  std::to_string(result.CompletedTasks()) + "/" +
                      std::to_string(result.tasks.size()),
                  std::to_string(result.TotalWindowsViolatedFailure()),
                  std::to_string(result.TotalWindowsViolatedLoad()),
                  Table::Num(result.MeanCtMs() / mudi::kMsPerSecond, 1),
                  Table::Num(fm.total_downtime_ms / mudi::kMsPerSecond, 1),
                  std::to_string(fm.trainings_displaced), std::to_string(fm.trainings_replaced),
                  Table::Num(fm.mean_replacement_ms / mudi::kMsPerSecond, 1),
                  Table::Num(fm.work_lost_ms / mudi::kMsPerSecond, 1),
                  Table::Num(fm.goodput_rps, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  size_t tasks = mudi::ScaledCount(120);

  // Fault-free reference: same cluster, same trace, empty fault plan.
  mudi::ExperimentOptions baseline = mudi::PhysicalClusterOptions(tasks);
  auto reference = mudi::RunSystems(baseline, {"Mudi"});

  mudi::ExperimentOptions chaos = mudi::ChaosClusterOptions(tasks);
  auto results = mudi::RunSystems(chaos, mudi::EndToEndSystemNames());

  std::map<std::string, mudi::ExperimentResult> merged;
  merged["Mudi (no faults)"] = reference.at("Mudi");
  for (auto& [name, result] : results) {
    merged[name] = result;
  }
  Report(merged);

  const mudi::ExperimentResult& mudi_chaos = results.at("Mudi");
  std::printf("Mudi under chaos: %zu/%zu tasks completed, %zu displaced, %zu re-placed\n",
              mudi_chaos.CompletedTasks(), mudi_chaos.tasks.size(),
              mudi_chaos.faults.trainings_displaced, mudi_chaos.faults.trainings_replaced);
  return 0;
}
