// Tab. 4 reproduction: the fraction of time memory swapping is active per
// inference service, and that overcapacity periods are absorbed without OOM.
//
// Scenario: each service's device runs two training tasks (Mudi-more mode)
// whose combined working set exceeds device memory while both are resident —
// the Memory Manager pages part of one task to the host for that overlap
// window and restores it when the shorter task finishes.
//
// Paper values: ResNet50 16.08%, Inception 19.82%, GPT2 28.40%, BERT 15.53%,
// RoBERTa 27.30%, YOLOS 33.43%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;
  Table table({"service", "swap-time fraction", "swap events", "swapped (GB)"});
  for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
    // Long-running BERT fine-tune + a VGG16 training that overlaps it for
    // part of the horizon: together ~40 GB of training working set.
    TrainingArrival bert;
    bert.task_id = 0;
    bert.arrival_ms = 5.0 * kMsPerSecond;
    bert.type_index = 6;
    bert.work_full_gpu_ms = 1e9;
    TrainingArrival vgg;
    vgg.task_id = 1;
    vgg.arrival_ms = 60.0 * kMsPerSecond;
    // VGG16 (~14 GB) overflows alongside BERT for most services; GPT2's
    // large-batch service footprint leaves less room, so its overlap task is
    // NCF (~4.6 GB) to stay within the placeable overcommit window.
    vgg.type_index = ModelZoo::InferenceServices()[s].name == "GPT2" ? 3 : 0;
    // Sized to run ~60-90 s at a partial share: the overcapacity window.
    vgg.work_full_gpu_ms = 25.0 * kMsPerSecond;

    ExperimentOptions options;
    options.num_nodes = 1;
    options.gpus_per_node = 1;
    options.num_services = 1;
    options.service_offset = s;
    options.horizon_ms = 300.0 * kMsPerSecond;
    options.trace_override = {bert, vgg};
    options.qps_factory = [](size_t, int) -> std::shared_ptr<const QpsProfile> {
      return std::make_shared<ConstantQps>(200.0);
    };

    PerfOracle profiling_oracle(options.oracle_seed);
    auto policy = MakePolicy("Mudi-more", profiling_oracle);
    ClusterExperiment experiment(options, policy.get());
    ExperimentResult result = experiment.Run();

    const std::string& name = ModelZoo::InferenceServices()[s].name;
    table.AddRow({name, Table::Pct(result.swap_time_fraction.at(name), 2),
                  std::to_string(result.swap_events),
                  Table::Num(result.swap_total_mb / 1024.0, 2)});
    std::fprintf(stderr, "[bench] tab04 %s done\n", name.c_str());
  }
  std::printf("== Tab. 4: fraction of time memory swapping occurs ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: 16.08 / 19.82 / 28.40 / 15.53 / 27.30 / 33.43%% — overcapacity\n"
              "periods are absorbed by host swap without OOM errors.\n");
  return 0;
}
