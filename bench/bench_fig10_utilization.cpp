// Fig. 10 reproduction: average SM and memory utilization over time in the
// physical-scale cluster for Mudi and the baselines, plus the long-run
// averages.
//
// Paper shape: Mudi reaches up to ~60% SM / ~35% memory utilization — about
// 42% / 19% higher than the baselines — improving over time as prediction
// accuracy grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;
  ExperimentOptions options = PhysicalClusterOptions(ScaledCount(300));
  options.record_util_series = true;
  auto results = RunSystems(options, EndToEndSystemNames());

  // Time series, down-sampled to ~12 rows per system.
  std::printf("== Fig. 10: cluster SM utilization over time ==\n");
  std::vector<std::string> headers{"t (s)"};
  for (const auto& [name, result] : results) {
    headers.push_back(name + " SM");
    headers.push_back(name + " mem");
  }
  Table series(headers);
  size_t min_len = SIZE_MAX;
  for (const auto& [name, result] : results) {
    min_len = std::min(min_len, result.util_series.size());
  }
  size_t rows = 12;
  for (size_t r = 0; r < rows && min_len > 0; ++r) {
    size_t idx = r * (min_len - 1) / (rows - 1);
    std::vector<std::string> row;
    bool first = true;
    for (const auto& [name, result] : results) {
      const UtilSample& s = result.util_series[idx];
      if (first) {
        row.push_back(Table::Num(s.time_ms / kMsPerSecond, 0));
        first = false;
      }
      row.push_back(Table::Pct(s.sm_util, 1));
      row.push_back(Table::Pct(s.mem_util, 1));
    }
    series.AddRow(row);
  }
  std::printf("%s\n", series.ToString().c_str());

  Table avg({"system", "avg SM util", "avg mem util"});
  for (const auto& [name, result] : results) {
    avg.AddRow({name, Table::Pct(result.avg_sm_util, 1), Table::Pct(result.avg_mem_util, 1)});
  }
  std::printf("long-run averages:\n%s\n", avg.ToString().c_str());
  std::printf("Paper: Mudi up to 60%% SM / 35%% mem — 42%% / 19%% above baselines.\n");
  return 0;
}
