// Fig. 11 reproduction: prediction accuracy of the Interference Modeler for
// the piece-wise linear parameters (k1, k2, Δ0, l0) of each inference
// service. Training set: co-locations with the five observed task types;
// test set: curves fitted from co-locations with the four *unobserved*
// training tasks of Tab. 3. Each bar notes the best (CV-selected) model.
//
// Paper shape: all errors below 0.3; averages ≈ 0.23 (k1), 0.16 (k2),
// 0.05 (Δ0), 0.06 (l0).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/core/interference_modeler.h"
#include "src/core/latency_profiler.h"

int main() {
  using namespace mudi;
  PerfOracle oracle(42);

  // Train on observed types (70-sample regime of §7.3: 6 batches × 5 types
  // plus extra batch replicates would exceed; we use the offline grid).
  LatencyProfiler profiler(oracle);
  profiler.ProfileAll(ModelZoo::kNumObservedTrainingTypes);
  InterferenceModeler modeler;
  modeler.AddSamplesFromProfiler(profiler);
  modeler.Fit();

  // Test set: fit piece-wise curves for the four unobserved types.
  LatencyProfiler::Options test_options;
  test_options.seed = 777;
  LatencyProfiler test_profiler(oracle, test_options);

  std::vector<double> param_err_sum(kNumCurveParams, 0.0);
  size_t count = 0;
  Table table({"service", "k1 err", "k2 err", "delta0 err", "l0 err", "best models"});
  for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
    std::vector<double> err(kNumCurveParams, 0.0);
    size_t local = 0;
    for (size_t type = ModelZoo::kNumObservedTrainingTypes;
         type < ModelZoo::TrainingTasks().size(); ++type) {
      for (int b : {32, 128, 512}) {
        ProfiledCurve truth = test_profiler.ProfileCurve(s, b, {type});
        PiecewiseLinearModel pred =
            modeler.Predict(s, ModelZoo::TrainingTasks()[type].arch, b);
        auto rel = [](double p, double t) {
          return std::abs(p - t) / std::max(std::abs(t), 1e-6);
        };
        err[0] += rel(pred.k1, truth.model.k1);
        err[1] += rel(pred.k2, truth.model.k2);
        err[2] += rel(pred.x0, truth.model.x0);
        err[3] += rel(pred.y0, truth.model.y0);
        ++local;
      }
    }
    std::string best = modeler.SelectedModelName(s, CurveParam::kK1) + "/" +
                       modeler.SelectedModelName(s, CurveParam::kK2) + "/" +
                       modeler.SelectedModelName(s, CurveParam::kCutoffX) + "/" +
                       modeler.SelectedModelName(s, CurveParam::kCutoffY);
    table.AddRow({ModelZoo::InferenceServices()[s].name,
                  Table::Num(err[0] / local, 3), Table::Num(err[1] / local, 3),
                  Table::Num(err[2] / local, 3), Table::Num(err[3] / local, 3), best});
    for (size_t p = 0; p < kNumCurveParams; ++p) {
      param_err_sum[p] += err[p] / local;
    }
    ++count;
  }
  std::printf("== Fig. 11: interference-model parameter prediction error (unseen tasks) ==\n%s\n",
              table.ToString().c_str());
  std::printf("averages: k1=%.3f k2=%.3f delta0=%.3f l0=%.3f\n",
              param_err_sum[0] / count, param_err_sum[1] / count, param_err_sum[2] / count,
              param_err_sum[3] / count);
  std::printf("Paper: averages 0.23 / 0.16 / 0.05 / 0.06, all bars below 0.3.\n");
  return 0;
}
