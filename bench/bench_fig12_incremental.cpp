// Fig. 12 reproduction: E2E latency prediction error as the Interference
// Modeler is incrementally re-trained with more co-location samples
// (30 → 90), per inference service.
//
// Paper shape: error falls from up to 0.6 at 30 samples to below 0.16 for
// every service by 90 samples — new co-locations make Mudi more accurate.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/interference_modeler.h"
#include "src/core/latency_profiler.h"

int main() {
  using namespace mudi;
  PerfOracle oracle(42);
  Rng pick_rng(31);

  // Sample pool: co-locations across ALL nine task types (incremental
  // updates incorporate new workloads as they arrive, §7.3) at every batch.
  LatencyProfiler profiler(oracle);
  std::vector<ProfiledCurve> pool;
  for (size_t type = 0; type < ModelZoo::TrainingTasks().size(); ++type) {
    for (int b : ProfilingBatchSizes()) {
      for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
        pool.push_back(profiler.ProfileCurve(s, b, {type}));
      }
    }
  }
  pick_rng.Shuffle(pool);

  // Held-out test curves (fresh profiling noise, mixed types).
  LatencyProfiler::Options test_options;
  test_options.seed = 555;
  LatencyProfiler test_profiler(oracle, test_options);

  std::vector<size_t> sample_counts{30, 45, 60, 75, 90};
  std::vector<std::string> headers{"samples/service"};
  for (const auto& s : ModelZoo::InferenceServices()) {
    headers.push_back(s.name);
  }
  Table table(headers);

  for (size_t n : sample_counts) {
    InterferenceModeler modeler;
    std::vector<size_t> added(ModelZoo::InferenceServices().size(), 0);
    for (const auto& curve : pool) {
      if (added[curve.key.service_index] < n) {
        modeler.AddSample(curve);
        ++added[curve.key.service_index];
      }
    }
    modeler.Fit();

    std::vector<std::string> row{std::to_string(n)};
    for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
      double err = 0.0;
      size_t count = 0;
      for (size_t type = 0; type < ModelZoo::TrainingTasks().size(); type += 2) {
        ProfiledCurve truth = test_profiler.ProfileCurve(s, 64, {type});
        PiecewiseLinearModel pred =
            modeler.Predict(s, ModelZoo::TrainingTasks()[type].arch, 64);
        for (size_t i = 0; i < truth.sample_fractions.size(); ++i) {
          err += std::abs(pred.Eval(truth.sample_fractions[i]) - truth.sample_latencies[i]) /
                 truth.sample_latencies[i];
          ++count;
        }
      }
      row.push_back(Table::Num(err / count, 3));
    }
    table.AddRow(row);
  }
  std::printf("== Fig. 12: E2E latency prediction error vs training samples ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper shape: error decreases with samples, below 0.16 for all services at 90.\n");
  return 0;
}
