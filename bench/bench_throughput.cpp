// bench_throughput — the perf-trajectory bench (DESIGN.md §11).
//
// Runs every multiplexing system against small/medium/large cluster presets
// with a src/perf PerfCollector attached and reports, per (preset, policy):
//   * raw engine throughput: events fired per wall-clock second
//   * time compression: simulated seconds per wall second
//   * scheduler decision latency (the "policy.select_device" region):
//     count / p50 / p95 / p99 / max milliseconds
// plus a before/after micro-benchmark for each landed hot-path optimization
// (currently "sim.event-state-vector": the flat per-id state vector that
// replaced the live_/cancelled_ unordered_sets in src/sim/simulator.cc).
//
// The output is a machine-readable, versioned JSON document
// (schema "mudi.bench_throughput.v1", validated by
// perf::ValidateBenchThroughputJson) written to --out and meant to be
// committed at the repo root as BENCH_throughput.json so the throughput
// trajectory is visible in review diffs.
//
// Usage:
//   bench_throughput [--out=path] [--presets=a,b] [--systems=x,y]
//   bench_throughput --validate=path     # schema-check an existing file
//
// MUDI_BENCH_SCALE scales task counts as in every other bench.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/perf/json_check.h"
#include "src/perf/mem_probe.h"
#include "src/perf/perf_collector.h"
#include "src/perf/perf_report.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace {

constexpr const char* kAllSystems[] = {"Mudi", "GSLICE", "gpulets", "MuxFlow", "Random", "Optimal"};

struct Preset {
  std::string name;
  ExperimentOptions options;
};

// smoke < small < medium < large. "smoke" exists for the check.sh --bench
// gate (seconds, not minutes); the trajectory presets are the other three.
std::vector<Preset> BuildPresets() {
  std::vector<Preset> presets;
  {
    ExperimentOptions options;
    options.num_nodes = 2;
    options.gpus_per_node = 2;
    options.num_services = 4;
    options.trace.num_tasks = 8;
    options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
    options.trace.duration_compression = 8000.0;
    options.trace.seed = 6;
    presets.push_back({"smoke", options});
  }
  {
    ExperimentOptions options;
    options.num_nodes = 2;
    options.gpus_per_node = 2;
    options.num_services = 4;
    options.trace.num_tasks = ScaledCount(32);
    options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
    options.trace.duration_compression = 8000.0;
    options.trace.seed = 6;
    presets.push_back({"small", options});
  }
  // The paper's 3×4-A100 physical cluster, task count trimmed from 300 so a
  // full 6-system sweep stays in trajectory-refresh territory.
  presets.push_back({"medium", PhysicalClusterOptions(ScaledCount(120))});
  // The 1000-GPU simulated cluster; tasks trimmed from 5000 for the same
  // reason — the engine-throughput signal saturates well before that.
  presets.push_back({"large", SimulatedClusterOptions(ScaledCount(400))});
  return presets;
}

struct DecisionLatency {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct Record {
  std::string preset;
  std::string policy;
  double wall_ms = 0.0;
  double sim_ms = 0.0;
  uint64_t events_fired = 0;
  uint64_t events_scheduled = 0;
  uint64_t events_cancelled = 0;
  double events_per_sec = 0.0;
  double sim_seconds_per_wall_second = 0.0;
  DecisionLatency decision;
  double peak_rss_mb = 0.0;
  perf::PerfReport report;  // full per-region detail, embedded verbatim
};

Record RunOne(const Preset& preset, const std::string& policy_name) {
  ExperimentOptions options = preset.options;
  perf::PerfCollector collector;
  options.perf = &collector;

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(policy_name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());

  WallTimer timer;
  ExperimentResult result = experiment.Run();
  double wall_ms = timer.ElapsedMs();
  (void)result;

  Record record;
  record.preset = preset.name;
  record.policy = policy_name;
  record.wall_ms = wall_ms;
  record.sim_ms = experiment.SimNowMs();
  record.report = perf::PerfReport::FromCollector(collector);
  record.events_fired = record.report.CounterValue("sim.events_fired");
  record.events_scheduled = record.report.CounterValue("sim.events_scheduled");
  record.events_cancelled = record.report.CounterValue("sim.events_cancelled");
  double wall_seconds = wall_ms / kMsPerSecond;
  if (wall_seconds > 0.0) {
    record.events_per_sec = static_cast<double>(record.events_fired) / wall_seconds;
    record.sim_seconds_per_wall_second = record.sim_ms / wall_ms;
  }
  if (const perf::RegionSummary* select = record.report.FindRegion("policy.select_device")) {
    record.decision.count = select->count;
    record.decision.p50 = select->p50_ms;
    record.decision.p95 = select->p95_ms;
    record.decision.p99 = select->p99_ms;
    record.decision.max = select->max_ms;
  }
  record.peak_rss_mb = static_cast<double>(record.report.memory.peak_rss_bytes) / (1024.0 * 1024.0);
  return record;
}

// ---------------------------------------------------------------------------
// Optimization micro-benchmark: sim.event-state-vector.
//
// Both mirrors below reproduce the Simulator's queue bookkeeping — same
// priority_queue<Entry>, same std::function payload, same pop/skip logic —
// and differ ONLY in how per-id liveness is tracked. LegacyQueue is the
// pre-optimization implementation (two unordered_sets, verbatim from the old
// src/sim/simulator.cc); StateVectorQueue is what ships today. Driving both
// through the identical synthetic churn isolates the bookkeeping delta from
// everything else (callback dispatch, heap churn, trace generation).

struct MirrorEntry {
  double time;
  uint64_t seq;
  uint64_t id;
  std::function<void()> cb;
};
struct MirrorLater {
  bool operator()(const MirrorEntry& a, const MirrorEntry& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

class LegacyQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    live_.insert(id);
    queue_.push(MirrorEntry{t, next_seq_++, id, std::move(cb)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (live_.erase(id) == 0) {
      return false;
    }
    cancelled_.insert(id);
    return true;
  }
  bool Step() {
    while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty()) {
      return false;
    }
    MirrorEntry entry = queue_.top();
    queue_.pop();
    live_.erase(entry.id);
    entry.cb();
    return true;
  }

 private:
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  std::priority_queue<MirrorEntry, std::vector<MirrorEntry>, MirrorLater> queue_;
  std::unordered_set<uint64_t> live_;
  std::unordered_set<uint64_t> cancelled_;
};

class StateVectorQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    SetState(id, 1);  // live
    queue_.push(MirrorEntry{t, next_seq_++, id, std::move(cb)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (id >= state_.size() || state_[id] != 1) {
      return false;
    }
    state_[id] = 2;  // cancelled
    return true;
  }
  bool Step() {
    while (!queue_.empty() && state_[queue_.top().id] == 2) {
      state_[queue_.top().id] = 0;
      queue_.pop();
    }
    if (queue_.empty()) {
      return false;
    }
    MirrorEntry entry = queue_.top();
    queue_.pop();
    state_[entry.id] = 0;  // dead
    entry.cb();
    return true;
  }

 private:
  void SetState(uint64_t id, uint8_t s) {
    if (id >= state_.size()) {
      state_.resize(id + 1, 0);
    }
    state_[id] = s;
  }
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  std::priority_queue<MirrorEntry, std::vector<MirrorEntry>, MirrorLater> queue_;
  std::vector<uint8_t> state_;
};

// Deterministic churn: schedule events at Weyl-sequence pseudo-shuffled
// times, cancel every third id, drain, repeat. No Rng — the workload must be
// identical for both queues and across runs.
template <typename Queue>
double ChurnEventsPerSecond(size_t total_events) {
  constexpr size_t kBatch = 4096;
  Queue queue;
  volatile uint64_t sink = 0;
  uint64_t fired = 0;
  WallTimer timer;
  size_t remaining = total_events;
  uint64_t key = 0;
  while (remaining > 0) {
    size_t batch = remaining < kBatch ? remaining : kBatch;
    std::vector<uint64_t> ids;
    ids.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      key += 0x9E3779B97F4A7C15ull;  // Weyl increment: well-spread times
      double t = static_cast<double>(key >> 40);
      ids.push_back(queue.Schedule(t, [&sink] { sink = sink + 1; }));
    }
    for (size_t i = 0; i < ids.size(); i += 3) {
      queue.Cancel(ids[i]);
    }
    while (queue.Step()) {
      ++fired;
    }
    remaining -= batch;
  }
  double seconds = timer.ElapsedSeconds();
  MUDI_CHECK_GT(fired, 0u);
  return seconds > 0.0 ? static_cast<double>(total_events) / seconds : 0.0;
}

struct OptimizationDelta {
  std::string name;
  std::string description;
  double before_events_per_sec = 0.0;
  double after_events_per_sec = 0.0;
  double speedup = 0.0;
};

OptimizationDelta MeasureStateVectorDelta() {
  size_t events = ScaledCount(2000000);
  // Interleaved A/B/A/B repetitions so cache warm-up and frequency scaling
  // bias neither side; keep the best rate of each (least-noise estimator).
  double before = 0.0;
  double after = 0.0;
  for (int round = 0; round < 3; ++round) {
    double b = ChurnEventsPerSecond<LegacyQueue>(events);
    double a = ChurnEventsPerSecond<StateVectorQueue>(events);
    before = b > before ? b : before;
    after = a > after ? a : after;
  }
  OptimizationDelta delta;
  delta.name = "sim.event-state-vector";
  delta.description =
      "Replace the event queue's live_/cancelled_ unordered_sets with a flat "
      "per-id state vector (src/sim/simulator.cc); per event, two hash "
      "inserts + two hash erases become two byte writes.";
  delta.before_events_per_sec = before;
  delta.after_events_per_sec = after;
  delta.speedup = before > 0.0 ? after / before : 0.0;
  return delta;
}

// ---------------------------------------------------------------------------
// JSON emission.

void WriteDecision(std::ostream& os, const DecisionLatency& d) {
  os << "{\"count\":" << d.count << ",\"p50\":";
  perf::WriteJsonNumber(os, d.p50);
  os << ",\"p95\":";
  perf::WriteJsonNumber(os, d.p95);
  os << ",\"p99\":";
  perf::WriteJsonNumber(os, d.p99);
  os << ",\"max\":";
  perf::WriteJsonNumber(os, d.max);
  os << "}";
}

void WriteRecord(std::ostream& os, const Record& r) {
  os << "    {\"preset\":";
  perf::WriteJsonEscaped(os, r.preset);
  os << ",\"policy\":";
  perf::WriteJsonEscaped(os, r.policy);
  os << ",\"wall_ms\":";
  perf::WriteJsonNumber(os, r.wall_ms);
  os << ",\"sim_ms\":";
  perf::WriteJsonNumber(os, r.sim_ms);
  os << ",\"events_fired\":" << r.events_fired << ",\"events_scheduled\":" << r.events_scheduled
     << ",\"events_cancelled\":" << r.events_cancelled << ",\"events_per_sec\":";
  perf::WriteJsonNumber(os, r.events_per_sec);
  os << ",\"sim_seconds_per_wall_second\":";
  perf::WriteJsonNumber(os, r.sim_seconds_per_wall_second);
  os << ",\"decision_latency_ms\":";
  WriteDecision(os, r.decision);
  os << ",\"peak_rss_mb\":";
  perf::WriteJsonNumber(os, r.peak_rss_mb);
  os << ",\"perf\":" << r.report.ToJsonString();
  os << "}";
}

void WriteBenchJson(std::ostream& os, const std::vector<Record>& records,
                    const std::vector<OptimizationDelta>& optimizations) {
  os << "{\n  \"schema\": \"mudi.bench_throughput.v1\",\n  \"build\": ";
  perf::BuildMetadata::Current().WriteJson(os);
  os << ",\n  \"bench_scale\": ";
  perf::WriteJsonNumber(os, BenchScale());
  os << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    WriteRecord(os, records[i]);
    os << (i + 1 < records.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"optimizations\": [\n";
  for (size_t i = 0; i < optimizations.size(); ++i) {
    const OptimizationDelta& opt = optimizations[i];
    os << "    {\"name\":";
    perf::WriteJsonEscaped(os, opt.name);
    os << ",\"description\":";
    perf::WriteJsonEscaped(os, opt.description);
    os << ",\"before_events_per_sec\":";
    perf::WriteJsonNumber(os, opt.before_events_per_sec);
    os << ",\"after_events_per_sec\":";
    perf::WriteJsonNumber(os, opt.after_events_per_sec);
    os << ",\"speedup\":";
    perf::WriteJsonNumber(os, opt.speedup);
    os << "}" << (i + 1 < optimizations.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

// ---------------------------------------------------------------------------
// CLI.

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

int ValidateFile(const std::string& path) {
  StatusOr<perf::JsonValue> doc = perf::ParseJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "[bench_throughput] %s\n", doc.status().message().c_str());
    return 1;
  }
  Status status = perf::ValidateBenchThroughputJson(*doc);
  if (!status.ok()) {
    std::fprintf(stderr, "[bench_throughput] %s\n", status.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_throughput] %s: valid mudi.bench_throughput.v1\n", path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  std::vector<std::string> preset_names = {"small", "medium", "large"};
  std::vector<std::string> systems(std::begin(kAllSystems), std::end(kAllSystems));

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = value_of("--out=");
    } else if (arg.rfind("--presets=", 0) == 0) {
      preset_names = SplitCsv(value_of("--presets="));
    } else if (arg.rfind("--systems=", 0) == 0) {
      systems = SplitCsv(value_of("--systems="));
    } else if (arg.rfind("--validate=", 0) == 0) {
      return ValidateFile(value_of("--validate="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--out=path] [--presets=a,b] [--systems=x,y]\n"
                   "       bench_throughput --validate=path\n");
      return 2;
    }
  }
  MUDI_CHECK(!preset_names.empty());
  MUDI_CHECK(!systems.empty());

  std::vector<Preset> all_presets = BuildPresets();
  std::vector<Record> records;
  for (const std::string& name : preset_names) {
    const Preset* preset = nullptr;
    for (const Preset& p : all_presets) {
      if (p.name == name) {
        preset = &p;
      }
    }
    if (preset == nullptr) {
      std::fprintf(stderr, "[bench_throughput] unknown preset '%s' (smoke|small|medium|large)\n",
                   name.c_str());
      return 2;
    }
    for (const std::string& system : systems) {
      std::fprintf(stderr, "[bench_throughput] %s / %s ...\n", name.c_str(), system.c_str());
      Record record = RunOne(*preset, system);
      std::fprintf(stderr,
                   "[bench_throughput]   %.0f events/s, %.0f sim-s/wall-s, select p95 %.3f ms "
                   "(%llu decisions), wall %.1f s\n",
                   record.events_per_sec, record.sim_seconds_per_wall_second,
                   record.decision.p95, static_cast<unsigned long long>(record.decision.count),
                   record.wall_ms / kMsPerSecond);
      records.push_back(std::move(record));
    }
  }

  std::fprintf(stderr, "[bench_throughput] measuring sim.event-state-vector delta ...\n");
  std::vector<OptimizationDelta> optimizations;
  optimizations.push_back(MeasureStateVectorDelta());
  std::fprintf(stderr, "[bench_throughput]   before %.0f ev/s, after %.0f ev/s (%.2fx)\n",
               optimizations.back().before_events_per_sec,
               optimizations.back().after_events_per_sec, optimizations.back().speedup);

  std::ostringstream json;
  WriteBenchJson(json, records, optimizations);

  // Self-check before touching disk: a malformed artifact must never land.
  StatusOr<perf::JsonValue> parsed = perf::ParseJson(json.str());
  MUDI_CHECK(parsed.ok());
  Status valid = perf::ValidateBenchThroughputJson(*parsed);
  if (!valid.ok()) {
    std::fprintf(stderr, "[bench_throughput] self-validation failed: %s\n",
                 valid.message().c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[bench_throughput] cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  out.close();
  std::fprintf(stderr, "[bench_throughput] wrote %s (%zu records, %zu optimizations)\n",
               out_path.c_str(), records.size(), optimizations.size());
  return 0;
}

}  // namespace
}  // namespace mudi

int main(int argc, char** argv) { return mudi::Main(argc, argv); }
