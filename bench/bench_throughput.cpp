// bench_throughput — the perf-trajectory bench (DESIGN.md §11).
//
// Runs every multiplexing system against small/medium/large cluster presets
// with a src/perf PerfCollector attached and reports, per (preset, policy):
//   * raw engine throughput: events fired per wall-clock second
//   * time compression: simulated seconds per wall second
//   * scheduler decision latency (the "policy.select_device" region):
//     count / p50 / p95 / p99 / max milliseconds
// plus a before/after micro-benchmark for each landed hot-path optimization,
// built as a mirror ladder where each rung's "after" is the next rung's
// "before":
//   * "sim.event-state-vector"  unordered_set id tracking -> flat state vector
//   * "sim.calendar-queue"      std::priority_queue -> half-window calendar
//                               queue (src/sim/calendar_queue.h)
//   * "sim.event-arena"         heap std::function events -> slab arena +
//                               SmallFunction small-buffer callbacks
//   * "ml.fit-cache"            recomputed fits -> fingerprint-keyed FitCache
//                               (warm-cache replay vs. cold fits)
//
// The output is a machine-readable, versioned JSON document
// (schema "mudi.bench_throughput.v1", validated by
// perf::ValidateBenchThroughputJson) written to --out and meant to be
// committed at the repo root as BENCH_throughput.json so the throughput
// trajectory is visible in review diffs.
//
// Usage:
//   bench_throughput [--out=path] [--presets=a,b] [--systems=x,y]
//   bench_throughput --validate=path     # schema-check an existing file
//   bench_throughput --compare=base.json [--max-regress=0.2]
//       run fresh, then print a per-(preset, policy) regression table vs base
//   bench_throughput --compare=base.json --against=new.json
//       pure compare of two existing artifacts (no run)
//
// MUDI_BENCH_SCALE scales task counts as in every other bench.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <queue>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/common/small_function.h"
#include "src/common/wallclock.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/ml/fit_cache.h"
#include "src/ml/model_selection.h"
#include "src/perf/json_check.h"
#include "src/perf/mem_probe.h"
#include "src/perf/perf_collector.h"
#include "src/perf/perf_report.h"
#include "src/sim/calendar_queue.h"
#include "src/sim/event_arena.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace {

constexpr const char* kAllSystems[] = {"Mudi", "GSLICE", "gpulets", "MuxFlow", "Random", "Optimal"};

struct Preset {
  std::string name;
  ExperimentOptions options;
};

// smoke < small < medium < large. "smoke" exists for the check.sh --bench
// gate (seconds, not minutes); the trajectory presets are the other three.
std::vector<Preset> BuildPresets() {
  std::vector<Preset> presets;
  {
    ExperimentOptions options;
    options.num_nodes = 2;
    options.gpus_per_node = 2;
    options.num_services = 4;
    options.trace.num_tasks = 8;
    options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
    options.trace.duration_compression = 8000.0;
    options.trace.seed = 6;
    presets.push_back({"smoke", options});
  }
  {
    ExperimentOptions options;
    options.num_nodes = 2;
    options.gpus_per_node = 2;
    options.num_services = 4;
    options.trace.num_tasks = ScaledCount(32);
    options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
    options.trace.duration_compression = 8000.0;
    options.trace.seed = 6;
    presets.push_back({"small", options});
  }
  // The paper's 3×4-A100 physical cluster, task count trimmed from 300 so a
  // full 6-system sweep stays in trajectory-refresh territory.
  presets.push_back({"medium", PhysicalClusterOptions(ScaledCount(120))});
  // The 1000-GPU simulated cluster; tasks trimmed from 5000 for the same
  // reason — the engine-throughput signal saturates well before that.
  presets.push_back({"large", SimulatedClusterOptions(ScaledCount(400))});
  return presets;
}

struct DecisionLatency {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct Record {
  std::string preset;
  std::string policy;
  double wall_ms = 0.0;
  double sim_ms = 0.0;
  uint64_t events_fired = 0;
  uint64_t events_scheduled = 0;
  uint64_t events_cancelled = 0;
  double events_per_sec = 0.0;
  double sim_seconds_per_wall_second = 0.0;
  DecisionLatency decision;
  double peak_rss_mb = 0.0;
  perf::PerfReport report;  // full per-region detail, embedded verbatim
};

Record RunOne(const Preset& preset, const std::string& policy_name) {
  ExperimentOptions options = preset.options;
  perf::PerfCollector collector;
  options.perf = &collector;

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(policy_name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());

  WallTimer timer;
  ExperimentResult result = experiment.Run();
  double wall_ms = timer.ElapsedMs();
  (void)result;

  Record record;
  record.preset = preset.name;
  record.policy = policy_name;
  record.wall_ms = wall_ms;
  record.sim_ms = experiment.SimNowMs();
  record.report = perf::PerfReport::FromCollector(collector);
  record.events_fired = record.report.CounterValue("sim.events_fired");
  record.events_scheduled = record.report.CounterValue("sim.events_scheduled");
  record.events_cancelled = record.report.CounterValue("sim.events_cancelled");
  double wall_seconds = wall_ms / kMsPerSecond;
  if (wall_seconds > 0.0) {
    record.events_per_sec = static_cast<double>(record.events_fired) / wall_seconds;
    record.sim_seconds_per_wall_second = record.sim_ms / wall_ms;
  }
  if (const perf::RegionSummary* select = record.report.FindRegion("policy.select_device")) {
    record.decision.count = select->count;
    record.decision.p50 = select->p50_ms;
    record.decision.p95 = select->p95_ms;
    record.decision.p99 = select->p99_ms;
    record.decision.max = select->max_ms;
  }
  record.peak_rss_mb = static_cast<double>(record.report.memory.peak_rss_bytes) / (1024.0 * 1024.0);
  return record;
}

// ---------------------------------------------------------------------------
// Optimization micro-benchmark: sim.event-state-vector.
//
// Both mirrors below reproduce the Simulator's queue bookkeeping — same
// priority_queue<Entry>, same std::function payload, same pop/skip logic —
// and differ ONLY in how per-id liveness is tracked. LegacyQueue is the
// pre-optimization implementation (two unordered_sets, verbatim from the old
// src/sim/simulator.cc); StateVectorQueue is what ships today. Driving both
// through the identical synthetic churn isolates the bookkeeping delta from
// everything else (callback dispatch, heap churn, trace generation).

struct MirrorEntry {
  double time;
  uint64_t seq;
  uint64_t id;
  std::function<void()> cb;
};
struct MirrorLater {
  bool operator()(const MirrorEntry& a, const MirrorEntry& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

class LegacyQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    live_.insert(id);
    queue_.push(MirrorEntry{t, next_seq_++, id, std::move(cb)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (live_.erase(id) == 0) {
      return false;
    }
    cancelled_.insert(id);
    return true;
  }
  bool Step() {
    while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty()) {
      return false;
    }
    MirrorEntry entry = queue_.top();
    queue_.pop();
    live_.erase(entry.id);
    entry.cb();
    return true;
  }

 private:
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  std::priority_queue<MirrorEntry, std::vector<MirrorEntry>, MirrorLater> queue_;
  std::unordered_set<uint64_t> live_;
  std::unordered_set<uint64_t> cancelled_;
};

class StateVectorQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    SetState(id, 1);  // live
    queue_.push(MirrorEntry{t, next_seq_++, id, std::move(cb)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (id >= state_.size() || state_[id] != 1) {
      return false;
    }
    state_[id] = 2;  // cancelled
    return true;
  }
  bool Step() {
    while (!queue_.empty() && state_[queue_.top().id] == 2) {
      state_[queue_.top().id] = 0;
      queue_.pop();
    }
    if (queue_.empty()) {
      return false;
    }
    MirrorEntry entry = queue_.top();
    queue_.pop();
    state_[entry.id] = 0;  // dead
    entry.cb();
    return true;
  }

 private:
  void SetState(uint64_t id, uint8_t s) {
    if (id >= state_.size()) {
      state_.resize(id + 1, 0);
    }
    state_[id] = s;
  }
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  std::priority_queue<MirrorEntry, std::vector<MirrorEntry>, MirrorLater> queue_;
  std::vector<uint8_t> state_;
};

// Deterministic churn in the classic hold model: build a standing population
// of kPending events (the simulator's steady state at cluster scale — large
// runs keep thousands of request/monitor events in flight), then alternate
// pop-one/push-one at the advancing horizon, cancelling every third push's
// mid-queue predecessor. No Rng — a Weyl sequence makes the workload
// identical for all queues and across runs. The callback captures 32 bytes
// (a reference plus three words), the size class of real simulator callbacks
// (`this` + a couple of ids/times) — big enough that std::function takes its
// heap path while SmallFunction stays inline, so the arena delta measures
// what production events actually pay.
template <typename Queue>
double ChurnEventsPerSecond(size_t total_events) {
  constexpr size_t kPending = 8192;
  Queue queue;
  volatile uint64_t sink = 0;
  uint64_t key = 0;
  uint64_t scheduled = 0;
  std::vector<uint64_t> ring(kPending / 2, 0);
  auto push_event = [&]() -> uint64_t {
    key += 0x9E3779B97F4A7C15ull;  // Weyl increment: deterministic jitter
    // Times advance ~4 events per virtual ms with up to ~1 s of jitter —
    // dense near the clock like real event horizons — plus a sparse
    // far-future tail (monitor-style events) for the calendar overflow path.
    double t = static_cast<double>(scheduled) * 0.25 + static_cast<double>(key >> 54);
    if (scheduled % 97 == 0) {
      t += 100000.0;
    }
    uint64_t a = key, b = key >> 7, c = key >> 13;
    ++scheduled;
    return queue.Schedule(t, [&sink, a, b, c] { sink = sink + (a ^ b ^ c); });
  };
  auto schedule_one = [&] {
    uint64_t id = push_event();
    size_t slot = scheduled % ring.size();
    if (scheduled % 3 == 0 && ring[slot] != 0) {
      queue.Cancel(ring[slot]);  // pushed kPending/2 events ago: still mid-queue
      // Replace the cancelled event so the standing population stays at
      // kPending: pops average one fire plus one-third of a reap per
      // iteration, so an unpaired cancel would drain the queue to empty and
      // the "hold" model would silently measure a near-empty queue.
      push_event();
    }
    ring[slot] = id;
  };
  WallTimer timer;
  size_t prefill = total_events < kPending ? total_events : kPending;
  for (size_t i = 0; i < prefill; ++i) {
    schedule_one();
  }
  for (size_t i = prefill; i < total_events; ++i) {
    schedule_one();
    queue.Step();
  }
  uint64_t fired = 0;
  while (queue.Step()) {
    ++fired;
  }
  double seconds = timer.ElapsedSeconds();
  MUDI_CHECK_GT(fired, 0u);
  return seconds > 0.0 ? static_cast<double>(total_events) / seconds : 0.0;
}

struct OptimizationDelta {
  std::string name;
  std::string description;
  double before_events_per_sec = 0.0;
  double after_events_per_sec = 0.0;
  double speedup = 0.0;
};

OptimizationDelta MeasureStateVectorDelta() {
  size_t events = ScaledCount(2000000);
  // Interleaved A/B/A/B repetitions so cache warm-up and frequency scaling
  // bias neither side; keep the best rate of each (least-noise estimator).
  double before = 0.0;
  double after = 0.0;
  for (int round = 0; round < 3; ++round) {
    double b = ChurnEventsPerSecond<LegacyQueue>(events);
    double a = ChurnEventsPerSecond<StateVectorQueue>(events);
    before = b > before ? b : before;
    after = a > after ? a : after;
  }
  OptimizationDelta delta;
  delta.name = "sim.event-state-vector";
  delta.description =
      "Replace the event queue's live_/cancelled_ unordered_sets with a flat "
      "per-id state vector (src/sim/simulator.cc); per event, two hash "
      "inserts + two hash erases become two byte writes.";
  delta.before_events_per_sec = before;
  delta.after_events_per_sec = after;
  delta.speedup = before > 0.0 ? after / before : 0.0;
  return delta;
}

// ---------------------------------------------------------------------------
// Optimization micro-benchmarks: sim.calendar-queue and sim.event-arena.
//
// Isolation ladder — each adjacent pair differs in exactly one mechanism:
//   LegacyQueue       -> StateVectorQueue : liveness bookkeeping (PR 4)
//   HeapSlotQueue     -> CalendarSlotQueue: ordering structure (binary heap
//                        vs calendar buckets over the same 20-byte items),
//                        identical std::function slot store on both sides
//   CalendarSlotQueue -> CalendarArenaQueue: callback storage (heap-backed
//                        std::function slots vs EventArena + SmallFunction)
// The last rung of each pair is what src/sim/simulator.cc ships.

// std::function payloads in a free-list-recycled slot vector; shared by both
// sides of the ordering pair so only the queue structure differs.
class FunctionSlotStore {
 public:
  uint32_t Acquire(std::function<void()> cb, uint64_t id) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(cbs_.size());
      cbs_.emplace_back();
      ids_.push_back(0);
    }
    cbs_[slot] = std::move(cb);
    ids_[slot] = id;
    return slot;
  }
  void Recycle(uint32_t slot) {
    cbs_[slot] = nullptr;
    free_.push_back(slot);
  }
  std::function<void()>& cb(uint32_t slot) { return cbs_[slot]; }
  uint64_t id(uint32_t slot) const { return ids_[slot]; }

 private:
  std::vector<std::function<void()>> cbs_;
  std::vector<uint64_t> ids_;
  std::vector<uint32_t> free_;
};

struct SlotLater {
  bool operator()(const CalendarQueue::Item& a, const CalendarQueue::Item& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

class HeapSlotQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    SetState(id, 1);
    queue_.push(CalendarQueue::Item{t, next_seq_++, store_.Acquire(std::move(cb), id)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (id >= state_.size() || state_[id] != 1) {
      return false;
    }
    state_[id] = 2;
    return true;
  }
  bool Step() {
    while (!queue_.empty() && state_[store_.id(queue_.top().slot)] == 2) {
      state_[store_.id(queue_.top().slot)] = 0;
      store_.Recycle(queue_.top().slot);
      queue_.pop();
    }
    if (queue_.empty()) {
      return false;
    }
    CalendarQueue::Item item = queue_.top();
    queue_.pop();
    state_[store_.id(item.slot)] = 0;
    std::function<void()> cb = std::move(store_.cb(item.slot));
    store_.Recycle(item.slot);
    cb();
    return true;
  }

 private:
  void SetState(uint64_t id, uint8_t s) {
    if (id >= state_.size()) {
      state_.resize(id + 1, 0);
    }
    state_[id] = s;
  }
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  std::priority_queue<CalendarQueue::Item, std::vector<CalendarQueue::Item>, SlotLater> queue_;
  FunctionSlotStore store_;
  std::vector<uint8_t> state_;
};

class CalendarSlotQueue {
 public:
  uint64_t Schedule(double t, std::function<void()> cb) {
    uint64_t id = next_id_++;
    SetState(id, 1);
    queue_.Push(CalendarQueue::Item{t, next_seq_++, store_.Acquire(std::move(cb), id)});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (id >= state_.size() || state_[id] != 1) {
      return false;
    }
    state_[id] = 2;
    return true;
  }
  bool Step() {
    while (const CalendarQueue::Item* top = queue_.PeekMin()) {
      if (state_[store_.id(top->slot)] != 2) {
        break;
      }
      state_[store_.id(top->slot)] = 0;
      store_.Recycle(top->slot);
      queue_.PopMin();
    }
    if (queue_.empty()) {
      return false;
    }
    CalendarQueue::Item item = queue_.PopMin();
    state_[store_.id(item.slot)] = 0;
    std::function<void()> cb = std::move(store_.cb(item.slot));
    store_.Recycle(item.slot);
    cb();
    return true;
  }

 private:
  void SetState(uint64_t id, uint8_t s) {
    if (id >= state_.size()) {
      state_.resize(id + 1, 0);
    }
    state_[id] = s;
  }
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  CalendarQueue queue_;
  FunctionSlotStore store_;
  std::vector<uint8_t> state_;
};

// The full production path: calendar ordering + EventArena slots +
// SmallFunction callbacks, mirroring Simulator's one-shot fire sequence.
class CalendarArenaQueue {
 public:
  uint64_t Schedule(double t, SmallFunction<void()> cb) {
    uint64_t id = next_id_++;
    EventArena::Slot slot = arena_.Allocate();
    EventArena::Event& ev = arena_[slot];
    ev.time = t;
    ev.seq = next_seq_++;
    ev.id = id;
    ev.cb = std::move(cb);
    SetState(id, 1);
    queue_.Push(CalendarQueue::Item{t, ev.seq, slot});
    return id;
  }
  bool Cancel(uint64_t id) {
    if (id >= state_.size() || state_[id] != 1) {
      return false;
    }
    state_[id] = 2;
    return true;
  }
  bool Step() {
    while (const CalendarQueue::Item* top = queue_.PeekMin()) {
      if (state_[arena_[top->slot].id] != 2) {
        break;
      }
      state_[arena_[top->slot].id] = 0;
      arena_.Recycle(top->slot);
      queue_.PopMin();
    }
    if (queue_.empty()) {
      return false;
    }
    CalendarQueue::Item item = queue_.PopMin();
    EventArena::Event& ev = arena_[item.slot];
    state_[ev.id] = 0;
    SmallFunction<void()> cb = std::move(ev.cb);
    arena_.Recycle(item.slot);
    cb();
    return true;
  }

 private:
  void SetState(uint64_t id, uint8_t s) {
    if (id >= state_.size()) {
      state_.resize(id + 1, 0);
    }
    state_[id] = s;
  }
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  CalendarQueue queue_;
  EventArena arena_;
  std::vector<uint8_t> state_;
};

OptimizationDelta MeasureCalendarQueueDelta() {
  size_t events = ScaledCount(2000000);
  double before = 0.0;
  double after = 0.0;
  for (int round = 0; round < 3; ++round) {
    double b = ChurnEventsPerSecond<HeapSlotQueue>(events);
    double a = ChurnEventsPerSecond<CalendarSlotQueue>(events);
    before = b > before ? b : before;
    after = a > after ? a : after;
  }
  OptimizationDelta delta;
  delta.name = "sim.calendar-queue";
  delta.description =
      "Replace the std::priority_queue event ordering with a calendar/bucket "
      "queue (src/sim/calendar_queue.h): O(1) push into 1 ms buckets sorted "
      "lazily when the clock enters them, bitmap next-bucket scan, min-heap "
      "overflow for far-future events. Same slot store on both sides.";
  delta.before_events_per_sec = before;
  delta.after_events_per_sec = after;
  delta.speedup = before > 0.0 ? after / before : 0.0;
  return delta;
}

OptimizationDelta MeasureEventArenaDelta() {
  size_t events = ScaledCount(2000000);
  double before = 0.0;
  double after = 0.0;
  for (int round = 0; round < 3; ++round) {
    double b = ChurnEventsPerSecond<CalendarSlotQueue>(events);
    double a = ChurnEventsPerSecond<CalendarArenaQueue>(events);
    before = b > before ? b : before;
    after = a > after ? a : after;
  }
  OptimizationDelta delta;
  delta.name = "sim.event-arena";
  delta.description =
      "Store events in a slab arena with small-buffer-optimized callbacks "
      "(src/sim/event_arena.h, src/common/small_function.h) instead of "
      "heap-allocating one std::function per event; slots recycle LIFO so "
      "the steady state is allocation-free (mudi_perf_alloc_hook-verified).";
  delta.before_events_per_sec = before;
  delta.after_events_per_sec = after;
  delta.speedup = before > 0.0 ? after / before : 0.0;
  return delta;
}

// ---------------------------------------------------------------------------
// Optimization micro-benchmark: ml.fit-cache.
//
// Before: the PR-6-era fit path — one serial SelectBestModel per dataset,
// every call cross-validating the full zoo from scratch. After: the batch
// SelectBestModelsCached path with a warm FitCache, i.e. what a re-tune or a
// repeated policy.initialize pays. Units are model selections per second
// (the `events` in this entry's fields are selection shards, not simulator
// events — same before/after schema).

OptimizationDelta MeasureFitCacheDelta() {
  // Synthetic selection problems sized like the real ones: per task, 24
  // samples of 12 features, Weyl-generated, with a smooth nonlinear target.
  constexpr size_t kTasks = 4;
  constexpr size_t kSamples = 24;
  constexpr size_t kFeatures = 12;
  std::vector<std::vector<std::vector<double>>> xs(kTasks);
  std::vector<std::vector<double>> ys(kTasks);
  uint64_t key = 0;
  for (size_t task = 0; task < kTasks; ++task) {
    for (size_t i = 0; i < kSamples; ++i) {
      std::vector<double> row(kFeatures);
      double acc = 0.0;
      for (size_t f = 0; f < kFeatures; ++f) {
        key += 0x9E3779B97F4A7C15ull;
        row[f] = static_cast<double>(key >> 52) / 409.6;  // [0, 10)
        acc += row[f] * (static_cast<double>(f % 3) - 1.0);
      }
      xs[task].push_back(std::move(row));
      ys[task].push_back(acc + 0.1 * static_cast<double>(task) +
                         0.05 * static_cast<double>(i % 5));
    }
  }
  std::vector<FitTask> tasks;
  for (size_t task = 0; task < kTasks; ++task) {
    tasks.push_back(FitTask{&xs[task], &ys[task], 5});
  }
  auto zoo = DefaultRegressorZoo();

  double before = 0.0;
  double after = 0.0;
  for (int round = 0; round < 3; ++round) {
    {
      WallTimer timer;
      for (size_t task = 0; task < kTasks; ++task) {
        ModelSelectionResult result = SelectBestModel(zoo, xs[task], ys[task], 5);
        MUDI_CHECK(result.model != nullptr);
      }
      double seconds = timer.ElapsedSeconds();
      double rate = seconds > 0.0 ? static_cast<double>(kTasks) / seconds : 0.0;
      before = rate > before ? rate : before;
    }
    {
      FitCache::Global().Clear();
      std::vector<SharedSelectionResult> warm = SelectBestModelsCached(zoo, tasks);
      MUDI_CHECK_EQ(warm.size(), kTasks);
      WallTimer timer;
      std::vector<SharedSelectionResult> cached = SelectBestModelsCached(zoo, tasks);
      double seconds = timer.ElapsedSeconds();
      MUDI_CHECK(cached.back().from_cache);
      double rate = seconds > 0.0 ? static_cast<double>(kTasks) / seconds : 0.0;
      after = rate > after ? rate : after;
    }
  }
  FitCache::Global().Clear();  // do not leak synthetic entries into anything else
  OptimizationDelta delta;
  delta.name = "ml.fit-cache";
  delta.description =
      "Memoize model selection per data fingerprint (src/ml/fit_cache.h) and "
      "batch it through the deterministic FitPool "
      "(SelectBestModelsCached): a warm re-fit skips the full zoo "
      "cross-validation. Rates are model selections/s, uncached serial "
      "SelectBestModel vs warm cache.";
  delta.before_events_per_sec = before;
  delta.after_events_per_sec = after;
  delta.speedup = before > 0.0 ? after / before : 0.0;
  return delta;
}

// ---------------------------------------------------------------------------
// JSON emission.

void WriteDecision(std::ostream& os, const DecisionLatency& d) {
  os << "{\"count\":" << d.count << ",\"p50\":";
  perf::WriteJsonNumber(os, d.p50);
  os << ",\"p95\":";
  perf::WriteJsonNumber(os, d.p95);
  os << ",\"p99\":";
  perf::WriteJsonNumber(os, d.p99);
  os << ",\"max\":";
  perf::WriteJsonNumber(os, d.max);
  os << "}";
}

void WriteRecord(std::ostream& os, const Record& r) {
  os << "    {\"preset\":";
  perf::WriteJsonEscaped(os, r.preset);
  os << ",\"policy\":";
  perf::WriteJsonEscaped(os, r.policy);
  os << ",\"wall_ms\":";
  perf::WriteJsonNumber(os, r.wall_ms);
  os << ",\"sim_ms\":";
  perf::WriteJsonNumber(os, r.sim_ms);
  os << ",\"events_fired\":" << r.events_fired << ",\"events_scheduled\":" << r.events_scheduled
     << ",\"events_cancelled\":" << r.events_cancelled << ",\"events_per_sec\":";
  perf::WriteJsonNumber(os, r.events_per_sec);
  os << ",\"sim_seconds_per_wall_second\":";
  perf::WriteJsonNumber(os, r.sim_seconds_per_wall_second);
  os << ",\"decision_latency_ms\":";
  WriteDecision(os, r.decision);
  os << ",\"peak_rss_mb\":";
  perf::WriteJsonNumber(os, r.peak_rss_mb);
  os << ",\"perf\":" << r.report.ToJsonString();
  os << "}";
}

void WriteBenchJson(std::ostream& os, const std::vector<Record>& records,
                    const std::vector<OptimizationDelta>& optimizations) {
  os << "{\n  \"schema\": \"mudi.bench_throughput.v1\",\n  \"build\": ";
  perf::BuildMetadata::Current().WriteJson(os);
  os << ",\n  \"bench_scale\": ";
  perf::WriteJsonNumber(os, BenchScale());
  os << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    WriteRecord(os, records[i]);
    os << (i + 1 < records.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"optimizations\": [\n";
  for (size_t i = 0; i < optimizations.size(); ++i) {
    const OptimizationDelta& opt = optimizations[i];
    os << "    {\"name\":";
    perf::WriteJsonEscaped(os, opt.name);
    os << ",\"description\":";
    perf::WriteJsonEscaped(os, opt.description);
    os << ",\"before_events_per_sec\":";
    perf::WriteJsonNumber(os, opt.before_events_per_sec);
    os << ",\"after_events_per_sec\":";
    perf::WriteJsonNumber(os, opt.after_events_per_sec);
    os << ",\"speedup\":";
    perf::WriteJsonNumber(os, opt.speedup);
    os << "}" << (i + 1 < optimizations.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

// ---------------------------------------------------------------------------
// CLI.

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

int ValidateFile(const std::string& path) {
  StatusOr<perf::JsonValue> doc = perf::ParseJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "[bench_throughput] %s\n", doc.status().message().c_str());
    return 1;
  }
  Status status = perf::ValidateBenchThroughputJson(*doc);
  if (!status.ok()) {
    std::fprintf(stderr, "[bench_throughput] %s\n", status.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_throughput] %s: valid mudi.bench_throughput.v1\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Regression compare (--compare / --against / --max-regress).

struct CompareEntry {
  double events_per_sec = 0.0;
  double decision_p50 = 0.0;
  double decision_p95 = 0.0;
};
using CompareMap = std::map<std::pair<std::string, std::string>, CompareEntry>;

// Pulls (preset, policy) -> {events/s, decision p50/p95} out of a validated
// mudi.bench_throughput.v1 document.
CompareMap EntriesFromJson(const perf::JsonValue& doc) {
  CompareMap entries;
  const perf::JsonValue* records = doc.Find("records");
  MUDI_CHECK(records != nullptr && records->is_array());
  for (const perf::JsonValue& rec : records->array()) {
    CompareEntry entry;
    entry.events_per_sec = rec.Find("events_per_sec")->number();
    const perf::JsonValue* decision = rec.Find("decision_latency_ms");
    entry.decision_p50 = decision->Find("p50")->number();
    entry.decision_p95 = decision->Find("p95")->number();
    entries[{rec.Find("preset")->string(), rec.Find("policy")->string()}] = entry;
  }
  return entries;
}

CompareMap EntriesFromRecords(const std::vector<Record>& records) {
  CompareMap entries;
  for (const Record& r : records) {
    entries[{r.preset, r.policy}] = CompareEntry{r.events_per_sec, r.decision.p50, r.decision.p95};
  }
  return entries;
}

StatusOr<CompareMap> LoadCompareFile(const std::string& path) {
  StatusOr<perf::JsonValue> doc = perf::ParseJsonFile(path);
  if (!doc.ok()) {
    return doc.status();
  }
  Status valid = perf::ValidateBenchThroughputJson(*doc);
  if (!valid.ok()) {
    return valid;
  }
  return EntriesFromJson(*doc);
}

// Prints the per-(preset, policy) regression table for every pair present in
// both maps. With max_regress >= 0, returns 3 when any pair's events/s fell
// by more than that fraction; otherwise returns 0.
int CompareAndPrint(const CompareMap& base, const CompareMap& fresh, double max_regress) {
  auto pct = [](double from, double to) {
    return from > 0.0 ? (to - from) / from * 100.0 : 0.0;
  };
  std::printf("%-8s %-10s %14s %14s %8s %12s %12s %8s\n", "preset", "policy", "base ev/s",
              "new ev/s", "ev/s%", "base p95 ms", "new p95 ms", "p95%");
  std::vector<std::string> regressed;
  size_t compared = 0;
  for (const auto& [key, now] : fresh) {
    auto it = base.find(key);
    if (it == base.end()) {
      std::printf("%-8s %-10s %14s\n", key.first.c_str(), key.second.c_str(),
                  "(new, no base)");
      continue;
    }
    const CompareEntry& was = it->second;
    ++compared;
    std::printf("%-8s %-10s %14.0f %14.0f %+7.1f%% %12.4f %12.4f %+7.1f%%\n", key.first.c_str(),
                key.second.c_str(), was.events_per_sec, now.events_per_sec,
                pct(was.events_per_sec, now.events_per_sec), was.decision_p95, now.decision_p95,
                pct(was.decision_p95, now.decision_p95));
    if (max_regress >= 0.0 && now.events_per_sec < was.events_per_sec * (1.0 - max_regress)) {
      regressed.push_back(key.first + "/" + key.second);
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "[bench_throughput] no (preset, policy) pairs in common\n");
    return 2;
  }
  if (!regressed.empty()) {
    std::fprintf(stderr, "[bench_throughput] events/s regressed >%.0f%% vs baseline:",
                 max_regress * 100.0);
    for (const std::string& name : regressed) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 3;
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  // "smoke" leads deliberately: it profiles the same curves as "small" (same
  // oracle seed and observed types), so the later Mudi runs exercise — and
  // the committed trajectory records — the warm FitCache path that re-tunes
  // and repeated initializations actually take.
  std::vector<std::string> preset_names = {"smoke", "small", "medium", "large"};
  std::vector<std::string> systems(std::begin(kAllSystems), std::end(kAllSystems));
  std::string compare_path;
  std::string against_path;
  double max_regress = -1.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = value_of("--out=");
    } else if (arg.rfind("--presets=", 0) == 0) {
      preset_names = SplitCsv(value_of("--presets="));
    } else if (arg.rfind("--systems=", 0) == 0) {
      systems = SplitCsv(value_of("--systems="));
    } else if (arg.rfind("--validate=", 0) == 0) {
      return ValidateFile(value_of("--validate="));
    } else if (arg.rfind("--compare=", 0) == 0) {
      compare_path = value_of("--compare=");
    } else if (arg.rfind("--against=", 0) == 0) {
      against_path = value_of("--against=");
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      max_regress = std::atof(value_of("--max-regress=").c_str());
      MUDI_CHECK_GT(max_regress, 0.0);
      MUDI_CHECK_LT(max_regress, 1.0);
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--out=path] [--presets=a,b] [--systems=x,y]\n"
                   "       bench_throughput --validate=path\n"
                   "       bench_throughput --compare=base.json [--against=new.json]\n"
                   "                        [--max-regress=0.2]\n");
      return 2;
    }
  }
  MUDI_CHECK(!preset_names.empty());
  MUDI_CHECK(!systems.empty());

  if (!against_path.empty()) {
    // Pure compare of two existing artifacts; nothing is run.
    if (compare_path.empty()) {
      std::fprintf(stderr, "[bench_throughput] --against requires --compare=base.json\n");
      return 2;
    }
    StatusOr<CompareMap> base = LoadCompareFile(compare_path);
    if (!base.ok()) {
      std::fprintf(stderr, "[bench_throughput] %s: %s\n", compare_path.c_str(),
                   base.status().message().c_str());
      return 1;
    }
    StatusOr<CompareMap> fresh = LoadCompareFile(against_path);
    if (!fresh.ok()) {
      std::fprintf(stderr, "[bench_throughput] %s: %s\n", against_path.c_str(),
                   fresh.status().message().c_str());
      return 1;
    }
    return CompareAndPrint(*base, *fresh, max_regress);
  }

  std::vector<Preset> all_presets = BuildPresets();
  std::vector<Record> records;
  for (const std::string& name : preset_names) {
    const Preset* preset = nullptr;
    for (const Preset& p : all_presets) {
      if (p.name == name) {
        preset = &p;
      }
    }
    if (preset == nullptr) {
      std::fprintf(stderr, "[bench_throughput] unknown preset '%s' (smoke|small|medium|large)\n",
                   name.c_str());
      return 2;
    }
    for (const std::string& system : systems) {
      std::fprintf(stderr, "[bench_throughput] %s / %s ...\n", name.c_str(), system.c_str());
      Record record = RunOne(*preset, system);
      std::fprintf(stderr,
                   "[bench_throughput]   %.0f events/s, %.0f sim-s/wall-s, select p95 %.3f ms "
                   "(%llu decisions), wall %.1f s\n",
                   record.events_per_sec, record.sim_seconds_per_wall_second,
                   record.decision.p95, static_cast<unsigned long long>(record.decision.count),
                   record.wall_ms / kMsPerSecond);
      records.push_back(std::move(record));
    }
  }

  std::vector<OptimizationDelta> optimizations;
  struct NamedMeasure {
    const char* name;
    OptimizationDelta (*measure)();
  };
  const NamedMeasure measures[] = {
      {"sim.event-state-vector", &MeasureStateVectorDelta},
      {"sim.calendar-queue", &MeasureCalendarQueueDelta},
      {"sim.event-arena", &MeasureEventArenaDelta},
      {"ml.fit-cache", &MeasureFitCacheDelta},
  };
  for (const NamedMeasure& m : measures) {
    std::fprintf(stderr, "[bench_throughput] measuring %s delta ...\n", m.name);
    optimizations.push_back(m.measure());
    std::fprintf(stderr, "[bench_throughput]   before %.0f /s, after %.0f /s (%.2fx)\n",
                 optimizations.back().before_events_per_sec,
                 optimizations.back().after_events_per_sec, optimizations.back().speedup);
  }

  std::ostringstream json;
  WriteBenchJson(json, records, optimizations);

  // Self-check before touching disk: a malformed artifact must never land.
  StatusOr<perf::JsonValue> parsed = perf::ParseJson(json.str());
  MUDI_CHECK(parsed.ok());
  Status valid = perf::ValidateBenchThroughputJson(*parsed);
  if (!valid.ok()) {
    std::fprintf(stderr, "[bench_throughput] self-validation failed: %s\n",
                 valid.message().c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[bench_throughput] cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << json.str();
  out.close();
  std::fprintf(stderr, "[bench_throughput] wrote %s (%zu records, %zu optimizations)\n",
               out_path.c_str(), records.size(), optimizations.size());

  if (!compare_path.empty()) {
    StatusOr<CompareMap> base = LoadCompareFile(compare_path);
    if (!base.ok()) {
      std::fprintf(stderr, "[bench_throughput] %s: %s\n", compare_path.c_str(),
                   base.status().message().c_str());
      return 1;
    }
    return CompareAndPrint(*base, EntriesFromRecords(records), max_regress);
  }
  return 0;
}

}  // namespace
}  // namespace mudi

int main(int argc, char** argv) { return mudi::Main(argc, argv); }
