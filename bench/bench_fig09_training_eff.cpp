// Fig. 9 reproduction: training efficiency — task completion time (CT),
// waiting time, and makespan for Mudi vs GSLICE, gpulets, MuxFlow in the
// physical-scale cluster, and vs Optimal in the simulated 1000-GPU cluster.
// Also prints the §5.4 optimality analysis rows (Mudi-vs-Optimal ratios).
//
// Paper shape: Mudi reduces CT up to 2.27×/1.49×/1.48× vs GSLICE, gpulets,
// MuxFlow; waiting time up to 1.63×, makespan up to 2.25×; Mudi within ~5%
// of Optimal on CT/waiting/makespan, and within ~10% on iteration time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

void Report(const char* title, const std::map<std::string, mudi::ExperimentResult>& results,
            const std::string& reference) {
  using namespace mudi;
  std::printf("== Fig. 9 %s ==\n", title);
  Table table({"system", "mean CT (s)", "P95 CT (s)", "mean wait (s)", "makespan (s)",
               "CT vs " + reference});
  double ref_ct = results.at(reference).MeanCtMs();
  for (const auto& [name, result] : results) {
    table.AddRow({name, Table::Num(result.MeanCtMs() / kMsPerSecond, 1),
                  Table::Num(result.P95CtMs() / kMsPerSecond, 1),
                  Table::Num(result.MeanWaitingMs() / kMsPerSecond, 1),
                  Table::Num(result.makespan_ms / kMsPerSecond, 1),
                  Table::Num(result.MeanCtMs() / ref_ct, 2) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  using namespace mudi;
  // (a) physical-scale cluster.
  {
    ExperimentOptions options = PhysicalClusterOptions(ScaledCount(300));
    auto results = RunSystems(options, EndToEndSystemNames());
    Report("(a) physical cluster", results, "Mudi");
  }
  // (b) simulated 1000-GPU cluster, with Optimal + §5.4 analysis.
  {
    ExperimentOptions options = SimulatedClusterOptions(ScaledCount(5000));
    std::vector<std::string> systems = EndToEndSystemNames();
    systems.push_back("Optimal");
    auto results = RunSystems(options, systems);
    Report("(b) simulated 1000-GPU cluster", results, "Mudi");

    // §5.4 optimality analysis: Mudi vs the exhaustive Optimal baseline.
    const auto& mudi = results.at("Mudi");
    const auto& optimal = results.at("Optimal");
    Table analysis({"metric", "Mudi", "Optimal", "ratio"});
    analysis.AddRow({"mean CT (s)", Table::Num(mudi.MeanCtMs() / kMsPerSecond, 1),
                     Table::Num(optimal.MeanCtMs() / kMsPerSecond, 1),
                     Table::Num(mudi.MeanCtMs() / optimal.MeanCtMs(), 3)});
    analysis.AddRow({"mean wait (s)", Table::Num(mudi.MeanWaitingMs() / kMsPerSecond, 1),
                     Table::Num(optimal.MeanWaitingMs() / kMsPerSecond, 1),
                     Table::Num(mudi.MeanWaitingMs() /
                                    std::max(optimal.MeanWaitingMs(), 1.0),
                                3)});
    analysis.AddRow({"makespan (s)", Table::Num(mudi.makespan_ms / kMsPerSecond, 1),
                     Table::Num(optimal.makespan_ms / kMsPerSecond, 1),
                     Table::Num(mudi.makespan_ms / optimal.makespan_ms, 3)});
    analysis.AddRow({"SLO violation", Table::Pct(mudi.OverallSloViolationRate(), 2),
                     Table::Pct(optimal.OverallSloViolationRate(), 2),
                     Table::Num(mudi.OverallSloViolationRate() /
                                    std::max(optimal.OverallSloViolationRate(), 1e-6),
                                2)});
    std::printf("== §5.4 optimality analysis ==\n%s\n", analysis.ToString().c_str());
    std::printf("Paper: Mudi within 5%% of Optimal on CT/waiting/makespan; E <= 1.10 on\n"
                "iteration time and 1.08 on SLO violation.\n");
  }
  return 0;
}
