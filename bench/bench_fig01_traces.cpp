// Fig. 1 reproduction (motivation): (a) fluctuating request arrival rates of
// online inference services — random walk with inflection points and no
// periodicity; (b) GPU-utilization distribution of inference services —
// requested resources far above max/mean/min utilization.
//
// The paper analyzes Alibaba production traces; we report the statistics of
// our synthetic equivalents (see DESIGN.md §1).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/workload/request_generator.h"

int main() {
  using namespace mudi;

  // (a) QPS fluctuation over time for two face-recognition-style services.
  std::printf("== Fig. 1(a): QPS over time (two services, samples every 5 min) ==\n");
  Table qps_table({"t (min)", "service A QPS", "service B QPS"});
  FluctuatingQps::Options options;
  options.min_qps = 30000.0;  // paper: 30k–60k QPS
  options.max_qps = 60000.0;
  options.horizon_ms = 8.0 * kMsPerHour;
  options.seed = 1;
  FluctuatingQps service_a(options);
  options.seed = 2;
  FluctuatingQps service_b(options);
  for (TimeMs t = 0.0; t <= options.horizon_ms; t += 30.0 * kMsPerMinute) {
    qps_table.AddRow({Table::Num(t / kMsPerMinute, 0), Table::Num(service_a.QpsAt(t), 0),
                      Table::Num(service_b.QpsAt(t), 0)});
  }
  std::printf("%s\n", qps_table.ToString().c_str());

  // Fluctuation statistics: the paper highlights random fluctuation within
  // [30k, 60k] and occasional inflection points.
  std::vector<double> samples;
  for (TimeMs t = 0.0; t <= options.horizon_ms; t += kMsPerMinute) {
    samples.push_back(service_a.QpsAt(t));
  }
  std::printf("service A: min=%.0f max=%.0f mean=%.0f (expect within [30000, 60000])\n\n",
              *std::min_element(samples.begin(), samples.end()),
              *std::max_element(samples.begin(), samples.end()), Mean(samples));

  // (b) GPU utilization of inference services: each service dedicated a
  // whole GPU (the over-provisioned production deployment the paper
  // criticizes), measured at production-scale request rates. Utilization =
  // fraction of time kernels execute on the device.
  std::printf("== Fig. 1(b): inference GPU utilization on dedicated GPUs ==\n");
  PerfOracle oracle(42);
  Table util_table({"service", "min util (0.5x load)", "mean util", "max util (1.5x load)",
                    "requested"});
  double mean_sum = 0.0;
  for (const auto& service : ModelZoo::InferenceServices()) {
    // Per-replica production rate: scaled so the busiest service peaks ~50%.
    double base_qps = 0.5 / (service.exec_ms_per_sample_full / kMsPerSecond) / 1.5;
    auto util = [&](double qps) {
      int b = 64;
      double batch_ms =
          oracle.InferenceBatchLatency(service, b, 1.0, {}).execute_ms;
      return std::min(1.0, qps / b * batch_ms / kMsPerSecond);
    };
    double lo = util(0.5 * base_qps);
    double mid = util(base_qps);
    double hi = util(1.5 * base_qps);
    mean_sum += mid;
    util_table.AddRow({service.name, Table::Pct(lo), Table::Pct(mid), Table::Pct(hi),
                       "100% (whole GPU)"});
  }
  util_table.AddRow({"fleet mean", "", Table::Pct(mean_sum / 6.0), "", ""});
  std::printf("%s\n", util_table.ToString().c_str());
  std::printf("Paper shape: utilization below 52%% with mean SM util < 37%% — services\n"
              "request far more GPU than they use.\n");
  return 0;
}
