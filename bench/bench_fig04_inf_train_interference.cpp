// Fig. 4 reproduction: breakdown of average interference for GPT2 and
// ResNet50 services multiplexed with each *training* task of Tab. 3,
// averaged over batch {16..256} × GPU% {10..90}.
//
// Paper shape: E2E interference drops to ≈ 1.67× (GPT2) / 1.21× (ResNet50)
// because training's single-threaded data loading relieves CPU contention;
// image-transfer interference falls to ≈ 1.16×.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/gpu/perf_oracle.h"

int main() {
  using namespace mudi;
  PerfOracle oracle(42);
  const std::vector<int> batches{16, 32, 64, 128, 256};
  const auto& tasks = ModelZoo::TrainingTasks();

  for (const char* name : {"GPT2", "ResNet50"}) {
    const InferenceServiceSpec& service = ModelZoo::InferenceServiceByName(name);
    Table table({"training task", "preprocess", "transfer", "execute", "E2E"});
    double e2e_all = 0.0;
    for (const auto& task : tasks) {
      double pre = 0.0, xfer = 0.0, exec = 0.0, e2e = 0.0;
      int count = 0;
      for (int b : batches) {
        for (double g : ProfilingGpuFractions()) {
          InferencePhaseLatency solo = oracle.InferenceBatchLatency(service, b, g, {});
          std::vector<ColocatedTraining> colocated{{&task, std::max(0.1, 1.0 - g)}};
          InferencePhaseLatency colo = oracle.InferenceBatchLatency(service, b, g, colocated);
          pre += colo.preprocess_ms / solo.preprocess_ms;
          xfer += colo.transfer_ms / solo.transfer_ms;
          exec += colo.execute_ms / solo.execute_ms;
          e2e += colo.total_ms() / solo.total_ms();
          ++count;
        }
      }
      e2e_all += e2e / count;
      table.AddRow({task.name, Table::Num(pre / count, 2) + "x",
                    Table::Num(xfer / count, 2) + "x", Table::Num(exec / count, 2) + "x",
                    Table::Num(e2e / count, 2) + "x"});
    }
    std::printf("== Fig. 4: %s co-located with training tasks ==\n%s", name,
                table.ToString().c_str());
    std::printf("average E2E interference: %.2fx\n\n", e2e_all / tasks.size());
  }
  std::printf("Paper: average E2E 1.67x (GPT2) / 1.21x (ResNet50) — training co-location\n"
              "interferes far less than inference co-location (compare bench_fig03).\n");
  return 0;
}
