// Fig. 16 reproduction: Mudi's behaviour under bursty QPS — the ResNet50 +
// YOLOv5 case study. At t=100 s the service's request rate bursts to 3×;
// the Tuner adapts the batching size and GPU%, and the Memory Manager swaps
// YOLOv5 memory to the host; at t=200 s the burst ends and resources are
// reclaimed.
//
// Paper shape: batching size tracks the burst; training memory is swapped
// out during the burst and restored after; SLO violations stay ~0.7%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;

  TrainingArrival yolo;
  yolo.task_id = 0;
  yolo.arrival_ms = 5.0 * kMsPerSecond;
  yolo.type_index = 7;  // YOLOv5
  yolo.work_full_gpu_ms = 1e9;  // runs for the whole case study

  ExperimentOptions options;
  options.num_nodes = 1;
  options.gpus_per_node = 1;
  options.num_services = 1;
  options.service_offset = 0;  // ResNet50
  options.horizon_ms = 300.0 * kMsPerSecond;
  options.trace_override = {yolo};
  options.trace_device_id = 0;
  options.qps_factory = [](size_t, int) -> std::shared_ptr<const QpsProfile> {
    auto base = std::make_shared<ConstantQps>(200.0);
    return std::make_shared<BurstyQps>(
        base, std::vector<BurstyQps::Burst>{{100.0 * kMsPerSecond, 200.0 * kMsPerSecond, 3.0}});
  };

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  Table table({"t (s)", "QPS", "batch", "GPU%", "swapped (MB)", "resident (MB)"});
  size_t step = std::max<size_t>(1, result.device_series.size() / 30);
  for (size_t i = 0; i < result.device_series.size(); i += step) {
    const DeviceSeriesSample& s = result.device_series[i];
    table.AddRow({Table::Num(s.time_ms / kMsPerSecond, 0), Table::Num(s.qps, 0),
                  std::to_string(s.batch), Table::Pct(s.inference_fraction, 0),
                  Table::Num(s.swapped_mb, 0), Table::Num(s.mem_resident_mb, 0)});
  }
  std::printf("== Fig. 16: Mudi under a 3x QPS burst (ResNet50 + YOLOv5) ==\n%s\n",
              table.ToString().c_str());
  std::printf("SLO violation rate during the run: %s\n",
              Table::Pct(result.OverallSloViolationRate(), 2).c_str());
  std::printf("swap events: %zu, total swapped: %.0f MB\n", result.swap_events,
              result.swap_total_mb);
  std::printf("Paper shape: batch/GPU%% rise with the burst at t=100s and relax at t=200s;\n"
              "YOLOv5 memory swaps to host during the burst (avg transfer ~23 ms); SLO\n"
              "violations stay near 0.7%%.\n");
  return 0;
}
