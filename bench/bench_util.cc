#include "bench/bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/wallclock.h"

namespace mudi {

std::map<std::string, ExperimentResult> RunSystems(const ExperimentOptions& options,
                                                   const std::vector<std::string>& systems,
                                                   bool verbose) {
  std::map<std::string, ExperimentResult> results;
  for (const std::string& name : systems) {
    WallTimer timer;
    PerfOracle profiling_oracle(options.oracle_seed);
    auto policy = MakePolicy(name, profiling_oracle);
    ClusterExperiment experiment(options, policy.get());
    results[name] = experiment.Run();
    if (verbose) {
      double secs = timer.ElapsedSeconds();
      std::fprintf(stderr, "[bench] %s done in %.1fs (SLO viol %.2f%%, %zu/%zu tasks)\n",
                   name.c_str(), secs, 100.0 * results[name].OverallSloViolationRate(),
                   results[name].CompletedTasks(), results[name].tasks.size());
    }
  }
  return results;
}

StatusOr<double> ParseBenchScale(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  const std::string trimmed = text.substr(begin, end - begin);
  if (trimmed.empty()) {
    return InvalidArgumentError("MUDI_BENCH_SCALE is set but empty");
  }
  char* parse_end = nullptr;
  double scale = std::strtod(trimmed.c_str(), &parse_end);
  if (parse_end != trimmed.c_str() + trimmed.size()) {
    return InvalidArgumentError("MUDI_BENCH_SCALE is not a number: \"" + text + "\"");
  }
  if (!(scale > 0.0)) {  // also rejects NaN
    return InvalidArgumentError("MUDI_BENCH_SCALE must be > 0, got \"" + text + "\"");
  }
  if (scale > 1.0) {
    return InvalidArgumentError("MUDI_BENCH_SCALE must be <= 1 (benches only scale down), got \"" +
                                text + "\"");
  }
  return scale;
}

double BenchScale() {
  std::optional<std::string> env = GetEnv("MUDI_BENCH_SCALE");
  if (!env.has_value()) {
    return 1.0;
  }
  // Set-but-empty falls through to ParseBenchScale, which rejects it: an
  // empty override is a recipe typo, not a request for the default.
  StatusOr<double> scale = ParseBenchScale(*env);
  if (!scale.ok()) {
    CheckFailed(__FILE__, __LINE__, scale.status().message());
  }
  return *scale;
}

size_t ScaledCount(size_t value) {
  double scaled = static_cast<double>(value) * BenchScale();
  return scaled < 1.0 ? 1 : static_cast<size_t>(scaled + 0.5);
}

}  // namespace mudi
