#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/wallclock.h"

namespace mudi {

std::map<std::string, ExperimentResult> RunSystems(const ExperimentOptions& options,
                                                   const std::vector<std::string>& systems,
                                                   bool verbose) {
  std::map<std::string, ExperimentResult> results;
  for (const std::string& name : systems) {
    WallTimer timer;
    PerfOracle profiling_oracle(options.oracle_seed);
    auto policy = MakePolicy(name, profiling_oracle);
    ClusterExperiment experiment(options, policy.get());
    results[name] = experiment.Run();
    if (verbose) {
      double secs = timer.ElapsedSeconds();
      std::fprintf(stderr, "[bench] %s done in %.1fs (SLO viol %.2f%%, %zu/%zu tasks)\n",
                   name.c_str(), secs, 100.0 * results[name].OverallSloViolationRate(),
                   results[name].CompletedTasks(), results[name].tasks.size());
    }
  }
  return results;
}

double BenchScale() {
  const char* env = std::getenv("MUDI_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  double scale = std::atof(env);
  MUDI_CHECK_GT(scale, 0.0);
  MUDI_CHECK_LE(scale, 1.0);
  return scale;
}

size_t ScaledCount(size_t value) {
  double scaled = static_cast<double>(value) * BenchScale();
  return scaled < 1.0 ? 1 : static_cast<size_t>(scaled + 0.5);
}

}  // namespace mudi
