// Fig. 5 reproduction: latency of GPT2 vs GPU% at various batching sizes,
// (a) solo and (b) co-located with a training task (batch 256 per paper),
// plus the fitted piece-wise linear model at each batching size.
//
// Paper shape: piece-wise linear with a batch-dependent cutoff point; only
// marginal latency improvement beyond the cutoff; the relationship persists
// under co-location (slopes steepen with interference).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/gpu/perf_oracle.h"
#include "src/ml/piecewise_linear.h"

namespace {

void PrintCurves(const mudi::PerfOracle& oracle, const char* title,
                 const std::vector<mudi::ColocatedTraining>& colocated) {
  using namespace mudi;
  const InferenceServiceSpec& service = ModelZoo::InferenceServiceByName("GPT2");
  std::vector<std::string> headers{"GPU%"};
  for (int b : ProfilingBatchSizes()) {
    headers.push_back("b=" + std::to_string(b));
  }
  Table table(headers);
  for (double g : ProfilingGpuFractions()) {
    std::vector<std::string> row{Table::Num(g * 100.0, 0)};
    for (int b : ProfilingBatchSizes()) {
      row.push_back(Table::Num(oracle.InferenceBatchLatency(service, b, g, colocated).total_ms(), 1));
    }
    table.AddRow(row);
  }
  std::printf("== Fig. 5 %s: GPT2 latency (ms) vs GPU%% ==\n%s\n", title,
              table.ToString().c_str());

  // Piece-wise linear fits per batching size.
  Table fits({"batch", "k1", "k2", "cutoff GPU%", "cutoff latency (ms)"});
  Rng rng(7);
  for (int b : ProfilingBatchSizes()) {
    std::vector<double> x, y;
    for (double g : ProfilingGpuFractions()) {
      x.push_back(g);
      y.push_back(oracle.ObserveInferenceBatchLatency(service, b, g, colocated, rng).total_ms());
    }
    PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
    fits.AddRow({std::to_string(b), Table::Num(fit.k1, 1), Table::Num(fit.k2, 1),
                 Table::Num(fit.x0 * 100.0, 0), Table::Num(fit.y0, 1)});
  }
  std::printf("fitted piece-wise linear parameters:\n%s\n", fits.ToString().c_str());
}

}  // namespace

int main() {
  mudi::PerfOracle oracle(42);
  PrintCurves(oracle, "(a) solo-run", {});
  const auto& task = mudi::ModelZoo::TrainingTaskByName("ResNet50");
  PrintCurves(oracle, "(b) co-located with ResNet50 training", {{&task, 0.5}});
  std::printf("Paper shape: latency falls steeply until a batch-dependent cutoff, then is\n"
              "nearly flat; co-location raises levels and steepens slopes (k1).\n");
  return 0;
}
