// Shared helpers for the reproduction benches: run a set of multiplexing
// systems against one experiment configuration and collect results.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/metrics.h"
#include "src/exp/presets.h"

namespace mudi {

// Runs each named system (see MakePolicy) against a copy of `options` and
// returns name → result. Every run uses the same oracle seed, trace, and QPS
// profiles, so differences are policy-driven.
std::map<std::string, ExperimentResult> RunSystems(const ExperimentOptions& options,
                                                   const std::vector<std::string>& systems,
                                                   bool verbose = true);

// Parses a MUDI_BENCH_SCALE value. Accepts a decimal in (0, 1]; anything
// else (empty, non-numeric, trailing garbage, <= 0, > 1) is an
// InvalidArgumentError naming the offending text.
StatusOr<double> ParseBenchScale(const std::string& text);

// Scales every task count etc. via environment variable MUDI_BENCH_SCALE
// (0 < scale <= 1); lets CI run the full suite quickly while the default
// reproduces the paper-scale setup. A set-but-invalid value is a fatal
// error — silently running at full scale would waste a CI slot, silently
// clamping would mislabel the results.
double BenchScale();

// max(1, round(value * BenchScale())).
size_t ScaledCount(size_t value);

}  // namespace mudi

#endif  // BENCH_BENCH_UTIL_H_
