// Fig. 3 reproduction: breakdown of average interference (T_colo / T_solo)
// for GPT2 and ResNet50 services multiplexed with *other inference* tasks,
// averaged over batch {16..256} × GPU% {10..90} configurations.
//
// Paper shape: E2E interference ≈ 3.19× (GPT2) / 2.40× (ResNet50); the
// preprocess/tokenize phase suffers most (3.07× / 4.93×) from CPU contention
// between multi-threaded pipelines.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/gpu/perf_oracle.h"

int main() {
  using namespace mudi;
  PerfOracle oracle(42);
  const std::vector<int> batches{16, 32, 64, 128, 256};

  Table table({"service", "preprocess/tokenize", "transfer", "execute", "E2E"});
  for (const char* name : {"GPT2", "ResNet50"}) {
    const InferenceServiceSpec& service = ModelZoo::InferenceServiceByName(name);
    double pre = 0.0, xfer = 0.0, exec = 0.0, e2e = 0.0;
    int count = 0;
    for (int b : batches) {
      for (double g : ProfilingGpuFractions()) {
        InferencePhaseLatency solo = oracle.InferenceBatchLatency(service, b, g, {});
        InferencePhaseLatency colo =
            oracle.InferenceBatchLatency(service, b, g, {}, /*other_inference_count=*/1);
        pre += colo.preprocess_ms / solo.preprocess_ms;
        xfer += colo.transfer_ms / solo.transfer_ms;
        exec += colo.execute_ms / solo.execute_ms;
        e2e += colo.total_ms() / solo.total_ms();
        ++count;
      }
    }
    table.AddRow({name, Table::Num(pre / count, 2) + "x", Table::Num(xfer / count, 2) + "x",
                  Table::Num(exec / count, 2) + "x", Table::Num(e2e / count, 2) + "x"});
  }
  std::printf("== Fig. 3: interference of inference co-located with inference ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: GPT2 E2E 3.19x (tokenize 3.07x, exec 3.92x); ResNet50 E2E 2.40x\n"
              "(preprocess 4.93x, transfer ~1.9x, exec 2.5x).\n");
  return 0;
}
