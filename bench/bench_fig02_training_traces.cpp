// Fig. 2 reproduction (motivation): CDFs of (a) GPU utilization and (b)
// queueing delay of DL training tasks in large-scale clusters (PAI, Seren,
// Kalos in the paper; synthetic equivalents here).
//
// Calibration targets from §2.1.2: utilization near zero for ~30% of time,
// below 50% for ~85% of time (PAI); queueing delays heavy-tailed with the
// longest exceeding 1000 minutes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace {

// Synthetic per-task GPU-utilization sampler for one "cluster profile":
// a point mass near zero (idle/communication-blocked periods) plus a
// beta-like bulk.
std::vector<double> SampleUtilization(double zero_frac, double bulk_mean, uint64_t seed,
                                      size_t n) {
  mudi::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Uniform() < zero_frac) {
      out.push_back(rng.Uniform(0.0, 0.03));
    } else {
      double u = rng.Normal(bulk_mean, 0.22);
      out.push_back(std::clamp(u, 0.0, 1.0));
    }
  }
  return out;
}

std::vector<double> SampleQueueDelayMinutes(uint64_t seed, size_t n) {
  mudi::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Heavy-tailed Pareto delays, capped at ~2000 minutes.
    out.push_back(std::min(2000.0, rng.Pareto(0.5, 0.75)));
  }
  return out;
}

void PrintCdf(const char* title, const std::vector<std::pair<std::string, std::vector<double>>>&
                                     series,
              const std::vector<double>& probe_points, const char* unit) {
  std::printf("== %s ==\n", title);
  std::vector<std::string> headers{std::string("value (") + unit + ")"};
  for (const auto& [name, values] : series) {
    headers.push_back(name);
  }
  mudi::Table table(headers);
  for (double p : probe_points) {
    std::vector<std::string> row{mudi::Table::Num(p, p < 1.0 ? 2 : 0)};
    for (const auto& [name, values] : series) {
      size_t below = 0;
      for (double v : values) {
        if (v <= p) {
          ++below;
        }
      }
      row.push_back(
          mudi::Table::Pct(static_cast<double>(below) / static_cast<double>(values.size())));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  const size_t n = 20000;
  std::vector<std::pair<std::string, std::vector<double>>> util_series{
      {"PAI", SampleUtilization(0.30, 0.28, 1, n)},
      {"Seren", SampleUtilization(0.28, 0.45, 2, n)},
      {"Kalos", SampleUtilization(0.30, 0.55, 3, n)},
  };
  PrintCdf("Fig. 2(a): CDF of training GPU utilization", util_series,
           {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}, "util");

  auto pai = util_series[0].second;
  size_t near_zero = 0, below_half = 0;
  for (double v : pai) {
    near_zero += v <= 0.05;
    below_half += v <= 0.5;
  }
  std::printf("PAI checks: P(util<=5%%)=%.0f%% (paper ~30%%), P(util<=50%%)=%.0f%% (paper ~85%%)\n\n",
              100.0 * near_zero / pai.size(), 100.0 * below_half / pai.size());

  std::vector<std::pair<std::string, std::vector<double>>> delay_series{
      {"PAI", SampleQueueDelayMinutes(4, n)},
      {"Seren", SampleQueueDelayMinutes(5, n)},
  };
  PrintCdf("Fig. 2(b): CDF of training queueing delay", delay_series,
           {1.0, 5.0, 15.0, 60.0, 240.0, 1000.0, 2000.0}, "min");
  double longest = 0.0;
  for (double v : delay_series[0].second) {
    longest = std::max(longest, v);
  }
  std::printf("longest delay: %.0f minutes (paper: exceeds 1000 minutes)\n", longest);
  return 0;
}
