// Fig. 7 reproduction: the network-layer census Mudi's Training Agent
// extracts for each training task — the feature vector of the Interference
// Modeler (conv, linear, activations, embeddings, encoder, decoder, flatten,
// batch_normalization, fc, pooling, other_layers).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workload/layers.h"
#include "src/workload/models.h"

int main() {
  using namespace mudi;
  std::vector<std::string> headers{"task"};
  for (size_t i = 0; i < kNumLayerTypes; ++i) {
    headers.push_back(LayerTypeName(static_cast<LayerType>(i)));
  }
  headers.push_back("total");
  Table table(headers);
  for (const auto& task : ModelZoo::TrainingTasks()) {
    std::vector<std::string> row{task.name};
    for (size_t i = 0; i < kNumLayerTypes; ++i) {
      row.push_back(std::to_string(task.arch.count(static_cast<LayerType>(i))));
    }
    row.push_back(std::to_string(task.arch.total_layers()));
    table.AddRow(row);
  }
  std::printf("== Fig. 7: identified network layers per training task ==\n%s\n",
              table.ToString().c_str());
  std::printf("Unpopular layers (Extraction, Fire, LSTM cells, GIN convs, LayerNorm, ...)\n"
              "fold into other_layers to avoid overfitting to unseen tasks (§4.1.2).\n");
  return 0;
}
