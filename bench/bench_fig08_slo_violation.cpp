// Fig. 8 reproduction: SLO violation rates of all inference services under
// Mudi, GSLICE, gpulets, and MuxFlow, in (a) the 12-GPU physical-scale
// cluster (300 training tasks) and (b) the 1000-GPU simulated cluster
// (5000 tasks) including the Optimal baseline.
//
// Expected shape (paper §7.2): Mudi lowest everywhere (avg ≈0.5% physical /
// ≈1.2% simulated, near-Optimal), MuxFlow highest (unseen training types),
// GSLICE and gpulets in between.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workload/models.h"

namespace {

void Report(const char* title, const std::map<std::string, mudi::ExperimentResult>& results) {
  std::printf("== Fig. 8 %s: SLO violation rate per service ==\n", title);
  std::vector<std::string> headers{"system"};
  for (const auto& s : mudi::ModelZoo::InferenceServices()) {
    headers.push_back(s.name);
  }
  headers.push_back("average");
  mudi::Table table(headers);
  for (const auto& [name, result] : results) {
    std::vector<std::string> row{name};
    double sum = 0.0;
    for (const auto& s : mudi::ModelZoo::InferenceServices()) {
      auto it = result.per_service.find(s.name);
      double rate = it == result.per_service.end() ? 0.0 : it->second.slo_violation_rate();
      row.push_back(mudi::Table::Pct(rate, 2));
      sum += rate;
    }
    row.push_back(mudi::Table::Pct(sum / 6.0, 2));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  // (a) physical-scale cluster.
  {
    mudi::ExperimentOptions options =
        mudi::PhysicalClusterOptions(mudi::ScaledCount(300));
    auto results = mudi::RunSystems(options, mudi::EndToEndSystemNames());
    Report("(a) physical cluster", results);
  }
  // (b) simulated 1000-GPU cluster, with Optimal.
  {
    mudi::ExperimentOptions options =
        mudi::SimulatedClusterOptions(mudi::ScaledCount(5000));
    std::vector<std::string> systems = mudi::EndToEndSystemNames();
    systems.push_back("Optimal");
    auto results = mudi::RunSystems(options, systems);
    Report("(b) simulated 1000-GPU cluster", results);
  }
  return 0;
}
