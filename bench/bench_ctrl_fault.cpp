// Control-plane fault figure (DESIGN.md §13): SLO attainment and goodput
// under increasingly degraded coordination, for all six policies.
//
// The data plane stays perfectly healthy in every run — only the control
// plane (KvStore watch delivery, control reads, the scheduler process) is
// degraded. The ladder:
//   none   — empty ControlFaultPlan (reference; byte-identical to a build
//            without any control-fault machinery)
//   delay  — every config watch notification arrives 100 ms late
//   lossy  — 1 s base delay + 500 ms jitter, 10% of notifications dropped
//   chaos  — 2.5 s + 1 s jitter, 30% drops, 20% stale reads (lag <= 8),
//            a partition window, a watch-loss event, and two scheduler
//            crashes (the second inside a second partition, so recovery
//            must back off through src/sim/retry.h)
//
// Read the table as: how much SLO attainment / goodput does each system
// give up when its coordination layer stops being a zero-latency oracle?
// Policies that re-tune aggressively (Mudi) publish more configs and are
// exposed to more loss; static baselines barely notice.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/control_fault_plan.h"

namespace {

using mudi::ControlFaultPlan;
using mudi::kMsPerSecond;
using mudi::Table;

struct Level {
  const char* name;
  ControlFaultPlan plan;
};

std::vector<Level> DegradationLadder() {
  std::vector<Level> levels;
  levels.push_back({"none", ControlFaultPlan{}});

  ControlFaultPlan delay;
  delay.DegradeWatches(100.0, 0.0, 0.0);
  levels.push_back({"delay", delay});

  ControlFaultPlan lossy;
  lossy.DegradeWatches(1000.0, 500.0, 0.10);
  levels.push_back({"lossy", lossy});

  ControlFaultPlan chaos;
  chaos.DegradeWatches(2500.0, 1000.0, 0.30);
  chaos.StaleReads(0.2, 8);
  chaos.Partition(60.0 * kMsPerSecond, 20.0 * kMsPerSecond);
  chaos.LoseWatches(120.0 * kMsPerSecond);
  chaos.CrashScheduler(180.0 * kMsPerSecond, 2.0 * kMsPerSecond);
  chaos.CrashScheduler(240.0 * kMsPerSecond, 1.0 * kMsPerSecond);
  chaos.Partition(240.0 * kMsPerSecond, 15.0 * kMsPerSecond);
  levels.push_back({"chaos", chaos});
  return levels;
}

}  // namespace

int main() {
  size_t tasks = mudi::ScaledCount(60);
  std::vector<std::string> systems = {"Mudi", "GSLICE", "gpulets", "MuxFlow", "Random", "Optimal"};

  std::printf("== control-plane fault domain: SLO attainment & goodput vs degradation ==\n");
  Table table({"level", "system", "SLO attain", "goodput (r/s)", "completed", "cfg pub/app/lost",
               "retries", "stale", "recov (s)"});
  std::map<std::string, double> baseline_goodput;

  for (const Level& level : DegradationLadder()) {
    mudi::ExperimentOptions options = mudi::PhysicalClusterOptions(tasks);
    options.ctrl_fault_plan = level.plan;
    auto results = mudi::RunSystems(options, systems, /*verbose=*/false);
    for (const std::string& name : systems) {
      const mudi::ExperimentResult& result = results.at(name);
      const mudi::ControlMetrics& cm = result.ctrl;
      double goodput = result.faults.goodput_rps;
      if (level.plan.empty()) {
        baseline_goodput[name] = goodput;
      }
      table.AddRow({level.name, name,
                    Table::Pct(1.0 - result.OverallSloViolationRate(), 2),
                    Table::Num(goodput, 1),
                    std::to_string(result.CompletedTasks()) + "/" +
                        std::to_string(result.tasks.size()),
                    std::to_string(cm.configs_published) + "/" +
                        std::to_string(cm.configs_applied) + "/" +
                        std::to_string(cm.configs_lost()),
                    std::to_string(cm.retries), std::to_string(cm.stale_reads),
                    Table::Num(cm.MeanRecoveryMs() / kMsPerSecond, 2)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "goodput is served requests per simulated second; 'cfg pub/app/lost' counts scheduler\n"
      "config publications vs. those that reached a device agent; 'retries' are sanctioned\n"
      "src/sim/retry.h re-attempts; 'recov' is mean scheduler crash-to-recovered time.\n");
  return 0;
}
