// Tab. 2 reproduction: fitting error (%) of polynomial vs MLP vs piece-wise
// linear latency models as profiling samples grow from 5 to 9, averaged over
// three representative models (ResNet50, GPT2, BERT) with held-out points.
//
// Paper shape: piece-wise linear wins below 10 samples (10.03 → 3.78 as
// samples grow 5 → 9), with a marked error drop from 5 to 6 samples;
// polynomial and MLP need more data.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/gpu/perf_oracle.h"
#include "src/ml/mlp.h"
#include "src/ml/piecewise_linear.h"
#include "src/ml/polynomial.h"

namespace {

using namespace mudi;

// Dense GPU% grid; training points are chosen evenly from it, the rest test.
std::vector<double> DenseGrid() {
  std::vector<double> g;
  for (double v = 0.10; v <= 0.901; v += 0.05) {
    g.push_back(v);
  }
  return g;
}

double MeanAbsPctError(const std::vector<double>& pred, const std::vector<double>& truth) {
  double total = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    total += std::abs(pred[i] - truth[i]) / truth[i];
  }
  return 100.0 * total / static_cast<double>(pred.size());
}

}  // namespace

int main() {
  PerfOracle oracle(42);
  Rng rng(11);
  const std::vector<const char*> models{"ResNet50", "GPT2", "BERT"};
  const auto& training = ModelZoo::TrainingTaskByName("VGG16");
  std::vector<ColocatedTraining> colocated{{&training, 0.5}};

  Table table({"Model \\ Samples", "5", "6", "7", "8", "9"});
  std::vector<std::vector<double>> errors(3, std::vector<double>(5, 0.0));

  auto grid = DenseGrid();
  int trials = 0;
  for (const char* name : models) {
    const InferenceServiceSpec& service = ModelZoo::InferenceServiceByName(name);
    for (int b : {128, 256, 512}) {
      // Noisy observations along the dense grid; truth = noise-free oracle.
      std::vector<double> observed, truth;
      for (double g : grid) {
        observed.push_back(
            oracle.ObserveInferenceBatchLatency(service, b, g, colocated, rng).total_ms());
        truth.push_back(oracle.InferenceBatchLatency(service, b, g, colocated).total_ms());
      }
      for (size_t s = 0; s < 5; ++s) {
        size_t samples = 5 + s;
        // Evenly spaced training subset.
        std::vector<double> tx, ty;
        std::vector<size_t> train_idx;
        for (size_t i = 0; i < samples; ++i) {
          size_t idx = i * (grid.size() - 1) / (samples - 1);
          train_idx.push_back(idx);
          tx.push_back(grid[idx]);
          ty.push_back(observed[idx]);
        }
        // Held-out evaluation points.
        std::vector<double> ex;
        std::vector<double> etruth;
        for (size_t i = 0; i < grid.size(); ++i) {
          bool used = false;
          for (size_t idx : train_idx) {
            used |= idx == i;
          }
          if (!used) {
            ex.push_back(grid[i]);
            etruth.push_back(truth[i]);
          }
        }
        // Polynomial (degree 2).
        PolynomialModel poly = PolynomialModel::Fit(tx, ty, 2);
        std::vector<double> poly_pred;
        for (double g : ex) {
          poly_pred.push_back(poly.Eval(g));
        }
        errors[0][s] += MeanAbsPctError(poly_pred, etruth);
        // MLP.
        MlpOptions mlp_options;
        mlp_options.hidden_units = 16;
        mlp_options.epochs = 250;
        MlpRegressor mlp(mlp_options);
        std::vector<std::vector<double>> mx;
        for (double g : tx) {
          mx.push_back({g});
        }
        mlp.Fit(mx, ty);
        std::vector<double> mlp_pred;
        for (double g : ex) {
          mlp_pred.push_back(mlp.Predict({g}));
        }
        errors[1][s] += MeanAbsPctError(mlp_pred, etruth);
        // Piece-wise linear (Eq. 1).
        PiecewiseLinearModel pw = FitPiecewiseLinear(tx, ty);
        std::vector<double> pw_pred;
        for (double g : ex) {
          pw_pred.push_back(pw.Eval(g));
        }
        errors[2][s] += MeanAbsPctError(pw_pred, etruth);
      }
      ++trials;
    }
  }

  const char* row_names[3] = {"Polynomial fitting", "MLP fitting", "Piece-wise linear"};
  for (int m = 0; m < 3; ++m) {
    std::vector<std::string> row{row_names[m]};
    for (size_t s = 0; s < 5; ++s) {
      row.push_back(Table::Num(errors[static_cast<size_t>(m)][s] / trials, 2));
    }
    table.AddRow(row);
  }
  std::printf("== Tab. 2: fitting error (%%) vs number of training samples ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: piece-wise 10.03/6.41/4.27/3.91/3.78; polynomial 9.81→5.53; MLP ~7.\n"
              "Expected shape: piece-wise linear best from 6 samples on, with a clear\n"
              "drop from 5 to 6 samples.\n");
  return 0;
}
