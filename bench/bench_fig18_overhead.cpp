// Fig. 18 reproduction: Mudi's computational overheads.
// (a) CDF of GP-LCB tuning iterations to convergence (paper: over half the
//     cases within 17 iterations, max 24 physical / 25 simulated, < 1.92 s).
// (b) Distribution of cluster-wide multiplexing-decision time (placement):
//     paper: < 18 ms avg 14 ms (physical), < 31 ms avg 19 ms (simulated).
// Also includes google-benchmark micro-measurements of the two decision
// paths in isolation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/core/mudi_policy.h"

namespace {

using namespace mudi;

void ReportOverheads(const char* title, const ExperimentResult& result) {
  std::printf("== Fig. 18 %s ==\n", title);
  if (!result.tuning_iterations.empty()) {
    std::vector<double> iters(result.tuning_iterations.begin(),
                              result.tuning_iterations.end());
    Table cdf({"percentile", "tuning iterations"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      cdf.AddRow({Table::Num(p, 0), Table::Num(Percentile(iters, p), 0)});
    }
    std::printf("(a) GP-LCB iterations to convergence (%zu tuning runs):\n%s",
                iters.size(), cdf.ToString().c_str());
  }
  if (!result.placement_overheads_ms.empty()) {
    std::vector<double> overheads = result.placement_overheads_ms;
    Table dist({"metric", "decision time (ms)"});
    dist.AddRow({"mean", Table::Num(Mean(overheads), 3)});
    dist.AddRow({"P50", Table::Num(Percentile(overheads, 50.0), 3)});
    dist.AddRow({"P99", Table::Num(Percentile(overheads, 99.0), 3)});
    dist.AddRow({"max", Table::Num(*std::max_element(overheads.begin(), overheads.end()), 3)});
    std::printf("(b) cluster-wide multiplexing decision time (%zu placements):\n%s\n",
                overheads.size(), dist.ToString().c_str());
  }
}

// Micro-benchmark: one cluster-wide placement decision (device scoring).
void BM_PlacementDecision(benchmark::State& state) {
  static PerfOracle oracle(42);
  static MudiPolicy* policy = [] {
    auto* p = new MudiPolicy(oracle);
    return p;
  }();
  static ExperimentOptions options = [] {
    ExperimentOptions o = PhysicalClusterOptions(1);
    return o;
  }();
  static ClusterExperiment* experiment = new ClusterExperiment(options, policy);
  policy->Initialize(*experiment);

  TrainingTaskInfo info;
  info.task_id = 1;
  info.type_index = state.range(0) % 9;
  info.spec = &ModelZoo::TrainingTasks()[info.type_index];
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->SelectDevice(*experiment, info));
  }
}
BENCHMARK(BM_PlacementDecision)->Arg(2)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  {
    ExperimentOptions options = PhysicalClusterOptions(ScaledCount(300));
    auto results = RunSystems(options, {"Mudi"});
    ReportOverheads("(physical-scale cluster)", results.at("Mudi"));
  }
  {
    ExperimentOptions options = SimulatedClusterOptions(ScaledCount(1500));
    auto results = RunSystems(options, {"Mudi"});
    ReportOverheads("(simulated 1000-GPU cluster)", results.at("Mudi"));
  }
  std::printf("Paper: >50%% of tunings converge within 17 iterations, all within 25\n"
              "(<1.92 s); decision time <18 ms avg 14 ms (physical), <31 ms avg 19 ms\n"
              "(simulated). Our decision path is an in-process function call, so absolute\n"
              "times are lower; the iteration CDF is directly comparable.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
