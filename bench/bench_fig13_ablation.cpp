// Fig. 13 reproduction: the benefit of each optimization level in isolation.
// (a) cluster-level co-location only (Tuner disabled, static device config);
// (b) per-device control only (cluster-wide placement replaced by random).
// Metrics are normalized to full Mudi, in the physical-scale cluster.
//
// Paper shape: each half alone is worse than the co-design — cluster-only
// raises SLO violations ~1.65–2.43× vs full Mudi but still beats baselines;
// device-only reaches the lowest standalone SLO rate (~1.1× of Mudi) with
// worse CT/makespan than full Mudi.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;
  ExperimentOptions options = PhysicalClusterOptions(ScaledCount(300));
  auto results =
      RunSystems(options, {"Mudi", "Mudi-cluster-only", "Mudi-device-only"});

  const auto& full = results.at("Mudi");
  Table table({"variant", "SLO violation", "mean CT (s)", "makespan (s)", "SLO vs Mudi",
               "CT vs Mudi", "makespan vs Mudi"});
  for (const auto& [name, result] : results) {
    table.AddRow({name, Table::Pct(result.OverallSloViolationRate(), 2),
                  Table::Num(result.MeanCtMs() / kMsPerSecond, 1),
                  Table::Num(result.makespan_ms / kMsPerSecond, 1),
                  Table::Num(result.OverallSloViolationRate() /
                                 std::max(full.OverallSloViolationRate(), 1e-4),
                             2) + "x",
                  Table::Num(result.MeanCtMs() / full.MeanCtMs(), 2) + "x",
                  Table::Num(result.makespan_ms / full.makespan_ms, 2) + "x"});
  }
  std::printf("== Fig. 13: individual-optimization ablation (physical cluster) ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: (a) cluster-only SLO violations 1.65x of Mudi; (b) device-only SLO\n"
              "~1.1x of Mudi with CT/makespan up to 1.33x/1.26x worse — the two levels\n"
              "must be co-designed.\n");
  return 0;
}
