// Fig. 17 reproduction: multiplexing more training tasks per GPU —
// Mudi-more (one inference + up to three training tasks) vs Random (even
// split) vs plain Mudi (one training), physical-scale cluster.
//
// Paper shape: Mudi-more beats Random on every metric but pays a modest
// premium vs plain Mudi (SLO ~1.03×, CT ~1.07×, makespan ~1.09×, more
// memory swapped) — hence the paper's recommendation of one inference + one
// training for optimal performance.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"

int main() {
  using namespace mudi;
  ExperimentOptions options = PhysicalClusterOptions(ScaledCount(300));
  // Denser arrivals so multi-training co-location actually happens.
  options.trace.mean_interarrival_ms /= 3.0;

  auto results = RunSystems(options, {"Mudi", "Mudi-more", "Random"});
  const auto& plain = results.at("Mudi");

  Table table({"system", "SLO violation", "mean CT (s)", "mean wait (s)", "makespan (s)",
               "swapped (GB)", "CT vs Mudi"});
  for (const auto& [name, result] : results) {
    table.AddRow({name, Table::Pct(result.OverallSloViolationRate(), 2),
                  Table::Num(result.MeanCtMs() / kMsPerSecond, 1),
                  Table::Num(result.MeanWaitingMs() / kMsPerSecond, 1),
                  Table::Num(result.makespan_ms / kMsPerSecond, 1),
                  Table::Num(result.swap_total_mb / 1024.0, 1),
                  Table::Num(result.MeanCtMs() / plain.MeanCtMs(), 2) + "x"});
  }
  std::printf("== Fig. 17: multiplexing up to three training tasks per GPU ==\n%s\n",
              table.ToString().c_str());
  std::printf("Paper: Mudi-more > Random everywhere; vs plain Mudi it pays ~1.03x SLO,\n"
              "~1.07x CT, ~1.09x makespan and swaps ~1.61x more memory.\n");
  return 0;
}
