#!/bin/bash
# Runs the reproduction bench campaign: every figure/table bench plus the
# perf-trajectory bench (bench_throughput), one output file per bench under
# --out-dir, then copies the machine-readable BENCH_*.json artifacts to the
# repo root so trajectory diffs show up in review. Each successful
# bench_throughput run also appends one schema-tagged line to the committed
# BENCH_history.jsonl, so the perf trajectory accumulates across campaigns
# and any prior entry can serve as a --compare baseline (FILE.jsonl[:N]).
#
# This replaces the three ad-hoc root-level run_benches*.sh scripts: the
# bench list, scale, and output location are flags instead of copies.
#
# Usage:
#   scripts/run_benches.sh [options] [bench ...]
#     --build-dir DIR   build tree holding bench binaries   (default: build)
#     --out-dir DIR     where .txt/.err/.json land          (default: bench_results)
#     --scale S         export MUDI_BENCH_SCALE=S (0 < S <= 1)
#     --compare F       after bench_throughput runs, print a per-(preset,
#                       policy) events/s + decision-latency regression table
#                       against baseline artifact F (a prior BENCH_throughput
#                       .json, e.g. the committed one; or FILE.jsonl[:N] to
#                       compare against history entry N — default: the last)
#     --max-regress R   with --compare: fail the campaign when any pair's
#                       events/s fell more than fraction R (0 < R < 1)
#     --list            print the default campaign bench list and exit
#     bench ...         run only these benches (default: the full campaign)
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=bench_results
SCALE=""
COMPARE=""
MAX_REGRESS=""
ONLY=()

ALL_BENCHES=(
  bench_fig01_traces bench_fig02_training_traces bench_fig03_inf_inf_interference
  bench_fig04_inf_train_interference bench_fig05_latency_curves bench_fig07_layer_census
  bench_fig08_slo_violation bench_fig09_training_eff bench_fig10_utilization
  bench_fig11_model_accuracy bench_fig12_incremental bench_fig13_ablation
  bench_fig14_max_throughput bench_fig15_load_sensitivity bench_fig16_bursty_case
  bench_fig17_mudi_more bench_fig18_overhead bench_fig19_fault_recovery
  bench_ctrl_fault bench_micro_substrates bench_tab02_fitting_error
  bench_tab04_swap_fraction bench_throughput
)

HISTORY_FILE=BENCH_history.jsonl

# Appends one schema-tagged line to the committed BENCH_history.jsonl from a
# fresh BENCH_throughput.json: the artifact flattened to a single line with a
# "history" envelope ({schema, seq, recorded_utc, git}) spliced in as the
# first key. Each line stays a valid bench_throughput document (the validator
# tolerates the extra top-level key), so any entry works as a --compare
# baseline directly.
append_history() {
  local artifact="$1" seq stamp git_rev body
  seq=1
  if [[ -f "$HISTORY_FILE" ]]; then
    seq=$(($(wc -l < "$HISTORY_FILE") + 1))
  fi
  stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
  git_rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  body=$(tr '\n' ' ' < "$artifact" | sed 's/^[^{]*{//')
  printf '{"history":{"schema":"mudi.bench_history.v1","seq":%s,"recorded_utc":"%s","git":"%s"},%s\n' \
    "$seq" "$stamp" "$git_rev" "$body" >> "$HISTORY_FILE"
  echo "history: appended entry $seq to $HISTORY_FILE"
}

# Resolves a --compare spec to a baseline JSON document on stdout: a plain
# .json path passes through untouched; FILE.jsonl takes the last history
# entry; FILE.jsonl:N takes entry N (1-based line number, which matches each
# entry's "seq" field). Fails when the file or the entry is missing.
extract_history_entry() {
  local spec="$1" file="$1" n=""
  if [[ "$spec" == *.jsonl:* ]]; then
    file="${spec%:*}"
    n="${spec##*:}"
  fi
  if [[ ! -f "$file" ]]; then
    echo "no history file: $file" >&2
    return 1
  fi
  local total
  total=$(wc -l < "$file")
  if [[ -z "$n" ]]; then
    n="$total"
  fi
  if ! [[ "$n" =~ ^[0-9]+$ ]] || (( n < 1 || n > total )); then
    echo "history entry '$n' out of range (1..$total) in $file" >&2
    return 1
  fi
  sed -n "${n}p" "$file"
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir)   OUT_DIR="$2";   shift 2 ;;
    --scale)     SCALE="$2";     shift 2 ;;
    --compare)     COMPARE="$2";     shift 2 ;;
    --max-regress) MAX_REGRESS="$2"; shift 2 ;;
    --list)      printf '%s\n' "${ALL_BENCHES[@]}"; exit 0 ;;
    -h|--help)   grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    --*)         echo "unknown option: $1" >&2; exit 2 ;;
    *)           ONLY+=("$1"); shift ;;
  esac
done

BENCHES=("${ALL_BENCHES[@]}")
if [[ ${#ONLY[@]} -gt 0 ]]; then
  BENCHES=("${ONLY[@]}")
fi
if [[ -n "$SCALE" ]]; then
  export MUDI_BENCH_SCALE="$SCALE"
fi

mkdir -p "$OUT_DIR"
failures=0

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "=== MISSING $b (no binary at $bin; build first) ===" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "=== RUNNING $b ==="
  if [[ "$b" == bench_throughput ]]; then
    # The perf-trajectory bench writes its own versioned JSON artifact.
    # With --compare it also prints the regression table vs the baseline
    # (visible on the terminal, not just in the .txt, so campaign runs show
    # the trajectory at a glance) and exits non-zero past --max-regress.
    THROUGHPUT_FLAGS=()
    if [[ -n "$COMPARE" ]]; then
      BASELINE="$COMPARE"
      if [[ "$COMPARE" == *.jsonl || "$COMPARE" == *.jsonl:* ]]; then
        BASELINE="$OUT_DIR/.compare_baseline.json"
        if ! extract_history_entry "$COMPARE" > "$BASELINE"; then
          echo "bad --compare spec: $COMPARE" >&2
          exit 2
        fi
      fi
      THROUGHPUT_FLAGS+=("--compare=$BASELINE")
    fi
    if [[ -n "$MAX_REGRESS" ]]; then
      THROUGHPUT_FLAGS+=("--max-regress=$MAX_REGRESS")
    fi
    "$bin" --out="$OUT_DIR/BENCH_throughput.json" "${THROUGHPUT_FLAGS[@]}" \
      > >(tee "$OUT_DIR/$b.txt") 2> "$OUT_DIR/$b.err"
  else
    # Each experiment run appends one labeled JSON line (counters, gauges,
    # histograms — queue depth, utilization, decision counts) to the bench's
    # telemetry file, giving every bench table its scheduling context.
    MUDI_TELEMETRY_JSON="$OUT_DIR/BENCH_$b.json" \
      "$bin" > "$OUT_DIR/$b.txt" 2> "$OUT_DIR/$b.err"
  fi
  rc=$?
  echo "=== DONE $b (rc=$rc) ==="
  if [[ $rc -ne 0 ]]; then
    failures=$((failures + 1))
  elif [[ "$b" == bench_throughput ]]; then
    append_history "$OUT_DIR/BENCH_throughput.json"
  fi
done

# Publish the machine-readable artifacts at the repo root: the committed
# BENCH_*.json files are the perf/metrics trajectory reviewers diff.
shopt -s nullglob
for json in "$OUT_DIR"/BENCH_*.json; do
  cp -f "$json" .
done
shopt -u nullglob

if [[ $failures -gt 0 ]]; then
  echo "CAMPAIGN_FAILED ($failures benches failed)" >&2
  exit 1
fi
echo CAMPAIGN_COMPLETE
