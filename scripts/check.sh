#!/bin/bash
# Repo health gate. Runs, in order:
#
#   lint     tools/mudi_lint over src/ tests/ bench/ tools/ examples/ —
#            the full two-pass semantic engine (12 checks: per-file token
#            checks plus the cross-file include-graph/layering, shared-state,
#            sync-primitive, and hot-path-alloc passes). Any unsuppressed
#            finding fails. The stage also emits --json and gates it through
#            mudi_lint --validate (mudi.lint.v1 schema), and the summary
#            table carries per-check finding counts. Runs in every mode,
#            including --fast.
#   format   non-fatal clang-format drift report (skipped when clang-format
#            is not installed). Never fails the gate; it exists so future PRs
#            converge on .clang-format instead of diverging silently.
#   build    plain tree with the -Wall -Wextra warning gate: any compiler
#            warning fails (this also backs the [[nodiscard]] Status gate).
#   tests    full tier-1 ctest suite in the plain tree.
#   asan     AddressSanitizer+UBSan tree (-fno-sanitize-recover=all) with the
#            full suite. Skipped by --fast.
#   tsan     ThreadSanitizer tree with the full suite. Opt-in via --tsan.
#   bench    perf-trajectory smoke: bench_throughput at the tiny "smoke"
#            preset, then schema-validate the JSON it emitted. Opt-in via
#            --bench. Fails on a non-zero bench exit, a missing artifact,
#            or a malformed/incomplete document. When the committed
#            BENCH_throughput.json baseline exists, also re-runs the smoke
#            preset at full scale and FAILS if any (preset, policy) pair's
#            events/s regressed more than 20% against it (WARN instead of
#            FAIL under --fast, so quick local iterations aren't blocked by
#            machine noise).
#   chaos    the fault suites — device faults (Fault*), control-plane faults
#            (CtrlFault*/ControlFault*/KvStore*), retry/backoff (Retr*), and
#            the determinism replays — under the ASan+UBSan tree. Opt-in via
#            --chaos. Reuses build-asan when the asan stage already built it.
#   replay   decision-trace record/replay smoke under the ASan+UBSan tree.
#            Records a smoke run and fidelity-replays it (mudi_cli
#            --replay-verify fails unless the replayed metrics are
#            byte-identical and >=90% of profiler invocations were served
#            from the trace), then counterfactual-replays the trace: the
#            same policy must reproduce every recorded decision, and the
#            device-only ablation's what-if trace must trace_diff cleanly
#            against the source. Opt-in via --replay; reuses build-asan.
#
# Usage: scripts/check.sh [--fast | --sanitize | --tsan | --bench | --chaos | --replay ...] [build-dir]
#   (no flags)   lint + format + build + tests + asan
#   --fast       lint + format + build + tests (skip all sanitizer trees)
#   --sanitize   lint + asan tree only (the pre-existing deep-memory gate)
#   --tsan       lint + tsan tree only; combine with --sanitize to run both
#   --bench      additionally run the bench smoke stage (any mode)
#   --chaos      additionally run the fault suites under ASan (any mode)
#   --replay     additionally run the record/replay smoke under ASan (any mode)
#   build-dir    plain-tree build directory (default: build). Sanitizer trees
#                always use build-asan / build-tsan.
#
# A PASS/FAIL/SKIP summary table prints at the end; exit status is non-zero
# iff any non-skipped stage failed.
set -u
cd "$(dirname "$0")/.."

RUN_BUILD=1
RUN_TESTS=1
RUN_ASAN=1
RUN_TSAN=0
RUN_BENCH=0
RUN_CHAOS=0
RUN_REPLAY=0
FAST_MODE=0
EXPLICIT_MODE=0
BUILD_DIR="build"

while [ $# -gt 0 ]; do
  case "$1" in
    --fast)
      RUN_ASAN=0
      RUN_TSAN=0
      FAST_MODE=1
      EXPLICIT_MODE=1
      ;;
    --sanitize)
      if [ "$EXPLICIT_MODE" -eq 0 ]; then
        RUN_BUILD=0
        RUN_TESTS=0
        RUN_TSAN=0
        EXPLICIT_MODE=1
      fi
      RUN_ASAN=1
      ;;
    --tsan)
      if [ "$EXPLICIT_MODE" -eq 0 ]; then
        RUN_BUILD=0
        RUN_TESTS=0
        RUN_ASAN=0
        EXPLICIT_MODE=1
      fi
      RUN_TSAN=1
      ;;
    --bench)
      RUN_BENCH=1
      ;;
    --chaos)
      RUN_CHAOS=1
      ;;
    --replay)
      RUN_REPLAY=1
      ;;
    -h|--help)
      sed -n '2,34p' "$0"
      exit 0
      ;;
    -*)
      echo "check.sh: unknown flag $1 (see --help)"
      exit 2
      ;;
    *)
      BUILD_DIR="$1"
      ;;
  esac
  shift
done

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_DETAILS=()
FAILED=0

record() {  # record <stage> <PASS|FAIL|SKIP> [detail]
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  STAGE_DETAILS+=("${3:-}")
  if [ "$2" = "FAIL" ]; then
    FAILED=1
  fi
}

summary_and_exit() {
  echo
  echo "== summary =="
  printf '%-10s %-7s %s\n' "stage" "result" "detail"
  printf '%-10s %-7s %s\n' "-----" "------" "------"
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-10s %-7s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" "${STAGE_DETAILS[$i]}"
  done
  if [ "$FAILED" -ne 0 ]; then
    echo "CHECK FAILED"
    exit 1
  fi
  echo "CHECK OK"
  exit 0
}

# Configure + build + (optionally) test one tree with the warning gate.
# run_tree <dir> <stage-prefix> <extra-flags> <env-prefix> <run-tests>
run_tree() {
  local dir="$1" stage="$2" flags="$3" envs="$4" run_tests="$5"
  echo "== ${stage}: configure (${dir}) =="
  if [ -n "$flags" ]; then
    cmake -B "$dir" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="$flags" \
      -DCMAKE_EXE_LINKER_FLAGS="$flags" > /dev/null || {
      record "$stage" FAIL
      return 1
    }
  else
    cmake -B "$dir" -S . > /dev/null || {
      record "$stage" FAIL
      return 1
    }
  fi
  echo "== ${stage}: build (warning gate) =="
  local log
  log=$(mktemp)
  cmake --build "$dir" -j "$(nproc)" 2>&1 | tee "$log"
  local rc=${PIPESTATUS[0]}
  if [ "$rc" -ne 0 ]; then
    echo "${stage}: build error"
    rm -f "$log"
    record "$stage" FAIL
    return 1
  fi
  if grep -E "warning:" "$log" > /dev/null; then
    echo "${stage}: compiler warnings:"
    grep -E "warning:" "$log" | sort -u
    rm -f "$log"
    record "$stage" FAIL
    return 1
  fi
  rm -f "$log"
  if [ "$run_tests" -eq 1 ]; then
    echo "== ${stage}: tests =="
    if ! (cd "$dir" && env $envs ctest --output-on-failure -j "$(nproc)"); then
      record "$stage" FAIL
      return 1
    fi
  fi
  record "$stage" PASS
  return 0
}

# -- lint ---------------------------------------------------------------------
echo "== lint (two-pass semantic engine) =="
if cmake -B "$BUILD_DIR" -S . > /dev/null &&
   cmake --build "$BUILD_DIR" -j "$(nproc)" --target mudi_lint > /dev/null; then
  LINT_LOG=$(mktemp -t mudi_lint.XXXXXX.log)
  LINT_JSON=$(mktemp -t mudi_lint.XXXXXX.json)
  "$BUILD_DIR"/tools/mudi_lint --root . | tee "$LINT_LOG"
  LINT_RC=${PIPESTATUS[0]}
  # Per-check counts for the summary table, from the text-mode footer
  # ("mudi_lint:   <check>  N unsuppressed, M suppressed" — only checks with
  # at least one finding appear; a silent footer means the repo is fully clean).
  LINT_DETAIL=$(awk '/unsuppressed, .* suppressed$/ { printf "%s%s:%s/%s", sep, $2, $3, $5; sep=" " }' \
    "$LINT_LOG")
  [ -n "$LINT_DETAIL" ] && LINT_DETAIL="findings (unsup/sup): $LINT_DETAIL"
  # Schema gate: the --json artifact must validate as mudi.lint.v1, whether
  # or not the findings pass — a malformed report is its own failure.
  if ! "$BUILD_DIR"/tools/mudi_lint --root . --json > "$LINT_JSON" 2>/dev/null; then
    :  # non-zero just mirrors unsuppressed findings; the validate call gates shape
  fi
  if ! "$BUILD_DIR"/tools/mudi_lint --validate "$LINT_JSON"; then
    echo "lint: --json output failed mudi.lint.v1 schema validation"
    LINT_RC=1
    LINT_DETAIL="${LINT_DETAIL:+$LINT_DETAIL; }json schema invalid"
  fi
  rm -f "$LINT_LOG" "$LINT_JSON"
  if [ "$LINT_RC" -eq 0 ]; then
    record "lint" PASS "12 checks, 0 unsuppressed${LINT_DETAIL:+; $LINT_DETAIL}"
  else
    record "lint" FAIL "$LINT_DETAIL"
  fi
else
  echo "lint: failed to build tools/mudi_lint"
  record "lint" FAIL "mudi_lint build failed"
fi
if [ "$FAILED" -ne 0 ]; then
  summary_and_exit
fi

# -- format (non-fatal) -------------------------------------------------------
echo "== format (non-fatal drift report) =="
if command -v clang-format > /dev/null 2>&1; then
  DRIFT=0
  CHECKED=0
  while IFS= read -r f; do
    CHECKED=$((CHECKED + 1))
    if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
      DRIFT=$((DRIFT + 1))
      echo "format drift: $f"
    fi
  done < <(find src tests bench tools examples \
             \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)
  echo "format: ${DRIFT}/${CHECKED} file(s) drift from .clang-format (informational)"
  record "format" PASS
else
  echo "format: clang-format not installed; skipping"
  record "format" SKIP
fi

# -- plain tree: build + tests ------------------------------------------------
if [ "$RUN_BUILD" -eq 1 ]; then
  run_tree "$BUILD_DIR" "build" "" "" 0 || summary_and_exit
  if [ "$RUN_TESTS" -eq 1 ]; then
    echo "== tests =="
    if (cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)"); then
      record "tests" PASS
    else
      record "tests" FAIL
      summary_and_exit
    fi
  else
    record "tests" SKIP
  fi
else
  record "build" SKIP
  record "tests" SKIP
fi

# -- sanitizer trees ----------------------------------------------------------
if [ "$RUN_ASAN" -eq 1 ]; then
  ASAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  run_tree "build-asan" "asan" "$ASAN_FLAGS" \
    "ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 UBSAN_OPTIONS=print_stacktrace=1" 1 \
    || summary_and_exit
else
  record "asan" SKIP
fi

if [ "$RUN_TSAN" -eq 1 ]; then
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -g"
  run_tree "build-tsan" "tsan" "$TSAN_FLAGS" \
    "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1" 1 \
    || summary_and_exit
else
  record "tsan" SKIP
fi

# -- bench smoke (opt-in) -----------------------------------------------------
if [ "$RUN_BENCH" -eq 1 ]; then
  echo "== bench: perf-trajectory smoke =="
  BENCH_BIN="$BUILD_DIR/bench/bench_throughput"
  BENCH_OUT=$(mktemp -t bench_throughput_smoke.XXXXXX.json)
  BENCH_RESULT=PASS
  if cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_throughput > /dev/null &&
     MUDI_BENCH_SCALE=0.05 "$BENCH_BIN" --presets=smoke --out="$BENCH_OUT" &&
     [ -s "$BENCH_OUT" ] &&
     "$BENCH_BIN" --validate="$BENCH_OUT"; then
    BENCH_RESULT=PASS
  else
    echo "bench: smoke run or JSON validation failed"
    BENCH_RESULT=FAIL
  fi
  rm -f "$BENCH_OUT"
  # Regression gate against the committed perf-trajectory baseline. The
  # committed artifact was produced at full scale, so the gate re-runs the
  # smoke preset at full scale too (it is tiny — well under a minute) for an
  # apples-to-apples events/s comparison; exit 3 means some (preset, policy)
  # pair regressed past --max-regress.
  if [ "$BENCH_RESULT" = PASS ] && [ -f BENCH_throughput.json ]; then
    echo "== bench: smoke events/s vs committed BENCH_throughput.json (>20% fails) =="
    REGRESS_OUT=$(mktemp -t bench_throughput_regress.XXXXXX.json)
    MUDI_BENCH_SCALE=1 "$BENCH_BIN" --presets=smoke --out="$REGRESS_OUT" \
      --compare=BENCH_throughput.json --max-regress=0.2
    REGRESS_RC=$?
    rm -f "$REGRESS_OUT"
    if [ "$REGRESS_RC" -eq 3 ]; then
      if [ "$FAST_MODE" -eq 1 ]; then
        echo "bench: smoke events/s regressed >20% vs baseline (WARN under --fast)"
        BENCH_RESULT=WARN
      else
        echo "bench: smoke events/s regressed >20% vs committed baseline"
        BENCH_RESULT=FAIL
      fi
    elif [ "$REGRESS_RC" -ne 0 ]; then
      echo "bench: regression compare failed (rc=$REGRESS_RC)"
      BENCH_RESULT=FAIL
    fi
  fi
  record "bench" "$BENCH_RESULT"
else
  record "bench" SKIP
fi

# -- chaos: fault suites under ASan (opt-in) ----------------------------------
if [ "$RUN_CHAOS" -eq 1 ]; then
  echo "== chaos: fault suites (device + control plane) under ASan+UBSan =="
  CHAOS_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  CHAOS_RESULT=PASS
  # Only the suites the fault domain touches are built, so --chaos stays much
  # cheaper than the full asan stage (and reuses build-asan when that stage
  # already populated it).
  if cmake -B build-asan -S . \
       -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DCMAKE_CXX_FLAGS="$CHAOS_FLAGS" \
       -DCMAKE_EXE_LINKER_FLAGS="$CHAOS_FLAGS" > /dev/null &&
     cmake --build build-asan -j "$(nproc)" \
       --target fault_test determinism_test cluster_test common_test > /dev/null; then
    if (cd build-asan && \
        env ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
            UBSAN_OPTIONS=print_stacktrace=1 \
        ctest --output-on-failure -j "$(nproc)" \
          -R '(Fault|KvStore|Retr|Determinism|Chaos)'); then
      CHAOS_RESULT=PASS
    else
      CHAOS_RESULT=FAIL
    fi
  else
    echo "chaos: failed to build fault suites under ASan"
    CHAOS_RESULT=FAIL
  fi
  record "chaos" "$CHAOS_RESULT"
else
  record "chaos" SKIP
fi

# -- replay: record/replay smoke under ASan (opt-in) --------------------------
if [ "$RUN_REPLAY" -eq 1 ]; then
  echo "== replay: decision-trace record/replay smoke under ASan+UBSan =="
  REPLAY_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  REPLAY_ENV="ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 UBSAN_OPTIONS=print_stacktrace=1"
  REPLAY_RESULT=PASS
  REPLAY_TRACE=$(mktemp -t mudi_replay_smoke.XXXXXX.trace)
  WHATIF_TRACE=$(mktemp -t mudi_replay_whatif.XXXXXX.trace)
  if cmake -B build-asan -S . \
       -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DCMAKE_CXX_FLAGS="$REPLAY_FLAGS" \
       -DCMAKE_EXE_LINKER_FLAGS="$REPLAY_FLAGS" > /dev/null &&
     cmake --build build-asan -j "$(nproc)" \
       --target mudi_cli trace_diff > /dev/null; then
    # (1) Record a smoke run, then fidelity-replay it: mudi_cli exits
    # non-zero unless the replayed metrics are byte-identical to the
    # recorded run AND >=90% of profiler invocations were served from the
    # trace instead of recomputed.
    if ! env $REPLAY_ENV build-asan/tools/mudi_cli \
           --policy Mudi --tasks 24 --seed 7 --replay-verify "$REPLAY_TRACE"; then
      echo "replay: record->replay fidelity check failed"
      REPLAY_RESULT=FAIL
    fi
    # (2) Same-policy counterfactual: with no simulation at all, Mudi over
    # its own trace must reproduce every recorded decision.
    if [ "$REPLAY_RESULT" = PASS ]; then
      WHATIF_OUT=$(env $REPLAY_ENV build-asan/tools/mudi_cli \
                     --whatif "$REPLAY_TRACE" --policy Mudi)
      if [ $? -ne 0 ] || ! echo "$WHATIF_OUT" | grep -q "no divergence"; then
        echo "replay: same-policy counterfactual failed to reproduce the trace"
        echo "$WHATIF_OUT"
        REPLAY_RESULT=FAIL
      fi
    fi
    # (3) Cross-policy counterfactual + diff: the device-only ablation
    # writes its what-if trace, and trace_diff must align it against the
    # source (exit 1 = diverged is expected; only exit 2 = bad input fails).
    if [ "$REPLAY_RESULT" = PASS ]; then
      if ! env $REPLAY_ENV build-asan/tools/mudi_cli \
             --whatif "$REPLAY_TRACE" --policy Mudi-device-only \
             --record "$WHATIF_TRACE" > /dev/null; then
        echo "replay: cross-policy counterfactual run failed"
        REPLAY_RESULT=FAIL
      else
        env $REPLAY_ENV build-asan/tools/trace_diff \
          "$REPLAY_TRACE" "$WHATIF_TRACE" > /dev/null
        if [ $? -eq 2 ]; then
          echo "replay: trace_diff rejected the recorded/what-if trace pair"
          REPLAY_RESULT=FAIL
        fi
      fi
    fi
  else
    echo "replay: failed to build mudi_cli/trace_diff under ASan"
    REPLAY_RESULT=FAIL
  fi
  rm -f "$REPLAY_TRACE" "$WHATIF_TRACE"
  record "replay" "$REPLAY_RESULT"
else
  record "replay" SKIP
fi

summary_and_exit
