#!/bin/bash
# Repo health gate: configure + build with -Wall -Wextra treated as a gate
# (any warning fails), then run the full tier-1 test suite.
#
# Usage: scripts/check.sh [--sanitize] [build-dir]
#   default build dir: build (or build-asan with --sanitize)
#
# --sanitize builds a separate tree with AddressSanitizer + UBSan
# (-fno-sanitize-recover=all, so any report aborts the test) and runs the
# full suite under it.
set -u
cd "$(dirname "$0")/.."

SANITIZE=0
if [ "${1:-}" = "--sanitize" ]; then
  SANITIZE=1
  shift
fi
if [ "$SANITIZE" -eq 1 ]; then
  BUILD_DIR="${1:-build-asan}"
else
  BUILD_DIR="${1:-build}"
fi

echo "== configure (${BUILD_DIR}) =="
if [ "$SANITIZE" -eq 1 ]; then
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer -g"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS" || exit 1
else
  cmake -B "$BUILD_DIR" -S . || exit 1
fi

echo "== build (warning gate) =="
BUILD_LOG=$(mktemp)
cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$BUILD_LOG"
BUILD_RC=${PIPESTATUS[0]}
if [ "$BUILD_RC" -ne 0 ]; then
  echo "CHECK FAILED: build error"
  rm -f "$BUILD_LOG"
  exit 1
fi
# The toolchain already compiles with -Wall -Wextra (see CMakeLists.txt);
# the gate is that the log stays warning-free.
if grep -E "warning:" "$BUILD_LOG" > /dev/null; then
  echo "CHECK FAILED: compiler warnings:"
  grep -E "warning:" "$BUILD_LOG" | sort -u
  rm -f "$BUILD_LOG"
  exit 1
fi
rm -f "$BUILD_LOG"

echo "== tier-1 tests =="
if [ "$SANITIZE" -eq 1 ]; then
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
fi
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")
CTEST_RC=$?
if [ "$CTEST_RC" -ne 0 ]; then
  echo "CHECK FAILED: tests"
  exit 1
fi
echo "CHECK OK"
