#!/bin/bash
# Repo health gate: configure + build with -Wall -Wextra treated as a gate
# (any warning fails), then run the full tier-1 test suite.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -u
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S . || exit 1

echo "== build (warning gate) =="
BUILD_LOG=$(mktemp)
cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$BUILD_LOG"
BUILD_RC=${PIPESTATUS[0]}
if [ "$BUILD_RC" -ne 0 ]; then
  echo "CHECK FAILED: build error"
  rm -f "$BUILD_LOG"
  exit 1
fi
# The toolchain already compiles with -Wall -Wextra (see CMakeLists.txt);
# the gate is that the log stays warning-free.
if grep -E "warning:" "$BUILD_LOG" > /dev/null; then
  echo "CHECK FAILED: compiler warnings:"
  grep -E "warning:" "$BUILD_LOG" | sort -u
  rm -f "$BUILD_LOG"
  exit 1
fi
rm -f "$BUILD_LOG"

echo "== tier-1 tests =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")
CTEST_RC=$?
if [ "$CTEST_RC" -ne 0 ]; then
  echo "CHECK FAILED: tests"
  exit 1
fi
echo "CHECK OK"
