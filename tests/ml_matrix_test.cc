#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/matrix.h"
#include "src/ml/polynomial.h"

namespace mudi {
namespace {

TEST(MatrixTest, IdentityMultiply) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 3.0;
  a.At(1, 1) = 4.0;
  Matrix i = Matrix::Identity(2);
  Matrix prod = a.Multiply(i);
  EXPECT_DOUBLE_EQ(prod.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(prod.At(1, 0), 3.0);
}

TEST(MatrixTest, MultiplyKnownResult) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      a.At(r, c) = v++;
    }
  }
  v = 1;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      b.At(r, c) = v++;
    }
  }
  Matrix p = a.Multiply(b);
  // a = [1 2 3; 4 5 6], b = [1 2; 3 4; 5 6] -> p = [22 28; 49 64]
  EXPECT_DOUBLE_EQ(p.At(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(p.At(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(p.At(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(p.At(1, 1), 64.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  a.At(0, 2) = 7.0;
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 7.0);
}

TEST(MatrixTest, AddAndScale) {
  Matrix a(1, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  Matrix b = a.Scale(3.0).Add(a);
  EXPECT_DOUBLE_EQ(b.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(b.At(0, 1), 8.0);
}

TEST(MatrixTest, ColumnVectorAndColumn) {
  Matrix v = Matrix::ColumnVector({1.0, 2.0, 3.0});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 1u);
  auto col = v.Column(0);
  EXPECT_EQ(col, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CholeskyTest, DecomposeAndSolve) {
  // A = [4 2; 2 3], b = [8, 7]; x = [1.3, 1.466...]? Solve directly.
  Matrix a(2, 2);
  a.At(0, 0) = 4.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 3.0;
  Matrix l;
  ASSERT_TRUE(CholeskyDecompose(a, l));
  // Verify L·Lᵀ = A.
  Matrix rec = l.Multiply(l.Transpose());
  EXPECT_NEAR(rec.At(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(rec.At(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(rec.At(1, 1), 3.0, 1e-12);

  auto x = CholeskySolve(l, {8.0, 7.0});
  // Check A·x = b.
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-10);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-10);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(0, 1) = 2.0;
  a.At(1, 0) = 2.0;
  a.At(1, 1) = 1.0;  // eigenvalues 3, -1: not SPD
  Matrix l;
  EXPECT_FALSE(CholeskyDecompose(a, l));
}

TEST(RidgeTest, RecoversExactLinearSystem) {
  // y = 2x0 - x1, no noise, tiny ridge.
  Matrix x(4, 2);
  std::vector<double> y(4);
  double data[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  for (size_t i = 0; i < 4; ++i) {
    x.At(i, 0) = data[i][0];
    x.At(i, 1) = data[i][1];
    y[i] = 2.0 * data[i][0] - data[i][1];
  }
  auto w = RidgeSolve(x, y, 1e-10);
  EXPECT_NEAR(w[0], 2.0, 1e-4);
  EXPECT_NEAR(w[1], -1.0, 1e-4);
}

TEST(RidgeTest, RegularizationShrinksWeights) {
  Matrix x(3, 1);
  x.At(0, 0) = 1.0;
  x.At(1, 0) = 2.0;
  x.At(2, 0) = 3.0;
  std::vector<double> y{2.0, 4.0, 6.0};
  auto w_small = RidgeSolve(x, y, 1e-9);
  auto w_big = RidgeSolve(x, y, 100.0);
  EXPECT_NEAR(w_small[0], 2.0, 1e-6);
  EXPECT_LT(w_big[0], w_small[0]);
}

TEST(PolynomialTest, FitsQuadraticExactly) {
  std::vector<double> x, y;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    x.push_back(t);
    y.push_back(3.0 * t * t - 2.0 * t + 1.0);
  }
  PolynomialModel model = PolynomialModel::Fit(x, y, 2);
  for (double t = 0.05; t < 1.0; t += 0.2) {
    EXPECT_NEAR(model.Eval(t), 3.0 * t * t - 2.0 * t + 1.0, 1e-6);
  }
}

TEST(PolynomialTest, DegreeZeroIsMean) {
  PolynomialModel model = PolynomialModel::Fit({0.0, 1.0, 2.0}, {1.0, 2.0, 3.0}, 0);
  EXPECT_NEAR(model.Eval(5.0), 2.0, 1e-6);  // ridge epsilon shifts the mean slightly
}

TEST(PolynomialTest, HighDegreeInterpolates) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, -1.0, 4.0, 0.0};
  PolynomialModel model = PolynomialModel::Fit(x, y, 3);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(model.Eval(x[i]), y[i], 1e-6);
  }
}

}  // namespace
}  // namespace mudi
