// Exercises the mudi_lint check engine against embedded code snippets: every
// check has at least one firing case, one clean case, and one suppression
// case, so a regression in the tokenizer or a check surfaces here before it
// silently stops guarding the repo.
#include "tools/mudi_lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace mudi::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& code,
                          Options options = {}) {
  return LintFile(path, code, options);
}

size_t CountCheck(const std::vector<Finding>& findings, const std::string& check,
                  bool include_suppressed = false) {
  size_t n = 0;
  for (const auto& f : findings) {
    if (f.check == check && (include_suppressed || !f.suppressed)) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, StripsCommentsAndStringBodies) {
  auto tokens = Tokenize(
      "int x = 1; // rand() in a comment\n"
      "const char* s = \"rand() steady_clock\";\n"
      "/* time(nullptr) in a block comment */\n");
  for (const auto& tok : tokens) {
    EXPECT_NE(tok.text, "rand");
    EXPECT_NE(tok.text, "steady_clock");
    EXPECT_NE(tok.text, "time");
  }
}

TEST(TokenizerTest, RawStringBodiesAreStripped) {
  auto tokens = Tokenize("auto s = R\"(rand() mt19937)\";\n");
  for (const auto& tok : tokens) {
    EXPECT_NE(tok.text, "rand");
    EXPECT_NE(tok.text, "mt19937");
  }
}

TEST(TokenizerTest, TracksLineNumbers) {
  auto tokens = Tokenize("int a;\nint b;\n\nint c;\n");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].line, 1);  // int
  EXPECT_EQ(tokens[3].line, 2);  // int (b)
  EXPECT_EQ(tokens[6].line, 4);  // int (c)
}

TEST(TokenizerTest, MultiCharOperatorsAreSingleTokens) {
  auto tokens = Tokenize("a == b; c != d; e->f; g::h;");
  std::vector<std::string> puncts;
  for (const auto& tok : tokens) {
    if (tok.kind == Token::Kind::kPunct) {
      puncts.push_back(tok.text);
    }
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "=="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "!="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
}

// ---------------------------------------------------------------------------
// mudi-determinism
// ---------------------------------------------------------------------------

TEST(DeterminismCheckTest, FlagsRandAndClocks) {
  auto findings = Lint("src/core/foo.cc",
                       "void F() {\n"
                       "  int x = rand();\n"
                       "  auto t = std::chrono::steady_clock::now();\n"
                       "  std::random_device rd;\n"
                       "  std::mt19937 gen(42);\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 4u);
}

TEST(DeterminismCheckTest, FlagsCTime) {
  auto findings = Lint("src/core/foo.cc", "long t = time(nullptr);\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 1u);
}

TEST(DeterminismCheckTest, MemberNamedTimeIsClean) {
  auto findings = Lint("src/core/foo.cc",
                       "struct E { double time; };\n"
                       "bool Later(const E& a, const E& b) { return a.time > b.time; }\n"
                       "double T(const E& e) { return e.time; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
}

TEST(DeterminismCheckTest, RngHeaderIsAllowlisted) {
  const std::string code = "std::mt19937_64 engine_;\n";
  EXPECT_EQ(CountCheck(Lint("src/common/rng.h", code), "mudi-determinism"), 0u);
  EXPECT_EQ(CountCheck(Lint("src/core/other.h", code), "mudi-determinism"), 1u);
}

TEST(DeterminismCheckTest, WallclockHeaderIsAllowlisted) {
  const std::string code = "using Clock = std::chrono::steady_clock;\n";
  EXPECT_EQ(CountCheck(Lint("src/common/wallclock.h", code), "mudi-determinism"), 0u);
}

TEST(DeterminismCheckTest, NolintSuppresses) {
  auto findings = Lint("src/core/foo.cc",
                       "int x = rand();  // NOLINT(mudi-determinism) seed audit fixture\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-determinism", /*include_suppressed=*/true), 1u);
}

TEST(DeterminismCheckTest, NolintNextLineSuppresses) {
  auto findings = Lint("src/core/foo.cc",
                       "// NOLINTNEXTLINE(mudi-determinism)\n"
                       "int x = rand();\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-determinism", /*include_suppressed=*/true), 1u);
}

TEST(DeterminismCheckTest, BareNolintSuppressesEverything) {
  auto findings = Lint("src/core/foo.cc", "int x = rand();  // NOLINT\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
}

// ---------------------------------------------------------------------------
// mudi-status
// ---------------------------------------------------------------------------

Options StatusOptions() {
  Options options;
  options.status_functions = {"Release", "Validate", "GetRequired"};
  return options;
}

TEST(StatusCheckTest, FlagsDiscardedCall) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Manager& m) {\n"
                       "  m.Release(1);\n"
                       "}\n",
                       StatusOptions());
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 1u);
}

TEST(StatusCheckTest, FlagsDiscardedChainedCall) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Exp& e) {\n"
                       "  e.registry().GetRequired(\"k\");\n"
                       "}\n",
                       StatusOptions());
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 1u);
}

TEST(StatusCheckTest, CheckedCallIsClean) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Manager& m) {\n"
                       "  MUDI_CHECK_OK(m.Release(1));\n"
                       "  Status s = m.Release(2);\n"
                       "  if (!m.Release(3).ok()) { return; }\n"
                       "  (void)m.Release(4);  // drop: device already gone\n"
                       "}\n",
                       StatusOptions());
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 0u);
}

TEST(StatusCheckTest, CallWithOkAccessorIsClean) {
  // The chain continues past the call, so the result is consumed.
  auto findings = Lint("src/core/foo.cc",
                       "void F(Plan& p) { p.Validate(4, 2).ok(); }\n", StatusOptions());
  // .ok() consumes the Status; the chain's last call is ok(), not Validate().
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 0u);
}

TEST(StatusCheckTest, DeclarationIsNotACall) {
  auto findings = Lint("src/core/foo.h",
                       "class Plan {\n"
                       " public:\n"
                       "  Status Validate(int n, int m) const;\n"
                       "};\n",
                       StatusOptions());
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 0u);
}

TEST(StatusCheckTest, NolintSuppresses) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Manager& m) {\n"
                       "  m.Release(1);  // NOLINT(mudi-status) best-effort cleanup\n"
                       "}\n",
                       StatusOptions());
  EXPECT_EQ(CountCheck(findings, "mudi-status"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-status", /*include_suppressed=*/true), 1u);
}

TEST(StatusCheckTest, CollectorFindsDeclarations) {
  std::set<std::string> names;
  CollectStatusFunctions(
      "Status Arm(const FaultPlan& plan);\n"
      "StatusOr<std::string> GetRequired(const std::string& key) const;\n"
      "Status FaultInjector::Disarm(int id) { return Status::Ok(); }\n"
      "Status s = Foo();\n"  // variable, not a function
      "return Status(code, msg);\n",  // constructor, not a function
      &names);
  EXPECT_EQ(names.count("Arm"), 1u);
  EXPECT_EQ(names.count("GetRequired"), 1u);
  EXPECT_EQ(names.count("Disarm"), 1u);
  EXPECT_EQ(names.count("s"), 0u);
  EXPECT_EQ(names.count("Status"), 0u);
}

// ---------------------------------------------------------------------------
// mudi-float-eq
// ---------------------------------------------------------------------------

TEST(FloatEqCheckTest, FlagsLiteralComparison) {
  auto findings = Lint("src/core/foo.cc",
                       "bool F(double x) { return x == 0.5; }\n"
                       "bool G(double x) { return 1.0 != x; }\n"
                       "bool H(double x) { return x == -2.5; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq"), 3u);
}

TEST(FloatEqCheckTest, IntegerComparisonIsClean) {
  auto findings = Lint("src/core/foo.cc",
                       "bool F(int x) { return x == 0; }\n"
                       "bool G(size_t x) { return x != 100; }\n"
                       "bool H(int x) { return x == 0x1f; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq"), 0u);
}

TEST(FloatEqCheckTest, HelpersHeaderIsAllowlisted) {
  const std::string code = "inline bool ExactEq(double a, double b) { return a == b; }\n";
  EXPECT_EQ(CountCheck(Lint("src/common/float_eq.h", code), "mudi-float-eq"), 0u);
}

TEST(FloatEqCheckTest, ScientificNotationIsFloat) {
  auto findings = Lint("src/core/foo.cc", "bool F(double x) { return x == 1e9; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq"), 1u);
}

TEST(FloatEqCheckTest, NolintSuppresses) {
  auto findings =
      Lint("src/core/foo.cc",
           "bool F(double x) { return x == 0.5; }  // NOLINT(mudi-float-eq) exact sentinel\n");
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-time-unit
// ---------------------------------------------------------------------------

TEST(TimeUnitCheckTest, FlagsRawMillisecondLiterals) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Simulator& sim) {\n"
                       "  sim.RunUntil(3600000.0);\n"
                       "  sim.ScheduleAfter(5000, cb);\n"
                       "  sim.SchedulePeriodic(0.0, 60000.0, cb);\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit"), 3u);
}

TEST(TimeUnitCheckTest, NamedConstantsAreClean) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Simulator& sim) {\n"
                       "  sim.RunUntil(2.0 * kMsPerHour);\n"
                       "  sim.ScheduleAfter(horizon_ms, cb);\n"
                       "  sim.ScheduleAfter(5.0, cb);\n"
                       "  sim.SchedulePeriodic(0.0, 10.0, cb);\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit"), 0u);
}

TEST(TimeUnitCheckTest, LiteralInCallbackBodyIsNotATimeArg) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Simulator& sim) {\n"
                       "  sim.ScheduleAfter(5.0, [&] { counter += 100000; });\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit"), 0u);
}

TEST(TimeUnitCheckTest, DefinitionIsNotACallSite) {
  auto findings =
      Lint("src/sim/simulator.cc", "void Simulator::RunUntil(TimeMs t) { now_ = t; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit"), 0u);
}

TEST(TimeUnitCheckTest, NolintSuppresses) {
  auto findings = Lint("src/core/foo.cc",
                       "void F(Simulator& sim) {\n"
                       "  sim.RunUntil(86400000.0);  // NOLINT(mudi-time-unit) raw trace ts\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-time-unit", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-include
// ---------------------------------------------------------------------------

TEST(IncludeCheckTest, OwnHeaderFirstIsClean) {
  auto findings = Lint("src/core/foo.cc",
                       "#include \"src/core/foo.h\"\n"
                       "#include <vector>\n"
                       "#include \"src/common/check.h\"\n");
  EXPECT_EQ(CountCheck(findings, "mudi-include"), 0u);
}

TEST(IncludeCheckTest, FlagsOwnHeaderNotFirst) {
  auto findings = Lint("src/core/foo.cc",
                       "#include <vector>\n"
                       "#include \"src/core/foo.h\"\n");
  EXPECT_EQ(CountCheck(findings, "mudi-include"), 1u);
}

TEST(IncludeCheckTest, MainFileWithoutOwnHeaderIsClean) {
  auto findings = Lint("tools/some_cli.cpp",
                       "#include <cstdio>\n"
                       "#include \"src/exp/presets.h\"\n"
                       "int main() { return 0; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-include"), 0u);
}

TEST(IncludeCheckTest, FlagsUsingNamespaceInHeader) {
  auto findings = Lint("src/core/foo.h", "using namespace std;\n");
  EXPECT_EQ(CountCheck(findings, "mudi-include"), 1u);
  // ... but not in a .cc file.
  auto cc = Lint("src/core/foo.cc", "using namespace std::chrono_literals;\n");
  EXPECT_EQ(CountCheck(cc, "mudi-include"), 0u);
}

TEST(IncludeCheckTest, NolintSuppresses) {
  auto findings = Lint("src/core/foo.h",
                       "using namespace std;  // NOLINT(mudi-include) generated code\n");
  EXPECT_EQ(CountCheck(findings, "mudi-include"), 0u);
}

// ---------------------------------------------------------------------------
// mudi-fit-thread
// ---------------------------------------------------------------------------

TEST(FitThreadCheckTest, FlagsStdThreadAndAsync) {
  auto findings = Lint("src/core/foo.cc",
                       "void F() {\n"
                       "  std::thread worker([] {});\n"
                       "  auto fut = std::async([] { return 1; });\n"
                       "  worker.join();\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-fit-thread"), 2u);
}

TEST(FitThreadCheckTest, FlagsThreadAndFutureIncludes) {
  auto findings = Lint("src/core/foo.cc",
                       "#include <thread>\n"
                       "#include <future>\n");
  EXPECT_EQ(CountCheck(findings, "mudi-fit-thread"), 2u);
}

TEST(FitThreadCheckTest, FitPoolHeaderIsAllowlisted) {
  const std::string code =
      "#include <thread>\n"
      "std::thread worker;\n";
  EXPECT_EQ(CountCheck(Lint("src/ml/fit_pool.h", code), "mudi-fit-thread"), 0u);
  EXPECT_EQ(CountCheck(Lint("src/ml/other.h", code), "mudi-fit-thread"), 2u);
}

TEST(FitThreadCheckTest, UnqualifiedThreadIdentifierIsClean) {
  // `thread` as a plain variable/member name (e.g. a config field) is fine;
  // only std-qualified spawn primitives and the spawning headers are banned.
  auto findings = Lint("src/core/foo.cc",
                       "struct Config { int thread = 0; };\n"
                       "int Threads(const Config& c) { return c.thread; }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-fit-thread"), 0u);
}

TEST(FitThreadCheckTest, NolintSuppresses) {
  auto findings = Lint("src/core/foo.cc",
                       "// NOLINTNEXTLINE(mudi-fit-thread) test-only stress harness\n"
                       "std::thread worker([] {});\n");
  EXPECT_EQ(CountCheck(findings, "mudi-fit-thread"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-fit-thread", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-retry
// ---------------------------------------------------------------------------

TEST(RetryCheckTest, FlagsAdHocRetryLoops) {
  auto findings = Lint("src/core/foo.cc",
                       "void F() {\n"
                       "  int attempts = 0;\n"
                       "  while (attempts < 5) { ++attempts; }\n"
                       "  for (int retry_count = 0; retry_count < 3; ++retry_count) {}\n"
                       "  double backoff_ms = 50.0;\n"
                       "  while (backoff_ms < 1000.0) { backoff_ms *= 2; }\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-retry"), 3u);
}

TEST(RetryCheckTest, FlagsNakedKvPollingInScheduleCall) {
  auto findings = Lint("src/exp/foo.cc",
                       "void F(Simulator& sim, KvStore& kv) {\n"
                       "  sim.ScheduleAfter(100.0, [&] { (void)kv.CtrlGet(\"/k\"); });\n"
                       "  sim.SchedulePeriodic(0.0, 100.0, [&] { (void)kv.CtrlList(\"/p\"); });\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-retry"), 2u);
}

TEST(RetryCheckTest, OrdinaryLoopsAndCallbacksAreClean) {
  // Loops over non-retry counters and scheduled callbacks that only write to
  // the store (Put) or call unrelated functions must not fire.
  auto findings = Lint("src/core/foo.cc",
                       "void F(Simulator& sim, KvStore& kv) {\n"
                       "  for (int i = 0; i < 5; ++i) {}\n"
                       "  while (kv.revision() < 10) {}\n"
                       "  sim.ScheduleAfter(100.0, [&] { kv.Put(\"/k\", \"v\"); });\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-retry"), 0u);
}

TEST(RetryCheckTest, KvReadOutsideScheduleArgsIsClean) {
  // Reads in straight-line code (e.g. a recovery scan) are sanctioned; only
  // a read inside a schedule call's argument span is self-re-arming polling.
  auto findings = Lint("src/exp/foo.cc",
                       "Status F(KvStore& kv) {\n"
                       "  auto rows = kv.CtrlList(\"/devices/\");\n"
                       "  return rows.status();\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-retry"), 0u);
}

TEST(RetryCheckTest, RetryHeaderIsAllowlisted) {
  const std::string code =
      "void Retrier::Step() {\n"
      "  while (attempts_ < policy_.max_attempts) { ++attempts_; }\n"
      "}\n";
  EXPECT_EQ(CountCheck(Lint("src/sim/retry.h", code), "mudi-retry"), 0u);
  EXPECT_EQ(CountCheck(Lint("src/common/other.h", code), "mudi-retry"), 1u);
}

TEST(RetryCheckTest, NolintSuppresses) {
  auto findings = Lint("tests/foo_test.cc",
                       "// NOLINTNEXTLINE(mudi-retry) exercising the lint itself\n"
                       "void F() { for (int attempt = 0; attempt < 2; ++attempt) {} }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-retry"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-retry", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-trace-sink
// ---------------------------------------------------------------------------

TEST(TraceSinkCheckTest, FlagsRawTraceWriterOutsideReplay) {
  auto findings = Lint("src/exp/foo.cc",
                       "void Dump(const TraceHeader& header) {\n"
                       "  TraceWriter writer(header);\n"
                       "  writer.Finish();\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-trace-sink"), 1u);
}

TEST(TraceSinkCheckTest, FlagsAdHocHeaderEncoding) {
  auto findings = Lint("tools/foo_tool.cpp",
                       "std::string F(const TraceHeader& h) { return EncodeTraceHeader(h); }\n");
  EXPECT_EQ(CountCheck(findings, "mudi-trace-sink"), 1u);
}

TEST(TraceSinkCheckTest, SanctionedSitesAreAllowlisted) {
  const std::string code =
      "void Recorder::Flush() {\n"
      "  TraceWriter writer(header_);\n"
      "  writer.Finish();\n"
      "}\n";
  EXPECT_EQ(CountCheck(Lint("src/replay/decision_recorder.cc", code), "mudi-trace-sink"), 0u);
  EXPECT_EQ(CountCheck(Lint("tests/replay_test.cc", code), "mudi-trace-sink"), 0u);
  EXPECT_EQ(CountCheck(Lint("src/core/foo.cc", code), "mudi-trace-sink"), 1u);
}

TEST(TraceSinkCheckTest, ReadSideApisAreClean) {
  // Consumers parse and summarize traces everywhere; only emission is gated.
  auto findings = Lint("tools/trace_summary.cpp",
                       "void F(const std::string& path) {\n"
                       "  auto trace = ReadDecisionTrace(path);\n"
                       "  (void)SummarizeDecisionTrace(*trace, 5);\n"
                       "}\n");
  EXPECT_EQ(CountCheck(findings, "mudi-trace-sink"), 0u);
}

TEST(TraceSinkCheckTest, NolintSuppresses) {
  auto findings = Lint("src/exp/foo.cc",
                       "// NOLINTNEXTLINE(mudi-trace-sink) exercising the lint itself\n"
                       "TraceWriter writer(header);\n");
  EXPECT_EQ(CountCheck(findings, "mudi-trace-sink"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-trace-sink", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-determinism: raw getenv
// ---------------------------------------------------------------------------

TEST(DeterminismCheckTest, FlagsRawGetenv) {
  auto findings = Lint("src/core/foo.cc",
                       "const char* v = std::getenv(\"MUDI_X\");\n"
                       "const char* w = getenv(\"MUDI_Y\");\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 2u);
}

TEST(DeterminismCheckTest, EnvHeaderIsAllowlistedForGetenv) {
  std::string code = "inline const char* Raw(const char* n) { return std::getenv(n); }\n";
  EXPECT_EQ(CountCheck(Lint("src/common/env.h", code), "mudi-determinism"), 0u);
  EXPECT_EQ(CountCheck(Lint("src/core/foo.cc", code), "mudi-determinism"), 1u);
}

TEST(DeterminismCheckTest, GetEnvWrapperIsClean) {
  auto findings = Lint("src/core/foo.cc",
                       "auto v = GetEnv(\"MUDI_X\");\n");
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
}

// ---------------------------------------------------------------------------
// Repo-model helpers
// ---------------------------------------------------------------------------

std::vector<Finding> LintRepo(const std::vector<std::pair<std::string, std::string>>& files,
                              Options options = {}) {
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [path, code] : files) {
    models.push_back(AnalyzeFile(path, code));
  }
  return LintRepoModel(BuildRepoModel(std::move(models)), options);
}

// ---------------------------------------------------------------------------
// mudi-layering
// ---------------------------------------------------------------------------

TEST(LayeringCheckTest, FlagsUpLayerInclude) {
  auto findings = LintRepo({
      {"src/sim/simulator.cc", "#include \"src/core/mudi_policy.h\"\n"},
      {"src/core/mudi_policy.h", "int x;\n"},
  });
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 1u);
}

TEST(LayeringCheckTest, DownLayerAndSameLayerAreClean) {
  auto findings = LintRepo({
      {"src/core/mudi_policy.cc", "#include \"src/sim/simulator.h\"\n"
                                  "#include \"src/cluster/policy.h\"\n"},
      {"src/sim/simulator.h", "int x;\n"},
      {"src/cluster/policy.h", "int y;\n"},
  });
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 0u);
}

TEST(LayeringCheckTest, TestsAndToolsAreLayerExempt) {
  // Files outside src/ may include anything (tests drive every layer).
  auto findings = LintRepo({
      {"tests/foo_test.cc", "#include \"src/exp/cluster_experiment.h\"\n"
                            "#include \"src/common/check.h\"\n"},
      {"src/exp/cluster_experiment.h", "int x;\n"},
      {"src/common/check.h", "int y;\n"},
  });
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 0u);
}

TEST(LayeringCheckTest, FlagsUnknownSrcDirectory) {
  auto findings = LintRepo({{"src/mystery/foo.cc", "int x;\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 1u);
}

TEST(LayeringCheckTest, FlagsIncludeCycle) {
  auto findings = LintRepo({
      {"src/sim/a.h", "#include \"src/sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"src/sim/a.h\"\n"},
  });
  // One finding per cycle, anchored at the lexicographically first member.
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 1u);
  bool found = false;
  for (const auto& f : findings) {
    if (f.check == "mudi-layering" && f.file == "src/sim/a.h") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LayeringCheckTest, AcyclicGraphIsClean) {
  auto findings = LintRepo({
      {"src/sim/a.h", "#include \"src/sim/b.h\"\n"},
      {"src/sim/b.h", "#include \"src/common/c.h\"\n"},
      {"src/common/c.h", "int x;\n"},
  });
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 0u);
}

TEST(LayeringCheckTest, NolintSuppresses) {
  auto findings = LintRepo({
      {"src/sim/simulator.cc",
       "// NOLINTNEXTLINE(mudi-layering)\n#include \"src/core/mudi_policy.h\"\n"},
      {"src/core/mudi_policy.h", "int x;\n"},
  });
  EXPECT_EQ(CountCheck(findings, "mudi-layering"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-layering", /*include_suppressed=*/true), 1u);
}

TEST(LayeringCheckTest, LayerMapCoversEverySrcDirectory) {
  EXPECT_EQ(LayerOf("common"), 0);
  EXPECT_LT(LayerOf("sim"), LayerOf("core"));
  EXPECT_LT(LayerOf("core"), LayerOf("replay"));
  EXPECT_LT(LayerOf("replay"), LayerOf("exp"));
  EXPECT_EQ(LayerOf("mystery"), -1);
  EXPECT_FALSE(LayerMap().empty());
}

// ---------------------------------------------------------------------------
// mudi-global-state
// ---------------------------------------------------------------------------

TEST(GlobalStateCheckTest, FlagsUnannotatedMutableGlobal) {
  auto findings = LintRepo({{"src/core/foo.cc", "namespace mudi {\nint g_count = 0;\n}\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 1u);
}

TEST(GlobalStateCheckTest, AnnotatedGlobalIsClean) {
  auto findings = LintRepo({{"src/core/foo.cc",
                             "namespace mudi {\n"
                             "MUDI_SHARD_SHARED(\"test justification\");\n"
                             "int g_count = 0;\n"
                             "}\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 0u);
}

TEST(GlobalStateCheckTest, ConstGlobalsAreClean) {
  auto findings = LintRepo({{"src/core/foo.cc",
                             "namespace mudi {\n"
                             "const int kLimit = 4;\n"
                             "constexpr double kScale = 0.5;\n"
                             "}\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 0u);
}

TEST(GlobalStateCheckTest, FlagsStaticLocal) {
  auto findings = LintRepo({{"src/core/foo.cc",
                             "int F() {\n"
                             "  static int calls = 0;\n"
                             "  return ++calls;\n"
                             "}\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 1u);
}

TEST(GlobalStateCheckTest, LocalsAndMembersAreClean) {
  auto findings = LintRepo({{"src/core/foo.cc",
                             "class C {\n int member_ = 0;\n};\n"
                             "int F() {\n int local = 0;\n return local;\n}\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 0u);
}

TEST(GlobalStateCheckTest, TestFilesAreExempt) {
  auto findings = LintRepo({{"tests/foo_test.cc", "int g_count = 0;\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 0u);
}

TEST(GlobalStateCheckTest, NolintSuppresses) {
  auto findings = LintRepo({{"src/core/foo.cc",
                             "int g_count = 0;  // NOLINT(mudi-global-state)\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-global-state"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-global-state", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-sync-primitive
// ---------------------------------------------------------------------------

TEST(SyncPrimitiveCheckTest, FlagsMutexOutsideAllowlist) {
  auto findings = LintRepo({{"src/core/foo.h",
                             "class C {\n std::mutex mu_;\n};\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-sync-primitive"), 1u);
}

TEST(SyncPrimitiveCheckTest, AnnotatedDeclarationInAllowlistedFileIsClean) {
  auto findings = LintRepo({{"src/ml/fit_cache.h",
                             "class C {\n"
                             " MUDI_GUARDED_STATE(\"test justification\");\n"
                             " std::mutex mu_;\n"
                             "};\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-sync-primitive"), 0u);
}

TEST(SyncPrimitiveCheckTest, UnannotatedDeclarationInAllowlistedFileFires) {
  auto findings = LintRepo({{"src/ml/fit_cache.h",
                             "class C {\n std::mutex mu_;\n};\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-sync-primitive"), 1u);
}

TEST(SyncPrimitiveCheckTest, AnnotationDoesNotExcuseDisallowedFile) {
  // The allowlist is the audit: an annotation elsewhere still fires.
  auto findings = LintRepo({{"src/core/foo.h",
                             "MUDI_GUARDED_STATE(\"not enough\");\n"
                             "std::atomic<int> g{0};\n"}});
  EXPECT_GE(CountCheck(findings, "mudi-sync-primitive"), 1u);
}

TEST(SyncPrimitiveCheckTest, NolintSuppresses) {
  auto findings = LintRepo({{"src/core/foo.h",
                             "// NOLINTNEXTLINE(mudi-sync-primitive)\n"
                             "std::atomic<int> g{0};\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-sync-primitive"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-sync-primitive", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// mudi-hot-path-alloc
// ---------------------------------------------------------------------------

TEST(HotPathAllocCheckTest, FlagsAllocIdiomsInsideRegion) {
  auto findings = LintRepo({{"src/sim/foo.cc",
                             "// MUDI_HOT_PATH\n"
                             "void F(std::vector<int>& v) {\n"
                             "  v.push_back(1);\n"
                             "  auto p = std::make_unique<int>(2);\n"
                             "}\n"
                             "// MUDI_HOT_PATH_END\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc"), 2u);
}

TEST(HotPathAllocCheckTest, CodeOutsideRegionIsClean) {
  auto findings = LintRepo({{"src/sim/foo.cc",
                             "void F(std::vector<int>& v) { v.push_back(1); }\n"
                             "// MUDI_HOT_PATH\n"
                             "int G() { return 1; }\n"
                             "// MUDI_HOT_PATH_END\n"
                             "void H(std::vector<int>& v) { v.push_back(2); }\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc"), 0u);
}

TEST(HotPathAllocCheckTest, UnclosedRegionRunsToEndOfFile) {
  auto findings = LintRepo({{"src/sim/foo.cc",
                             "// MUDI_HOT_PATH\n"
                             "void F(std::vector<int>& v) { v.push_back(1); }\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc"), 1u);
}

TEST(HotPathAllocCheckTest, ProseMentionDoesNotOpenRegion) {
  // Only a comment whose first word is the marker opens a region; prose
  // that merely mentions MUDI_HOT_PATH must not.
  auto findings = LintRepo({{"src/sim/foo.cc",
                             "// this function is near a MUDI_HOT_PATH region\n"
                             "void F(std::vector<int>& v) { v.push_back(1); }\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc"), 0u);
}

TEST(HotPathAllocCheckTest, NolintSuppresses) {
  auto findings = LintRepo({{"src/sim/foo.cc",
                             "// MUDI_HOT_PATH\n"
                             "void F(std::vector<int>& v) {\n"
                             "  // NOLINTNEXTLINE(mudi-hot-path-alloc): warm-up growth\n"
                             "  v.push_back(1);\n"
                             "}\n"
                             "// MUDI_HOT_PATH_END\n"}});
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-hot-path-alloc", /*include_suppressed=*/true), 1u);
}

// ---------------------------------------------------------------------------
// Tokenizer: annotation macros
// ---------------------------------------------------------------------------

TEST(TokenizerTest, AnnotationMacrosInsideTemplatesStayTokens) {
  // Regression: the annotation identifiers must survive tokenization inside
  // template-heavy declarations so HasAnnotationNear sees them.
  auto model = AnalyzeFile("src/core/foo.h",
                           "template <typename T>\n"
                           "class Holder {\n"
                           " MUDI_GUARDED_STATE(\"guards map<K, V> access\");\n"
                           " std::mutex mu_;\n"
                           " std::map<int, std::vector<T>> data_;\n"
                           "};\n");
  ASSERT_EQ(model.sync_uses.size(), 1u);
  EXPECT_TRUE(model.sync_uses[0].annotated);
  EXPECT_EQ(model.sync_uses[0].kind, FileModel::SyncUse::Kind::kDeclaration);
}

// ---------------------------------------------------------------------------
// --fix: own-header-first
// ---------------------------------------------------------------------------

TEST(FixOwnHeaderFirstTest, MovesOwnHeaderToFront) {
  std::string code =
      "// File comment.\n"
      "#include <vector>\n"
      "#include \"src/core/other.h\"\n"
      "#include \"src/core/foo.h\"\n"
      "\n"
      "int x;\n";
  auto fix = FixOwnHeaderFirst("src/core/foo.cc", code);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->moved_include, "src/core/foo.h");
  // The own header is now the first include.
  size_t own = fix->fixed_content.find("#include \"src/core/foo.h\"");
  size_t vec = fix->fixed_content.find("#include <vector>");
  ASSERT_NE(own, std::string::npos);
  ASSERT_NE(vec, std::string::npos);
  EXPECT_LT(own, vec);
}

TEST(FixOwnHeaderFirstTest, FixIsIdempotent) {
  std::string code =
      "#include <vector>\n"
      "#include \"src/core/foo.h\"\n";
  auto fix = FixOwnHeaderFirst("src/core/foo.cc", code);
  ASSERT_TRUE(fix.has_value());
  EXPECT_FALSE(FixOwnHeaderFirst("src/core/foo.cc", fix->fixed_content).has_value());
}

TEST(FixOwnHeaderFirstTest, RoundTripSatisfiesIncludeCheck) {
  std::string code =
      "#include <vector>\n"
      "#include \"src/core/foo.h\"\n"
      "int x;\n";
  EXPECT_EQ(CountCheck(Lint("src/core/foo.cc", code), "mudi-include"), 1u);
  auto fix = FixOwnHeaderFirst("src/core/foo.cc", code);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(CountCheck(Lint("src/core/foo.cc", fix->fixed_content), "mudi-include"), 0u);
}

TEST(FixOwnHeaderFirstTest, HeadersAndHeaderlessFilesAreUntouched) {
  EXPECT_FALSE(FixOwnHeaderFirst("src/core/foo.h",
                                 "#include <vector>\n#include \"src/core/foo.h\"\n")
                   .has_value());
  EXPECT_FALSE(FixOwnHeaderFirst("src/core/foo.cc", "#include <vector>\nint x;\n").has_value());
}

// ---------------------------------------------------------------------------
// --json schema gate
// ---------------------------------------------------------------------------

std::string ValidLintJson() {
  std::string checks;
  for (const auto& name : CheckNames()) {
    if (!checks.empty()) {
      checks += ",";
    }
    checks += "{\"name\":\"" + name + "\",\"unsuppressed\":0,\"suppressed\":0}";
  }
  return "{\"schema\":\"mudi.lint.v1\",\"files_scanned\":3,\"checks\":[" + checks +
         "],\"findings\":[],\"suppressed\":0,\"unsuppressed\":0}";
}

TEST(LintJsonTest, ValidDocumentPasses) {
  EXPECT_TRUE(ValidateLintJson(ValidLintJson()).ok());
}

TEST(LintJsonTest, WrongSchemaTagFails) {
  std::string doc = ValidLintJson();
  size_t pos = doc.find("mudi.lint.v1");
  doc.replace(pos, 12, "mudi.lint.v2");
  EXPECT_FALSE(ValidateLintJson(doc).ok());
}

TEST(LintJsonTest, TotalsMustMatchFindings) {
  std::string doc = ValidLintJson();
  size_t pos = doc.rfind("\"unsuppressed\":0");
  doc.replace(pos, 16, "\"unsuppressed\":1");
  EXPECT_FALSE(ValidateLintJson(doc).ok());
}

TEST(LintJsonTest, MalformedJsonFails) {
  EXPECT_FALSE(ValidateLintJson("{not json").ok());
  EXPECT_FALSE(ValidateLintJson("[]").ok());
}

// ---------------------------------------------------------------------------
// Engine plumbing
// ---------------------------------------------------------------------------

TEST(EngineTest, CheckNamesSortedAndComplete) {
  auto names = CheckNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), 12u);
}

TEST(EngineTest, EnabledChecksRestrictsFindings) {
  Options options;
  options.enabled_checks = {"mudi-float-eq"};
  auto findings = Lint("src/core/foo.cc",
                       "bool F(double x) { int y = rand(); return x == 0.5; }\n", options);
  EXPECT_EQ(CountCheck(findings, "mudi-determinism"), 0u);
  EXPECT_EQ(CountCheck(findings, "mudi-float-eq"), 1u);
}

TEST(EngineTest, FindingsSortedByLine) {
  auto findings = Lint("src/core/foo.cc",
                       "int a = rand();\n"
                       "int b = rand();\n"
                       "int c = rand();\n");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_LT(findings[0].line, findings[1].line);
  EXPECT_LT(findings[1].line, findings[2].line);
}

TEST(EngineTest, FindingToStringFormat) {
  Finding f{"src/core/foo.cc", 12, "mudi-determinism", Severity::kError, "bad", false};
  EXPECT_EQ(f.ToString(), "src/core/foo.cc:12: error: [mudi-determinism] bad");
  f.suppressed = true;
  EXPECT_EQ(f.ToString(), "src/core/foo.cc:12: error: [mudi-determinism] bad (suppressed)");
}

}  // namespace
}  // namespace mudi::lint
