// Tests for the src/perf self-profiling subsystem: LatencyStat aggregates
// and deterministic decimation, PerfCollector/PerfRegion semantics, the
// memory/allocation probes, PerfReport JSON round-trips through the bundled
// JSON checker, the BENCH_throughput.json schema validator, and the
// MUDI_BENCH_SCALE parser. This binary links mudi_perf_alloc_hook, so the
// allocation probe runs in its hooked configuration here.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/perf/json_check.h"
#include "src/perf/mem_probe.h"
#include "src/perf/perf_collector.h"
#include "src/perf/perf_report.h"
#include "src/perf/perf_stats.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace perf {
namespace {

// ---------------------------------------------------------------------------
// LatencyStat

TEST(LatencyStatTest, ExactAggregates) {
  LatencyStat stat;
  stat.Record(3.0);
  stat.Record(1.0);
  stat.Record(2.0);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.total_ms(), 6.0);
  EXPECT_DOUBLE_EQ(stat.mean_ms(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max_ms(), 3.0);
}

TEST(LatencyStatTest, EmptyStatIsAllZero) {
  LatencyStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(stat.max_ms(), 0.0);
  EXPECT_DOUBLE_EQ(stat.Quantile(0.5), 0.0);
}

TEST(LatencyStatTest, QuantilesExactBelowCap) {
  LatencyStat stat;
  for (int i = 1; i <= 100; ++i) {
    stat.Record(static_cast<double>(i));
  }
  EXPECT_NEAR(stat.Quantile(0.50), 50.5, 1.0);
  EXPECT_NEAR(stat.Quantile(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(stat.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(stat.Quantile(0.0), 1.0);
}

TEST(LatencyStatTest, DecimationKeepsAggregatesExactAndBoundsMemory) {
  LatencyStat stat(/*max_samples=*/8);
  for (int i = 1; i <= 1000; ++i) {
    stat.Record(static_cast<double>(i));
  }
  // Aggregates stay exact no matter how hard the buffer decimates.
  EXPECT_EQ(stat.count(), 1000u);
  EXPECT_DOUBLE_EQ(stat.total_ms(), 500500.0);
  EXPECT_DOUBLE_EQ(stat.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max_ms(), 1000.0);
  // Buffer bounded; stride grew past 1; quantile is a coarse but sane
  // estimate over the evenly-strided survivors.
  EXPECT_LE(stat.samples().size(), 8u);
  EXPECT_GT(stat.stride(), 1u);
  double p50 = stat.Quantile(0.5);
  EXPECT_GT(p50, 100.0);
  EXPECT_LT(p50, 900.0);
}

TEST(LatencyStatTest, DecimationIsDeterministic) {
  LatencyStat a(/*max_samples=*/16);
  LatencyStat b(/*max_samples=*/16);
  for (int i = 0; i < 5000; ++i) {
    double v = static_cast<double>((i * 37) % 101);
    a.Record(v);
    b.Record(v);
  }
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_EQ(a.stride(), b.stride());
  EXPECT_DOUBLE_EQ(a.Quantile(0.95), b.Quantile(0.95));
}

TEST(LatencyStatTest, ResetClearsEverything) {
  LatencyStat stat(/*max_samples=*/4);
  for (int i = 0; i < 100; ++i) {
    stat.Record(1.0);
  }
  stat.Reset();
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_TRUE(stat.samples().empty());
  EXPECT_EQ(stat.stride(), 1u);
}

// ---------------------------------------------------------------------------
// PerfCollector / PerfRegion

TEST(PerfCollectorTest, CountersIncrementAndSet) {
  PerfCollector collector;
  collector.IncrementCounter("a");
  collector.IncrementCounter("a", 4);
  collector.SetCounter("b", 7);
  EXPECT_EQ(collector.counters().at("a"), 5u);
  EXPECT_EQ(collector.counters().at("b"), 7u);
}

TEST(PerfCollectorTest, RegionStatAddressesAreStable) {
  PerfCollector collector;
  LatencyStat* first = &collector.GetRegionStat("hot");
  for (int i = 0; i < 100; ++i) {
    collector.GetRegionStat("filler" + std::to_string(i));
  }
  EXPECT_EQ(first, &collector.GetRegionStat("hot"));
}

TEST(PerfRegionTest, RecordsOneSampleOnScopeExit) {
  PerfCollector collector;
  {
    PerfRegion region(&collector, "scope");
  }
  const LatencyStat& stat = collector.regions().at("scope");
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_GE(stat.max_ms(), 0.0);
}

TEST(PerfRegionTest, NullCollectorIsSafeNoOp) {
  PerfRegion region(static_cast<PerfCollector*>(nullptr), "nowhere");
  // Nothing to assert beyond "does not crash"; the disabled path must also
  // not read the clock, which the determinism suite pins end-to-end.
}

TEST(PerfRegionTest, DisabledCollectorRecordsNothing) {
  PerfCollector collector;
  collector.set_enabled(false);
  {
    PerfRegion region(&collector, "scope");
  }
  EXPECT_TRUE(collector.regions().empty());
}

TEST(PerfCollectorTest, RecordValueFeedsRegion) {
  PerfCollector collector;
  collector.RecordValue("manual", 2.5);
  EXPECT_EQ(collector.regions().at("manual").count(), 1u);
  EXPECT_DOUBLE_EQ(collector.regions().at("manual").total_ms(), 2.5);
}

// ---------------------------------------------------------------------------
// Memory / allocation probes

// Sanitizer runtimes own the global allocation operators (their interceptors
// resolve `operator new` before the linker ever needs the archive member in
// mudi_perf_alloc_hook), so in ASan/TSan trees the hook is inert by design:
// `hooked` stays false and the counting tests have nothing to measure. Skip
// them there; in a plain build an unhooked binary is a hard link error.
bool SanitizerOwnsAllocator() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(MemProbeTest, MemoryUsageIsPopulatedOnLinux) {
  MemoryUsage usage = ReadMemoryUsage();
  EXPECT_GT(usage.current_rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.current_rss_bytes);
}

TEST(MemProbeTest, AllocHookCountsAllocations) {
  AllocStats baseline = ReadAllocStats();
  if (!baseline.hooked && SanitizerOwnsAllocator()) {
    GTEST_SKIP() << "sanitizer runtime owns the allocator; alloc hook is inert";
  }
  ASSERT_TRUE(baseline.hooked) << "perf_test must link mudi_perf_alloc_hook";
  {
    std::vector<double> v(4096, 1.0);
    EXPECT_EQ(v.size(), 4096u);
  }
  AllocStats delta = AllocStatsSince(baseline);
  EXPECT_TRUE(delta.hooked);
  EXPECT_GE(delta.allocations, 1u);
  EXPECT_GE(delta.bytes_allocated, 4096u * sizeof(double));
}

// The simulator's steady-state schedule/fire path performs ZERO heap
// allocations per event (DESIGN.md §12): events live in recycled EventArena
// slots, queue items are 20-byte PODs in reused calendar buckets, and a
// callback capturing up to 48 bytes stays inline in SmallFunction. The
// warm-up drives the clock through one full calendar lap (so every bucket
// vector holds capacity) and past a power-of-two id count (so the per-id
// state vector will not regrow); after that the alloc hook must count
// nothing at all.
TEST(MemProbeTest, SimulatorSteadyStateIsAllocationFree) {
  Simulator sim;
  uint64_t sink = 0;
  uint64_t* out = &sink;
  auto drive = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      uint64_t a = static_cast<uint64_t>(i);
      uint64_t b = a * 3;
      uint64_t c = a ^ 0x5bd1e995u;
      // 32-byte capture: the size class of real simulator callbacks
      // (`this` plus a few ids/times); std::function would heap-allocate it.
      sim.ScheduleAfter(1.0, [out, a, b, c] { *out += a ^ b ^ c; });
      ASSERT_TRUE(sim.Step());
    }
  };
  drive(10000);  // one full lap of the default 8192-bucket calendar, plus slack
  AllocStats baseline = ReadAllocStats();
  if (!baseline.hooked && SanitizerOwnsAllocator()) {
    GTEST_SKIP() << "sanitizer runtime owns the allocator; alloc hook is inert";
  }
  ASSERT_TRUE(baseline.hooked) << "perf_test must link mudi_perf_alloc_hook";
  drive(1000);
  AllocStats delta = AllocStatsSince(baseline);
  EXPECT_EQ(delta.allocations, 0u);
  EXPECT_EQ(delta.deallocations, 0u);
  EXPECT_GT(sink, 0u);
}

// ---------------------------------------------------------------------------
// PerfReport

TEST(PerfReportTest, SnapshotsRegionsAndCounters) {
  PerfCollector collector;
  collector.RecordValue("region.x", 1.0);
  collector.RecordValue("region.x", 3.0);
  collector.SetCounter("counter.y", 42);
  PerfReport report = PerfReport::FromCollector(collector);
  const RegionSummary* region = report.FindRegion("region.x");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->count, 2u);
  EXPECT_DOUBLE_EQ(region->total_ms, 4.0);
  EXPECT_DOUBLE_EQ(region->mean_ms, 2.0);
  EXPECT_EQ(report.CounterValue("counter.y"), 42u);
  EXPECT_EQ(report.CounterValue("missing"), 0u);
  EXPECT_EQ(report.FindRegion("missing"), nullptr);
}

TEST(PerfReportTest, JsonRoundTripsThroughTheChecker) {
  PerfCollector collector;
  collector.RecordValue("needs \"escaping\"\n", 1.5);
  collector.SetCounter("events", 9);
  PerfReport report = PerfReport::FromCollector(collector);
  StatusOr<JsonValue> doc = ParseJson(report.ToJsonString());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue* regions = doc->Find("regions");
  ASSERT_NE(regions, nullptr);
  const JsonValue* region = regions->Find("needs \"escaping\"\n");
  ASSERT_NE(region, nullptr);
  const JsonValue* count = region->Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number(), 1.0);
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("events")->number(), 9.0);
}

TEST(PerfReportTest, BuildMetadataIsPopulated) {
  BuildMetadata meta = BuildMetadata::Current();
  EXPECT_EQ(meta.schema_version, "mudi.perf.v1");
  EXPECT_FALSE(meta.compiler.empty());
  EXPECT_TRUE(meta.build_type == "release" || meta.build_type == "debug");
}

// ---------------------------------------------------------------------------
// JSON parser + BENCH_throughput.json schema validator

TEST(JsonCheckTest, ParsesScalarsArraysObjects) {
  StatusOr<JsonValue> doc =
      ParseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "s"})");
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.5);
  EXPECT_DOUBLE_EQ(a->array()[2].number(), -300.0);
  EXPECT_TRUE(doc->Find("b")->Find("c")->boolean());
  EXPECT_TRUE(doc->Find("b")->Find("d")->is_null());
  EXPECT_EQ(doc->Find("e")->string(), "s");
}

TEST(JsonCheckTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonCheckTest, ReportsLineInParseErrors) {
  Status status = ParseJson("{\n\"a\": oops\n}").status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos) << status.message();
}

std::string GoodBenchJson() {
  return R"({
    "schema": "mudi.bench_throughput.v1",
    "build": {"compiler": "test"},
    "records": [
      {"preset": "smoke", "policy": "Mudi",
       "wall_ms": 10.0, "sim_ms": 100.0,
       "events_fired": 5, "events_scheduled": 6, "events_cancelled": 1,
       "events_per_sec": 500.0, "sim_seconds_per_wall_second": 10.0,
       "decision_latency_ms": {"count": 3, "p50": 0.1, "p95": 0.2, "p99": 0.3, "max": 0.4}}
    ],
    "optimizations": [
      {"name": "sim.event-state-vector",
       "before_events_per_sec": 1.0, "after_events_per_sec": 2.0, "speedup": 2.0}
    ]
  })";
}

TEST(BenchSchemaTest, AcceptsWellFormedDocument) {
  StatusOr<JsonValue> doc = ParseJson(GoodBenchJson());
  ASSERT_TRUE(doc.ok());
  Status status = ValidateBenchThroughputJson(*doc);
  EXPECT_TRUE(status.ok()) << status.message();
}

void ExpectInvalid(const std::string& json, const std::string& needle) {
  StatusOr<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  Status status = ValidateBenchThroughputJson(*doc);
  ASSERT_FALSE(status.ok()) << "validator accepted: " << json;
  EXPECT_NE(status.message().find(needle), std::string::npos) << status.message();
}

TEST(BenchSchemaTest, RejectsWrongSchemaTag) {
  std::string json = GoodBenchJson();
  json.replace(json.find("mudi.bench_throughput.v1"), 24, "mudi.bench_throughput.v9");
  ExpectInvalid(json, "unknown schema");
}

TEST(BenchSchemaTest, RejectsEmptyRecords) {
  ExpectInvalid(R"({"schema": "mudi.bench_throughput.v1", "build": {},
                    "records": [], "optimizations": []})",
                "'records' is empty");
}

TEST(BenchSchemaTest, RejectsMissingDecisionLatency) {
  std::string json = GoodBenchJson();
  size_t pos = json.find("\"decision_latency_ms\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, std::strlen("\"decision_latency_ms\""), "\"renamed\"");
  ExpectInvalid(json, "decision_latency_ms");
}

TEST(BenchSchemaTest, RejectsMissingOptimizations) {
  std::string json = GoodBenchJson();
  size_t pos = json.find("\"optimizations\"");
  json.replace(pos, std::strlen("\"optimizations\""), "\"optimisations\"");
  ExpectInvalid(json, "optimizations");
}

TEST(BenchSchemaTest, RejectsEmptyOptimizations) {
  std::string json = GoodBenchJson();
  size_t start = json.find("\"optimizations\": [");
  size_t open = json.find('[', start);
  size_t close = json.find(']', open);
  json.erase(open + 1, close - open - 1);
  ExpectInvalid(json, "'optimizations' is empty");
}

TEST(BenchSchemaTest, RejectsNonNumericMetric) {
  std::string json = GoodBenchJson();
  size_t pos = json.find("\"wall_ms\": 10.0");
  json.replace(pos, std::strlen("\"wall_ms\": 10.0"), "\"wall_ms\": \"fast\"");
  ExpectInvalid(json, "wall_ms");
}

}  // namespace
}  // namespace perf

// ---------------------------------------------------------------------------
// MUDI_BENCH_SCALE parsing (bench/bench_util)

namespace {

TEST(ParseBenchScaleTest, AcceptsValidScales) {
  EXPECT_DOUBLE_EQ(*ParseBenchScale("1"), 1.0);
  EXPECT_DOUBLE_EQ(*ParseBenchScale("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseBenchScale("1e-3"), 0.001);
  EXPECT_DOUBLE_EQ(*ParseBenchScale("  0.25  "), 0.25);
}

TEST(ParseBenchScaleTest, RejectsNonNumeric) {
  EXPECT_FALSE(ParseBenchScale("fast").ok());
  EXPECT_FALSE(ParseBenchScale("0.5x").ok());
  EXPECT_FALSE(ParseBenchScale("").ok());
  EXPECT_FALSE(ParseBenchScale("   ").ok());
  EXPECT_FALSE(ParseBenchScale("nan").ok());
}

TEST(ParseBenchScaleTest, RejectsOutOfRange) {
  EXPECT_FALSE(ParseBenchScale("0").ok());
  EXPECT_FALSE(ParseBenchScale("-0.5").ok());
  EXPECT_FALSE(ParseBenchScale("1.0001").ok());
  EXPECT_FALSE(ParseBenchScale("2").ok());
}

TEST(ParseBenchScaleTest, ErrorsNameTheOffendingValue) {
  Status status = ParseBenchScale("2").status();
  EXPECT_NE(status.message().find("\"2\""), std::string::npos) << status.message();
  EXPECT_NE(status.message().find("<= 1"), std::string::npos) << status.message();
}

}  // namespace
}  // namespace mudi
