#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/ml/knn.h"
#include "src/ml/linear_regression.h"
#include "src/ml/mlp.h"
#include "src/ml/model_selection.h"
#include "src/ml/random_forest.h"
#include "src/ml/regressor.h"
#include "src/ml/svr.h"

namespace mudi {
namespace {

// Builds a dataset from a target function over a 2-D grid with mild noise.
void MakeDataset(const std::function<double(double, double)>& f, size_t n, uint64_t seed,
                 std::vector<std::vector<double>>* x, std::vector<double>* y,
                 double noise_sigma = 0.0) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Uniform(0.0, 1.0);
    double b = rng.Uniform(0.0, 1.0);
    x->push_back({a, b});
    double noise = noise_sigma > 0.0 ? rng.Normal(0.0, noise_sigma) : 0.0;
    y->push_back(f(a, b) + noise);
  }
}

double TestError(const Regressor& model, const std::function<double(double, double)>& f,
                 uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    double a = rng.Uniform(0.05, 0.95);
    double b = rng.Uniform(0.05, 0.95);
    total += std::abs(model.Predict({a, b}) - f(a, b));
  }
  return total / n;
}

// ---------------------------------------------------------------------------
// FeatureScaler
// ---------------------------------------------------------------------------

TEST(FeatureScalerTest, StandardizesToZeroMeanUnitVar) {
  FeatureScaler scaler;
  std::vector<std::vector<double>> x{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  scaler.Fit(x);
  auto t = scaler.TransformAll(x);
  double mean0 = (t[0][0] + t[1][0] + t[2][0]) / 3.0;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(t[2][0] - t[0][0], 2.0 * t[2][0], 1e-9);  // symmetric around 0
}

TEST(FeatureScalerTest, ConstantFeatureDoesNotBlowUp) {
  FeatureScaler scaler;
  scaler.Fit({{5.0}, {5.0}, {5.0}});
  auto t = scaler.Transform({5.0});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

// ---------------------------------------------------------------------------
// Individual regressors
// ---------------------------------------------------------------------------

TEST(LinearRegressorTest, RecoversLinearFunction) {
  auto f = [](double a, double b) { return 3.0 * a - 2.0 * b + 1.0; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 50, 1, &x, &y);
  LinearRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 99), 0.02);
}

TEST(LinearRegressorTest, NameIsLinear) { EXPECT_EQ(LinearRegressor().name(), "Linear"); }

TEST(KnnRegressorTest, InterpolatesSmoothFunction) {
  auto f = [](double a, double b) { return std::sin(3.0 * a) + b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 400, 2, &x, &y);
  KnnRegressor model(5);
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 98), 0.12);
}

TEST(KnnRegressorTest, ExactOnTrainingPoint) {
  KnnRegressor model(1);
  model.Fit({{0.0, 0.0}, {1.0, 1.0}}, {5.0, 9.0});
  EXPECT_NEAR(model.Predict({0.0, 0.0}), 5.0, 1e-3);
  EXPECT_NEAR(model.Predict({1.0, 1.0}), 9.0, 1e-3);
}

TEST(RandomForestTest, LearnsNonlinearFunction) {
  auto f = [](double a, double b) { return a * b + (a > 0.5 ? 2.0 : 0.0); };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 600, 3, &x, &y);
  RandomForestRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 97), 0.35);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset([](double a, double b) { return a + b; }, 100, 4, &x, &y);
  RandomForestRegressor m1, m2;
  m1.Fit(x, y);
  m2.Fit(x, y);
  EXPECT_DOUBLE_EQ(m1.Predict({0.3, 0.7}), m2.Predict({0.3, 0.7}));
}

TEST(RandomForestTest, ConstantTargetYieldsConstant) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset([](double, double) { return 7.0; }, 50, 5, &x, &y);
  RandomForestRegressor model;
  model.Fit(x, y);
  EXPECT_NEAR(model.Predict({0.5, 0.5}), 7.0, 1e-9);
}

TEST(SvrRegressorTest, LearnsSmoothFunction) {
  auto f = [](double a, double b) { return std::exp(-a) + 0.5 * b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 300, 6, &x, &y);
  SvrRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 96), 0.08);
}

TEST(SvrRegressorTest, CentersTarget) {
  // Large constant offset should not hurt the kernel model.
  auto f = [](double a, double b) { return 1000.0 + a + b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 200, 7, &x, &y);
  SvrRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 95), 0.5);
}

TEST(MlpRegressorTest, LearnsNonlinearFunction) {
  auto f = [](double a, double b) { return std::tanh(2.0 * a - 1.0) + 0.3 * b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 300, 8, &x, &y);
  MlpRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 94), 0.12);
}

TEST(MlpRegressorTest, HandlesScaledTargets) {
  auto f = [](double a, double b) { return 500.0 * a - 300.0 * b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 300, 9, &x, &y);
  MlpRegressor model;
  model.Fit(x, y);
  EXPECT_LT(TestError(model, f, 93), 30.0);
}

// Parameterized: every zoo regressor fits a simple linear map acceptably.
class ZooRegressorTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ZooRegressorTest, FitsLinearMapReasonably) {
  auto factories = DefaultRegressorZoo();
  auto model = factories[GetParam()]();
  auto f = [](double a, double b) { return 4.0 * a + b; };
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset(f, 250, 10 + GetParam(), &x, &y);
  model->Fit(x, y);
  EXPECT_LT(TestError(*model, f, 92), 0.6) << model->name();
}

TEST_P(ZooRegressorTest, RefitReplacesOldModel) {
  auto factories = DefaultRegressorZoo();
  auto model = factories[GetParam()]();
  std::vector<std::vector<double>> x1, x2;
  std::vector<double> y1, y2;
  MakeDataset([](double a, double) { return a; }, 120, 20, &x1, &y1);
  MakeDataset([](double a, double) { return -a; }, 120, 21, &x2, &y2);
  model->Fit(x1, y1);
  double before = model->Predict({0.9, 0.5});
  model->Fit(x2, y2);
  double after = model->Predict({0.9, 0.5});
  EXPECT_GT(before, 0.3) << model->name();
  EXPECT_LT(after, -0.3) << model->name();
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, ZooRegressorTest, ::testing::Range<size_t>(0, 5));

// ---------------------------------------------------------------------------
// Model selection
// ---------------------------------------------------------------------------

TEST(ModelSelectionTest, KFoldErrorSmallForEasyProblem) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset([](double a, double b) { return 2.0 * a + b + 5.0; }, 100, 30, &x, &y);
  double err = KFoldRelativeError(
      [] { return std::unique_ptr<Regressor>(std::make_unique<LinearRegressor>()); }, x, y);
  EXPECT_LT(err, 0.01);
}

TEST(ModelSelectionTest, SelectsLowCvErrorModel) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset([](double a, double b) { return 3.0 * a - b; }, 120, 31, &x, &y, 0.01);
  auto result = SelectBestModel(DefaultRegressorZoo(), x, y);
  ASSERT_NE(result.model, nullptr);
  EXPECT_LT(result.cv_error, 0.6);
  EXPECT_FALSE(result.model_name.empty());
}

TEST(ModelSelectionTest, WinnerIsRefitOnAllData) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeDataset([](double a, double b) { return a + b; }, 60, 32, &x, &y);
  auto result = SelectBestModel(DefaultRegressorZoo(), x, y);
  // Refit model should predict near truth on a training point.
  EXPECT_NEAR(result.model->Predict(x[0]), y[0], 0.3);
}

TEST(ModelSelectionTest, DefaultZooHasFiveFamilies) {
  EXPECT_EQ(DefaultRegressorZoo().size(), 5u);
}

}  // namespace
}  // namespace mudi
