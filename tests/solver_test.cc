#include <gtest/gtest.h>

#include <cmath>

#include "src/solver/monotone_solver.h"

namespace mudi {
namespace {

TEST(MonotoneSolverTest, FindsExactCrossing) {
  // f(x) = 100 - 50x, target 60 → crossing at x = 0.8.
  auto f = [](double x) { return 100.0 - 50.0 * x; };
  auto x = MinFeasibleMonotone(f, 60.0, 0.0, 1.0, 1e-6);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.8, 1e-4);
}

TEST(MonotoneSolverTest, InfeasibleReturnsNullopt) {
  auto f = [](double x) { return 100.0 - 10.0 * x; };
  EXPECT_FALSE(MinFeasibleMonotone(f, 50.0, 0.0, 1.0).has_value());
}

TEST(MonotoneSolverTest, AlreadyFeasibleAtLowerBound) {
  auto f = [](double x) { return 10.0 - x; };
  auto x = MinFeasibleMonotone(f, 100.0, 0.2, 1.0);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 0.2);
}

TEST(MonotoneSolverTest, NonlinearMonotone) {
  auto f = [](double x) { return 50.0 / x; };  // decreasing on (0, ∞)
  auto x = MinFeasibleMonotone(f, 100.0, 0.1, 1.0, 1e-7);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.5, 1e-4);
}

TEST(MonotoneSolverTest, SolutionIsMinimal) {
  auto f = [](double x) { return 200.0 * std::exp(-3.0 * x); };
  auto x = MinFeasibleMonotone(f, 80.0, 0.0, 1.0, 1e-7);
  ASSERT_TRUE(x.has_value());
  EXPECT_LE(f(*x), 80.0 + 1e-3);
  EXPECT_GT(f(*x - 1e-3), 80.0);  // one step lower violates
}

TEST(GridSearchTest, FindsConstrainedMinimum) {
  auto result = ExhaustiveGridSearch(
      {16, 32, 64}, {0.2, 0.5, 0.8},
      [](int b, double g) { return std::abs(b - 32) + std::abs(g - 0.5) * 100.0; },
      [](int b, double) { return b >= 32; });
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.best_batch, 32);
  EXPECT_DOUBLE_EQ(result.best_fraction, 0.5);
  EXPECT_EQ(result.evaluations, 9u);
}

TEST(GridSearchTest, AllInfeasible) {
  auto result = ExhaustiveGridSearch({1}, {0.1}, [](int, double) { return 0.0; },
                                     [](int, double) { return false; });
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(GridSearchTest, ConstraintExcludesGlobalOptimum) {
  // Global min at (16, 0.1) but constraint requires g >= 0.5.
  auto result = ExhaustiveGridSearch(
      {16, 32}, {0.1, 0.5, 0.9},
      [](int b, double g) { return b + g; },
      [](int, double g) { return g >= 0.5; });
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.best_batch, 16);
  EXPECT_DOUBLE_EQ(result.best_fraction, 0.5);
}

}  // namespace
}  // namespace mudi
