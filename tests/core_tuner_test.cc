#include <gtest/gtest.h>

#include <cmath>

#include "src/cluster/policy.h"
#include "src/common/rng.h"
#include "src/core/memory_manager.h"
#include "src/core/tuner.h"

namespace mudi {
namespace {

// Synthetic latency curve family: batch b's curve scales with b.
PiecewiseLinearModel CurveForBatch(int batch) {
  PiecewiseLinearModel m;
  m.x0 = 0.3 + 0.0004 * batch;
  m.y0 = 0.4 * batch + 5.0;  // at-knee latency grows with batch
  m.k1 = -4.0 * m.y0;        // steep segment
  m.k2 = -0.05 * m.y0;
  return m;
}

// ---------------------------------------------------------------------------
// MinimalFraction (Eq. 4)
// ---------------------------------------------------------------------------

TEST(TunerEq4Test, SatisfiesConstraintAtSolution) {
  Tuner tuner;
  int batch = 64;
  double qps = 200.0, slo = 150.0;
  auto curve = CurveForBatch(batch);
  auto frac = tuner.MinimalFraction(curve, batch, qps, slo);
  ASSERT_TRUE(frac.has_value());
  double budget = PlanningLatencyBudgetMs(batch, qps, slo);
  EXPECT_LE(curve.Eval(*frac), budget + 1e-6);
}

TEST(TunerEq4Test, SolutionIsMinimal) {
  Tuner tuner;
  int batch = 64;
  double qps = 200.0, slo = 150.0;
  auto curve = CurveForBatch(batch);
  auto frac = tuner.MinimalFraction(curve, batch, qps, slo);
  ASSERT_TRUE(frac.has_value());
  if (*frac > tuner.options().min_fraction + 0.01) {
    // The tuner plans against the load-headroom-inflated budget.
    double budget = PlanningLatencyBudgetMs(batch, qps * tuner.options().load_headroom, slo);
    EXPECT_GT(curve.Eval(*frac - 0.01), budget);
  }
}

TEST(TunerEq4Test, InfeasibleWhenSloTooTight) {
  Tuner tuner;
  auto curve = CurveForBatch(512);
  // Impossibly tight SLO at high QPS.
  EXPECT_FALSE(tuner.MinimalFraction(curve, 512, 5000.0, 50.0).has_value());
}

TEST(TunerEq4Test, ZeroQpsNeedsOnlyFloor) {
  Tuner tuner;
  auto frac = tuner.MinimalFraction(CurveForBatch(64), 64, 0.0, 100.0);
  ASSERT_TRUE(frac.has_value());
  EXPECT_DOUBLE_EQ(*frac, tuner.options().min_fraction);
}

TEST(TunerEq4Test, HigherQpsNeedsMoreGpu) {
  Tuner tuner;
  auto curve = CurveForBatch(128);
  auto lo = tuner.MinimalFraction(curve, 128, 100.0, 200.0);
  auto hi = tuner.MinimalFraction(curve, 128, 300.0, 200.0);
  ASSERT_TRUE(lo.has_value());
  ASSERT_TRUE(hi.has_value());
  EXPECT_GE(*hi, *lo);
}

// ---------------------------------------------------------------------------
// TuneOnPlacement
// ---------------------------------------------------------------------------

TEST(TunerPlacementTest, PicksFeasibleBatchMinimizingObjective) {
  Tuner tuner;
  // Objective favors batch 128 (U-shaped).
  auto objective = [](int b) {
    return std::abs(std::log2(static_cast<double>(b)) - 7.0) * 10.0 + 50.0;
  };
  auto result = tuner.TuneOnPlacement(CurveForBatch, objective, ProfilingBatchSizes(), 200.0,
                                      330.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.batch, 128);
  EXPECT_GT(result.inference_fraction, 0.0);
  EXPECT_LE(result.inference_fraction, tuner.options().max_fraction);
  EXPECT_LE(result.bo_iterations, tuner.options().bo.max_iterations);
  EXPECT_GT(result.tuning_time_ms, 0.0);
}

TEST(TunerPlacementTest, AppliesTenPercentMargin) {
  Tuner tuner;
  auto objective = [](int) { return 100.0; };
  auto result =
      tuner.TuneOnPlacement(CurveForBatch, objective, ProfilingBatchSizes(), 200.0, 330.0);
  ASSERT_TRUE(result.feasible);
  auto raw = tuner.MinimalFraction(CurveForBatch(result.batch), result.batch, 200.0, 330.0);
  ASSERT_TRUE(raw.has_value());
  EXPECT_NEAR(result.inference_fraction,
              std::clamp(*raw * 1.1, tuner.options().min_fraction,
                         tuner.options().max_fraction),
              1e-9);
}

TEST(TunerPlacementTest, InfeasibleWhenNoBatchWorks) {
  Tuner tuner;
  auto result = tuner.TuneOnPlacement(CurveForBatch, [](int) { return 1.0; },
                                      ProfilingBatchSizes(), 10000.0, 20.0);
  EXPECT_FALSE(result.feasible);
}

TEST(TunerPlacementTest, SkipsInfeasibleBatches) {
  Tuner tuner;
  // Headroom-inflated budget = 200·b/(400·1.1) ≈ 0.4545b while best-case
  // latency ≈ 0.388b + 4.85: batches below ~73 are infeasible. The objective
  // prefers the smallest batch, so the tuner must settle on the smallest
  // *feasible* one (128).
  auto objective = [](int b) { return static_cast<double>(b); };
  auto result = tuner.TuneOnPlacement(CurveForBatch, objective, ProfilingBatchSizes(), 400.0,
                                      200.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(tuner.BatchFeasible(CurveForBatch(16), 16, 400.0, 200.0));
  EXPECT_FALSE(tuner.BatchFeasible(CurveForBatch(64), 64, 400.0, 200.0));
  EXPECT_EQ(result.batch, 128);
  EXPECT_TRUE(
      tuner.BatchFeasible(CurveForBatch(result.batch), result.batch, 400.0, 200.0));
}

// ---------------------------------------------------------------------------
// TuneOnQpsChange
// ---------------------------------------------------------------------------

TEST(TunerQpsChangeTest, RetunesToFeasibleConfig) {
  Tuner tuner;
  auto objective = [](int b) { return 1000.0 / b; };
  auto result = tuner.TuneOnQpsChange(CurveForBatch, objective, ProfilingBatchSizes(),
                                      /*current_batch=*/64, 250.0, 330.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(tuner.BatchFeasible(CurveForBatch(result.batch), result.batch, 250.0, 330.0));
}

TEST(TunerQpsChangeTest, FallsBackToCurrentBatchWhenSearchFails) {
  Tuner::Options options;
  Tuner tuner(options);
  // Construct a case where only the current batch is feasible: curve family
  // returns infeasible-everywhere except batch 512 at lenient SLO... use a
  // custom provider: batch != 512 → terrible latency.
  auto curves = [](int batch) {
    PiecewiseLinearModel m = CurveForBatch(batch);
    if (batch != 512) {
      m.y0 = 1e9;  // infeasible
      m.k1 = -1.0;
      m.k2 = -0.1;
    }
    return m;
  };
  auto result = tuner.TuneOnQpsChange(curves, [](int) { return 1.0; }, ProfilingBatchSizes(),
                                      /*current_batch=*/512, 200.0, 330.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.batch, 512);
}

// ---------------------------------------------------------------------------
// MemoryManager
// ---------------------------------------------------------------------------

TrainingInstance Resident(int id, double mem, double swapped = 0.0) {
  TrainingInstance t;
  t.task_id = id;
  t.mem_required_mb = mem;
  t.mem_swapped_mb = swapped;
  t.gpu_fraction = 0.3;
  return t;
}

TEST(MemoryManagerTest, SwapsOutOnDeficit) {
  GpuDevice dev(0, 10000.0);
  InferenceInstance inf;
  inf.service_index = 0;
  inf.batch_size = 64;
  inf.gpu_fraction = 0.5;
  inf.mem_required_mb = 7000.0;
  dev.PlaceInference(inf);
  dev.AddTraining(Resident(1, 6000.0));

  MemoryManager manager;
  double transfer = manager.Rebalance(dev, 100.0);
  EXPECT_GT(transfer, 0.0);
  EXPECT_LE(dev.MemoryDeficitMb(), 1e-6);
  EXPECT_GT(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  ASSERT_EQ(manager.records().size(), 1u);
  EXPECT_TRUE(manager.records()[0].to_host);
  EXPECT_DOUBLE_EQ(manager.records()[0].time_ms, 100.0);
}

TEST(MemoryManagerTest, KeepsMinimumResident) {
  GpuDevice dev(0, 1000.0);
  InferenceInstance inf;
  inf.service_index = 0;
  inf.batch_size = 64;
  inf.gpu_fraction = 0.5;
  inf.mem_required_mb = 950.0;
  dev.PlaceInference(inf);
  dev.AddTraining(Resident(1, 2000.0));

  MemoryManager::Options options;
  options.min_resident_fraction = 0.15;
  MemoryManager manager(options);
  manager.Rebalance(dev, 0.0);
  // Cannot evict below 15% of the working set even if still over capacity.
  EXPECT_GE(dev.FindTraining(1)->mem_resident_mb(), 0.15 * 2000.0 - 1e-6);
}

TEST(MemoryManagerTest, SwapsBackInWithHeadroom) {
  GpuDevice dev(0, 20000.0);
  dev.AddTraining(Resident(1, 6000.0, /*swapped=*/4000.0));
  MemoryManager manager;
  double transfer = manager.Rebalance(dev, 5.0);
  EXPECT_GT(transfer, 0.0);
  EXPECT_DOUBLE_EQ(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  ASSERT_FALSE(manager.records().empty());
  EXPECT_FALSE(manager.records().back().to_host);
}

TEST(MemoryManagerTest, NoOpWhenBalanced) {
  GpuDevice dev(0, 20000.0);
  dev.AddTraining(Resident(1, 5000.0));
  MemoryManager manager;
  EXPECT_DOUBLE_EQ(manager.Rebalance(dev, 0.0), 0.0);
  EXPECT_TRUE(manager.records().empty());
}

TEST(MemoryManagerTest, TransferTimeMatchesBandwidth) {
  GpuDevice dev(0, 1000.0);
  dev.AddTraining(Resident(1, 2200.0));
  MemoryManager::Options options;
  options.pcie_mb_per_ms = 10.0;
  options.swap_in_headroom_mb = 1e9;  // disable swap-in
  MemoryManager manager(options);
  double transfer = manager.Rebalance(dev, 0.0);
  double swapped = dev.FindTraining(1)->mem_swapped_mb;
  EXPECT_NEAR(transfer, swapped / 10.0, 1e-9);
}

TEST(MemoryManagerTest, SwapSlowdownGrowsWithSwappedFraction) {
  TrainingInstance t = Resident(1, 1000.0);
  EXPECT_DOUBLE_EQ(MemoryManager::SwapSlowdownFactor(t), 1.0);
  t.mem_swapped_mb = 500.0;
  double half = MemoryManager::SwapSlowdownFactor(t);
  t.mem_swapped_mb = 900.0;
  double most = MemoryManager::SwapSlowdownFactor(t);
  EXPECT_GT(half, 1.0);
  EXPECT_GT(most, half);
  EXPECT_LT(most, 3.0);
}

// Randomized invariant sweep: arbitrary sequences of placements, removals,
// inference growth/shrink, and rebalances must keep the accounting sane.
TEST(MemoryManagerTest, RandomizedOperationsKeepInvariants) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    GpuDevice dev(0, 40960.0);
    InferenceInstance inf;
    inf.service_index = 0;
    inf.batch_size = 64;
    inf.gpu_fraction = 0.5;
    inf.mem_required_mb = 4000.0;
    dev.PlaceInference(inf);
    MemoryManager manager;
    int next_id = 0;
    for (int step = 0; step < 60; ++step) {
      double action = rng.Uniform();
      if (action < 0.35) {
        TrainingInstance t = Resident(next_id++, rng.Uniform(2000.0, 28000.0));
        dev.AddTraining(t);
      } else if (action < 0.5 && !dev.trainings().empty()) {
        size_t idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(dev.trainings().size()) - 1));
        dev.RemoveTraining(dev.trainings()[idx].task_id);
      } else if (action < 0.7) {
        dev.mutable_inference().mem_required_mb = rng.Uniform(1000.0, 25000.0);
      }
      double transfer = manager.Rebalance(dev, static_cast<TimeMs>(step));
      EXPECT_GE(transfer, 0.0);
      double total_min_resident = 0.0;
      for (const auto& t : dev.trainings()) {
        // Swap state within bounds per task.
        EXPECT_GE(t.mem_swapped_mb, -1e-9);
        EXPECT_LE(t.mem_swapped_mb, t.mem_required_mb + 1e-9);
        EXPECT_GE(MemoryManager::SwapSlowdownFactor(t), 1.0);
        total_min_resident += 0.15 * t.mem_required_mb;
      }
      // After a rebalance the device fits unless even minimum residents plus
      // the pinned inference memory exceed capacity.
      double floor = dev.inference().mem_required_mb + total_min_resident;
      if (floor <= dev.memory_mb()) {
        EXPECT_LE(dev.MemoryDeficitMb(), 1e-6) << "trial " << trial << " step " << step;
      }
    }
  }
}

TEST(MemoryManagerTest, LargestResidentEvictedFirst) {
  GpuDevice dev(0, 10000.0);
  dev.AddTraining(Resident(1, 3000.0));
  dev.AddTraining(Resident(2, 9000.0));
  MemoryManager manager;
  manager.Rebalance(dev, 0.0);
  // Deficit is 2000: the 9000-MB task absorbs all of it.
  EXPECT_DOUBLE_EQ(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  EXPECT_NEAR(dev.FindTraining(2)->mem_swapped_mb, 2000.0, 1e-6);
}

}  // namespace
}  // namespace mudi
