#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/sim/retry.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, MeanBasic) { EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0); }

TEST(StatsTest, StdDevBasic) {
  EXPECT_DOUBLE_EQ(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0);
}

TEST(StatsTest, StdDevOfSingleValueIsZero) { EXPECT_EQ(StdDev({5.0}), 0.0); }

TEST(StatsTest, PercentileMedianInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
}

TEST(StatsTest, PercentileExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
}

TEST(StatsTest, PercentileSingleValue) { EXPECT_DOUBLE_EQ(Percentile({7.0}, 99.0), 7.0); }

TEST(StatsTest, P99OfUniformSequence) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  EXPECT_NEAR(Percentile(v, 99.0), 99.01, 0.011);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  std::vector<double> v{3.0, 1.0, 2.0, 5.0, 4.0};
  auto cdf = EmpiricalCdf(v, 10);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(StatsTest, EmpiricalCdfEmptyInput) { EXPECT_TRUE(EmpiricalCdf({}).empty()); }

TEST(StatsTest, EwmaConvergesToConstant) {
  Ewma ewma(0.3);
  for (int i = 0; i < 100; ++i) {
    ewma.Add(10.0);
  }
  EXPECT_NEAR(ewma.value(), 10.0, 1e-9);
}

TEST(StatsTest, EwmaFirstValueDominates) {
  Ewma ewma(0.5);
  ewma.Add(4.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 4.0);
  ewma.Add(8.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 6.0);
}

TEST(StatsTest, EwmaReset) {
  Ewma ewma(0.5);
  ewma.Add(4.0);
  ewma.Reset();
  EXPECT_FALSE(ewma.has_value());
}

TEST(StatsTest, SlidingWindowEvictsOldest) {
  SlidingWindow window(3);
  window.Add(1.0);
  window.Add(2.0);
  window.Add(3.0);
  window.Add(4.0);  // evicts 1.0
  EXPECT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.Mean(), 3.0);
}

TEST(StatsTest, SlidingWindowPercentile) {
  SlidingWindow window(10);
  for (int i = 1; i <= 10; ++i) {
    window.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(window.Percentile(50.0), 5.5, 1e-9);
}

TEST(StatsTest, TimeWeightedMeanWeighsByDuration) {
  TimeWeightedMean twm;
  twm.Add(1.0, 3.0);
  twm.Add(5.0, 1.0);
  EXPECT_DOUBLE_EQ(twm.value(), 2.0);
  EXPECT_DOUBLE_EQ(twm.total_duration(), 4.0);
}

TEST(StatsTest, TimeWeightedMeanEmptyIsZero) {
  TimeWeightedMean twm;
  EXPECT_EQ(twm.value(), 0.0);
}

TEST(StatsTest, HistogramBucketsAndCumulative) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(h.total_count(), 10u);
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.buckets()[b], 1u);
  }
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(4), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(9), 1.0);
}

TEST(StatsTest, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(StatsTest, HistogramBucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(4), 10.0);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform() != b.Uniform()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng a(42);
  Rng fork_before = a.Fork(7);
  a.Uniform();
  a.Uniform();
  Rng fork_after = a.Fork(7);
  EXPECT_DOUBLE_EQ(fork_before.Uniform(), fork_after.Uniform());
}

TEST(RngTest, ForkDifferentTagsDiffer) {
  Rng a(42);
  Rng f1 = a.Fork(1);
  Rng f2 = a.Fork(2);
  EXPECT_NE(f1.Uniform(), f2.Uniform());
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PoissonMeanApprox) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(4.0));
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(5);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ExponentialMeanApprox) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.ExponentialMean(7.0);
  }
  EXPECT_NEAR(sum / n, 7.0, 0.3);
}

TEST(RngTest, LogNormalFactorMeanIsOne) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormalFactor(0.05);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.35);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad batch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad batch");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOut) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long_header"});
  t.AddRow({"xx", "1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, PctFormatting) { EXPECT_EQ(Table::Pct(0.256, 1), "25.6%"); }

// ---------------------------------------------------------------------------
// Retry / backoff (DESIGN.md §13)
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ValidateAcceptsDefaultsAndRejectsBadBounds) {
  EXPECT_TRUE(RetryPolicy{}.Validate().ok());

  RetryPolicy inverted;
  inverted.initial_backoff_ms = 100.0;
  inverted.max_backoff_ms = 10.0;
  EXPECT_FALSE(inverted.Validate().ok());

  RetryPolicy shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_FALSE(shrinking.Validate().ok());

  RetryPolicy wild_jitter;
  wild_jitter.jitter_frac = 1.5;
  EXPECT_FALSE(wild_jitter.Validate().ok());
}

TEST(RetryBackoffTest, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 350.0;
  policy.jitter_frac = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, rng), 100.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, rng), 200.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, rng), 350.0);  // capped
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 10, rng), 350.0);
}

TEST(RetryBackoffTest, JitterIsBoundedAndSeedDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.jitter_frac = 0.25;
  Rng a(42);
  Rng b(42);
  for (int k = 1; k <= 5; ++k) {
    double base = 0.0;
    {
      RetryPolicy bare = policy;
      bare.jitter_frac = 0.0;
      Rng unused(0);
      base = BackoffDelayMs(bare, k, unused);
    }
    double da = BackoffDelayMs(policy, k, a);
    double db = BackoffDelayMs(policy, k, b);
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same delays
    EXPECT_GE(da, base);
    EXPECT_LT(da, base * 1.25);
  }
}

TEST(RetrierTest, SucceedsAfterFailuresWithBackoff) {
  Simulator sim;
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.multiplier = 2.0;
  policy.jitter_frac = 0.0;
  Retrier retrier(&sim, policy, Rng(1));

  int calls = 0;
  Status final_status = InternalError("never finished");
  int final_attempts = 0;
  retrier.Start(
      10.0,
      [&]() -> Status {
        ++calls;
        if (calls < 3) {
          return UnavailableError("partitioned");
        }
        return Status::Ok();
      },
      [&](const Status& status, int attempts) {
        final_status = status;
        final_attempts = attempts;
      });
  sim.RunUntilIdle();
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(final_status.ok());
  EXPECT_EQ(final_attempts, 3);
  EXPECT_EQ(retrier.total_retries(), 2u);
  // initial delay 10 + backoffs 100 + 200
  EXPECT_DOUBLE_EQ(sim.Now(), 310.0);
  EXPECT_FALSE(retrier.active());
}

TEST(RetrierTest, MaxAttemptsExhaustionReportsLastError) {
  Simulator sim;
  RetryPolicy policy;
  policy.jitter_frac = 0.0;
  policy.max_attempts = 3;
  Retrier retrier(&sim, policy, Rng(1));

  int calls = 0;
  Status final_status;
  retrier.Start(
      0.0, [&]() -> Status { ++calls; return UnavailableError("still down"); },
      [&](const Status& status, int) { final_status = status; });
  sim.RunUntilIdle();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(final_status.code(), StatusCode::kUnavailable);
}

TEST(RetrierTest, DeadlineStopsTheLoop) {
  Simulator sim;
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.jitter_frac = 0.0;
  policy.deadline_ms = 150.0;  // allows the first backoff but not the second
  Retrier retrier(&sim, policy, Rng(1));

  int calls = 0;
  Status final_status;
  retrier.Start(
      0.0, [&]() -> Status { ++calls; return UnavailableError("down"); },
      [&](const Status& status, int) { final_status = status; });
  sim.RunUntilIdle();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(final_status.code(), StatusCode::kUnavailable);
}

TEST(RetrierTest, RestartCancelsInFlightLoop) {
  // Start() during an active loop abandons it without firing its DoneFn —
  // the crash-during-recovery shape: a second crash restarts the recovery
  // loop and only the final loop reports.
  Simulator sim;
  RetryPolicy policy;
  policy.jitter_frac = 0.0;
  Retrier retrier(&sim, policy, Rng(1));

  int first_loop_done = 0;
  retrier.Start(
      100.0, [&]() -> Status { return Status::Ok(); },
      [&](const Status&, int) { ++first_loop_done; });
  sim.ScheduleAfter(50.0, [&] {
    retrier.Start(
        10.0, [&]() -> Status { return Status::Ok(); },
        [&](const Status&, int) {});
  });
  sim.RunUntilIdle();
  EXPECT_EQ(first_loop_done, 0);   // the first loop never completed
  EXPECT_DOUBLE_EQ(sim.Now(), 60.0);  // second loop ran at 50 + 10
}

TEST(RetrierTest, CancelIsIdempotentAndStopsAttempts) {
  Simulator sim;
  Retrier retrier(&sim, RetryPolicy{}, Rng(1));
  int calls = 0;
  retrier.Start(
      100.0, [&]() -> Status { ++calls; return Status::Ok(); },
      [&](const Status&, int) {});
  retrier.Cancel();
  retrier.Cancel();
  sim.RunUntilIdle();
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(retrier.active());
}

}  // namespace
}  // namespace mudi
