#include <gtest/gtest.h>

#include <memory>

#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

namespace mudi {
namespace {

// Serving-path behaviours observed through public interfaces: overload
// shedding, liveness backstop, probe semantics, pause effects.

ExperimentOptions OneGpuOptions(size_t service, double qps, TimeMs horizon) {
  ExperimentOptions options;
  options.num_nodes = 1;
  options.gpus_per_node = 1;
  options.num_services = 1;
  options.service_offset = service;
  options.horizon_ms = horizon;
  options.qps_factory = [qps](size_t, int) -> std::shared_ptr<const QpsProfile> {
    return std::make_shared<ConstantQps>(qps);
  };
  return options;
}

TEST(ServingPathTest, ModerateLoadMeetsSloSolo) {
  // ResNet50 at its nominal 200 QPS with no training: no violations.
  ExperimentOptions options = OneGpuOptions(0, 200.0, 60.0 * kMsPerSecond);
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("GSLICE", oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();
  EXPECT_DOUBLE_EQ(result.OverallSloViolationRate(), 0.0);
  const auto& m = result.per_service.at("ResNet50");
  EXPECT_GT(m.served_requests, 0.8 * 200.0 * 60.0);  // nearly all served
  EXPECT_LT(m.mean_latency_ms, 150.0);
}

TEST(ServingPathTest, SustainedOverloadViolatesEveryWindow) {
  // 20x the sustainable rate: queues explode / shed; every window violates.
  ExperimentOptions options = OneGpuOptions(0, 4000.0, 60.0 * kMsPerSecond);
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("GSLICE", oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();
  EXPECT_GT(result.OverallSloViolationRate(), 0.8);
}

TEST(ServingPathTest, LivenessBackstopTerminatesStuckRuns) {
  // One enormous task on a device whose service needs the whole GPU at 20x
  // load: training may stay preempted forever; max_sim_ms must end the run.
  TrainingArrival task;
  task.task_id = 0;
  task.arrival_ms = 1000.0;
  task.type_index = 6;
  task.work_full_gpu_ms = 1e12;
  ExperimentOptions options = OneGpuOptions(2, 4000.0, /*horizon=*/0.0);
  options.trace_override = {task};
  options.max_sim_ms = 90.0 * kMsPerSecond;
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();
  EXPECT_EQ(result.CompletedTasks(), 0u);  // terminated by the backstop
}

TEST(ServingPathTest, ProbeOverridesDoNotMutateState) {
  TrainingArrival task;
  task.task_id = 0;
  task.arrival_ms = 1000.0;
  task.type_index = 1;
  task.work_full_gpu_ms = 1e9;
  ExperimentOptions options = OneGpuOptions(0, 200.0, 20.0 * kMsPerSecond);
  options.trace_override = {task};
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("GSLICE", oracle);
  ClusterExperiment experiment(options, policy.get());
  experiment.Run();

  const GpuDevice& dev = experiment.device(0);
  ASSERT_EQ(dev.trainings().size(), 1u);
  int batch_before = dev.inference().batch_size;
  double frac_before = dev.inference().gpu_fraction;
  double train_frac_before = dev.trainings()[0].gpu_fraction;

  // What-if probes with overrides: observations come back, state unchanged.
  double lat = experiment.ProbeInferenceLatencyMs(0, 512, 0.33);
  double iter = experiment.ProbeTrainingIterMs(0, 0, 0.77, 512, 0.33);
  EXPECT_GT(lat, 0.0);
  EXPECT_GT(iter, 0.0);
  EXPECT_EQ(dev.inference().batch_size, batch_before);
  EXPECT_DOUBLE_EQ(dev.inference().gpu_fraction, frac_before);
  EXPECT_DOUBLE_EQ(dev.trainings()[0].gpu_fraction, train_frac_before);
}

TEST(ServingPathTest, ProbeAnticipatesMemoryPressureOfLargeBatch) {
  // A probe with a batch big enough to overflow device memory must report a
  // slower (paged) training iteration than a small-batch probe.
  TrainingArrival task;
  task.task_id = 0;
  task.arrival_ms = 1000.0;
  task.type_index = 6;  // BERT: ~26 GB working set
  task.work_full_gpu_ms = 1e9;
  ExperimentOptions options = OneGpuOptions(2, 200.0, 20.0 * kMsPerSecond);  // GPT2 service
  options.trace_override = {task};
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", oracle);
  ClusterExperiment experiment(options, policy.get());
  experiment.Run();
  ASSERT_NE(experiment.device(0).FindTraining(0), nullptr);

  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 32; ++i) {  // average out observation noise
    small += experiment.ProbeTrainingIterMs(0, 0, 0.5, /*inf_batch=*/16, 0.5);
    large += experiment.ProbeTrainingIterMs(0, 0, 0.5, /*inf_batch=*/512, 0.5);
  }
  EXPECT_GT(large, small * 1.2);
}

TEST(ServingPathTest, PausedTrainingMakesNoProgress) {
  TrainingArrival task;
  task.task_id = 0;
  task.arrival_ms = 1000.0;
  task.type_index = 3;  // NCF, small
  task.work_full_gpu_ms = 1e9;
  ExperimentOptions options = OneGpuOptions(0, 200.0, 30.0 * kMsPerSecond);
  options.trace_override = {task};
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("Random", oracle);  // never pauses by itself
  ClusterExperiment experiment(options, policy.get());
  experiment.Run();
  const TrainingInstance* t = experiment.device(0).FindTraining(0);
  ASSERT_NE(t, nullptr);
  // The task made progress while running...
  EXPECT_LT(t->work_remaining_ms, 1e9);
  EXPECT_FALSE(t->paused);
}

TEST(ServingPathTest, ServiceOffsetPinsService) {
  for (size_t s = 0; s < ModelZoo::InferenceServices().size(); ++s) {
    ExperimentOptions options = OneGpuOptions(s, 100.0, 1000.0);
    PerfOracle oracle(options.oracle_seed);
    auto policy = MakePolicy("Random", oracle);
    ClusterExperiment experiment(options, policy.get());
    EXPECT_EQ(experiment.ServiceOnDevice(0).name, ModelZoo::InferenceServices()[s].name);
  }
}

TEST(ServingPathTest, CanFitTrainingTracksInferenceFootprint) {
  ExperimentOptions options = OneGpuOptions(0, 100.0, 1000.0);
  PerfOracle oracle(options.oracle_seed);
  auto policy = MakePolicy("Random", oracle);
  ClusterExperiment experiment(options, policy.get());
  const TrainingTaskSpec& big = ModelZoo::TrainingTaskByName("BERT");
  EXPECT_TRUE(experiment.CanFitTraining(0, big));
  experiment.devices()[0].mutable_inference().mem_required_mb =
      experiment.device(0).memory_mb() - 1000.0;
  EXPECT_FALSE(experiment.CanFitTraining(0, big));
}

}  // namespace
}  // namespace mudi
