#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/workload/layers.h"
#include "src/workload/models.h"
#include "src/workload/request_generator.h"
#include "src/workload/training_trace.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// Layers / NetworkArchitecture
// ---------------------------------------------------------------------------

TEST(LayersTest, AllLayerTypesNamed) {
  std::set<std::string> names;
  for (size_t i = 0; i < kNumLayerTypes; ++i) {
    names.insert(LayerTypeName(static_cast<LayerType>(i)));
  }
  EXPECT_EQ(names.size(), kNumLayerTypes);  // distinct names
  EXPECT_TRUE(names.count("conv"));
  EXPECT_TRUE(names.count("batch_normalization"));
  EXPECT_TRUE(names.count("other_layers"));
}

TEST(LayersTest, MakeArchitectureSetsCounts) {
  auto arch = MakeArchitecture({{LayerType::kConv, 5}, {LayerType::kFc, 2}});
  EXPECT_EQ(arch.count(LayerType::kConv), 5);
  EXPECT_EQ(arch.count(LayerType::kFc), 2);
  EXPECT_EQ(arch.count(LayerType::kPooling), 0);
  EXPECT_EQ(arch.total_layers(), 7);
}

TEST(LayersTest, FeatureVectorOrderMatchesEnum) {
  auto arch = MakeArchitecture({{LayerType::kConv, 3}, {LayerType::kOther, 9}});
  auto vec = arch.ToFeatureVector();
  ASSERT_EQ(vec.size(), kNumLayerTypes);
  EXPECT_DOUBLE_EQ(vec[static_cast<size_t>(LayerType::kConv)], 3.0);
  EXPECT_DOUBLE_EQ(vec[static_cast<size_t>(LayerType::kOther)], 9.0);
}

TEST(LayersTest, PlusIsElementwiseSum) {
  auto a = MakeArchitecture({{LayerType::kConv, 2}});
  auto b = MakeArchitecture({{LayerType::kConv, 3}, {LayerType::kFc, 1}});
  auto sum = a.Plus(b);
  EXPECT_EQ(sum.count(LayerType::kConv), 5);
  EXPECT_EQ(sum.count(LayerType::kFc), 1);
}

TEST(LayersTest, EqualityOperator) {
  auto a = MakeArchitecture({{LayerType::kConv, 2}});
  auto b = MakeArchitecture({{LayerType::kConv, 2}});
  auto c = MakeArchitecture({{LayerType::kConv, 3}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ---------------------------------------------------------------------------
// Model zoo (Tab. 1 and Tab. 3)
// ---------------------------------------------------------------------------

TEST(ModelZooTest, SixInferenceServicesInPaperOrder) {
  const auto& services = ModelZoo::InferenceServices();
  ASSERT_EQ(services.size(), 6u);
  EXPECT_EQ(services[0].name, "ResNet50");
  EXPECT_EQ(services[1].name, "Inception");
  EXPECT_EQ(services[2].name, "GPT2");
  EXPECT_EQ(services[3].name, "BERT");
  EXPECT_EQ(services[4].name, "RoBERTa");
  EXPECT_EQ(services[5].name, "YOLOS");
}

TEST(ModelZooTest, SlosMatchTable1) {
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("ResNet50").slo_ms, 150.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("Inception").slo_ms, 120.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("GPT2").slo_ms, 100.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("BERT").slo_ms, 330.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("RoBERTa").slo_ms, 110.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("YOLOS").slo_ms, 2200.0);
}

TEST(ModelZooTest, ParamCountsMatchTable1) {
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("ResNet50").params_millions, 25.6);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("GPT2").params_millions, 335.0);
  EXPECT_DOUBLE_EQ(ModelZoo::InferenceServiceByName("BERT").params_millions, 110.0);
}

TEST(ModelZooTest, NineTrainingTasksInPaperOrder) {
  const auto& tasks = ModelZoo::TrainingTasks();
  ASSERT_EQ(tasks.size(), 9u);
  EXPECT_EQ(tasks[0].name, "VGG16");
  EXPECT_EQ(tasks[4].name, "LSTM");
  EXPECT_EQ(tasks[8].name, "ResNet18");
}

TEST(ModelZooTest, MixFractionsMatchTable3) {
  // The paper's Tab. 3 "Frac." column literally sums to 102% (3×14 + 4×12 +
  // 10 + 2); we keep the published values and normalize at sampling time.
  double total = 0.0;
  for (const auto& t : ModelZoo::TrainingTasks()) {
    total += t.mix_fraction;
  }
  EXPECT_NEAR(total, 1.02, 1e-9);
  EXPECT_DOUBLE_EQ(ModelZoo::TrainingTaskByName("VGG16").mix_fraction, 0.14);
  EXPECT_DOUBLE_EQ(ModelZoo::TrainingTaskByName("YOLOv5").mix_fraction, 0.10);
  EXPECT_DOUBLE_EQ(ModelZoo::TrainingTaskByName("ResNet18").mix_fraction, 0.02);
}

TEST(ModelZooTest, ScalesMatchTable3) {
  EXPECT_EQ(ModelZoo::TrainingTaskByName("VGG16").scale, TaskScale::kSmall);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("NCF").scale, TaskScale::kMedium);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("BERT").scale, TaskScale::kLarge);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("ResNet18").scale, TaskScale::kXLarge);
}

TEST(ModelZooTest, OptimizersMatchTable3) {
  EXPECT_EQ(ModelZoo::TrainingTaskByName("VGG16").optimizer, "Adam");
  EXPECT_EQ(ModelZoo::TrainingTaskByName("NCF").optimizer, "SGD");
  EXPECT_EQ(ModelZoo::TrainingTaskByName("LSTM").optimizer, "Adadelta");
  EXPECT_EQ(ModelZoo::TrainingTaskByName("BERT").optimizer, "AdamW");
}

TEST(ModelZooTest, BatchSizesMatchTable3) {
  EXPECT_EQ(ModelZoo::TrainingTaskByName("VGG16").batch_size, 512);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("ResNet50").batch_size, 1024);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("BERT").batch_size, 32);
  EXPECT_EQ(ModelZoo::TrainingTaskByName("ResNet18").batch_size, 128);
}

TEST(ModelZooTest, GPT2HasHighControlFlowFraction) {
  // §2.2.1: control flow up to 72% of GPT2's inference stage.
  EXPECT_NEAR(ModelZoo::InferenceServiceByName("GPT2").control_flow_fraction, 0.72, 1e-9);
}

TEST(ModelZooTest, AllSpecsHavePositiveOracleParameters) {
  for (const auto& s : ModelZoo::InferenceServices()) {
    EXPECT_GT(s.preprocess_ms_per_sample, 0.0) << s.name;
    EXPECT_GT(s.transfer_ms_per_sample, 0.0) << s.name;
    EXPECT_GT(s.exec_ms_per_sample_full, 0.0) << s.name;
    EXPECT_GT(s.weights_mb, 0.0) << s.name;
    EXPECT_GT(s.arch.total_layers(), 0) << s.name;
  }
  for (const auto& t : ModelZoo::TrainingTasks()) {
    EXPECT_GT(t.iter_ms_full, 0.0) << t.name;
    EXPECT_GT(t.saturation_gpu, 0.0) << t.name;
    EXPECT_GT(t.activation_mb, 0.0) << t.name;
    EXPECT_GT(t.arch.total_layers(), 0) << t.name;
  }
}

TEST(ModelZooTest, ProfilingGrids) {
  EXPECT_EQ(ProfilingBatchSizes(), (std::vector<int>{16, 32, 64, 128, 256, 512}));
  EXPECT_EQ(ProfilingGpuFractions().size(), 9u);
  EXPECT_DOUBLE_EQ(ProfilingGpuFractions().front(), 0.1);
  EXPECT_DOUBLE_EQ(ProfilingGpuFractions().back(), 0.9);
}

TEST(ModelZooTest, ObservedTypesAreFirstFive) {
  EXPECT_EQ(ModelZoo::kNumObservedTrainingTypes, 5u);
  // §7.1: profiling covers VGG16, SqueezeNet, ResNet50, NCF, LSTM.
  EXPECT_EQ(ModelZoo::TrainingTasks()[4].name, "LSTM");
  EXPECT_EQ(ModelZoo::TrainingTasks()[5].name, "AD-GCL");  // first unseen
}

TEST(ModelZooTest, TaskScaleNames) {
  EXPECT_STREQ(TaskScaleName(TaskScale::kSmall), "S");
  EXPECT_STREQ(TaskScaleName(TaskScale::kMedium), "M");
  EXPECT_STREQ(TaskScaleName(TaskScale::kLarge), "L");
  EXPECT_STREQ(TaskScaleName(TaskScale::kXLarge), "XL");
}

// ---------------------------------------------------------------------------
// Request generators
// ---------------------------------------------------------------------------

TEST(RequestGeneratorTest, ConstantQps) {
  ConstantQps qps(200.0);
  EXPECT_DOUBLE_EQ(qps.QpsAt(0.0), 200.0);
  EXPECT_DOUBLE_EQ(qps.QpsAt(1e9), 200.0);
}

TEST(RequestGeneratorTest, FluctuatingStaysInBounds) {
  FluctuatingQps::Options options;
  options.min_qps = 100.0;
  options.max_qps = 300.0;
  options.horizon_ms = 10.0 * kMsPerMinute;
  FluctuatingQps qps(options);
  for (TimeMs t = 0.0; t < options.horizon_ms; t += 1000.0) {
    EXPECT_GE(qps.QpsAt(t), 100.0 - 1e-9);
    EXPECT_LE(qps.QpsAt(t), 300.0 + 1e-9);
  }
}

TEST(RequestGeneratorTest, FluctuatingActuallyFluctuates) {
  FluctuatingQps::Options options;
  options.seed = 3;
  FluctuatingQps qps(options);
  double lo = 1e18, hi = -1e18;
  for (TimeMs t = 0.0; t < options.horizon_ms; t += 5000.0) {
    lo = std::min(lo, qps.QpsAt(t));
    hi = std::max(hi, qps.QpsAt(t));
  }
  EXPECT_GT(hi - lo, 0.2 * (options.max_qps - options.min_qps));
}

TEST(RequestGeneratorTest, FluctuatingDeterministicPerSeed) {
  FluctuatingQps::Options options;
  options.seed = 9;
  FluctuatingQps a(options), b(options);
  EXPECT_DOUBLE_EQ(a.QpsAt(12345.0), b.QpsAt(12345.0));
}

TEST(RequestGeneratorTest, FluctuatingBeyondHorizonClamps) {
  FluctuatingQps::Options options;
  options.horizon_ms = 1000.0;
  FluctuatingQps qps(options);
  EXPECT_DOUBLE_EQ(qps.QpsAt(1e12), qps.QpsAt(1e13));
}

TEST(RequestGeneratorTest, ScaledQpsMultiplies) {
  auto base = std::make_shared<ConstantQps>(100.0);
  ScaledQps scaled(base, 3.0);
  EXPECT_DOUBLE_EQ(scaled.QpsAt(0.0), 300.0);
}

TEST(RequestGeneratorTest, BurstAppliesOnlyInWindow) {
  auto base = std::make_shared<ConstantQps>(100.0);
  BurstyQps bursty(base, {{1000.0, 2000.0, 3.0}});
  EXPECT_DOUBLE_EQ(bursty.QpsAt(500.0), 100.0);
  EXPECT_DOUBLE_EQ(bursty.QpsAt(1500.0), 300.0);
  EXPECT_DOUBLE_EQ(bursty.QpsAt(2000.0), 100.0);  // end exclusive
}

TEST(RequestGeneratorTest, OverlappingBurstsCompound) {
  auto base = std::make_shared<ConstantQps>(10.0);
  BurstyQps bursty(base, {{0.0, 100.0, 2.0}, {50.0, 150.0, 3.0}});
  EXPECT_DOUBLE_EQ(bursty.QpsAt(75.0), 60.0);
}

TEST(RequestGeneratorTest, NextArrivalGapMatchesRate) {
  ConstantQps qps(200.0);  // mean gap 5 ms
  Rng rng(4);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += NextArrivalGap(qps, 0.0, rng);
  }
  EXPECT_NEAR(total / n, 5.0, 0.2);
}

TEST(RequestGeneratorTest, ZeroQpsProbesAgainLater) {
  ConstantQps qps(0.0);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(NextArrivalGap(qps, 0.0, rng), kMsPerSecond);
}

// ---------------------------------------------------------------------------
// Training trace
// ---------------------------------------------------------------------------

TEST(TrainingTraceTest, GeneratesRequestedCount) {
  TrainingTraceOptions options;
  options.num_tasks = 123;
  auto trace = GenerateTrainingTrace(options);
  EXPECT_EQ(trace.size(), 123u);
}

TEST(TrainingTraceTest, ArrivalsSortedAndIdsSequential) {
  TrainingTraceOptions options;
  options.num_tasks = 50;
  auto trace = GenerateTrainingTrace(options);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_ms, trace[i - 1].arrival_ms);
    EXPECT_EQ(trace[i].task_id, static_cast<int>(i));
  }
}

TEST(TrainingTraceTest, MixFractionsApproximated) {
  TrainingTraceOptions options;
  options.num_tasks = 5000;
  auto trace = GenerateTrainingTrace(options);
  std::vector<int> counts(ModelZoo::TrainingTasks().size(), 0);
  for (const auto& a : trace) {
    ++counts[a.type_index];
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    double frac = static_cast<double>(counts[i]) / 5000.0;
    // Sampling normalizes the published fractions (they sum to 1.02).
    EXPECT_NEAR(frac, ModelZoo::TrainingTasks()[i].mix_fraction / 1.02, 0.03) << i;
  }
}

TEST(TrainingTraceTest, WorkWithinScaleClassRange) {
  TrainingTraceOptions options;
  options.num_tasks = 500;
  options.duration_compression = 1.0;  // raw GPU-hours
  auto trace = GenerateTrainingTrace(options);
  for (const auto& a : trace) {
    double lo = 0.0, hi = 0.0;
    ScaleGpuHourRange(ModelZoo::TrainingTasks()[a.type_index].scale, &lo, &hi);
    double hours = a.work_full_gpu_ms / kMsPerHour;
    EXPECT_GE(hours, lo - 1e-9);
    EXPECT_LE(hours, hi + 1e-9);
  }
}

TEST(TrainingTraceTest, CompressionDividesWork) {
  TrainingTraceOptions a, b;
  a.num_tasks = b.num_tasks = 50;
  a.duration_compression = 1.0;
  b.duration_compression = 100.0;
  auto ta = GenerateTrainingTrace(a);
  auto tb = GenerateTrainingTrace(b);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(ta[i].work_full_gpu_ms / tb[i].work_full_gpu_ms, 100.0, 1e-6);
  }
}

TEST(TrainingTraceTest, DeterministicPerSeed) {
  TrainingTraceOptions options;
  options.num_tasks = 20;
  auto a = GenerateTrainingTrace(options);
  auto b = GenerateTrainingTrace(options);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].type_index, b[i].type_index);
  }
}

TEST(TrainingTraceTest, ScaleRangesMatchPaperCategorization) {
  double lo = 0.0, hi = 0.0;
  ScaleGpuHourRange(TaskScale::kSmall, &lo, &hi);
  EXPECT_LE(hi, 1.0);  // S < 1 GPU-hour
  ScaleGpuHourRange(TaskScale::kMedium, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 10.0);
  ScaleGpuHourRange(TaskScale::kXLarge, &lo, &hi);
  EXPECT_GE(lo, 100.0);  // XL > 100 GPU-hours
}

}  // namespace
}  // namespace mudi
