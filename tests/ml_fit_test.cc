#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/ml/piecewise_linear.h"

namespace mudi {
namespace {

TEST(PiecewiseModelTest, EvalBothSegments) {
  PiecewiseLinearModel m{-10.0, -1.0, 0.4, 50.0};
  EXPECT_DOUBLE_EQ(m.Eval(0.4), 50.0);
  EXPECT_DOUBLE_EQ(m.Eval(0.2), 50.0 + (-10.0) * (0.2 - 0.4));
  EXPECT_DOUBLE_EQ(m.Eval(0.8), 50.0 + (-1.0) * (0.8 - 0.4));
}

TEST(PiecewiseModelTest, AverageSlope) {
  PiecewiseLinearModel m{-10.0, -2.0, 0.4, 50.0};
  EXPECT_DOUBLE_EQ(m.AverageSlope(), -6.0);
}

TEST(PiecewiseModelTest, InverseHitsTargetOnSteepSegment) {
  PiecewiseLinearModel m{-100.0, -2.0, 0.5, 40.0};
  // Target 60: reached on the steep segment at x where -100(x-0.5)+40=60 → x=0.3.
  auto x = m.MinXForValueAtMost(60.0, 0.1, 0.9);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.3, 1e-9);
  EXPECT_LE(m.Eval(*x), 60.0 + 1e-9);
}

TEST(PiecewiseModelTest, InverseHitsTargetOnShallowSegment) {
  PiecewiseLinearModel m{-100.0, -10.0, 0.5, 40.0};
  // Target 38: only reachable beyond the cutoff: -10(x-0.5)+40=38 → x=0.7.
  auto x = m.MinXForValueAtMost(38.0, 0.1, 0.9);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.7, 1e-9);
}

TEST(PiecewiseModelTest, InverseInfeasible) {
  PiecewiseLinearModel m{-100.0, -10.0, 0.5, 40.0};
  EXPECT_FALSE(m.MinXForValueAtMost(30.0, 0.1, 0.9).has_value());
}

TEST(PiecewiseModelTest, InverseAlreadyFeasibleAtMin) {
  PiecewiseLinearModel m{-10.0, -1.0, 0.5, 40.0};
  auto x = m.MinXForValueAtMost(1000.0, 0.1, 0.9);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 0.1);
}

TEST(MengerCurvatureTest, CollinearIsZero) {
  EXPECT_DOUBLE_EQ(MengerCurvature(0, 0, 1, 1, 2, 2), 0.0);
}

TEST(MengerCurvatureTest, UnitCircleHasCurvatureOne) {
  // Three points on a unit circle.
  double c = MengerCurvature(1, 0, 0, 1, -1, 0);
  EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(MengerCurvatureTest, SharperBendHigherCurvature) {
  double gentle = MengerCurvature(0, 0, 1, 0.1, 2, 0);
  double sharp = MengerCurvature(0, 0, 1, 1.0, 2, 0);
  EXPECT_GT(sharp, gentle);
}

TEST(FitPiecewiseTest, RecoversExactPiecewiseData) {
  PiecewiseLinearModel truth{-80.0, -5.0, 0.4, 30.0};
  std::vector<double> x, y;
  for (double g = 0.1; g <= 0.91; g += 0.1) {
    x.push_back(g);
    y.push_back(truth.Eval(g));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  EXPECT_NEAR(fit.x0, 0.4, 0.06);
  EXPECT_NEAR(fit.k1, -80.0, 4.0);
  EXPECT_NEAR(fit.k2, -5.0, 1.0);
  EXPECT_NEAR(fit.y0, 30.0, 2.0);
}

TEST(FitPiecewiseTest, UnsortedInputHandled) {
  PiecewiseLinearModel truth{-50.0, -2.0, 0.5, 20.0};
  std::vector<double> x{0.9, 0.1, 0.5, 0.3, 0.7, 0.2};
  std::vector<double> y;
  for (double g : x) {
    y.push_back(truth.Eval(g));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  EXPECT_LT(PiecewiseSse(fit, x, y), 1.0);
}

TEST(FitPiecewiseTest, SseDecreasesVsSingleLine) {
  PiecewiseLinearModel truth{-80.0, -1.0, 0.35, 25.0};
  std::vector<double> x, y;
  for (double g = 0.1; g <= 0.91; g += 0.08) {
    x.push_back(g);
    y.push_back(truth.Eval(g));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  // A single line through the data would have huge error on this elbow.
  EXPECT_LT(PiecewiseSse(fit, x, y), 10.0);
}

TEST(FitPiecewiseTest, RobustToNoise) {
  Rng rng(11);
  PiecewiseLinearModel truth{-60.0, -4.0, 0.45, 35.0};
  std::vector<double> x, y;
  for (double g = 0.1; g <= 0.91; g += 0.05) {
    x.push_back(g);
    y.push_back(truth.Eval(g) * rng.LogNormalFactor(0.03));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  EXPECT_NEAR(fit.x0, 0.45, 0.12);
  // Slope signs and magnitudes preserved.
  EXPECT_LT(fit.k1, fit.k2);
  EXPECT_LT(fit.k1, -20.0);
  EXPECT_GT(fit.k2, -15.0);
}

TEST(FitPiecewiseTest, HyperbolicCurveApproximation) {
  // The oracle's true shape is ~1/g below the knee: piece-wise linear should
  // approximate it within a few percent at the profiling points.
  std::vector<double> x, y;
  for (double g = 0.1; g <= 0.91; g += 0.1) {
    x.push_back(g);
    double knee = 0.45;
    y.push_back(g < knee ? 100.0 * knee / g : 100.0 * (1.0 - 0.05 * (g - knee)));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  double worst = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(fit.Eval(x[i]) - y[i]) / y[i]);
  }
  EXPECT_LT(worst, 0.25);
}

// Property sweep: fit recovery across a grid of ground-truth parameters.
struct FitCase {
  double k1;
  double k2;
  double x0;
  double y0;
};

class FitPiecewiseParamTest : public ::testing::TestWithParam<FitCase> {};

TEST_P(FitPiecewiseParamTest, RecoversParametersFromCleanSamples) {
  const FitCase& c = GetParam();
  PiecewiseLinearModel truth{c.k1, c.k2, c.x0, c.y0};
  std::vector<double> x, y;
  for (double g = 0.1; g <= 0.91; g += 0.1) {
    x.push_back(g);
    y.push_back(truth.Eval(g));
  }
  PiecewiseLinearModel fit = FitPiecewiseLinear(x, y);
  // Prediction-level agreement at every profiling point.
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(fit.Eval(x[i]), y[i], 0.05 * std::abs(c.y0) + 1.5)
        << "k1=" << c.k1 << " x0=" << c.x0 << " at g=" << x[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, FitPiecewiseParamTest,
    ::testing::Values(FitCase{-20.0, -1.0, 0.3, 20.0}, FitCase{-50.0, -2.0, 0.4, 40.0},
                      FitCase{-100.0, -8.0, 0.5, 60.0}, FitCase{-200.0, -0.5, 0.6, 100.0},
                      FitCase{-30.0, -3.0, 0.7, 15.0}, FitCase{-75.0, -6.0, 0.25, 80.0},
                      FitCase{-150.0, -12.0, 0.45, 200.0}, FitCase{-40.0, -0.1, 0.55, 10.0}));

}  // namespace
}  // namespace mudi
