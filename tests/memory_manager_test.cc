#include "src/core/memory_manager.h"

#include <gtest/gtest.h>

#include "src/gpu/gpu_device.h"

namespace mudi {
namespace {

TrainingInstance MakeTraining(int id, double mem_mb, double fraction = 0.3) {
  TrainingInstance t;
  t.task_id = id;
  t.type_index = 0;
  t.gpu_fraction = fraction;
  t.work_remaining_ms = 1000.0;
  t.mem_required_mb = mem_mb;
  return t;
}

GpuDevice OvercommittedDevice(double capacity_mb = 10000.0) {
  GpuDevice dev(0, capacity_mb);
  InferenceInstance inf;
  inf.service_index = 0;
  inf.batch_size = 32;
  inf.gpu_fraction = 0.5;
  inf.mem_required_mb = 6000.0;
  dev.PlaceInference(inf);
  dev.AddTraining(MakeTraining(1, 8000.0));
  return dev;
}

TEST(MemoryManagerTest, RebalanceSwapsOutDeficit) {
  MemoryManager mm;
  GpuDevice dev = OvercommittedDevice();
  double transfer_ms = mm.Rebalance(dev, 0.0);
  EXPECT_GT(transfer_ms, 0.0);
  EXPECT_GT(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  EXPECT_GE(dev.MemoryFreeMb(), 0.0);
}

TEST(MemoryManagerTest, ReleaseReclaimsSwappedState) {
  MemoryManager mm;
  GpuDevice dev = OvercommittedDevice();
  mm.Rebalance(dev, 0.0);
  double swapped = dev.FindTraining(1)->mem_swapped_mb;
  ASSERT_GT(swapped, 0.0);

  // Long after the PCIe transfer landed: a clean release, nothing aborted.
  Status s = mm.Release(dev, 1, 1.0e9);
  EXPECT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  EXPECT_DOUBLE_EQ(mm.reclaimed_swap_mb(), swapped);
  EXPECT_EQ(mm.aborted_transfers(), 0u);
}

TEST(MemoryManagerTest, ReleaseMidTransferCountsAbort) {
  MemoryManager mm;
  GpuDevice dev = OvercommittedDevice();
  double transfer_ms = mm.Rebalance(dev, 100.0);
  ASSERT_GT(transfer_ms, 0.0);

  // Release strictly inside the transfer window: the in-flight PCIe
  // migration is torn down with the device state.
  Status s = mm.Release(dev, 1, 100.0 + 0.5 * transfer_ms);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(mm.aborted_transfers(), 1u);
}

TEST(MemoryManagerTest, DoubleReleaseReturnsNotFound) {
  MemoryManager mm;
  GpuDevice dev = OvercommittedDevice();
  mm.Rebalance(dev, 0.0);
  EXPECT_TRUE(mm.Release(dev, 1, 1.0e9).ok());
  dev.RemoveTraining(1);  // harness removes the instance right after Release

  Status again = mm.Release(dev, 1, 1.0e9);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
}

TEST(MemoryManagerTest, ReleaseNeverAdmittedTaskReturnsNotFound) {
  MemoryManager mm;
  GpuDevice dev(0);
  Status s = mm.Release(dev, 42, 0.0);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(mm.aborted_transfers(), 0u);
  EXPECT_DOUBLE_EQ(mm.reclaimed_swap_mb(), 0.0);
}

TEST(MemoryManagerTest, ReleaseWithoutSwapIsCleanNoOp) {
  MemoryManager mm;
  GpuDevice dev(0, 50000.0);  // plenty of memory: nothing ever swaps
  dev.AddTraining(MakeTraining(1, 8000.0));
  mm.Rebalance(dev, 0.0);
  EXPECT_DOUBLE_EQ(dev.FindTraining(1)->mem_swapped_mb, 0.0);
  EXPECT_TRUE(mm.Release(dev, 1, 10.0).ok());
  EXPECT_DOUBLE_EQ(mm.reclaimed_swap_mb(), 0.0);
}

}  // namespace
}  // namespace mudi
