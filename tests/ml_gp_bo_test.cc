#include <gtest/gtest.h>

#include <cmath>
#include "src/common/float_eq.h"

#include "src/ml/bayesopt.h"
#include "src/ml/gaussian_process.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// Gaussian process
// ---------------------------------------------------------------------------

TEST(GaussianProcessTest, PriorIsZeroMeanSignalVar) {
  GpOptions options;
  options.signal_var = 2.5;
  GaussianProcess gp(options);
  GpPosterior post = gp.Predict({0.0});
  EXPECT_DOUBLE_EQ(post.mean, 0.0);
  EXPECT_DOUBLE_EQ(post.variance, 2.5);
}

TEST(GaussianProcessTest, InterpolatesObservations) {
  GaussianProcess gp;
  gp.AddObservation({0.0}, 1.0);
  gp.AddObservation({1.0}, 3.0);
  EXPECT_NEAR(gp.Predict({0.0}).mean, 1.0, 0.05);
  EXPECT_NEAR(gp.Predict({1.0}).mean, 3.0, 0.05);
}

TEST(GaussianProcessTest, VarianceShrinksNearObservations) {
  GaussianProcess gp;
  gp.AddObservation({0.0}, 1.0);
  double var_at_obs = gp.Predict({0.0}).variance;
  double var_far = gp.Predict({10.0}).variance;
  EXPECT_LT(var_at_obs, 0.01);
  EXPECT_GT(var_far, 0.9);
}

TEST(GaussianProcessTest, MeanRevertsFarFromData) {
  GaussianProcess gp;
  gp.AddObservation({0.0}, 5.0);
  gp.AddObservation({0.1}, 5.0);
  // Far away, prediction reverts toward the observation mean.
  EXPECT_NEAR(gp.Predict({100.0}).mean, 5.0, 0.2);
}

TEST(GaussianProcessTest, SetObservationsReplaces) {
  GaussianProcess gp;
  gp.AddObservation({0.0}, 1.0);
  gp.SetObservations({{0.0}}, {42.0});
  EXPECT_NEAR(gp.Predict({0.0}).mean, 42.0, 0.5);
  EXPECT_EQ(gp.num_observations(), 1u);
}

TEST(GaussianProcessTest, SmoothInterpolationBetweenPoints) {
  GaussianProcess gp;
  gp.AddObservation({0.0}, 0.0);
  gp.AddObservation({2.0}, 2.0);
  double mid = gp.Predict({1.0}).mean;
  EXPECT_GT(mid, 0.2);
  EXPECT_LT(mid, 1.8);
}

TEST(GaussianProcessTest, VarianceNeverNegative) {
  GaussianProcess gp;
  for (int i = 0; i < 20; ++i) {
    gp.AddObservation({static_cast<double>(i) * 0.1}, std::sin(i * 0.1));
  }
  for (double x = -1.0; x < 3.0; x += 0.05) {
    EXPECT_GE(gp.Predict({x}).variance, 0.0);
  }
}

// ---------------------------------------------------------------------------
// GP-LCB Bayesian optimization
// ---------------------------------------------------------------------------

TEST(GpLcbTest, BetaFormula) {
  // β_n = 2·log(|R|/n²), clamped at 0.
  EXPECT_NEAR(GpLcbOptimizer::Beta(100, 1), 2.0 * std::log(100.0), 1e-12);
  EXPECT_NEAR(GpLcbOptimizer::Beta(100, 2), 2.0 * std::log(25.0), 1e-12);
  EXPECT_DOUBLE_EQ(GpLcbOptimizer::Beta(100, 10), 0.0);   // 100/100 = 1 → log 0 = 0
  EXPECT_DOUBLE_EQ(GpLcbOptimizer::Beta(100, 50), 0.0);   // clamped
}

TEST(GpLcbTest, FindsMinimumOfQuadratic) {
  std::vector<double> candidates{16, 32, 64, 128, 256, 512};
  GpLcbOptimizer opt(candidates);
  auto objective = [](double b) { return (b - 128.0) * (b - 128.0) / 1000.0 + 5.0; };
  auto result = opt.Minimize(objective, [](double) { return true; });
  ASSERT_TRUE(result.best_candidate.has_value());
  EXPECT_DOUBLE_EQ(*result.best_candidate, 128.0);
  EXPECT_LE(result.iterations_used, 25u);
}

TEST(GpLcbTest, RespectsFeasibilityFilter) {
  std::vector<double> candidates{16, 32, 64, 128, 256, 512};
  GpLcbOptimizer opt(candidates);
  // The true minimum (512) is infeasible; 256 is the best feasible.
  auto result = opt.Minimize([](double b) { return 1000.0 - b; },
                             [](double b) { return b <= 256.0; });
  ASSERT_TRUE(result.best_candidate.has_value());
  EXPECT_DOUBLE_EQ(*result.best_candidate, 256.0);
}

TEST(GpLcbTest, NoFeasibleCandidates) {
  GpLcbOptimizer opt({1.0, 2.0, 3.0});
  auto result = opt.Minimize([](double b) { return b; }, [](double) { return false; });
  EXPECT_FALSE(result.best_candidate.has_value());
  EXPECT_EQ(result.iterations_used, 0u);
}

TEST(GpLcbTest, ConvergesWithinPaperIterationBudget) {
  // §7.5: GP-LCB converges within 25 iterations. Non-monotonic objective.
  std::vector<double> candidates{16, 32, 64, 128, 256, 512};
  GpLcbOptimizer opt(candidates);
  auto objective = [](double b) {
    return 100.0 / b + 0.3 * std::sqrt(b);  // U-shaped: min near 64-128
  };
  auto result = opt.Minimize(objective, [](double) { return true; });
  ASSERT_TRUE(result.best_candidate.has_value());
  EXPECT_LE(result.iterations_used, 25u);
  // Best is one of the two central candidates.
  EXPECT_TRUE(ExactEq(*result.best_candidate, 64.0) ||
              ExactEq(*result.best_candidate, 128.0));
}

TEST(GpLcbTest, HistoryRecordsEvaluations) {
  GpLcbOptimizer opt({1.0, 2.0});
  auto result = opt.Minimize([](double b) { return b; }, [](double) { return true; });
  EXPECT_EQ(result.history.size(), result.iterations_used);
  for (const auto& [cand, obj] : result.history) {
    EXPECT_DOUBLE_EQ(cand, obj);  // objective is identity here
  }
}

TEST(GpLcbTest, SingleCandidateConvergesImmediately) {
  GpLcbOptimizer opt({64.0});
  auto result = opt.Minimize([](double) { return 3.0; }, [](double) { return true; });
  ASSERT_TRUE(result.best_candidate.has_value());
  EXPECT_DOUBLE_EQ(*result.best_candidate, 64.0);
  EXPECT_LE(result.iterations_used, 5u);
}

// Property sweep: GP-LCB finds the true argmin (or a near-tie) for assorted
// objective shapes over the paper's batch-size candidate set.
class GpLcbObjectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(GpLcbObjectiveTest, FindsNearOptimalCandidate) {
  std::vector<double> candidates{16, 32, 64, 128, 256, 512};
  GpLcbOptimizer opt(candidates);
  int shape = GetParam();
  auto objective = [shape](double b) {
    switch (shape) {
      case 0:
        return b;  // increasing: min at 16
      case 1:
        return -b;  // decreasing: min at 512
      case 2:
        return std::abs(b - 64.0);  // V at 64
      case 3:
        return std::abs(std::log2(b) - 8.0);  // V at 256 in log space
      default:
        return std::cos(b / 40.0) * 10.0;  // wavy
    }
  };
  auto result = opt.Minimize(objective, [](double) { return true; });
  ASSERT_TRUE(result.best_candidate.has_value());
  double best_possible = objective(candidates[0]);
  for (double c : candidates) {
    best_possible = std::min(best_possible, objective(c));
  }
  EXPECT_NEAR(result.best_objective, best_possible, 1e-9) << "shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(ObjectiveShapes, GpLcbObjectiveTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace mudi
