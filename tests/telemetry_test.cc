#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace_reader.h"
#include "src/telemetry/trace_recorder.h"

namespace mudi {
namespace {

using telemetry::MetricsRegistry;
using telemetry::ParsedTrace;
using telemetry::TraceArg;
using telemetry::TraceArgs;
using telemetry::TraceEvent;
using telemetry::TraceRecorder;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterSemantics) {
  MetricsRegistry registry;
  telemetry::Counter& c = registry.GetCounter("events");
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Get-or-create returns the same object (stable address).
  EXPECT_EQ(&registry.GetCounter("events"), &c);
  EXPECT_DOUBLE_EQ(registry.GetCounter("events").value(), 3.5);
}

TEST(MetricsRegistryTest, GaugeSemantics) {
  MetricsRegistry registry;
  telemetry::Gauge& g = registry.GetGauge("depth");
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.Add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndStats) {
  MetricsRegistry registry;
  telemetry::Histogram& h = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(5.0);    // bucket 1 (<= 10)
  h.Observe(10.0);   // bucket 1 (inclusive upper edge)
  h.Observe(50.0);   // bucket 2 (<= 100)
  h.Observe(500.0);  // overflow bucket

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 565.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);

  // Quantiles are monotone and within the observed range.
  double p50 = h.ApproxQuantile(0.5);
  double p99 = h.ApproxQuantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, 0.0);
  EXPECT_GE(p99, p50);

  // Bucket spec is only consulted on creation.
  EXPECT_EQ(&registry.GetHistogram("lat", {42.0}), &h);
  EXPECT_EQ(h.upper_bounds().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotsAndCsv) {
  MetricsRegistry registry;
  registry.GetCounter("a").Increment(1.0);
  registry.RecordSnapshot(100.0);
  registry.GetCounter("a").Increment(1.0);
  registry.GetGauge("b").Set(9.0);  // appears mid-run
  registry.RecordSnapshot(200.0);

  ASSERT_EQ(registry.snapshots().size(), 2u);
  EXPECT_DOUBLE_EQ(registry.snapshots()[0].time_ms, 100.0);
  EXPECT_DOUBLE_EQ(registry.snapshots()[1].time_ms, 200.0);

  std::ostringstream csv;
  registry.WriteSnapshotsCsv(csv);
  std::string text = csv.str();
  // Header carries the union of columns; two data rows follow.
  EXPECT_NE(text.find("time_ms"), std::string::npos);
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  size_t lines = 0;
  for (char c : text) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(MetricsRegistryTest, JsonContainsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("hits").Increment(4.0);
  registry.GetGauge("level").Set(0.5);
  registry.GetHistogram("wait", {10.0}).Observe(3.0);
  std::ostringstream os;
  registry.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"level\""), std::string::npos);
  EXPECT_NE(json.find("\"wait\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRecorder: ring buffer, Chrome JSON, binary round trip
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RingBufferWraparound) {
  TraceRecorder::Options options;
  options.ring_capacity = 4;
  TraceRecorder recorder(options);
  for (int i = 0; i < 6; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    recorder.Instant("cat", name, /*tid=*/0, /*ts_ms=*/double(i));
  }
  EXPECT_EQ(recorder.total_recorded(), 6u);
  EXPECT_EQ(recorder.dropped_events(), 2u);
  EXPECT_EQ(recorder.size(), 4u);

  std::vector<TraceEvent> events = recorder.ChronologicalEvents();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two overwritten; survivors come out oldest-first.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
  EXPECT_EQ(events[3].name, "e5");
}

TEST(TraceRecorderTest, UnboundedModeDropsNothing) {
  TraceRecorder recorder;
  for (int i = 0; i < 100; ++i) {
    recorder.Instant("c", "e", 0, double(i));
  }
  EXPECT_EQ(recorder.size(), 100u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
}

TraceRecorder MakeSampleRecorder() {
  TraceRecorder recorder;
  recorder.SetProcessName("test-process");
  recorder.SetThreadName(0, "gpu0");
  recorder.SetThreadName(1, "gpu1");
  recorder.Complete("serving", "batch", 0, 10.0, 5.5,
                    TraceArgs{TraceArg::Num("requests", 32.0)});
  recorder.Instant("placement", "place", 1, 12.25,
                   TraceArgs{TraceArg::Num("task_id", 7.0),
                             TraceArg::Str("type", "ResNet50 \"quoted\"\n")});
  recorder.Counter("sm_util", 0, 20.0, 0.75);
  return recorder;
}

void ExpectSampleTrace(const ParsedTrace& trace) {
  EXPECT_EQ(trace.process_name, "test-process");
  ASSERT_EQ(trace.thread_names.size(), 2u);
  EXPECT_EQ(trace.thread_names.at(0), "gpu0");
  EXPECT_EQ(trace.thread_names.at(1), "gpu1");
  ASSERT_EQ(trace.events.size(), 3u);

  const TraceEvent& complete = trace.events[0];
  EXPECT_EQ(complete.phase, telemetry::kPhaseComplete);
  EXPECT_EQ(complete.cat, "serving");
  EXPECT_EQ(complete.name, "batch");
  EXPECT_EQ(complete.tid, 0);
  EXPECT_NEAR(complete.ts_ms, 10.0, 1e-9);
  EXPECT_NEAR(complete.dur_ms, 5.5, 1e-9);
  ASSERT_EQ(complete.args.size(), 1u);
  EXPECT_EQ(complete.args[0].key, "requests");
  EXPECT_TRUE(complete.args[0].is_number);
  EXPECT_NEAR(complete.args[0].number, 32.0, 1e-9);

  const TraceEvent& instant = trace.events[1];
  EXPECT_EQ(instant.phase, telemetry::kPhaseInstant);
  EXPECT_EQ(instant.tid, 1);
  EXPECT_NEAR(instant.ts_ms, 12.25, 1e-9);
  ASSERT_EQ(instant.args.size(), 2u);
  EXPECT_FALSE(instant.args[1].is_number);
  EXPECT_EQ(instant.args[1].text, "ResNet50 \"quoted\"\n");  // escaping survives

  const TraceEvent& counter = trace.events[2];
  EXPECT_EQ(counter.phase, telemetry::kPhaseCounter);
  EXPECT_EQ(counter.name, "sm_util");
  ASSERT_EQ(counter.args.size(), 1u);
  EXPECT_NEAR(counter.args[0].number, 0.75, 1e-9);
}

TEST(TraceRecorderTest, ChromeJsonRoundTrip) {
  TraceRecorder recorder = MakeSampleRecorder();
  std::ostringstream os;
  recorder.ExportChromeJson(os);
  std::string json = os.str();
  // Well-formed enough for the strict reader (balanced structure, quoting).
  std::istringstream is(json);
  ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(telemetry::ParseChromeTraceJson(is, &trace, &error)) << error;
  ExpectSampleTrace(trace);
}

TEST(TraceRecorderTest, BinaryRoundTrip) {
  TraceRecorder recorder = MakeSampleRecorder();
  std::ostringstream os;
  recorder.WriteBinary(os);
  std::istringstream is(os.str());
  ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(telemetry::ReadBinaryTrace(is, &trace, &error)) << error;
  ExpectSampleTrace(trace);
}

TEST(TraceRecorderTest, DroppedCountSurvivesExport) {
  TraceRecorder::Options options;
  options.ring_capacity = 2;
  TraceRecorder recorder(options);
  for (int i = 0; i < 5; ++i) {
    recorder.Instant("c", "e", 0, double(i));
  }
  std::ostringstream os;
  recorder.ExportChromeJson(os);
  std::istringstream is(os.str());
  ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(telemetry::ParseChromeTraceJson(is, &trace, &error)) << error;
  EXPECT_EQ(trace.dropped_events, 3u);
  EXPECT_EQ(trace.total_recorded, 5u);
}

// ---------------------------------------------------------------------------
// Experiment integration: determinism, non-perturbation, summary agreement
// ---------------------------------------------------------------------------

ExperimentOptions TinyOptions(size_t num_tasks, uint64_t seed) {
  ExperimentOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.num_services = 4;
  options.seed = seed;
  options.trace.num_tasks = num_tasks;
  options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
  options.trace.duration_compression = 8000.0;
  options.trace.seed = seed + 1;
  return options;
}

ExperimentResult RunTraced(const std::string& policy_name, ExperimentOptions options,
                           std::vector<TraceEvent>* events_out,
                           std::string* chrome_json_out = nullptr) {
  options.telemetry.enabled = true;
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(policy_name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();
  if (events_out != nullptr) {
    *events_out = experiment.telemetry_sink().trace().ChronologicalEvents();
  }
  if (chrome_json_out != nullptr) {
    std::ostringstream os;
    experiment.telemetry_sink().trace().ExportChromeJson(os);
    *chrome_json_out = os.str();
  }
  return result;
}

TEST(TelemetryExperimentTest, TimestampsDeterministicAcrossIdenticalRuns) {
  if (!Telemetry::CompiledWithTracing()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  std::vector<TraceEvent> a_events, b_events;
  ExperimentResult a = RunTraced("Mudi", TinyOptions(6, 31), &a_events);
  ExperimentResult b = RunTraced("Mudi", TinyOptions(6, 31), &b_events);
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  ASSERT_FALSE(a_events.empty());
  ASSERT_EQ(a_events.size(), b_events.size());
  for (size_t i = 0; i < a_events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a_events[i].ts_ms, b_events[i].ts_ms) << i;
    EXPECT_DOUBLE_EQ(a_events[i].dur_ms, b_events[i].dur_ms) << i;
    EXPECT_EQ(a_events[i].tid, b_events[i].tid) << i;
    EXPECT_EQ(a_events[i].name, b_events[i].name) << i;
    EXPECT_EQ(a_events[i].cat, b_events[i].cat) << i;
  }
}

TEST(TelemetryExperimentTest, TelemetryDoesNotPerturbResults) {
  ExperimentOptions plain_options = TinyOptions(6, 33);
  PerfOracle plain_oracle(plain_options.oracle_seed);
  auto plain_policy = MakePolicy("Mudi", plain_oracle);
  ClusterExperiment plain_exp(plain_options, plain_policy.get());
  ExperimentResult plain = plain_exp.Run();

  std::vector<TraceEvent> events;
  ExperimentResult traced = RunTraced("Mudi", TinyOptions(6, 33), &events);

  EXPECT_DOUBLE_EQ(plain.makespan_ms, traced.makespan_ms);
  EXPECT_DOUBLE_EQ(plain.MeanCtMs(), traced.MeanCtMs());
  EXPECT_DOUBLE_EQ(plain.MeanWaitingMs(), traced.MeanWaitingMs());
  EXPECT_DOUBLE_EQ(plain.OverallSloViolationRate(), traced.OverallSloViolationRate());
  EXPECT_DOUBLE_EQ(plain.avg_sm_util, traced.avg_sm_util);
  EXPECT_DOUBLE_EQ(plain.avg_mem_util, traced.avg_mem_util);
}

TEST(TelemetryExperimentTest, TraceCoversLifecycleAcrossDevices) {
  if (!Telemetry::CompiledWithTracing()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  std::vector<TraceEvent> events;
  ExperimentResult result = RunTraced("Mudi", TinyOptions(8, 35), &events);
  ASSERT_EQ(result.CompletedTasks(), 8u);

  std::set<int> serving_lanes, placement_lanes;
  bool saw_arrival = false, saw_tune = false, saw_training_span = false;
  for (const TraceEvent& e : events) {
    if (e.cat == "serving" && e.phase == telemetry::kPhaseComplete) {
      serving_lanes.insert(e.tid);
    }
    if (e.cat == "placement") {
      placement_lanes.insert(e.tid);
    }
    saw_arrival |= e.cat == "training" && e.name == "task_arrival";
    saw_tune |= e.cat == "tuning";
    saw_training_span |= e.cat == "training" && e.phase == telemetry::kPhaseComplete;
  }
  EXPECT_GE(serving_lanes.size(), 2u);  // >= 2 device lanes carry serving spans
  EXPECT_GE(placement_lanes.size(), 2u);
  EXPECT_TRUE(saw_arrival);
  EXPECT_TRUE(saw_tune);
  EXPECT_TRUE(saw_training_span);
}

TEST(TelemetryExperimentTest, TraceSummaryUtilizationAgreesWithExperiment) {
  if (!Telemetry::CompiledWithTracing()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  std::string json;
  ExperimentResult result = RunTraced("Mudi", TinyOptions(6, 37), nullptr, &json);

  std::istringstream is(json);
  ParsedTrace trace;
  std::string error;
  ASSERT_TRUE(telemetry::ParseChromeTraceJson(is, &trace, &error)) << error;
  telemetry::TraceSummary summary = telemetry::SummarizeTrace(trace);

  ASSERT_GT(result.avg_sm_util, 0.0);
  EXPECT_NEAR(summary.cluster_avg_sm_util, result.avg_sm_util,
              0.01 * result.avg_sm_util);
  EXPECT_NEAR(summary.cluster_avg_mem_util, result.avg_mem_util,
              0.01 * std::max(result.avg_mem_util, 1e-6));
}

TEST(TraceSummaryTest, DowntimeAttributionPairsFaultInstants) {
  // Hand-built trace: device 1 down 100..400 ms, device 2 down at 600 ms and
  // never recovered (interval runs to span end, here the last event at 1000).
  ParsedTrace trace;
  auto instant = [](int tid, double ts, const char* name) {
    TraceEvent e;
    e.phase = telemetry::kPhaseInstant;
    e.tid = tid;
    e.ts_ms = ts;
    e.cat = "fault";
    e.name = name;
    return e;
  };
  trace.events.push_back(instant(1, 100.0, "device_down"));
  trace.events.push_back(instant(1, 400.0, "device_up"));
  trace.events.push_back(instant(2, 600.0, "device_down"));
  TraceEvent end;
  end.phase = telemetry::kPhaseInstant;
  end.tid = 0;
  end.ts_ms = 1000.0;
  end.cat = "slo";
  end.name = "window_violation";
  trace.events.push_back(end);

  telemetry::TraceSummary summary = telemetry::SummarizeTrace(trace);
  EXPECT_DOUBLE_EQ(summary.lanes.at(1).downtime_ms, 300.0);
  EXPECT_DOUBLE_EQ(summary.lanes.at(2).downtime_ms, 400.0);
  EXPECT_DOUBLE_EQ(summary.lanes.at(0).downtime_ms, 0.0);
  EXPECT_DOUBLE_EQ(summary.total_downtime_ms, 700.0);
  EXPECT_EQ(summary.lanes.at(1).decision_counts.at("fault/device_down"), 1u);
}

TEST(TelemetryExperimentTest, TraceDowntimeMatchesFaultMetrics) {
  if (!Telemetry::CompiledWithTracing()) {
    GTEST_SKIP() << "tracing compiled out";
  }
  ExperimentOptions options = TinyOptions(6, 41);
  options.horizon_ms = 60.0 * kMsPerSecond;  // both fault edges fire before end
  options.fault_plan.FailDevice(1, 20.0 * kMsPerSecond, 30.0 * kMsPerSecond);
  std::vector<TraceEvent> events;
  ExperimentResult result = RunTraced("Mudi", options, &events);

  ASSERT_EQ(result.faults.device_failures, 1u);
  ASSERT_EQ(result.faults.devices_recovered, 1u);
  ParsedTrace trace;
  trace.events = events;
  telemetry::TraceSummary summary = telemetry::SummarizeTrace(trace);
  // The fault category shows up, and the reader's downtime attribution
  // reproduces the injector's accounting for the recovered interval.
  EXPECT_GE(summary.events_by_category.at("fault"), 2u);
  EXPECT_NEAR(summary.lanes.at(1).downtime_ms, 30.0 * kMsPerSecond, 1e-6);
  EXPECT_NEAR(summary.total_downtime_ms, result.faults.total_downtime_ms, 1e-6);
}

TEST(TelemetryExperimentTest, MetricsCountersMatchResult) {
  ExperimentOptions options = TinyOptions(6, 39);
  options.telemetry.enabled = true;
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  const auto& metrics = experiment.telemetry_sink().metrics();
  const auto& counters = metrics.counters();
  ASSERT_TRUE(counters.count("training.completions"));
  EXPECT_DOUBLE_EQ(counters.at("training.completions").value(),
                   static_cast<double>(result.CompletedTasks()));
  ASSERT_TRUE(counters.count("training.arrivals"));
  EXPECT_DOUBLE_EQ(counters.at("training.arrivals").value(), 6.0);
  ASSERT_TRUE(counters.count("slo.windows_total"));
  EXPECT_GT(counters.at("slo.windows_total").value(), 0.0);
  // The simulator's dispatch stats flow into the registry too.
  ASSERT_TRUE(counters.count("sim.events_fired"));
  EXPECT_GT(counters.at("sim.events_fired").value(), 0.0);
  EXPECT_FALSE(metrics.snapshots().empty());
}

TEST(TelemetryExperimentTest, DisabledTelemetryRecordsNothing) {
  ExperimentOptions options = TinyOptions(4, 41);
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("GSLICE", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  (void)experiment.Run();
  EXPECT_EQ(experiment.telemetry(), nullptr);
  EXPECT_TRUE(experiment.telemetry_sink().metrics().counters().empty());
  EXPECT_EQ(experiment.telemetry_sink().trace().size(), 0u);
}

}  // namespace
}  // namespace mudi
