#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/baseline_util.h"
#include "src/baselines/gpulets_policy.h"
#include "src/baselines/gslice_policy.h"
#include "src/baselines/muxflow_policy.h"
#include "src/baselines/optimal_policy.h"
#include "src/baselines/random_policy.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

namespace mudi {
namespace {

// A tiny live environment: 1 node × 4 GPUs, four services, no training trace
// (tests drive placement/tuning calls directly through the env interface).
class BaselineEnvTest : public ::testing::Test {
 protected:
  BaselineEnvTest() {
    options_.num_nodes = 1;
    options_.gpus_per_node = 4;
    options_.num_services = 4;
    options_.trace.num_tasks = 0;
  }

  // Builds the experiment and advances virtual time so monitors have data.
  ClusterExperiment& Env(MultiplexPolicy* policy) {
    experiment_ = std::make_unique<ClusterExperiment>(options_, policy);
    return *experiment_;
  }

  TrainingTaskInfo TaskInfo(int id, size_t type) {
    TrainingTaskInfo info;
    info.task_id = id;
    info.type_index = type;
    info.spec = &ModelZoo::TrainingTasks()[type];
    return info;
  }

  ExperimentOptions options_;
  std::unique_ptr<ClusterExperiment> experiment_;
};

// ---------------------------------------------------------------------------
// EligibleDevices / shared helpers
// ---------------------------------------------------------------------------

TEST_F(BaselineEnvTest, EligibleDevicesRespectsCapacity) {
  RandomPolicy policy;
  ClusterExperiment& env = Env(&policy);
  auto task = TaskInfo(1, 0);
  EXPECT_EQ(EligibleDevices(env, task, /*max_trainings=*/1, /*require_fit=*/false).size(), 4u);

  // Occupy one device: it drops out at max_trainings = 1.
  TrainingInstance t;
  t.task_id = 99;
  t.type_index = 0;
  t.gpu_fraction = 0.5;
  t.mem_required_mb = 100.0;
  env.devices()[0].AddTraining(t);
  EXPECT_EQ(EligibleDevices(env, task, 1, false).size(), 3u);
  EXPECT_EQ(EligibleDevices(env, task, 2, false).size(), 4u);
}

TEST_F(BaselineEnvTest, EligibleDevicesRespectsMemoryFit) {
  RandomPolicy policy;
  ClusterExperiment& env = Env(&policy);
  // ResNet50-train (type 2) has a ~21 GB working set; fill devices with an
  // inference batch that leaves no room.
  auto task = TaskInfo(1, 2);
  size_t fit_all = EligibleDevices(env, task, 1, true).size();
  EXPECT_EQ(fit_all, 4u);
  for (auto& dev : env.devices()) {
    dev.mutable_inference().mem_required_mb = dev.memory_mb() - 1000.0;
  }
  EXPECT_TRUE(EligibleDevices(env, task, 1, true).empty());
  // Without the fit requirement they remain eligible (swap-capable policies).
  EXPECT_EQ(EligibleDevices(env, task, 1, false).size(), 4u);
}

// ---------------------------------------------------------------------------
// Policy-specific behaviours
// ---------------------------------------------------------------------------

TEST_F(BaselineEnvTest, GsliceSelectsLeastLoadedDevice) {
  GslicePolicy policy;
  ClusterExperiment& env = Env(&policy);
  // Load devices 0-2 with one training each; device 3 must win.
  for (int d = 0; d < 3; ++d) {
    TrainingInstance t;
    t.task_id = 50 + d;
    t.gpu_fraction = 0.4;
    t.mem_required_mb = 100.0;
    env.devices()[static_cast<size_t>(d)].AddTraining(t);
  }
  auto choice = policy.SelectDevice(env, TaskInfo(1, 3));
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, 3);
}

TEST_F(BaselineEnvTest, GsliceRetunePlacesConfigWithinBounds) {
  GslicePolicy policy;
  ClusterExperiment& env = Env(&policy);
  policy.OnTrainingPlaced(env, 0, TaskInfo(1, 0));
  const GpuDevice& dev = env.device(0);
  EXPECT_GE(dev.inference().gpu_fraction, 0.1);
  EXPECT_LE(dev.inference().gpu_fraction, 0.9);
  EXPECT_GT(dev.inference().batch_size, 0);
}

TEST_F(BaselineEnvTest, GpuletsUsesSliceMenuFractions) {
  GpuletsPolicy policy;
  ClusterExperiment& env = Env(&policy);
  policy.OnTrainingPlaced(env, 1, TaskInfo(1, 1));
  // Batch lands immediately; the GPU% change rides the shadow instance, so
  // right after placement the fraction is either still the initial 0.5 or
  // already a menu slice.
  int b = env.device(1).inference().batch_size;
  bool batch_on_grid = false;
  for (int cand : ProfilingBatchSizes()) {
    batch_on_grid |= cand == b;
  }
  EXPECT_TRUE(batch_on_grid) << b;
  double g = env.device(1).inference().gpu_fraction;
  bool valid = std::abs(g - 0.5) < 1e-9;  // initial, shadow still warming
  for (double slice : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    valid |= std::abs(g - slice) < 1e-9;
  }
  EXPECT_TRUE(valid) << g;
}

TEST_F(BaselineEnvTest, GpuletsIgnoresQpsChanges) {
  GpuletsPolicy policy;
  ClusterExperiment& env = Env(&policy);
  policy.OnTrainingPlaced(env, 1, TaskInfo(1, 1));
  double g_before = env.device(1).inference().gpu_fraction;
  int b_before = env.device(1).inference().batch_size;
  policy.OnQpsChange(env, 1);  // placement-time virtualizer: no-op
  EXPECT_DOUBLE_EQ(env.device(1).inference().gpu_fraction, g_before);
  EXPECT_EQ(env.device(1).inference().batch_size, b_before);
}

TEST_F(BaselineEnvTest, MuxflowKeepsFixedBatch) {
  PerfOracle profiling_oracle(options_.oracle_seed);
  MuxflowPolicy policy(profiling_oracle);
  ClusterExperiment& env = Env(&policy);
  policy.Initialize(env);
  policy.OnTrainingPlaced(env, 2, TaskInfo(1, 0));
  // MuxFlow never adapts the service batch: it stays at the owner's fixed 64.
  EXPECT_EQ(env.device(2).inference().batch_size, 64);
}

TEST_F(BaselineEnvTest, MuxflowPlacesOnSomeDevice) {
  PerfOracle profiling_oracle(options_.oracle_seed);
  MuxflowPolicy policy(profiling_oracle);
  ClusterExperiment& env = Env(&policy);
  policy.Initialize(env);
  auto choice = policy.SelectDevice(env, TaskInfo(1, 7));  // unseen type
  EXPECT_TRUE(choice.has_value());
}

TEST_F(BaselineEnvTest, RandomPolicyEvenSplit) {
  RandomPolicy policy;
  ClusterExperiment& env = Env(&policy);
  TrainingInstance t;
  t.task_id = 1;
  t.type_index = 0;
  t.gpu_fraction = 0.1;
  t.mem_required_mb = 100.0;
  env.devices()[0].AddTraining(t);
  policy.OnTrainingPlaced(env, 0, TaskInfo(1, 0));
  // One inference + one training: 50/50.
  EXPECT_DOUBLE_EQ(env.device(0).inference().gpu_fraction, 0.5);
  EXPECT_DOUBLE_EQ(env.device(0).trainings()[0].gpu_fraction, 0.5);
}

TEST_F(BaselineEnvTest, OptimalSatisfiesPlanningConstraintByConstruction) {
  OptimalPolicy policy;
  ClusterExperiment& env = Env(&policy);
  TrainingInstance t;
  t.task_id = 1;
  t.type_index = 0;
  t.gpu_fraction = 0.1;
  t.mem_required_mb = 100.0;
  env.devices()[0].AddTraining(t);
  auto choice = policy.SelectDevice(env, TaskInfo(2, 1));
  // With zero measured QPS everything is feasible: it must place somewhere,
  // and the applied config must satisfy the true-oracle constraint.
  ASSERT_TRUE(choice.has_value());
  policy.OnTrainingPlaced(env, *choice, TaskInfo(2, 1));
  const GpuDevice& dev = env.device(*choice);
  EXPECT_GT(dev.inference().batch_size, 0);
  EXPECT_GE(dev.inference().gpu_fraction, 0.1);
}

TEST_F(BaselineEnvTest, PolicyNamesStable) {
  PerfOracle oracle(42);
  EXPECT_EQ(GslicePolicy().name(), "GSLICE");
  EXPECT_EQ(GpuletsPolicy().name(), "gpulets");
  EXPECT_EQ(MuxflowPolicy(oracle).name(), "MuxFlow");
  EXPECT_EQ(RandomPolicy().name(), "Random");
  EXPECT_EQ(OptimalPolicy().name(), "Optimal");
}

// ---------------------------------------------------------------------------
// Preset factories
// ---------------------------------------------------------------------------

TEST(PresetsTest, PhysicalClusterMatchesPaperTopology) {
  ExperimentOptions options = PhysicalClusterOptions();
  EXPECT_EQ(options.num_nodes, 3);
  EXPECT_EQ(options.gpus_per_node, 4);
  EXPECT_EQ(options.num_services, 6u);
  EXPECT_EQ(options.trace.num_tasks, 300u);
  ASSERT_TRUE(options.qps_factory != nullptr);
  // Rates centred near the paper's 200 QPS per replica.
  auto profile = options.qps_factory(0, 0);
  double q = profile->QpsAt(0.0);
  EXPECT_GT(q, 100.0);
  EXPECT_LT(q, 300.0);
}

TEST(PresetsTest, SimulatedClusterIsThousandGpus) {
  ExperimentOptions options = SimulatedClusterOptions();
  EXPECT_EQ(options.num_nodes * options.gpus_per_node, 1000);
  EXPECT_EQ(options.trace.num_tasks, 5000u);
  // Arrival process scaled ×80 (§7.1).
  EXPECT_NEAR(PhysicalClusterOptions().trace.mean_interarrival_ms /
                  options.trace.mean_interarrival_ms,
              80.0, 1e-6);
}

TEST(PresetsTest, MakePolicyKnowsAllSystems) {
  PerfOracle oracle(42);
  for (const char* name : {"Mudi", "Mudi-more", "Mudi-cluster-only", "Mudi-device-only",
                           "GSLICE", "gpulets", "MuxFlow", "Random", "Optimal"}) {
    auto policy = MakePolicy(name, oracle);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PresetsTest, EndToEndSystemsAreTheFigureEightSet) {
  EXPECT_EQ(EndToEndSystemNames(),
            (std::vector<std::string>{"Mudi", "GSLICE", "gpulets", "MuxFlow"}));
}

TEST(PresetsTest, MudiMoreAllowsThreeTrainings) {
  PerfOracle oracle(42);
  EXPECT_EQ(MakePolicy("Mudi-more", oracle)->MaxTrainingsPerDevice(), 3);
  EXPECT_EQ(MakePolicy("Mudi", oracle)->MaxTrainingsPerDevice(), 1);
}

}  // namespace
}  // namespace mudi
