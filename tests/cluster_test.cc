#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/cluster/kv_store.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/cluster/monitor.h"
#include "src/cluster/policy.h"
#include "src/cluster/task_queue.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

TEST(KvStoreTest, PutGet) {
  KvStore kv;
  kv.Put("config/device0/batch", "64");
  auto v = kv.Get("config/device0/batch");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "64");
  EXPECT_FALSE(kv.Get("missing").has_value());
}

TEST(KvStoreTest, PutOverwrites) {
  KvStore kv;
  kv.Put("k", "1");
  kv.Put("k", "2");
  EXPECT_EQ(*kv.Get("k"), "2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStoreTest, RevisionIncreases) {
  KvStore kv;
  uint64_t r1 = kv.Put("a", "1");
  uint64_t r2 = kv.Put("b", "2");
  EXPECT_GT(r2, r1);
  EXPECT_EQ(kv.revision(), r2);
}

TEST(KvStoreTest, ListByPrefixSorted) {
  KvStore kv;
  kv.Put("dev/1/x", "a");
  kv.Put("dev/0/x", "b");
  kv.Put("other", "c");
  auto items = kv.List("dev/");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "dev/0/x");
  EXPECT_EQ(items[1].first, "dev/1/x");
}

TEST(KvStoreTest, Delete) {
  KvStore kv;
  kv.Put("k", "v");
  EXPECT_TRUE(kv.Delete("k"));
  EXPECT_FALSE(kv.Delete("k"));
  EXPECT_FALSE(kv.Get("k").has_value());
}

TEST(KvStoreTest, GetRequiredReturnsValueOrNotFound) {
  KvStore kv;
  kv.Put("k", "v");
  auto hit = kv.GetRequired("k");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "v");

  auto miss = kv.GetRequired("absent");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, DeletePrefixRemovesSubtreeOnly) {
  KvStore kv;
  kv.Put("/devices/3/status", "up");
  kv.Put("/devices/3/tasks/7", "resnet");
  kv.Put("/devices/3/tasks/9", "bert");
  kv.Put("/devices/30/tasks/1", "gpt");  // shares a textual prefix path only
  kv.Put("/devices/4/status", "up");

  EXPECT_EQ(kv.DeletePrefix("/devices/3/tasks/"), 2u);
  EXPECT_FALSE(kv.Get("/devices/3/tasks/7").has_value());
  EXPECT_FALSE(kv.Get("/devices/3/tasks/9").has_value());
  EXPECT_TRUE(kv.Get("/devices/3/status").has_value());
  EXPECT_TRUE(kv.Get("/devices/30/tasks/1").has_value());
  EXPECT_TRUE(kv.Get("/devices/4/status").has_value());
  EXPECT_EQ(kv.DeletePrefix("/devices/3/tasks/"), 0u);
}

TEST(KvStoreTest, WatchFiresOnMatchingPrefix) {
  KvStore kv;
  std::vector<std::string> seen;
  kv.Watch("config/", [&](const std::string& key, const std::string& value, uint64_t) {
    seen.push_back(key + "=" + value);
  });
  kv.Put("config/a", "1");
  kv.Put("other/b", "2");
  kv.Put("config/c", "3");
  EXPECT_EQ(seen, (std::vector<std::string>{"config/a=1", "config/c=3"}));
}

TEST(KvStoreTest, WatchReceivesRevision) {
  KvStore kv;
  uint64_t seen_rev = 0;
  kv.Watch("", [&](const std::string&, const std::string&, uint64_t rev) { seen_rev = rev; });
  uint64_t rev = kv.Put("k", "v");
  EXPECT_EQ(seen_rev, rev);
}

TEST(KvStoreTest, UnwatchStopsDelivery) {
  KvStore kv;
  int count = 0;
  auto id = kv.Watch("", [&](const std::string&, const std::string&, uint64_t) { ++count; });
  kv.Put("a", "1");
  EXPECT_TRUE(kv.Unwatch(id));
  EXPECT_FALSE(kv.Unwatch(id));
  kv.Put("b", "2");
  EXPECT_EQ(count, 1);
}

TEST(KvStoreTest, WatcherMayAddWatchDuringCallback) {
  KvStore kv;
  int inner = 0;
  kv.Watch("a", [&](const std::string&, const std::string&, uint64_t) {
    kv.Watch("b", [&](const std::string&, const std::string&, uint64_t) { ++inner; });
  });
  kv.Put("a", "1");  // installs watcher on "b"
  kv.Put("b", "2");
  EXPECT_EQ(inner, 1);
}

// ---------------------------------------------------------------------------
// KvStore: delete events and degraded mode (DESIGN.md §13)
// ---------------------------------------------------------------------------

TEST(KvStoreTest, DeleteIsSilentByDefault) {
  KvStore kv;
  kv.Put("k", "v");
  uint64_t rev_before = kv.revision();
  int events = 0;
  kv.Watch("", [&](const std::string&, const std::string&, uint64_t) { ++events; });
  EXPECT_TRUE(kv.Delete("k"));
  EXPECT_EQ(events, 0);
  EXPECT_EQ(kv.revision(), rev_before);
}

TEST(KvStoreTest, DeleteEventsDeliverTombstones) {
  KvStore kv;
  kv.EnableDeleteEvents(true);
  kv.Put("/devices/3/tasks/7", "resnet");
  kv.Put("/devices/3/tasks/9", "bert");
  uint64_t rev_before = kv.revision();

  std::vector<std::pair<std::string, std::string>> events;
  std::vector<uint64_t> revs;
  kv.Watch("/devices/3/", [&](const std::string& key, const std::string& value, uint64_t rev) {
    events.emplace_back(key, value);
    revs.push_back(rev);
  });

  EXPECT_TRUE(kv.Delete("/devices/3/tasks/7"));
  EXPECT_EQ(kv.DeletePrefix("/devices/3/"), 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<std::string, std::string>{"/devices/3/tasks/7", ""}));
  EXPECT_EQ(events[1], (std::pair<std::string, std::string>{"/devices/3/tasks/9", ""}));
  // Tombstones bump the revision like writes, so watch dedup guards keyed on
  // revision keep working across deletes.
  EXPECT_GT(revs[0], rev_before);
  EXPECT_GT(revs[1], revs[0]);
  // Deleting an absent key stays event-free.
  EXPECT_FALSE(kv.Delete("/devices/3/tasks/7"));
  EXPECT_EQ(events.size(), 2u);
}

TEST(KvStoreTest, DegradedModeDelaysWatchDelivery) {
  Simulator sim;
  KvStore kv;
  KvDegradeOptions degrade;
  degrade.watch_delay_ms = 100.0;
  kv.EnableDegradedMode(&sim, degrade, Rng(7));

  std::vector<std::string> seen;
  kv.Watch("cfg/", [&](const std::string& key, const std::string&, uint64_t) {
    seen.push_back(key);
  });
  kv.Put("cfg/a", "1");
  EXPECT_TRUE(seen.empty());  // no longer synchronous
  sim.RunUntil(99.0);
  EXPECT_TRUE(seen.empty());
  sim.RunUntilIdle();
  EXPECT_EQ(seen, (std::vector<std::string>{"cfg/a"}));
  EXPECT_EQ(kv.watch_delivered(), 1u);
}

TEST(KvStoreTest, DegradedModeDropsDeliveries) {
  Simulator sim;
  KvStore kv;
  KvDegradeOptions degrade;
  degrade.watch_delay_ms = 10.0;
  degrade.watch_drop_prob = 1.0;
  kv.EnableDegradedMode(&sim, degrade, Rng(7));

  int events = 0;
  kv.Watch("", [&](const std::string&, const std::string&, uint64_t) { ++events; });
  kv.Put("a", "1");
  kv.Put("b", "2");
  sim.RunUntilIdle();
  EXPECT_EQ(events, 0);
  EXPECT_EQ(kv.watch_dropped(), 2u);
  // The omniscient view is never degraded.
  EXPECT_EQ(*kv.Get("a"), "1");
}

TEST(KvStoreTest, PartitionLosesWatchesAndFailsCtrlReads) {
  Simulator sim;
  KvStore kv;
  kv.EnableDegradedMode(&sim, KvDegradeOptions{}, Rng(7));
  kv.Put("k", "v");

  int events = 0;
  kv.Watch("", [&](const std::string&, const std::string&, uint64_t) { ++events; });
  kv.SetPartitioned(true);
  kv.Put("k", "v2");
  sim.RunUntilIdle();
  EXPECT_EQ(events, 0);  // lost, not buffered
  EXPECT_EQ(kv.watch_lost_partition(), 1u);

  auto read = kv.CtrlGet("k");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(kv.CtrlList("").ok());
  EXPECT_EQ(kv.unavailable_reads(), 2u);
  // The omniscient view still works mid-partition.
  EXPECT_EQ(*kv.Get("k"), "v2");

  kv.SetPartitioned(false);
  ASSERT_TRUE(kv.CtrlGet("k").ok());
  kv.Put("k", "v3");
  sim.RunUntilIdle();
  EXPECT_EQ(events, 1);  // delivery resumes after the partition heals
}

TEST(KvStoreTest, StaleReadsServeLaggedRevision) {
  Simulator sim;
  KvStore kv;
  KvDegradeOptions degrade;
  degrade.stale_read_prob = 1.0;  // every control read is stale
  degrade.stale_rev_lag = 1;     // ... by exactly one revision
  kv.EnableDegradedMode(&sim, degrade, Rng(7));

  kv.Put("k", "old");
  uint64_t old_rev = kv.revision();
  kv.Put("k", "new");

  uint64_t read_rev = 0;
  auto stale = kv.CtrlGet("k", &read_rev);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(*stale, "old");
  EXPECT_EQ(read_rev, old_rev);
  EXPECT_GE(kv.stale_reads(), 1u);
  // The omniscient view is current.
  EXPECT_EQ(*kv.Get("k"), "new");
}

TEST(KvStoreTest, StaleReadMissesKeyNewerThanSnapshot) {
  Simulator sim;
  KvStore kv;
  KvDegradeOptions degrade;
  degrade.stale_read_prob = 1.0;
  degrade.stale_rev_lag = 1;
  kv.EnableDegradedMode(&sim, degrade, Rng(7));

  kv.Put("a", "1");
  kv.Put("fresh", "v");  // only exists at the newest revision

  auto read = kv.CtrlGet("fresh");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, HealthyCtrlReadsMatchOmniscientView) {
  KvStore kv;
  kv.Put("k", "v");
  uint64_t read_rev = 0;
  auto got = kv.CtrlGet("k", &read_rev);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  EXPECT_EQ(read_rev, kv.revision());
  auto listed = kv.CtrlList("");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), kv.List("").size());
  EXPECT_EQ(kv.stale_reads(), 0u);
  EXPECT_EQ(kv.unavailable_reads(), 0u);
}

// ---------------------------------------------------------------------------
// TaskQueue
// ---------------------------------------------------------------------------

PendingTask MakeTask(int id, size_t type, double work, int priority = 0) {
  PendingTask t;
  t.arrival.task_id = id;
  t.arrival.type_index = type;
  t.arrival.work_full_gpu_ms = work;
  t.priority = priority;
  return t;
}

TEST(TaskQueueTest, FcfsOrder) {
  TaskQueue q(QueuePolicy::kFcfs);
  q.Push(MakeTask(1, 0, 100.0));
  q.Push(MakeTask(2, 1, 1.0));
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(TaskQueueTest, SjfPicksSmallestWork) {
  TaskQueue q(QueuePolicy::kShortestJobFirst);
  q.Push(MakeTask(1, 0, 100.0));
  q.Push(MakeTask(2, 0, 5.0));
  q.Push(MakeTask(3, 0, 50.0));
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
}

TEST(TaskQueueTest, PriorityPicksHighest) {
  TaskQueue q(QueuePolicy::kPriority);
  q.Push(MakeTask(1, 0, 1.0, 1));
  q.Push(MakeTask(2, 0, 1.0, 9));
  q.Push(MakeTask(3, 0, 1.0, 9));  // tie: FCFS among equals
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
}

TEST(TaskQueueTest, FairShareRoundRobinsTypes) {
  TaskQueue q(QueuePolicy::kFairShare);
  q.Push(MakeTask(1, 0, 1.0));
  q.Push(MakeTask(2, 0, 1.0));
  q.Push(MakeTask(3, 1, 1.0));
  // First pop: cursor starts at type 0.
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
  // Cursor advanced past type 0 → type 1 next.
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
}

TEST(TaskQueueTest, PeekDoesNotRemove) {
  TaskQueue q(QueuePolicy::kFcfs);
  q.Push(MakeTask(1, 0, 1.0));
  EXPECT_EQ(q.Peek()->arrival.task_id, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(TaskQueueTest, PolicyNames) {
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kFcfs), "FCFS");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kShortestJobFirst), "SJF");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kPriority), "Priority");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kFairShare), "FairShare");
}

// ---------------------------------------------------------------------------
// QpsMonitor
// ---------------------------------------------------------------------------

TEST(QpsMonitorTest, EstimatesRate) {
  QpsMonitor monitor;
  // 100 arrivals/second for 5 seconds.
  for (TimeMs t = 0.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);
  }
  EXPECT_NEAR(monitor.CurrentQps(5000.0), 100.0, 5.0);
}

TEST(QpsMonitorTest, WindowEvictsOldArrivals) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  QpsMonitor monitor(options);
  monitor.RecordArrivals(0.0, 100.0);
  EXPECT_GT(monitor.CurrentQps(500.0), 0.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(5000.0), 0.0);
}

TEST(QpsMonitorTest, FirstObservationTriggers) {
  QpsMonitor monitor;
  monitor.RecordArrivals(0.0, 10.0);
  EXPECT_TRUE(monitor.QpsChangedBeyondThreshold(100.0));
  monitor.AckQpsChange(100.0);
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(100.0));
}

TEST(QpsMonitorTest, FiftyPercentThreshold) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  options.change_threshold = 0.5;
  QpsMonitor monitor(options);
  for (TimeMs t = 0.0; t < 1000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);  // ~100 qps
  }
  monitor.AckQpsChange(1000.0);
  // Rate grows to ~140 qps: below the 50% threshold.
  for (TimeMs t = 1000.0; t < 2000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.4);
  }
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(2000.0));
  // Rate triples: triggers.
  for (TimeMs t = 2000.0; t < 3000.0; t += 10.0) {
    monitor.RecordArrivals(t, 3.0);
  }
  EXPECT_TRUE(monitor.QpsChangedBeyondThreshold(3000.0));
}

TEST(QpsMonitorTest, P99LatencyWeighted) {
  // P99 = smallest latency whose cumulative weight reaches 99% of the total.
  QpsMonitor monitor;
  monitor.RecordLatency(10.0, 98.0);
  monitor.RecordLatency(100.0, 2.0);
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 100.0);  // cum(10) = 98% < 99%
  monitor.RecordLatency(10.0, 1000.0);
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 10.0);  // cum(10) = 99.8%
}

TEST(QpsMonitorTest, P99EmptyIsZero) {
  QpsMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 0.0);
  EXPECT_FALSE(monitor.has_latency_samples());
}

TEST(QpsMonitorTest, LatencyWindowBounded) {
  QpsMonitor::Options options;
  options.latency_window = 4;
  QpsMonitor monitor(options);
  for (int i = 0; i < 100; ++i) {
    monitor.RecordLatency(1000.0, 1.0);
  }
  for (int i = 0; i < 4; ++i) {
    monitor.RecordLatency(1.0, 1.0);
  }
  // Old high latencies fully evicted.
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 1.0);
}

// ---------------------------------------------------------------------------
// ClusterState / planning budget
// ---------------------------------------------------------------------------

TEST(QpsMonitorTest, FeedbackLossFreezesQps) {
  QpsMonitor monitor;
  for (TimeMs t = 0.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);  // ~100 QPS
  }
  double live = monitor.CurrentQps(5000.0);
  monitor.SetFeedbackLost(true, 5000.0);
  EXPECT_TRUE(monitor.feedback_lost());

  // Samples during the outage are dropped; the estimate stays frozen.
  monitor.RecordArrivals(6000.0, 500.0);
  monitor.RecordLatency(999.0, 10.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(7000.0), live);
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(7000.0));
  ASSERT_TRUE(monitor.StalenessMs(7000.0).has_value());
  EXPECT_DOUBLE_EQ(*monitor.StalenessMs(7000.0), 2000.0);
}

TEST(QpsMonitorTest, FeedbackRestoreWarmsUpForOneWindow) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  QpsMonitor monitor(options);
  for (TimeMs t = 0.0; t < 1000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);
  }
  double frozen = monitor.CurrentQps(1000.0);
  monitor.SetFeedbackLost(true, 1000.0);
  monitor.SetFeedbackLost(false, 3000.0);
  EXPECT_FALSE(monitor.feedback_lost());

  // Inside the warm-up window the frozen value still serves (and is stale).
  monitor.RecordArrivals(3100.0, 200.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(3500.0), frozen);
  EXPECT_TRUE(monitor.StalenessMs(3500.0).has_value());

  // After one full window the estimate is live again, fed by new samples.
  for (TimeMs t = 4000.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 2.0);
  }
  EXPECT_FALSE(monitor.StalenessMs(5000.0).has_value());
  EXPECT_NEAR(monitor.CurrentQps(5000.0), 200.0, 20.0);
}

TEST(ClusterStateTest, Topology) {
  ClusterState cluster(3, NodeSpec{4, 40960.0});
  EXPECT_EQ(cluster.num_devices(), 12u);
  EXPECT_EQ(cluster.NodeOf(0), 0);
  EXPECT_EQ(cluster.NodeOf(3), 0);
  EXPECT_EQ(cluster.NodeOf(4), 1);
  EXPECT_EQ(cluster.NodeOf(11), 2);
  EXPECT_EQ(cluster.device(7).id(), 7);
}

TEST(PlanningBudgetTest, LowSloUsesSlo) {
  // GPT2: SLO 100 < cap → budget = 100·b/W.
  EXPECT_DOUBLE_EQ(PlanningLatencyBudgetMs(64, 200.0, 100.0), 100.0 * 64 / 200.0);
}

TEST(PlanningBudgetTest, HighSloCappedForStability) {
  // YOLOS: SLO 2200 → stability cap applies.
  EXPECT_DOUBLE_EQ(PlanningLatencyBudgetMs(64, 200.0, 2200.0), kStabilityCapMs * 64 / 200.0);
}

}  // namespace
}  // namespace mudi
