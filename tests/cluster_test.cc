#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/cluster/kv_store.h"
#include "src/cluster/monitor.h"
#include "src/cluster/policy.h"
#include "src/cluster/task_queue.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

TEST(KvStoreTest, PutGet) {
  KvStore kv;
  kv.Put("config/device0/batch", "64");
  auto v = kv.Get("config/device0/batch");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "64");
  EXPECT_FALSE(kv.Get("missing").has_value());
}

TEST(KvStoreTest, PutOverwrites) {
  KvStore kv;
  kv.Put("k", "1");
  kv.Put("k", "2");
  EXPECT_EQ(*kv.Get("k"), "2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStoreTest, RevisionIncreases) {
  KvStore kv;
  uint64_t r1 = kv.Put("a", "1");
  uint64_t r2 = kv.Put("b", "2");
  EXPECT_GT(r2, r1);
  EXPECT_EQ(kv.revision(), r2);
}

TEST(KvStoreTest, ListByPrefixSorted) {
  KvStore kv;
  kv.Put("dev/1/x", "a");
  kv.Put("dev/0/x", "b");
  kv.Put("other", "c");
  auto items = kv.List("dev/");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "dev/0/x");
  EXPECT_EQ(items[1].first, "dev/1/x");
}

TEST(KvStoreTest, Delete) {
  KvStore kv;
  kv.Put("k", "v");
  EXPECT_TRUE(kv.Delete("k"));
  EXPECT_FALSE(kv.Delete("k"));
  EXPECT_FALSE(kv.Get("k").has_value());
}

TEST(KvStoreTest, GetRequiredReturnsValueOrNotFound) {
  KvStore kv;
  kv.Put("k", "v");
  auto hit = kv.GetRequired("k");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, "v");

  auto miss = kv.GetRequired("absent");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, DeletePrefixRemovesSubtreeOnly) {
  KvStore kv;
  kv.Put("/devices/3/status", "up");
  kv.Put("/devices/3/tasks/7", "resnet");
  kv.Put("/devices/3/tasks/9", "bert");
  kv.Put("/devices/30/tasks/1", "gpt");  // shares a textual prefix path only
  kv.Put("/devices/4/status", "up");

  EXPECT_EQ(kv.DeletePrefix("/devices/3/tasks/"), 2u);
  EXPECT_FALSE(kv.Get("/devices/3/tasks/7").has_value());
  EXPECT_FALSE(kv.Get("/devices/3/tasks/9").has_value());
  EXPECT_TRUE(kv.Get("/devices/3/status").has_value());
  EXPECT_TRUE(kv.Get("/devices/30/tasks/1").has_value());
  EXPECT_TRUE(kv.Get("/devices/4/status").has_value());
  EXPECT_EQ(kv.DeletePrefix("/devices/3/tasks/"), 0u);
}

TEST(KvStoreTest, WatchFiresOnMatchingPrefix) {
  KvStore kv;
  std::vector<std::string> seen;
  kv.Watch("config/", [&](const std::string& key, const std::string& value, uint64_t) {
    seen.push_back(key + "=" + value);
  });
  kv.Put("config/a", "1");
  kv.Put("other/b", "2");
  kv.Put("config/c", "3");
  EXPECT_EQ(seen, (std::vector<std::string>{"config/a=1", "config/c=3"}));
}

TEST(KvStoreTest, WatchReceivesRevision) {
  KvStore kv;
  uint64_t seen_rev = 0;
  kv.Watch("", [&](const std::string&, const std::string&, uint64_t rev) { seen_rev = rev; });
  uint64_t rev = kv.Put("k", "v");
  EXPECT_EQ(seen_rev, rev);
}

TEST(KvStoreTest, UnwatchStopsDelivery) {
  KvStore kv;
  int count = 0;
  auto id = kv.Watch("", [&](const std::string&, const std::string&, uint64_t) { ++count; });
  kv.Put("a", "1");
  EXPECT_TRUE(kv.Unwatch(id));
  EXPECT_FALSE(kv.Unwatch(id));
  kv.Put("b", "2");
  EXPECT_EQ(count, 1);
}

TEST(KvStoreTest, WatcherMayAddWatchDuringCallback) {
  KvStore kv;
  int inner = 0;
  kv.Watch("a", [&](const std::string&, const std::string&, uint64_t) {
    kv.Watch("b", [&](const std::string&, const std::string&, uint64_t) { ++inner; });
  });
  kv.Put("a", "1");  // installs watcher on "b"
  kv.Put("b", "2");
  EXPECT_EQ(inner, 1);
}

// ---------------------------------------------------------------------------
// TaskQueue
// ---------------------------------------------------------------------------

PendingTask MakeTask(int id, size_t type, double work, int priority = 0) {
  PendingTask t;
  t.arrival.task_id = id;
  t.arrival.type_index = type;
  t.arrival.work_full_gpu_ms = work;
  t.priority = priority;
  return t;
}

TEST(TaskQueueTest, FcfsOrder) {
  TaskQueue q(QueuePolicy::kFcfs);
  q.Push(MakeTask(1, 0, 100.0));
  q.Push(MakeTask(2, 1, 1.0));
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(TaskQueueTest, SjfPicksSmallestWork) {
  TaskQueue q(QueuePolicy::kShortestJobFirst);
  q.Push(MakeTask(1, 0, 100.0));
  q.Push(MakeTask(2, 0, 5.0));
  q.Push(MakeTask(3, 0, 50.0));
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
}

TEST(TaskQueueTest, PriorityPicksHighest) {
  TaskQueue q(QueuePolicy::kPriority);
  q.Push(MakeTask(1, 0, 1.0, 1));
  q.Push(MakeTask(2, 0, 1.0, 9));
  q.Push(MakeTask(3, 0, 1.0, 9));  // tie: FCFS among equals
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
}

TEST(TaskQueueTest, FairShareRoundRobinsTypes) {
  TaskQueue q(QueuePolicy::kFairShare);
  q.Push(MakeTask(1, 0, 1.0));
  q.Push(MakeTask(2, 0, 1.0));
  q.Push(MakeTask(3, 1, 1.0));
  // First pop: cursor starts at type 0.
  EXPECT_EQ(q.Pop()->arrival.task_id, 1);
  // Cursor advanced past type 0 → type 1 next.
  EXPECT_EQ(q.Pop()->arrival.task_id, 3);
  EXPECT_EQ(q.Pop()->arrival.task_id, 2);
}

TEST(TaskQueueTest, PeekDoesNotRemove) {
  TaskQueue q(QueuePolicy::kFcfs);
  q.Push(MakeTask(1, 0, 1.0));
  EXPECT_EQ(q.Peek()->arrival.task_id, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(TaskQueueTest, PolicyNames) {
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kFcfs), "FCFS");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kShortestJobFirst), "SJF");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kPriority), "Priority");
  EXPECT_STREQ(QueuePolicyName(QueuePolicy::kFairShare), "FairShare");
}

// ---------------------------------------------------------------------------
// QpsMonitor
// ---------------------------------------------------------------------------

TEST(QpsMonitorTest, EstimatesRate) {
  QpsMonitor monitor;
  // 100 arrivals/second for 5 seconds.
  for (TimeMs t = 0.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);
  }
  EXPECT_NEAR(monitor.CurrentQps(5000.0), 100.0, 5.0);
}

TEST(QpsMonitorTest, WindowEvictsOldArrivals) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  QpsMonitor monitor(options);
  monitor.RecordArrivals(0.0, 100.0);
  EXPECT_GT(monitor.CurrentQps(500.0), 0.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(5000.0), 0.0);
}

TEST(QpsMonitorTest, FirstObservationTriggers) {
  QpsMonitor monitor;
  monitor.RecordArrivals(0.0, 10.0);
  EXPECT_TRUE(monitor.QpsChangedBeyondThreshold(100.0));
  monitor.AckQpsChange(100.0);
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(100.0));
}

TEST(QpsMonitorTest, FiftyPercentThreshold) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  options.change_threshold = 0.5;
  QpsMonitor monitor(options);
  for (TimeMs t = 0.0; t < 1000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);  // ~100 qps
  }
  monitor.AckQpsChange(1000.0);
  // Rate grows to ~140 qps: below the 50% threshold.
  for (TimeMs t = 1000.0; t < 2000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.4);
  }
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(2000.0));
  // Rate triples: triggers.
  for (TimeMs t = 2000.0; t < 3000.0; t += 10.0) {
    monitor.RecordArrivals(t, 3.0);
  }
  EXPECT_TRUE(monitor.QpsChangedBeyondThreshold(3000.0));
}

TEST(QpsMonitorTest, P99LatencyWeighted) {
  // P99 = smallest latency whose cumulative weight reaches 99% of the total.
  QpsMonitor monitor;
  monitor.RecordLatency(10.0, 98.0);
  monitor.RecordLatency(100.0, 2.0);
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 100.0);  // cum(10) = 98% < 99%
  monitor.RecordLatency(10.0, 1000.0);
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 10.0);  // cum(10) = 99.8%
}

TEST(QpsMonitorTest, P99EmptyIsZero) {
  QpsMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 0.0);
  EXPECT_FALSE(monitor.has_latency_samples());
}

TEST(QpsMonitorTest, LatencyWindowBounded) {
  QpsMonitor::Options options;
  options.latency_window = 4;
  QpsMonitor monitor(options);
  for (int i = 0; i < 100; ++i) {
    monitor.RecordLatency(1000.0, 1.0);
  }
  for (int i = 0; i < 4; ++i) {
    monitor.RecordLatency(1.0, 1.0);
  }
  // Old high latencies fully evicted.
  EXPECT_DOUBLE_EQ(monitor.P99LatencyMs(), 1.0);
}

// ---------------------------------------------------------------------------
// ClusterState / planning budget
// ---------------------------------------------------------------------------

TEST(QpsMonitorTest, FeedbackLossFreezesQps) {
  QpsMonitor monitor;
  for (TimeMs t = 0.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);  // ~100 QPS
  }
  double live = monitor.CurrentQps(5000.0);
  monitor.SetFeedbackLost(true, 5000.0);
  EXPECT_TRUE(monitor.feedback_lost());

  // Samples during the outage are dropped; the estimate stays frozen.
  monitor.RecordArrivals(6000.0, 500.0);
  monitor.RecordLatency(999.0, 10.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(7000.0), live);
  EXPECT_FALSE(monitor.QpsChangedBeyondThreshold(7000.0));
  ASSERT_TRUE(monitor.StalenessMs(7000.0).has_value());
  EXPECT_DOUBLE_EQ(*monitor.StalenessMs(7000.0), 2000.0);
}

TEST(QpsMonitorTest, FeedbackRestoreWarmsUpForOneWindow) {
  QpsMonitor::Options options;
  options.window_ms = 1000.0;
  QpsMonitor monitor(options);
  for (TimeMs t = 0.0; t < 1000.0; t += 10.0) {
    monitor.RecordArrivals(t, 1.0);
  }
  double frozen = monitor.CurrentQps(1000.0);
  monitor.SetFeedbackLost(true, 1000.0);
  monitor.SetFeedbackLost(false, 3000.0);
  EXPECT_FALSE(monitor.feedback_lost());

  // Inside the warm-up window the frozen value still serves (and is stale).
  monitor.RecordArrivals(3100.0, 200.0);
  EXPECT_DOUBLE_EQ(monitor.CurrentQps(3500.0), frozen);
  EXPECT_TRUE(monitor.StalenessMs(3500.0).has_value());

  // After one full window the estimate is live again, fed by new samples.
  for (TimeMs t = 4000.0; t < 5000.0; t += 10.0) {
    monitor.RecordArrivals(t, 2.0);
  }
  EXPECT_FALSE(monitor.StalenessMs(5000.0).has_value());
  EXPECT_NEAR(monitor.CurrentQps(5000.0), 200.0, 20.0);
}

TEST(ClusterStateTest, Topology) {
  ClusterState cluster(3, NodeSpec{4, 40960.0});
  EXPECT_EQ(cluster.num_devices(), 12u);
  EXPECT_EQ(cluster.NodeOf(0), 0);
  EXPECT_EQ(cluster.NodeOf(3), 0);
  EXPECT_EQ(cluster.NodeOf(4), 1);
  EXPECT_EQ(cluster.NodeOf(11), 2);
  EXPECT_EQ(cluster.device(7).id(), 7);
}

TEST(PlanningBudgetTest, LowSloUsesSlo) {
  // GPT2: SLO 100 < cap → budget = 100·b/W.
  EXPECT_DOUBLE_EQ(PlanningLatencyBudgetMs(64, 200.0, 100.0), 100.0 * 64 / 200.0);
}

TEST(PlanningBudgetTest, HighSloCappedForStability) {
  // YOLOS: SLO 2200 → stability cap applies.
  EXPECT_DOUBLE_EQ(PlanningLatencyBudgetMs(64, 200.0, 2200.0), kStabilityCapMs * 64 / 200.0);
}

}  // namespace
}  // namespace mudi
