#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/perf/perf_collector.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(20.0, [&] { order.push_back(2); });
  sim.ScheduleAt(10.0, [&] { order.push_back(1); });
  sim.ScheduleAt(30.0, [&] { order.push_back(3); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30.0);
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAfter(5.0, [&] { fired_at = sim.Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, RunUntilAdvancesClockExactly) {
  Simulator sim;
  sim.ScheduleAt(100.0, [] {});
  sim.RunUntil(50.0);
  EXPECT_EQ(sim.Now(), 50.0);
  EXPECT_EQ(sim.events_processed(), 0u);
  sim.RunUntil(150.0);
  EXPECT_EQ(sim.Now(), 150.0);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(SimulatorTest, RunUntilIncludesBoundary) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(50.0, [&] { fired = true; });
  sim.RunUntil(50.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.ScheduleAt(10.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  auto id = sim.ScheduleAt(10.0, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(Simulator::kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, PeriodicFiresRepeatedly) {
  Simulator sim;
  int count = 0;
  sim.SchedulePeriodic(10.0, 10.0, [&] { ++count; });
  sim.RunUntil(55.0);
  EXPECT_EQ(count, 5);  // 10, 20, 30, 40, 50
}

TEST(SimulatorTest, PeriodicCanCancelItself) {
  Simulator sim;
  int count = 0;
  Simulator::EventId id = Simulator::kInvalidEventId;
  id = sim.SchedulePeriodic(10.0, 10.0, [&] {
    if (++count == 3) {
      sim.Cancel(id);
    }
  });
  sim.RunUntil(kMsPerSecond);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, CancelPeriodicFromOutside) {
  Simulator sim;
  int count = 0;
  auto id = sim.SchedulePeriodic(10.0, 10.0, [&] { ++count; });
  sim.ScheduleAt(25.0, [&] { sim.Cancel(id); });
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAt(static_cast<double>(i), [] {});
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  auto id = sim.ScheduleAt(10.0, [] {});
  sim.ScheduleAt(20.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, NestedSchedulingDuringRun) {
  Simulator sim;
  std::vector<double> times;
  sim.ScheduleAt(10.0, [&] {
    times.push_back(sim.Now());
    sim.ScheduleAt(10.0, [&] { times.push_back(sim.Now()); });  // same time, runs after
  });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10.0);
  EXPECT_EQ(times[1], 10.0);
}

// Randomized sweep: arbitrary schedule/cancel interleavings never run an
// event out of order, never run a cancelled event, and fire periodic events
// the exact number of times their period implies.
TEST(SimulatorTest, RandomizedScheduleCancelInvariants) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    Simulator sim;
    double last_seen = -1.0;
    int fired = 0;
    std::vector<Simulator::EventId> ids;
    std::vector<Simulator::EventId> cancelled;
    for (int i = 0; i < 200; ++i) {
      double t = rng.Uniform(0.0, 1000.0);
      ids.push_back(sim.ScheduleAt(t, [&, t] {
        EXPECT_GE(t, last_seen);
        last_seen = t;
        ++fired;
      }));
    }
    // Cancel a random third of them before running.
    for (const auto& id : ids) {
      if (rng.Uniform() < 0.33) {
        if (sim.Cancel(id)) {
          cancelled.push_back(id);
        }
      }
    }
    sim.RunUntilIdle();
    // Exactly the non-cancelled events fired, in time order.
    EXPECT_EQ(fired, 200 - static_cast<int>(cancelled.size()));
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

TEST(SimulatorTest, RandomizedPeriodicCounts) {
  Rng rng(100);
  for (int trial = 0; trial < 10; ++trial) {
    Simulator sim;
    double period = rng.Uniform(1.0, 20.0);
    double start = rng.Uniform(0.0, 10.0);
    double horizon = rng.Uniform(100.0, 500.0);
    int count = 0;
    sim.SchedulePeriodic(start, period, [&] { ++count; });
    sim.RunUntil(horizon);
    int expected = horizon >= start
                       ? 1 + static_cast<int>(std::floor((horizon - start) / period))
                       : 0;
    // Floating-point boundary firings may differ by one.
    EXPECT_NEAR(count, expected, 1.0) << "period=" << period << " start=" << start;
  }
}

// Regression: cancelling an id whose one-shot event has ALREADY fired must
// be a no-op returning false — the stale-cancellation bookkeeping used to
// leak and corrupt pending_events() forever after.
TEST(SimulatorTest, CancelAlreadyFiredOneShotReturnsFalse) {
  Simulator sim;
  auto id = sim.ScheduleAt(1.0, [] {});
  sim.ScheduleAt(5.0, [] {});
  sim.RunUntil(2.0);
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A one-shot event cancelling itself from inside its own callback is a no-op
// (it is no longer live by the time the callback runs).
TEST(SimulatorTest, OneShotSelfCancelFromCallbackIsNoOp) {
  Simulator sim;
  Simulator::EventId id = Simulator::kInvalidEventId;
  bool cancel_result = true;
  id = sim.ScheduleAt(1.0, [&] { cancel_result = sim.Cancel(id); });
  sim.RunUntilIdle();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Cancelling a DIFFERENT pending event from inside a firing callback — even
// one scheduled at the same timestamp — prevents its execution.
TEST(SimulatorTest, CancelOtherSameTimeEventFromCallback) {
  Simulator sim;
  bool second_ran = false;
  Simulator::EventId second = Simulator::kInvalidEventId;
  sim.ScheduleAt(1.0, [&] { EXPECT_TRUE(sim.Cancel(second)); });
  second = sim.ScheduleAt(1.0, [&] { second_ran = true; });
  sim.RunUntilIdle();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A periodic event is re-armed (same id) BEFORE its callback runs, so
// self-cancel from inside the callback stops the re-armed occurrence, and
// the id can then be reused by a fresh schedule.
TEST(SimulatorTest, PeriodicSelfCancelThenReschedule) {
  Simulator sim;
  int fired = 0;
  Simulator::EventId id = Simulator::kInvalidEventId;
  id = sim.SchedulePeriodic(1.0, 1.0, [&] {
    if (++fired == 3) {
      EXPECT_TRUE(sim.Cancel(id));
    }
  });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 0u);

  // Re-arming after self-cancel works and keeps pending_events consistent.
  int fired2 = 0;
  auto id2 = sim.SchedulePeriodic(sim.Now() + 1.0, 1.0, [&] { ++fired2; });
  sim.RunUntil(13.5);
  EXPECT_EQ(fired2, 3);
  EXPECT_EQ(sim.pending_events(), 1u);  // the re-armed periodic stays live
  EXPECT_TRUE(sim.Cancel(id2));
  EXPECT_EQ(sim.pending_events(), 0u);
}

// pending_events() stays exact under interleaved fire/cancel/re-schedule,
// including cancels of already-fired ids (which must not count).
TEST(SimulatorTest, PendingEventsConsistencyUnderChurn) {
  Simulator sim;
  Rng rng(7);
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.ScheduleAt(rng.Uniform(0.0, 100.0), [] {}));
  }
  sim.RunUntil(50.0);
  size_t live_before = sim.pending_events();
  size_t cancelled = 0;
  for (const auto& id : ids) {
    if (sim.Cancel(id)) {
      ++cancelled;  // only still-pending events may report true
    }
  }
  EXPECT_EQ(sim.pending_events(), live_before - cancelled);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// The end-of-run perf export must agree with the simulator's own counters
// and with what actually happened.
TEST(SimulatorTest, ExportPerfCountersSnapshotsDispatchTotals) {
  Simulator sim;
  sim.ScheduleAt(1.0, [] {});
  Simulator::EventId doomed = sim.ScheduleAt(2.0, [] {});
  sim.ScheduleAt(3.0, [] {});
  Simulator::EventId pending = sim.ScheduleAt(4.0, [] {});
  sim.Cancel(doomed);
  sim.RunUntil(3.5);

  perf::PerfCollector collector;
  sim.ExportPerfCounters(&collector);
  EXPECT_EQ(collector.counters().at("sim.events_scheduled"), 4u);
  EXPECT_EQ(collector.counters().at("sim.events_fired"), 2u);
  EXPECT_EQ(collector.counters().at("sim.events_cancelled"), 1u);
  EXPECT_EQ(collector.counters().at("sim.events_pending"), 1u);
  EXPECT_TRUE(sim.Cancel(pending));

  // Null/disabled collectors are no-ops.
  sim.ExportPerfCounters(nullptr);
  perf::PerfCollector disabled;
  disabled.set_enabled(false);
  sim.ExportPerfCounters(&disabled);
  EXPECT_TRUE(disabled.counters().empty());
}

TEST(SimulatorTest, TimeConstants) {
  EXPECT_EQ(kMsPerSecond, 1000.0);
  EXPECT_EQ(kMsPerMinute, 60000.0);
  EXPECT_EQ(kMsPerHour, 3600000.0);
}

// ---------------------------------------------------------------------------
// Calendar-queue / event-arena edge cases. The calendar queue buckets events
// into 1 ms ticks inside a sliding window; everything observable must stay
// identical to the old binary-heap ordering — these tests pin the seams
// (bucket boundaries, window rotation, overflow heap, slot recycling).
// ---------------------------------------------------------------------------

// Scheduling order must break ties even when the tied events land exactly on
// a bucket boundary and their neighbors sit in adjacent buckets.
TEST(SimulatorTest, TieBreakAcrossBucketBoundaries) {
  Simulator sim;
  std::vector<int> order;
  const double boundary_ms = 4096.0;  // half-window boundary tick at default geometry
  sim.ScheduleAt(boundary_ms, [&] { order.push_back(1); });          // boundary bucket
  sim.ScheduleAt(boundary_ms - 0.25, [&] { order.push_back(0); });   // previous bucket
  sim.ScheduleAt(boundary_ms, [&] { order.push_back(2); });          // tie: after 1
  sim.ScheduleAt(boundary_ms + 0.25, [&] { order.push_back(3); });   // same bucket, later
  sim.ScheduleAt(boundary_ms + 1.0, [&] { order.push_back(4); });    // next bucket
  sim.ScheduleAt(boundary_ms, [&] { order.push_back(5); });          // tie: after 2
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 5, 3, 4}));
}

// Ties scheduled into the far-future overflow heap keep FIFO order through
// the heap and through migration back into calendar buckets.
TEST(SimulatorTest, TieBreakSurvivesOverflowMigration) {
  Simulator sim;
  std::vector<int> order;
  const double far = 50000.0;  // beyond the initial calendar window
  for (int i = 0; i < 8; ++i) {
    sim.ScheduleAt(far, [&order, i] { order.push_back(i); });
  }
  sim.ScheduleAt(1.0, [&] { order.push_back(-1); });
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], -1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i + 1], i);
  }
}

// A firing callback cancels a same-bucket later event, a different-bucket
// event, and a far-future overflow event; none of them may fire.
TEST(SimulatorTest, CancelFromInsideCallbackAcrossBuckets) {
  Simulator sim;
  int fired = 0;
  const double far_future_ms = 90 * kMsPerSecond;  // beyond the calendar window
  Simulator::EventId same_bucket = sim.ScheduleAt(10.5, [&] { ++fired; });
  Simulator::EventId other_bucket = sim.ScheduleAt(900.0, [&] { ++fired; });
  Simulator::EventId far_future = sim.ScheduleAt(far_future_ms, [&] { ++fired; });
  sim.ScheduleAt(10.25, [&] {
    EXPECT_TRUE(sim.Cancel(same_bucket));
    EXPECT_TRUE(sim.Cancel(other_bucket));
    EXPECT_TRUE(sim.Cancel(far_future));
  });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A periodic event whose period repeatedly carries it across half-window
// rotations (the calendar re-uses bucket indices mod the window size) must
// fire exactly on schedule the whole way.
TEST(SimulatorTest, PeriodicReArmAcrossWindowRotation) {
  Simulator sim;
  std::vector<double> times;
  const double period_ms = 2.5 * kMsPerSecond;
  const double horizon_ms = 50 * kMsPerSecond;  // ~12 half-window slides at default geometry
  Simulator::EventId id = sim.SchedulePeriodic(500.0, period_ms, [&] { times.push_back(sim.Now()); });
  sim.RunUntil(horizon_ms);
  EXPECT_TRUE(sim.Cancel(id));
  ASSERT_EQ(times.size(), 20u);  // 500, 3000, 5500, ..., 48000
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], 500.0 + period_ms * static_cast<double>(i));
  }
}

// Far-future events take the overflow-heap path and come back in order once
// the clock reaches them; events scheduled after the window has moved out
// there interleave correctly with them.
TEST(SimulatorTest, FarFutureOverflowOrdering) {
  Simulator sim;
  std::vector<int> order;
  const double far_a_ms = 1000 * kMsPerSecond;
  const double far_mid_ms = 1500 * kMsPerSecond;
  const double far_b_ms = 2000 * kMsPerSecond;
  sim.ScheduleAt(far_b_ms, [&] { order.push_back(2); });
  sim.ScheduleAt(far_a_ms, [&, far_mid_ms] {
    order.push_back(1);
    // Scheduled after the window has migrated out to far_a_ms: lands between
    // the two original far-future events.
    sim.ScheduleAt(far_mid_ms, [&] { order.push_back(10); });
  });
  sim.ScheduleAt(5.0, [&] { order.push_back(0); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 2}));
  EXPECT_GE(sim.calendar_migrations(), 1u);
}

// Cancelled events' arena slots are recycled once reaped: heavy
// schedule/cancel churn must not grow the arena beyond its first slab.
TEST(SimulatorTest, ArenaReusesSlotsAfterCancel) {
  Simulator sim;
  for (int round = 0; round < 1000; ++round) {
    Simulator::EventId keep = sim.ScheduleAt(sim.Now() + 1.0, [] {});
    Simulator::EventId doomed = sim.ScheduleAt(sim.Now() + 2.0, [] {});
    EXPECT_TRUE(sim.Cancel(doomed));
    sim.RunUntil(sim.Now() + 3.0);
    EXPECT_EQ(sim.pending_events(), 0u);
    (void)keep;
  }
  // 1000 rounds x 2 events touched only a handful of distinct slots.
  EXPECT_EQ(sim.arena_slabs(), 1u);
  EXPECT_LE(sim.arena_high_water(), 4u);
}

}  // namespace
}  // namespace mudi
