#include <gtest/gtest.h>

#include "src/exp/metrics.h"

namespace mudi {
namespace {

TaskRecord Completed(int id, TimeMs arrival, TimeMs start, TimeMs completion) {
  TaskRecord r;
  r.task_id = id;
  r.arrival_ms = arrival;
  r.start_ms = start;
  r.completion_ms = completion;
  return r;
}

TEST(TaskRecordTest, DerivedDurations) {
  TaskRecord r = Completed(1, 100.0, 150.0, 600.0);
  EXPECT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.ct_ms(), 500.0);
  EXPECT_DOUBLE_EQ(r.waiting_ms(), 50.0);
}

TEST(TaskRecordTest, UnfinishedTask) {
  TaskRecord r;
  r.arrival_ms = 100.0;
  EXPECT_FALSE(r.completed());
  EXPECT_LT(r.start_ms, 0.0);
}

TEST(ServiceMetricsTest, ViolationRate) {
  ServiceMetrics m;
  EXPECT_DOUBLE_EQ(m.slo_violation_rate(), 0.0);  // no windows yet
  m.windows_total = 40;
  m.windows_violated = 10;
  EXPECT_DOUBLE_EQ(m.slo_violation_rate(), 0.25);
}

TEST(ExperimentResultTest, OverallRateWeightsWindows) {
  ExperimentResult result;
  result.per_service["A"].windows_total = 90;
  result.per_service["A"].windows_violated = 0;
  result.per_service["B"].windows_total = 10;
  result.per_service["B"].windows_violated = 10;
  EXPECT_DOUBLE_EQ(result.OverallSloViolationRate(), 0.1);
}

TEST(ExperimentResultTest, MeanCtSkipsUnfinished) {
  ExperimentResult result;
  result.tasks.push_back(Completed(1, 0.0, 0.0, 100.0));
  result.tasks.push_back(Completed(2, 0.0, 0.0, 300.0));
  TaskRecord unfinished;
  unfinished.arrival_ms = 0.0;
  result.tasks.push_back(unfinished);
  EXPECT_DOUBLE_EQ(result.MeanCtMs(), 200.0);
  EXPECT_EQ(result.CompletedTasks(), 2u);
}

TEST(ExperimentResultTest, MeanWaitCountsPlacedOnly) {
  ExperimentResult result;
  result.tasks.push_back(Completed(1, 0.0, 40.0, 100.0));
  TaskRecord placed_not_done;
  placed_not_done.arrival_ms = 0.0;
  placed_not_done.start_ms = 60.0;
  result.tasks.push_back(placed_not_done);
  TaskRecord never_placed;
  never_placed.arrival_ms = 0.0;
  result.tasks.push_back(never_placed);
  EXPECT_DOUBLE_EQ(result.MeanWaitingMs(), 50.0);
}

TEST(ExperimentResultTest, P95CtOfEmptyIsZero) {
  ExperimentResult result;
  EXPECT_DOUBLE_EQ(result.P95CtMs(), 0.0);
  EXPECT_DOUBLE_EQ(result.MeanCtMs(), 0.0);
}

TEST(ExperimentResultTest, P95CtComputed) {
  ExperimentResult result;
  for (int i = 1; i <= 100; ++i) {
    result.tasks.push_back(Completed(i, 0.0, 0.0, 10.0 * i));
  }
  EXPECT_NEAR(result.P95CtMs(), 950.0, 11.0);
}

}  // namespace
}  // namespace mudi
