#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "src/core/interference_modeler.h"
#include "src/core/latency_profiler.h"
#include "src/core/online_multiplexer.h"
#include "src/gpu/perf_oracle.h"

namespace mudi {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  PerfOracle oracle_{42};
};

TEST_F(ProfilerTest, CurveKeyOrderingSortsTrainingTypes) {
  CurveKey a{0, 16, {1, 2}};
  CurveKey b{0, 16, {2, 1}};
  EXPECT_TRUE(a < b || b < a);  // distinct as stored (caller sorts)
  CurveKey c{0, 32, {1, 2}};
  EXPECT_TRUE(a < c);
}

TEST_F(ProfilerTest, ProfiledCurveApproximatesOracle) {
  LatencyProfiler profiler(oracle_);
  ProfiledCurve curve = profiler.ProfileCurve(/*service=*/0, /*batch=*/64, {0});
  // The fitted piece-wise model should track the profiled samples closely.
  for (size_t i = 0; i < curve.sample_fractions.size(); ++i) {
    double rel = std::abs(curve.model.Eval(curve.sample_fractions[i]) -
                          curve.sample_latencies[i]) /
                 curve.sample_latencies[i];
    EXPECT_LT(rel, 0.20) << "g=" << curve.sample_fractions[i];
  }
  // Latency-vs-GPU% slopes are negative, steep segment first.
  EXPECT_LT(curve.model.k1, 0.0);
  EXPECT_LT(curve.model.k1, curve.model.k2);
}

TEST_F(ProfilerTest, CutoffWithinProfiledRange) {
  LatencyProfiler profiler(oracle_);
  ProfiledCurve curve = profiler.ProfileCurve(2, 128, {1});
  EXPECT_GT(curve.model.x0, 0.05);
  EXPECT_LT(curve.model.x0, 0.95);
}

TEST_F(ProfilerTest, ProfileAllCoversGrid) {
  LatencyProfiler profiler(oracle_);
  profiler.ProfileAll(/*num_training_types=*/2);
  // 6 services × 6 batches × (solo + 2 types).
  EXPECT_EQ(profiler.curves().size(), 6u * 6u * 3u);
  EXPECT_GT(profiler.total_measurements(), 0u);
}

TEST_F(ProfilerTest, FindCurveExactMatchOnly) {
  LatencyProfiler profiler(oracle_);
  profiler.ProfileAll(1);
  EXPECT_NE(profiler.FindCurve(CurveKey{0, 16, {0}}), nullptr);
  EXPECT_NE(profiler.FindCurve(CurveKey{0, 16, {}}), nullptr);  // solo
  EXPECT_EQ(profiler.FindCurve(CurveKey{0, 16, {3}}), nullptr);  // unprofiled
  EXPECT_EQ(profiler.FindCurve(CurveKey{0, 48, {0}}), nullptr);  // off-grid batch
}

TEST_F(ProfilerTest, MultiTrainingProfiles) {
  LatencyProfiler::Options options;
  options.repeats_per_point = 5;
  LatencyProfiler profiler(oracle_, options);
  profiler.ProfileMultiTraining(/*num_training_types=*/2, /*include_triples=*/false);
  // Pairs with repetition from 2 types: {0,0},{0,1},{1,1} per service × batch.
  EXPECT_EQ(profiler.curves().size(), 6u * 6u * 3u);
  EXPECT_NE(profiler.FindCurve(CurveKey{0, 16, {0, 1}}), nullptr);
}

TEST_F(ProfilerTest, ColocatedCurveLiesAboveSolo) {
  LatencyProfiler profiler(oracle_);
  ProfiledCurve solo = profiler.ProfileCurve(0, 64, {});
  ProfiledCurve colo = profiler.ProfileCurve(0, 64, {2});
  for (double g : {0.2, 0.5, 0.8}) {
    EXPECT_GT(colo.model.Eval(g), solo.model.Eval(g) * 0.98);
  }
}

// ---------------------------------------------------------------------------
// InterferenceModeler
// ---------------------------------------------------------------------------

// Offline profiling + model selection is the expensive step; share one
// instance across the modeler/predictor tests.
class ModelerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    oracle_ptr_ = new PerfOracle(42);
    LatencyProfiler::Options options;
    options.repeats_per_point = 8;
    profiler_ptr_ = new LatencyProfiler(*oracle_ptr_, options);
    profiler_ptr_->ProfileAll(ModelZoo::kNumObservedTrainingTypes);
    modeler_ptr_ = new InterferenceModeler();
    modeler_ptr_->AddSamplesFromProfiler(*profiler_ptr_);
    modeler_ptr_->Fit();
  }

  PerfOracle& oracle_ = *oracle_ptr_;
  LatencyProfiler& profiler() { return *profiler_ptr_; }
  InterferenceModeler& modeler() { return *modeler_ptr_; }

  static PerfOracle* oracle_ptr_;
  static LatencyProfiler* profiler_ptr_;
  static InterferenceModeler* modeler_ptr_;
};

PerfOracle* ModelerTest::oracle_ptr_ = nullptr;
LatencyProfiler* ModelerTest::profiler_ptr_ = nullptr;
InterferenceModeler* ModelerTest::modeler_ptr_ = nullptr;

TEST_F(ModelerTest, FeatureEncodingAppendsLogBatch) {
  auto arch = MakeArchitecture({{LayerType::kConv, 4}});
  auto features = InterferenceModeler::EncodeFeatures(arch, 256);
  ASSERT_EQ(features.size(), kNumLayerTypes + 1);
  EXPECT_DOUBLE_EQ(features.back(), 8.0);
  EXPECT_DOUBLE_EQ(features[0], 4.0);
}

TEST_F(ModelerTest, SoloCurvesAreSkipped) {
  InterferenceModeler fresh;
  ProfiledCurve solo;
  solo.key = CurveKey{0, 16, {}};
  fresh.AddSample(solo);
  EXPECT_EQ(fresh.num_samples(0), 0u);
}

TEST_F(ModelerTest, SampleCountsPerService) {
  // 6 batches × 5 observed types per service.
  for (size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(modeler().num_samples(s), 30u);
  }
}

TEST_F(ModelerTest, PredictsObservedPairsAccurately) {
  // On a profiled (seen) pair, prediction should be close to the fitted fit.
  const ProfiledCurve* truth = profiler().FindCurve(CurveKey{0, 64, {1}});
  ASSERT_NE(truth, nullptr);
  auto pred = modeler().Predict(0, ModelZoo::TrainingTasks()[1].arch, 64);
  // Compare curve evaluations at moderate fractions.
  for (double g : {0.3, 0.6, 0.9}) {
    double rel = std::abs(pred.Eval(g) - truth->model.Eval(g)) /
                 std::max(1.0, std::abs(truth->model.Eval(g)));
    EXPECT_LT(rel, 0.35) << g;
  }
}

TEST_F(ModelerTest, GeneralizesToUnseenTrainingTypes) {
  // Fig. 11 property: predicting curve parameters for the four *unseen*
  // tasks from architecture features, average E2E error below ~30%.
  LatencyProfiler::Options options;
  options.repeats_per_point = 8;
  options.seed = 999;
  LatencyProfiler test_profiler(oracle_, options);
  double total_rel = 0.0;
  int count = 0;
  for (size_t type = ModelZoo::kNumObservedTrainingTypes;
       type < ModelZoo::TrainingTasks().size(); ++type) {
    for (size_t s = 0; s < 3; ++s) {
      ProfiledCurve truth = test_profiler.ProfileCurve(s, 64, {type});
      auto pred = modeler().Predict(s, ModelZoo::TrainingTasks()[type].arch, 64);
      for (size_t i = 0; i < truth.sample_fractions.size(); ++i) {
        double g = truth.sample_fractions[i];
        total_rel += std::abs(pred.Eval(g) - truth.sample_latencies[i]) /
                     truth.sample_latencies[i];
        ++count;
      }
    }
  }
  EXPECT_LT(total_rel / count, 0.30);
}

TEST_F(ModelerTest, PredictionStructurallySane) {
  for (size_t s = 0; s < 6; ++s) {
    for (const auto& task : ModelZoo::TrainingTasks()) {
      auto pred = modeler().Predict(s, task.arch, 64);
      EXPECT_LE(pred.k1, 0.0);
      EXPECT_LE(pred.k2, 0.0);
      EXPECT_GE(pred.x0, 0.05);
      EXPECT_LE(pred.x0, 0.95);
      EXPECT_GT(pred.y0, 0.0);
    }
  }
}

TEST_F(ModelerTest, SelectedModelNamesNonEmpty) {
  for (size_t p = 0; p < kNumCurveParams; ++p) {
    EXPECT_FALSE(modeler().SelectedModelName(0, static_cast<CurveParam>(p)).empty());
  }
}

TEST_F(ModelerTest, IncrementalRefitAfterNewSamples) {
  // Adding samples for an unseen type then refitting must not regress the
  // structural sanity and should incorporate the new colocation.
  LatencyProfiler::Options options;
  options.repeats_per_point = 8;
  LatencyProfiler extra(oracle_, options);
  size_t unseen = ModelZoo::kNumObservedTrainingTypes;
  for (int b : ProfilingBatchSizes()) {
    modeler().AddSample(extra.ProfileCurve(0, b, {unseen}));
  }
  modeler().Fit();
  auto pred = modeler().Predict(0, ModelZoo::TrainingTasks()[unseen].arch, 64);
  EXPECT_LE(pred.k1, 0.0);
  EXPECT_GT(pred.y0, 0.0);
}

TEST_F(ProfilerTest, SaveLoadRoundTrip) {
  LatencyProfiler::Options options;
  options.repeats_per_point = 5;
  LatencyProfiler profiler(oracle_, options);
  profiler.ProfileAll(/*num_training_types=*/1);
  ASSERT_TRUE(profiler.SaveToFile("/tmp/mudi_profiles_test.csv").ok());

  LatencyProfiler loaded(oracle_, options);
  ASSERT_TRUE(loaded.LoadFromFile("/tmp/mudi_profiles_test.csv").ok());
  EXPECT_EQ(loaded.curves().size(), profiler.curves().size());
  for (const auto& [key, curve] : profiler.curves()) {
    const ProfiledCurve* other = loaded.FindCurve(key);
    ASSERT_NE(other, nullptr);
    EXPECT_NEAR(other->model.k1, curve.model.k1, 1e-4 + 1e-4 * std::abs(curve.model.k1));
    EXPECT_NEAR(other->model.x0, curve.model.x0, 1e-6);
    EXPECT_EQ(other->sample_fractions.size(), curve.sample_fractions.size());
  }
}

TEST_F(ProfilerTest, LoadMissingFileFails) {
  LatencyProfiler profiler(oracle_);
  Status status = profiler.LoadFromFile("/tmp/definitely_missing_mudi_profiles.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ProfilerTest, LoadRejectsMalformedFile) {
  {
    std::ofstream out("/tmp/mudi_bad_profiles.csv");
    out << "service,batch,types,x0,y0,k1,k2,fractions,latencies\n";
    out << "0,64,,0.3,50\n";  // wrong field count
  }
  LatencyProfiler profiler(oracle_);
  Status status = profiler.LoadFromFile("/tmp/mudi_bad_profiles.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CurveParamTest, Names) {
  EXPECT_STREQ(CurveParamName(CurveParam::kK1), "k1");
  EXPECT_STREQ(CurveParamName(CurveParam::kK2), "k2");
  EXPECT_STREQ(CurveParamName(CurveParam::kCutoffX), "delta0");
  EXPECT_STREQ(CurveParamName(CurveParam::kCutoffY), "l0");
}

// ---------------------------------------------------------------------------
// InterferencePredictor (exact-profile vs learner path)
// ---------------------------------------------------------------------------

class PredictorTest : public ModelerTest {};

TEST_F(PredictorTest, UsesExactProfileWhenAvailable) {
  InterferencePredictor predictor(profiler_ptr_, modeler_ptr_);
  const ProfiledCurve* profiled = profiler().FindCurve(CurveKey{1, 32, {0}});
  ASSERT_NE(profiled, nullptr);
  auto pred = predictor.PredictCurve(1, {0}, 32);
  EXPECT_DOUBLE_EQ(pred.k1, profiled->model.k1);
  EXPECT_DOUBLE_EQ(pred.x0, profiled->model.x0);
}

TEST_F(PredictorTest, FallsBackToLearnerForUnseenMix) {
  InterferencePredictor predictor(profiler_ptr_, modeler_ptr_);
  size_t unseen = ModelZoo::kNumObservedTrainingTypes + 1;
  auto pred = predictor.PredictCurve(1, {unseen}, 32);
  EXPECT_LE(pred.k1, 0.0);
  EXPECT_GT(pred.y0, 0.0);
}

TEST_F(PredictorTest, ScoreOrderingConsistentWithGroundTruth) {
  // The score must rank training types consistently with the oracle's true
  // co-located latency: compare the most- and least-interfering observed
  // types (ground truth) and check the predictor orders them the same way.
  InterferencePredictor predictor(profiler_ptr_, modeler_ptr_);
  const auto& service = ModelZoo::InferenceServices()[0];
  const auto& tasks = ModelZoo::TrainingTasks();
  // Ground-truth sensitivity: average |dL/dg| across the profiling batch
  // sizes, measured by finite differences on the noise-free oracle.
  auto true_slope = [&](size_t type) {
    double sum = 0.0;
    for (int b : ProfilingBatchSizes()) {
      std::vector<ColocatedTraining> colocated{{&tasks[type], 0.5}};
      double l_lo = oracle_.InferenceBatchLatency(service, b, 0.15, colocated).total_ms();
      double l_hi = oracle_.InferenceBatchLatency(service, b, 0.85, colocated).total_ms();
      sum += std::abs(l_hi - l_lo) / 0.7;
    }
    return sum / static_cast<double>(ProfilingBatchSizes().size());
  };
  size_t worst_type = 0, best_type = 0;
  double worst_lat = -1.0, best_lat = 1e18;
  for (size_t t = 0; t < ModelZoo::kNumObservedTrainingTypes; ++t) {
    double slope = true_slope(t);
    if (slope > worst_lat) {
      worst_lat = slope;
      worst_type = t;
    }
    if (slope < best_lat) {
      best_lat = slope;
      best_type = t;
    }
  }
  ASSERT_NE(worst_type, best_type);
  EXPECT_GT(predictor.InterferenceScore(0, {worst_type}),
            predictor.InterferenceScore(0, {best_type}));
}

TEST_F(PredictorTest, ScoreCachedAndConsistent) {
  InterferencePredictor predictor(profiler_ptr_, modeler_ptr_);
  double first = predictor.InterferenceScore(2, {1, 0});
  double second = predictor.InterferenceScore(2, {0, 1});  // order-insensitive
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace mudi
