#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/gpu/perf_oracle.h"
#include "src/workload/models.h"

namespace mudi {
namespace {

const InferenceServiceSpec& Service(const char* name) {
  return ModelZoo::InferenceServiceByName(name);
}
const TrainingTaskSpec& Task(const char* name) { return ModelZoo::TrainingTaskByName(name); }

class PerfOracleTest : public ::testing::Test {
 protected:
  PerfOracle oracle_{42};
};

// ---------------------------------------------------------------------------
// Inference latency structure
// ---------------------------------------------------------------------------

TEST_F(PerfOracleTest, AllPhasesPositive) {
  auto lat = oracle_.InferenceBatchLatency(Service("GPT2"), 64, 0.5, {});
  EXPECT_GT(lat.preprocess_ms, 0.0);
  EXPECT_GT(lat.transfer_ms, 0.0);
  EXPECT_GT(lat.execute_ms, 0.0);
  EXPECT_DOUBLE_EQ(lat.total_ms(), lat.preprocess_ms + lat.transfer_ms + lat.execute_ms);
}

TEST_F(PerfOracleTest, LatencyDecreasesWithGpuFractionBelowKnee) {
  const auto& service = Service("ResNet50");
  double knee = PerfOracle::SaturationFraction(service, 64);
  double prev = 1e18;
  for (double g = 0.1; g < knee; g += 0.05) {
    double lat = oracle_.InferenceBatchLatency(service, 64, g, {}).total_ms();
    EXPECT_LT(lat, prev);
    prev = lat;
  }
}

TEST_F(PerfOracleTest, LatencyNearlyFlatBeyondKnee) {
  const auto& service = Service("ResNet50");
  double knee = PerfOracle::SaturationFraction(service, 64);
  double at_knee = oracle_.InferenceBatchLatency(service, 64, knee, {}).total_ms();
  double at_90 = oracle_.InferenceBatchLatency(service, 64, 0.9, {}).total_ms();
  // Beyond the knee: small residual improvement (< 10%), never an increase.
  EXPECT_LE(at_90, at_knee);
  EXPECT_GT(at_90, 0.9 * at_knee);
}

TEST_F(PerfOracleTest, PiecewiseShapeSteepThenFlat) {
  // Fig. 5 property: slope magnitude below the knee is much larger than
  // above it.
  const auto& service = Service("GPT2");
  double knee = PerfOracle::SaturationFraction(service, 128);
  double low1 = oracle_.InferenceBatchLatency(service, 128, 0.10, {}).total_ms();
  double low2 = oracle_.InferenceBatchLatency(service, 128, 0.20, {}).total_ms();
  double hi1 = oracle_.InferenceBatchLatency(service, 128, knee + 0.05, {}).total_ms();
  double hi2 = oracle_.InferenceBatchLatency(service, 128, knee + 0.15, {}).total_ms();
  double steep = std::abs(low2 - low1) / 0.10;
  double flat = std::abs(hi2 - hi1) / 0.10;
  EXPECT_GT(steep, 5.0 * flat);
}

TEST_F(PerfOracleTest, KneeGrowsWithBatch) {
  const auto& service = Service("ResNet50");
  EXPECT_LT(PerfOracle::SaturationFraction(service, 16),
            PerfOracle::SaturationFraction(service, 512));
}

TEST_F(PerfOracleTest, SaturationFractionBounded) {
  for (const auto& service : ModelZoo::InferenceServices()) {
    for (int b : ProfilingBatchSizes()) {
      double g = PerfOracle::SaturationFraction(service, b);
      EXPECT_GE(g, 0.10);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST_F(PerfOracleTest, LatencyGrowsWithBatch) {
  const auto& service = Service("BERT");
  double prev = 0.0;
  for (int b : ProfilingBatchSizes()) {
    double lat = oracle_.InferenceBatchLatency(service, b, 0.5, {}).total_ms();
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST_F(PerfOracleTest, Gpt2SoloIsExecutionDominant) {
  // §2.2.1: GPT2 solo phases ≈ 4% / 10% / 86%.
  auto lat = oracle_.InferenceBatchLatency(Service("GPT2"), 64, 0.5, {});
  double total = lat.total_ms();
  EXPECT_LT(lat.preprocess_ms / total, 0.12);
  EXPECT_LT(lat.transfer_ms / total, 0.20);
  EXPECT_GT(lat.execute_ms / total, 0.70);
}

TEST_F(PerfOracleTest, ResNet50SoloIsTransferDominant) {
  // §2.2.1: ResNet50 solo phases ≈ 7% / 71% / 22%.
  auto lat = oracle_.InferenceBatchLatency(Service("ResNet50"), 64, 0.5, {});
  double total = lat.total_ms();
  EXPECT_GT(lat.transfer_ms / total, 0.45);
  EXPECT_LT(lat.preprocess_ms / total, 0.15);
}

// ---------------------------------------------------------------------------
// Interference structure (Fig. 3 vs Fig. 4)
// ---------------------------------------------------------------------------

TEST_F(PerfOracleTest, InferenceNeighborsInterfereMoreThanTraining) {
  for (const char* name : {"GPT2", "ResNet50"}) {
    const auto& service = Service(name);
    double solo = oracle_.InferenceBatchLatency(service, 64, 0.5, {}).total_ms();
    double with_inference =
        oracle_.InferenceBatchLatency(service, 64, 0.5, {}, /*other_inference_count=*/1)
            .total_ms();
    std::vector<ColocatedTraining> training{{&Task("VGG16"), 0.5}};
    double with_training =
        oracle_.InferenceBatchLatency(service, 64, 0.5, training).total_ms();
    EXPECT_GT(with_inference, with_training) << name;
    EXPECT_GT(with_training, solo) << name;
  }
}

TEST_F(PerfOracleTest, InterferenceMagnitudesMatchPaperBallpark) {
  // Fig. 3: E2E inference↔inference interference ≈ 3.19× (GPT2), 2.40× (RN50).
  // Fig. 4: inference↔training ≈ 1.67× / 1.21×. Accept generous bands.
  auto ratio = [&](const char* name, bool vs_training) {
    const auto& service = Service(name);
    double solo = oracle_.InferenceBatchLatency(service, 64, 0.5, {}).total_ms();
    double colo;
    if (vs_training) {
      std::vector<ColocatedTraining> training{{&Task("ResNet50"), 0.5}};
      colo = oracle_.InferenceBatchLatency(service, 64, 0.5, training).total_ms();
    } else {
      colo = oracle_.InferenceBatchLatency(service, 64, 0.5, {}, 1).total_ms();
    }
    return colo / solo;
  };
  EXPECT_GT(ratio("GPT2", false), 2.0);
  EXPECT_LT(ratio("GPT2", false), 5.0);
  EXPECT_GT(ratio("GPT2", true), 1.1);
  EXPECT_LT(ratio("GPT2", true), 2.6);
  EXPECT_GT(ratio("ResNet50", false), 1.6);
  EXPECT_LT(ratio("ResNet50", false), 4.0);
  EXPECT_GT(ratio("ResNet50", true), 1.05);
  EXPECT_LT(ratio("ResNet50", true), 2.0);
}

TEST_F(PerfOracleTest, PreprocessPhaseSuffersMostFromInferenceNeighbor) {
  const auto& service = Service("ResNet50");
  auto solo = oracle_.InferenceBatchLatency(service, 64, 0.5, {});
  auto colo = oracle_.InferenceBatchLatency(service, 64, 0.5, {}, 1);
  double pre_ratio = colo.preprocess_ms / solo.preprocess_ms;
  double xfer_ratio = colo.transfer_ms / solo.transfer_ms;
  EXPECT_GT(pre_ratio, 3.0);  // paper: 4.93×
  EXPECT_GT(pre_ratio, xfer_ratio);
}

TEST_F(PerfOracleTest, MoreColocatedTrainingMoreInterference) {
  const auto& service = Service("BERT");
  std::vector<ColocatedTraining> one{{&Task("VGG16"), 0.3}};
  std::vector<ColocatedTraining> two{{&Task("VGG16"), 0.3}, {&Task("ResNet50"), 0.3}};
  double l1 = oracle_.InferenceBatchLatency(service, 64, 0.5, one).total_ms();
  double l2 = oracle_.InferenceBatchLatency(service, 64, 0.5, two).total_ms();
  EXPECT_GT(l2, l1);
}

// ---------------------------------------------------------------------------
// Training iteration time
// ---------------------------------------------------------------------------

TEST_F(PerfOracleTest, SoloTrainingAtFullGpuMatchesSpec) {
  InferenceLoad none;
  double iter = oracle_.TrainingIterationMs(Task("VGG16"), 1.0, none, {});
  EXPECT_NEAR(iter, Task("VGG16").iter_ms_full, Task("VGG16").iter_ms_full * 0.05);
}

TEST_F(PerfOracleTest, TrainingSlowsWithSmallerShare) {
  InferenceLoad none;
  double full = oracle_.TrainingIterationMs(Task("BERT"), 1.0, none, {});
  double half = oracle_.TrainingIterationMs(Task("BERT"), 0.5, none, {});
  double tenth = oracle_.TrainingIterationMs(Task("BERT"), 0.1, none, {});
  EXPECT_GT(half, full);
  EXPECT_GT(tenth, half);
  // BERT saturates the full GPU: share 0.1 is ~10x slower.
  EXPECT_NEAR(tenth / full, 10.0, 2.0);
}

TEST_F(PerfOracleTest, SmallModelSaturatesEarly) {
  // NCF saturates at 0.5: share beyond it gives little.
  InferenceLoad none;
  double at_half = oracle_.TrainingIterationMs(Task("NCF"), 0.5, none, {});
  double at_full = oracle_.TrainingIterationMs(Task("NCF"), 1.0, none, {});
  EXPECT_LT((at_half - at_full) / at_half, 0.08);
}

TEST_F(PerfOracleTest, InferenceLoadSlowsTraining) {
  InferenceLoad none;
  InferenceLoad load{&Service("ResNet50"), 64, 0.5, 200.0};
  double solo = oracle_.TrainingIterationMs(Task("YOLOv5"), 0.5, none, {});
  double colo = oracle_.TrainingIterationMs(Task("YOLOv5"), 0.5, load, {});
  EXPECT_GT(colo, solo);
  EXPECT_LT(colo / solo, 2.2);  // moderate interference (§2.2.1 takeaway)
}

TEST_F(PerfOracleTest, TrainingInterferenceNonMonotonicInBatch) {
  // §5.3.1: the batch size's effect on training throughput is not monotone —
  // PCIe per-batch pressure falls with b while compute-burst pressure grows.
  // Most visible for a compute-heavy service with high pair affinity.
  const auto& task = Task("ResNet50");
  std::vector<double> iters;
  for (int b : ProfilingBatchSizes()) {
    InferenceLoad load{&Service("YOLOS"), b, 0.5, 200.0};
    iters.push_back(oracle_.TrainingIterationMs(task, 0.5, load, {}));
  }
  bool increasing = true, decreasing = true;
  for (size_t i = 1; i < iters.size(); ++i) {
    increasing &= iters[i] >= iters[i - 1];
    decreasing &= iters[i] <= iters[i - 1];
  }
  EXPECT_FALSE(increasing);
  EXPECT_FALSE(decreasing);
}

TEST_F(PerfOracleTest, OtherTrainingAddsInterference) {
  InferenceLoad none;
  std::vector<ColocatedTraining> other{{&Task("VGG16"), 0.4}};
  double solo = oracle_.TrainingIterationMs(Task("LSTM"), 0.4, none, {});
  double colo = oracle_.TrainingIterationMs(Task("LSTM"), 0.4, none, other);
  EXPECT_GT(colo, solo);
}

// ---------------------------------------------------------------------------
// Affinity (the hidden architecture-dependent coefficient)
// ---------------------------------------------------------------------------

TEST_F(PerfOracleTest, AffinityInUnitInterval) {
  for (const auto& service : ModelZoo::InferenceServices()) {
    for (const auto& task : ModelZoo::TrainingTasks()) {
      double a = oracle_.PairAffinity(service, task.arch);
      EXPECT_GE(a, 0.0) << service.name << "/" << task.name;
      EXPECT_LE(a, 1.0) << service.name << "/" << task.name;
    }
  }
}

TEST_F(PerfOracleTest, AffinityDeterministic) {
  PerfOracle other(42);
  for (const auto& task : ModelZoo::TrainingTasks()) {
    EXPECT_DOUBLE_EQ(oracle_.PairAffinity(Service("GPT2"), task.arch),
                     other.PairAffinity(Service("GPT2"), task.arch));
  }
}

TEST_F(PerfOracleTest, AffinityVariesAcrossTasks) {
  double lo = 1.0, hi = 0.0;
  for (const auto& task : ModelZoo::TrainingTasks()) {
    double a = oracle_.PairAffinity(Service("ResNet50"), task.arch);
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  EXPECT_GT(hi - lo, 0.05);  // pairs genuinely differ → placement matters
}

TEST_F(PerfOracleTest, AffinitySeedChangesGroundTruth) {
  PerfOracle other(777);
  bool any_diff = false;
  for (const auto& task : ModelZoo::TrainingTasks()) {
    if (std::abs(oracle_.PairAffinity(Service("BERT"), task.arch) -
                 other.PairAffinity(Service("BERT"), task.arch)) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(PerfOracleTest, AffinityDependsOnArchitecture) {
  auto small = MakeArchitecture({{LayerType::kFc, 1}});
  auto big = MakeArchitecture({{LayerType::kConv, 100},
                               {LayerType::kBatchNorm, 100},
                               {LayerType::kActivation, 100},
                               {LayerType::kLinear, 50},
                               {LayerType::kOther, 50}});
  EXPECT_LT(oracle_.PairAffinity(Service("ResNet50"), small),
            oracle_.PairAffinity(Service("ResNet50"), big));
}

// ---------------------------------------------------------------------------
// Observation noise
// ---------------------------------------------------------------------------

TEST_F(PerfOracleTest, ObservationsAreNoisyButUnbiased) {
  Rng rng(5);
  const auto& service = Service("Inception");
  double truth = oracle_.InferenceBatchLatency(service, 64, 0.5, {}).total_ms();
  double sum = 0.0;
  bool any_diff = false;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    double obs = oracle_.ObserveInferenceBatchLatency(service, 64, 0.5, {}, rng).total_ms();
    sum += obs;
    any_diff |= obs != truth;
  }
  EXPECT_TRUE(any_diff);
  EXPECT_NEAR(sum / n, truth, truth * 0.01);
}

TEST_F(PerfOracleTest, TrainingObservationNoisyButUnbiased) {
  Rng rng(6);
  InferenceLoad none;
  double truth = oracle_.TrainingIterationMs(Task("NCF"), 0.5, none, {});
  double sum = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    sum += oracle_.ObserveTrainingIterationMs(Task("NCF"), 0.5, none, {}, rng);
  }
  EXPECT_NEAR(sum / n, truth, truth * 0.01);
}

// Parameterized sweep: core monotonicity invariants over every service ×
// batch combination.
class OracleSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(OracleSweepTest, LatencyMonotoneNonIncreasingInFraction) {
  PerfOracle oracle(42);
  const auto& service = ModelZoo::InferenceServices()[std::get<0>(GetParam())];
  int batch = std::get<1>(GetParam());
  double prev = 1e18;
  for (double g : ProfilingGpuFractions()) {
    double lat = oracle.InferenceBatchLatency(service, batch, g, {}).total_ms();
    EXPECT_LE(lat, prev + 1e-9) << service.name << " b=" << batch << " g=" << g;
    prev = lat;
  }
}

TEST_P(OracleSweepTest, ColocationNeverSpeedsUpInference) {
  PerfOracle oracle(42);
  const auto& service = ModelZoo::InferenceServices()[std::get<0>(GetParam())];
  int batch = std::get<1>(GetParam());
  std::vector<ColocatedTraining> training{{&ModelZoo::TrainingTasks()[2], 0.4}};
  double solo = oracle.InferenceBatchLatency(service, batch, 0.5, {}).total_ms();
  double colo = oracle.InferenceBatchLatency(service, batch, 0.5, training).total_ms();
  EXPECT_GE(colo, solo);
}

INSTANTIATE_TEST_SUITE_P(AllServicesAllBatches, OracleSweepTest,
                         ::testing::Combine(::testing::Range<size_t>(0, 6),
                                            ::testing::Values(16, 64, 256, 512)));

}  // namespace
}  // namespace mudi
