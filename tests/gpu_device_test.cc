#include <gtest/gtest.h>

#include "src/gpu/gpu_device.h"

namespace mudi {
namespace {

TrainingInstance MakeTraining(int id, double mem_mb, double fraction = 0.3) {
  TrainingInstance t;
  t.task_id = id;
  t.type_index = 0;
  t.gpu_fraction = fraction;
  t.work_remaining_ms = 1000.0;
  t.mem_required_mb = mem_mb;
  return t;
}

TEST(GpuDeviceTest, ConstructionDefaults) {
  GpuDevice dev(3);
  EXPECT_EQ(dev.id(), 3);
  EXPECT_DOUBLE_EQ(dev.memory_mb(), ModelZoo::kGpuMemoryMb);
  EXPECT_DOUBLE_EQ(dev.compute_scale(), 1.0);
  EXPECT_FALSE(dev.has_inference());
  EXPECT_TRUE(dev.trainings().empty());
}

TEST(GpuDeviceTest, PlaceAndRemoveInference) {
  GpuDevice dev(0);
  InferenceInstance inf;
  inf.service_index = 2;
  inf.batch_size = 64;
  inf.gpu_fraction = 0.5;
  inf.mem_required_mb = 4000.0;
  dev.PlaceInference(inf);
  EXPECT_TRUE(dev.has_inference());
  EXPECT_EQ(dev.inference().service_index, 2u);
  EXPECT_DOUBLE_EQ(dev.MemoryResidentMb(), 4000.0);
  dev.RemoveInference();
  EXPECT_FALSE(dev.has_inference());
  EXPECT_DOUBLE_EQ(dev.MemoryResidentMb(), 0.0);
}

TEST(GpuDeviceTest, AddFindRemoveTraining) {
  GpuDevice dev(0);
  dev.AddTraining(MakeTraining(7, 1000.0));
  dev.AddTraining(MakeTraining(8, 2000.0));
  EXPECT_EQ(dev.trainings().size(), 2u);
  ASSERT_NE(dev.FindTraining(7), nullptr);
  EXPECT_EQ(dev.FindTraining(99), nullptr);
  TrainingInstance removed = dev.RemoveTraining(7);
  EXPECT_EQ(removed.task_id, 7);
  EXPECT_EQ(dev.trainings().size(), 1u);
  EXPECT_EQ(dev.FindTraining(7), nullptr);
}

TEST(GpuDeviceTest, MemoryAccountingWithSwap) {
  GpuDevice dev(0, 10000.0);
  InferenceInstance inf;
  inf.service_index = 0;
  inf.batch_size = 32;
  inf.gpu_fraction = 0.5;
  inf.mem_required_mb = 6000.0;
  dev.PlaceInference(inf);
  dev.AddTraining(MakeTraining(1, 8000.0));

  EXPECT_DOUBLE_EQ(dev.MemoryRequiredMb(), 14000.0);
  EXPECT_DOUBLE_EQ(dev.MemoryResidentMb(), 14000.0);
  EXPECT_DOUBLE_EQ(dev.MemoryDeficitMb(), 4000.0);

  dev.FindTraining(1)->mem_swapped_mb = 5000.0;
  EXPECT_DOUBLE_EQ(dev.MemoryResidentMb(), 9000.0);
  EXPECT_DOUBLE_EQ(dev.MemoryFreeMb(), 1000.0);
  EXPECT_DOUBLE_EQ(dev.MemoryRequiredMb(), 14000.0);  // unchanged by swap
  EXPECT_LT(dev.MemoryDeficitMb(), 0.0);
}

TEST(GpuDeviceTest, NumActiveExcludesPaused) {
  GpuDevice dev(0);
  dev.AddTraining(MakeTraining(1, 100.0));
  auto paused = MakeTraining(2, 100.0);
  paused.paused = true;
  dev.AddTraining(paused);
  EXPECT_EQ(dev.num_active_trainings(), 1u);
}

TEST(GpuDeviceTest, UtilizationAccumulation) {
  GpuDevice dev(0);
  dev.AccumulateUsage(10.0, 0.4, 0.2);
  dev.AccumulateUsage(30.0, 0.8, 0.6);
  EXPECT_DOUBLE_EQ(dev.AverageSmUtil(), 0.7);
  EXPECT_DOUBLE_EQ(dev.AverageMemUtil(), 0.5);
}

TEST(GpuDeviceTest, InstantMemUtilClamped) {
  GpuDevice dev(0, 1000.0);
  dev.AddTraining(MakeTraining(1, 5000.0));
  EXPECT_DOUBLE_EQ(dev.InstantMemUtil(), 1.0);
}

TEST(GpuDeviceTest, MemoryFootprintHelpers) {
  const auto& service = ModelZoo::InferenceServices()[0];
  double small = InferenceMemoryMb(service, 16);
  double big = InferenceMemoryMb(service, 512);
  EXPECT_GT(big, small);
  EXPECT_GT(small, service.weights_mb);

  const auto& adam_task = ModelZoo::TrainingTaskByName("VGG16");   // Adam: 3x weights
  const auto& sgd_task = ModelZoo::TrainingTaskByName("YOLOv5");   // SGD: 2x weights
  EXPECT_GT(TrainingMemoryMb(adam_task),
            adam_task.weights_mb * 3.0 + adam_task.activation_mb);
  EXPECT_GT(TrainingMemoryMb(sgd_task), sgd_task.activation_mb);
}

TEST(MigTest, InstancesSplitMemoryAndCompute) {
  auto instances = MakeMigInstances(10, 4, 40000.0);
  ASSERT_EQ(instances.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(instances[static_cast<size_t>(i)].id(), 10 + i);
    EXPECT_DOUBLE_EQ(instances[static_cast<size_t>(i)].memory_mb(), 10000.0);
    EXPECT_DOUBLE_EQ(instances[static_cast<size_t>(i)].compute_scale(), 0.25);
  }
}

TEST(MigTest, SingleInstanceIsWholeGpu) {
  auto instances = MakeMigInstances(0, 1);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_DOUBLE_EQ(instances[0].compute_scale(), 1.0);
  EXPECT_DOUBLE_EQ(instances[0].memory_mb(), ModelZoo::kGpuMemoryMb);
}

}  // namespace
}  // namespace mudi
