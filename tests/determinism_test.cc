// End-to-end guard for the invariant mudi_lint protects statically: a
// ClusterExperiment run is a pure function of its seed. Two runs with the
// same options must agree on every recorded metric — not just headline
// aggregates but per-task records and per-service windows — because the
// paper's figures (and PR 2's "empty fault plan leaves results
// byte-identical" guarantee) assume bit-reproducibility.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/env.h"
#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/fault/fault_plan.h"
#include "src/ml/fit_cache.h"
#include "src/perf/perf_collector.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/replay_source.h"

namespace mudi {
namespace {

ExperimentOptions SmallOptions(uint64_t seed) {
  ExperimentOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.num_services = 4;
  options.seed = seed;
  options.trace.num_tasks = 16;
  options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
  options.trace.duration_compression = 8000.0;
  options.trace.seed = seed + 1;
  return options;
}

ExperimentResult RunOnce(const std::string& policy_name, const ExperimentOptions& options) {
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(policy_name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  return experiment.Run();
}

// Exact equality is intentional everywhere below: determinism means the two
// runs executed the same floating-point operations in the same order, so
// results must match to the last bit, not merely within a tolerance.
void ExpectIdenticalResults(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.avg_sm_util, b.avg_sm_util);
  EXPECT_EQ(a.avg_mem_util, b.avg_mem_util);
  EXPECT_EQ(a.swap_events, b.swap_events);
  EXPECT_EQ(a.swap_total_mb, b.swap_total_mb);

  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    const TaskRecord& ta = a.tasks[i];
    const TaskRecord& tb = b.tasks[i];
    EXPECT_EQ(ta.task_id, tb.task_id) << "task " << i;
    EXPECT_EQ(ta.type_index, tb.type_index) << "task " << i;
    EXPECT_EQ(ta.arrival_ms, tb.arrival_ms) << "task " << i;
    EXPECT_EQ(ta.start_ms, tb.start_ms) << "task " << i;
    EXPECT_EQ(ta.completion_ms, tb.completion_ms) << "task " << i;
    EXPECT_EQ(ta.device_id, tb.device_id) << "task " << i;
    EXPECT_EQ(ta.failures, tb.failures) << "task " << i;
    EXPECT_EQ(ta.work_lost_ms, tb.work_lost_ms) << "task " << i;
  }

  ASSERT_EQ(a.per_service.size(), b.per_service.size());
  for (const auto& [name, sa] : a.per_service) {
    auto it = b.per_service.find(name);
    ASSERT_NE(it, b.per_service.end()) << name;
    const ServiceMetrics& sb = it->second;
    EXPECT_EQ(sa.windows_total, sb.windows_total) << name;
    EXPECT_EQ(sa.windows_violated, sb.windows_violated) << name;
    EXPECT_EQ(sa.windows_violated_failure, sb.windows_violated_failure) << name;
    EXPECT_EQ(sa.mean_latency_ms, sb.mean_latency_ms) << name;
    EXPECT_EQ(sa.served_requests, sb.served_requests) << name;
  }

  EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
  EXPECT_EQ(a.faults.device_failures, b.faults.device_failures);
  EXPECT_EQ(a.faults.total_downtime_ms, b.faults.total_downtime_ms);
  EXPECT_EQ(a.faults.work_lost_ms, b.faults.work_lost_ms);
  EXPECT_EQ(a.faults.failed_requests, b.faults.failed_requests);
  EXPECT_EQ(a.faults.rerouted_requests, b.faults.rerouted_requests);
  EXPECT_EQ(a.faults.goodput_rps, b.faults.goodput_rps);

  EXPECT_EQ(a.ctrl.events_injected, b.ctrl.events_injected);
  EXPECT_EQ(a.ctrl.scheduler_crashes, b.ctrl.scheduler_crashes);
  EXPECT_EQ(a.ctrl.scheduler_recoveries, b.ctrl.scheduler_recoveries);
  EXPECT_EQ(a.ctrl.retries, b.ctrl.retries);
  EXPECT_EQ(a.ctrl.stale_reads, b.ctrl.stale_reads);
  EXPECT_EQ(a.ctrl.unavailable_reads, b.ctrl.unavailable_reads);
  EXPECT_EQ(a.ctrl.watch_delivered, b.ctrl.watch_delivered);
  EXPECT_EQ(a.ctrl.watch_dropped, b.ctrl.watch_dropped);
  EXPECT_EQ(a.ctrl.watch_lost_partition, b.ctrl.watch_lost_partition);
  EXPECT_EQ(a.ctrl.configs_published, b.ctrl.configs_published);
  EXPECT_EQ(a.ctrl.configs_applied, b.ctrl.configs_applied);
  EXPECT_EQ(a.ctrl.stale_scan_entries, b.ctrl.stale_scan_entries);
  EXPECT_EQ(a.ctrl.total_recovery_ms, b.ctrl.total_recovery_ms);
}

class SeedDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SeedDeterminismTest, SameSeedSameMetrics) {
  ExperimentOptions options = SmallOptions(/*seed=*/17);
  ExperimentResult a = RunOnce(GetParam(), options);
  ExperimentResult b = RunOnce(GetParam(), options);
  ExpectIdenticalResults(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SeedDeterminismTest,
                         ::testing::Values("Mudi", "GSLICE", "gpulets", "MuxFlow", "Random",
                                           "Optimal"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// The src/perf layer must be observe-only: attaching a PerfCollector may not
// perturb a run in any bit. Same seed, with and without profiling, for every
// system — if a PerfRegion ever drew from an Rng, scheduled an event, or fed
// a measured wall time back into a decision, this would diverge.
class PerfObserveOnlyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PerfObserveOnlyTest, AttachedCollectorLeavesResultsBitIdentical) {
  ExperimentOptions options = SmallOptions(/*seed=*/31);
  ExperimentResult plain = RunOnce(GetParam(), options);

  perf::PerfCollector collector;
  options.perf = &collector;
  ExperimentResult profiled = RunOnce(GetParam(), options);

  ExpectIdenticalResults(plain, profiled);
  // And the collector genuinely observed the run — an accidentally-detached
  // collector would make the identity check vacuous.
  EXPECT_GT(collector.counters().at("sim.events_fired"), 0u);
  EXPECT_GT(collector.counters().at("exp.tasks_total"), 0u);
  EXPECT_EQ(collector.regions().at("exp.run").count(), 1u);
  EXPECT_GT(collector.regions().at("policy.select_device").count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, PerfObserveOnlyTest,
                         ::testing::Values("Mudi", "GSLICE", "gpulets", "MuxFlow", "Random",
                                           "Optimal"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// The src/replay layer inherits the same observe-only contract: attaching a
// DecisionRecorder may not perturb a run in any bit, for every policy. The
// recorder streams every probe observation, feedback read, and decision to
// disk, but never draws from an Rng, schedules an event, or feeds anything
// back — so a recorded run must match an unrecorded same-seed run exactly.
class RecordObserveOnlyTest : public ::testing::TestWithParam<std::string> {};

replay::TraceHeader RecordHeader(const ExperimentOptions& options, const std::string& policy) {
  replay::TraceHeader header;
  header.policy = policy;
  header.seed = options.seed;
  header.oracle_seed = options.oracle_seed;
  header.num_devices = static_cast<uint32_t>(options.num_nodes * options.gpus_per_node);
  header.num_services = static_cast<uint32_t>(options.num_services);
  header.service_offset = static_cast<uint32_t>(options.service_offset);
  return header;
}

TEST_P(RecordObserveOnlyTest, AttachedRecorderLeavesResultsBitIdentical) {
  ExperimentOptions options = SmallOptions(/*seed=*/37);
  ExperimentResult plain = RunOnce(GetParam(), options);

  std::string path = ::testing::TempDir() + "record_" + GetParam() + ".trace";
  auto recorder = replay::DecisionRecorder::Create(path, RecordHeader(options, GetParam()));
  ASSERT_TRUE(recorder.ok()) << recorder.status().message();
  options.recorder = recorder->get();
  ExperimentResult recorded = RunOnce(GetParam(), options);
  ASSERT_TRUE((*recorder)->Close().ok());

  ExpectIdenticalResults(plain, recorded);
  // Non-vacuous: the recorder genuinely captured the run's decision stream.
  EXPECT_GT((*recorder)->decisions_recorded(), 0u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, RecordObserveOnlyTest,
                         ::testing::Values("Mudi", "GSLICE", "gpulets", "MuxFlow", "Random",
                                           "Optimal"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// Fidelity replay: a same-seed run that serves every probe observation and
// interference prediction from a recorded trace (instead of the live oracle
// and modeler) must be bit-identical to the recorded run — raw IEEE-754 bits
// round-trip through the trace file. The hit assertions keep the identity
// non-vacuous: the replayed run must actually consume the trace, and a miss
// would mean it silently recomputed something live.
TEST(RecordReplayFidelityTest, ReplayedRunBitIdenticalToRecordedRun) {
  ExperimentOptions options = SmallOptions(/*seed=*/47);
  std::string path = ::testing::TempDir() + "fidelity_mudi.trace";
  auto recorder = replay::DecisionRecorder::Create(path, RecordHeader(options, "Mudi"));
  ASSERT_TRUE(recorder.ok()) << recorder.status().message();
  options.recorder = recorder->get();
  ExperimentResult live = RunOnce("Mudi", options);
  ASSERT_TRUE((*recorder)->Close().ok());
  options.recorder = nullptr;

  auto source = replay::ReplaySource::Load(path);
  ASSERT_TRUE(source.ok()) << source.status().message();
  options.replay = &*source;
  ExperimentResult replayed = RunOnce("Mudi", options);

  ExpectIdenticalResults(live, replayed);
  EXPECT_GT(source->hits(), 0u) << "replay never consulted the trace; identity is vacuous";
  EXPECT_EQ(source->misses(), 0u) << "a same-seed fidelity replay must hit on every probe";
  std::remove(path.c_str());
}

TEST(SeedDeterminismFaultTest, SameSeedSameMetricsUnderChaos) {
  ExperimentOptions options = SmallOptions(/*seed=*/23);
  options.fault_plan = StandardChaosPlan(/*num_devices=*/4, /*num_nodes=*/2);
  ExperimentResult a = RunOnce("Mudi", options);
  ExperimentResult b = RunOnce("Mudi", options);
  ExpectIdenticalResults(a, b);
  EXPECT_GT(a.faults.faults_injected, 0u);
}

// Combined chaos: device faults AND a degraded control plane in the same run,
// for every policy. This is the hardest reproducibility case — delayed watch
// deliveries, stale reads, retry backoff, and a scheduler crash all draw from
// forked Rng streams while devices fail and recover underneath — and it must
// still replay bit-identically from the seed alone.
class CombinedChaosDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CombinedChaosDeterminismTest, DeviceAndControlChaosReplaysBitIdentically) {
  ExperimentOptions options = SmallOptions(/*seed=*/29);
  options.fault_plan = StandardChaosPlan(/*num_devices=*/4, /*num_nodes=*/2);
  options.ctrl_fault_plan.DegradeWatches(/*delay_ms=*/150.0, /*jitter_ms=*/100.0,
                                         /*drop_prob=*/0.08);
  options.ctrl_fault_plan.StaleReads(/*prob=*/0.15, /*rev_lag=*/4);
  options.ctrl_fault_plan.Partition(12.0 * kMsPerSecond, 4.0 * kMsPerSecond);
  options.ctrl_fault_plan.LoseWatches(18.0 * kMsPerSecond);
  options.ctrl_fault_plan.CrashScheduler(24.0 * kMsPerSecond, 2.0 * kMsPerSecond);

  ExperimentResult a = RunOnce(GetParam(), options);
  ExperimentResult b = RunOnce(GetParam(), options);
  ExpectIdenticalResults(a, b);
  EXPECT_GT(a.faults.faults_injected, 0u);
  EXPECT_GT(a.ctrl.events_injected, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CombinedChaosDeterminismTest,
                         ::testing::Values("Mudi", "GSLICE", "gpulets", "MuxFlow", "Random",
                                           "Optimal"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// Parallel fitting must be invisible in the results. FitPool shards the fit
// workload deterministically and reduces in a fixed order, so the number of
// worker threads may change wall time but never a single output bit. The
// cache is cleared before each run so every thread count actually executes
// the fits rather than replaying the first run's cached models.
TEST(FitThreadDeterminismTest, MudiBitIdenticalAcrossFitThreadCounts) {
  ExperimentOptions options = SmallOptions(/*seed=*/41);

  std::optional<std::string> saved = GetEnv("MUDI_FIT_THREADS");

  ExperimentResult results[3];
  const char* thread_counts[3] = {"1", "2", "8"};
  for (int i = 0; i < 3; ++i) {
    setenv("MUDI_FIT_THREADS", thread_counts[i], /*overwrite=*/1);
    FitCache::Global().Clear();
    results[i] = RunOnce("Mudi", options);
  }

  if (saved.has_value()) {
    setenv("MUDI_FIT_THREADS", saved->c_str(), /*overwrite=*/1);
  } else {
    unsetenv("MUDI_FIT_THREADS");
  }

  ExpectIdenticalResults(results[0], results[1]);
  ExpectIdenticalResults(results[0], results[2]);
}

// The fit cache is a pure memoization: replaying cached models must yield the
// same bits as recomputing them. A cold run (cache cleared) and a warm run
// (cache populated by the cold run) must agree exactly — and the warm run
// must actually hit the cache, or the identity check proves nothing.
TEST(FitCacheDeterminismTest, WarmCacheBitIdenticalToColdRun) {
  ExperimentOptions options = SmallOptions(/*seed=*/43);

  FitCache::Global().Clear();
  ExperimentResult cold = RunOnce("Mudi", options);
  uint64_t hits_before = FitCache::Global().hits();

  ExperimentResult warm = RunOnce("Mudi", options);
  EXPECT_GT(FitCache::Global().hits(), hits_before)
      << "second run never hit the fit cache; warm-path identity is vacuous";

  ExpectIdenticalResults(cold, warm);
}

TEST(SeedDeterminismTestNegative, DifferentSeedsDiverge) {
  ExperimentResult a = RunOnce("Random", SmallOptions(/*seed=*/17));
  ExperimentResult b = RunOnce("Random", SmallOptions(/*seed=*/18));
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  bool any_difference = false;
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].arrival_ms != b.tasks[i].arrival_ms) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference) << "different trace seeds produced identical arrivals";
}

}  // namespace
}  // namespace mudi
