// Tests for the decision-trace record/replay subsystem (src/replay/):
//   * header + binary-framing round-trips are bit-exact for every record
//     kind (doubles stored as raw IEEE-754 bits);
//   * the strict parser rejects truncated, corrupt, and trailing-garbage
//     traces — a partial trace must never replay silently;
//   * ReplaySource serves per-key FIFOs with sticky-last fallback and
//     counts hits/sticky-hits/misses;
//   * an end-to-end recorded run captures decisions, observations, curves,
//     and the run summary, and a counterfactual what-if over that trace
//     reproduces the same policy exactly while a different policy diverges
//     at a decision trace_diff can pinpoint.
//
// This file is allowlisted by mudi-trace-sink: it drives TraceWriter
// directly to build corruption fixtures.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/gpu/perf_oracle.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/decision_trace.h"
#include "src/replay/probe_key.h"
#include "src/replay/replay_run.h"
#include "src/replay/replay_source.h"
#include "src/replay/trace_diff.h"

namespace mudi {
namespace replay {
namespace {

TraceHeader SampleHeader() {
  TraceHeader header;
  header.policy = "Mudi";
  header.mode = "record";
  header.seed = 17;
  header.oracle_seed = 42;
  header.num_devices = 4;
  header.num_services = 4;
  header.service_offset = 0;
  return header;
}

// One trace exercising every record kind, with deliberately awkward doubles
// (exact binary fractions would hide rounding bugs, so mix in values like
// 0.1 that don't round-trip through decimal).
std::string SampleTraceBytes() {
  TraceWriter writer(SampleHeader());

  writer.AppendDeviceTable({{0, 0, 16384.0, 1.0}, {1, 1, 16384.0, 0.9}});

  TraceCurve curve;
  curve.service_index = 1;
  curve.batch = 8;
  curve.training_types = {2, 5};
  curve.k1 = 0.5;
  curve.k2 = 1.25;
  curve.x0 = 0.4;
  curve.y0 = 12.5;
  curve.sample_fractions = {0.1, 0.5, 0.9};
  curve.sample_latencies = {3.0, 9.5, 27.25};
  writer.AppendCurve(curve);

  TracePrediction prediction;
  prediction.seq = 1;
  prediction.service_index = 1;
  prediction.batch = 8;
  prediction.mix = {2, 2, 5};
  prediction.k1 = 0.3;
  prediction.k2 = 2.125;
  prediction.x0 = 0.6;
  prediction.y0 = 14.0;
  writer.AppendPrediction(prediction);

  TraceObservation obs;
  obs.seq = 2;
  obs.sim_ms = 125.5;
  obs.obs_kind = static_cast<uint8_t>(ObsKind::kProbeTraining);
  obs.device_id = 3;
  obs.key = 0xdeadbeefcafeull;
  obs.value = 7.1;
  writer.AppendObservation(obs);

  TraceQpsFeedback feedback;
  feedback.seq = 3;
  feedback.sim_ms = 126.0;
  feedback.device_id = 2;
  feedback.is_p99 = 1;
  feedback.value = 41.5;
  writer.AppendQpsFeedback(feedback);

  TraceDecision decision;
  decision.seq = 4;
  decision.sim_ms = 130.0;
  decision.hook = static_cast<uint8_t>(HookKind::kSelectDevice);
  decision.device_id = -1;
  decision.task_id = 9;
  decision.type_index = 2;
  decision.chosen_device = 1;
  decision.wall_us = 42.7;
  decision.displaced = {{7, 3}};
  decision.actions = {{static_cast<uint8_t>(ActionKind::kApplyInferenceConfig), 1, 8, 0.625}};
  decision.candidates = {{0, 1.5}, {1, 0.75}};
  SnapshotDevice dev;
  dev.device_id = 0;
  dev.healthy = 1;
  dev.slowdown = 1.1;
  dev.has_inference = 1;
  dev.service_index = 0;
  dev.inf_batch = 4;
  dev.inf_fraction = 0.5;
  dev.inf_mem_mb = 2048.0;
  SnapshotTraining training;
  training.task_id = 9;
  training.type_index = 2;
  training.gpu_fraction = 0.25;
  training.mem_required_mb = 4096.0;
  training.mem_swapped_mb = 512.0;
  training.paused = 1;
  dev.trainings = {training};
  decision.snapshot = {dev};
  writer.AppendDecision(decision);

  TraceRunSummary summary;
  summary.makespan_ms = 1000.25;
  summary.tasks_completed = 16;
  TraceServiceSummary svc;
  svc.service = "svc0";
  svc.windows_total = 10;
  svc.windows_violated = 2;
  svc.windows_violated_failure = 1;
  svc.served_requests = 1234.0;
  svc.mean_latency_ms = 3.3;
  summary.services = {svc};
  writer.AppendRunSummary(summary);

  writer.Finish();
  return writer.TakeBuffer();
}

// ---------------------------------------------------------------------------
// Header round-trip + validation
// ---------------------------------------------------------------------------

TEST(TraceHeaderTest, EncodeDecodeRoundTrip) {
  TraceHeader header = SampleHeader();
  header.mode = "counterfactual";
  header.base_policy = "GSLICE";
  // Seeds cross the JSON header as numbers, so exact round-trip holds for
  // values below 2^53 (IEEE double mantissa) — far beyond any CLI seed.
  header.seed = 0x1feedface5ull;
  StatusOr<TraceHeader> decoded = DecodeTraceHeader(EncodeTraceHeader(header));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->schema, kDecisionTraceSchema);
  EXPECT_EQ(decoded->policy, header.policy);
  EXPECT_EQ(decoded->mode, header.mode);
  EXPECT_EQ(decoded->base_policy, header.base_policy);
  EXPECT_EQ(decoded->seed, header.seed);
  EXPECT_EQ(decoded->oracle_seed, header.oracle_seed);
  EXPECT_EQ(decoded->num_devices, header.num_devices);
  EXPECT_EQ(decoded->num_services, header.num_services);
  EXPECT_EQ(decoded->service_offset, header.service_offset);
}

TEST(TraceHeaderTest, RejectsWrongSchemaAndMode) {
  EXPECT_FALSE(DecodeTraceHeader("not json at all").ok());
  EXPECT_FALSE(DecodeTraceHeader("{\"schema\":\"mudi.perf.v1\"}").ok());
  std::string bad_mode = EncodeTraceHeader(SampleHeader());
  size_t pos = bad_mode.find("\"record\"");
  ASSERT_NE(pos, std::string::npos);
  bad_mode.replace(pos, 8, "\"dreams\"");
  EXPECT_FALSE(DecodeTraceHeader(bad_mode).ok());
}

// ---------------------------------------------------------------------------
// Binary framing round-trip
// ---------------------------------------------------------------------------

TEST(TraceRoundTripTest, EveryRecordKindSurvivesBitExactly) {
  StatusOr<DecisionTrace> parsed = ParseDecisionTrace(SampleTraceBytes(), "mem");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const DecisionTrace& t = *parsed;

  EXPECT_EQ(t.header.policy, "Mudi");
  EXPECT_EQ(t.header.seed, 17u);

  ASSERT_EQ(t.device_table.size(), 2u);
  EXPECT_EQ(t.device_table[1].device_id, 1);
  EXPECT_EQ(t.device_table[1].service_index, 1u);
  EXPECT_EQ(t.device_table[1].compute_scale, 0.9);

  ASSERT_EQ(t.curves.size(), 1u);
  EXPECT_EQ(t.curves[0].training_types, (std::vector<uint32_t>{2, 5}));
  EXPECT_EQ(t.curves[0].k2, 1.25);
  EXPECT_EQ(t.curves[0].sample_fractions, (std::vector<double>{0.1, 0.5, 0.9}));

  ASSERT_EQ(t.predictions.size(), 1u);
  EXPECT_EQ(t.predictions[0].mix, (std::vector<uint32_t>{2, 2, 5}));
  EXPECT_EQ(t.predictions[0].k2, 2.125);

  ASSERT_EQ(t.observations.size(), 1u);
  EXPECT_EQ(t.observations[0].key, 0xdeadbeefcafeull);
  EXPECT_EQ(t.observations[0].value, 7.1);  // raw-bits storage: exact
  EXPECT_EQ(t.observations[0].obs_kind, static_cast<uint8_t>(ObsKind::kProbeTraining));

  ASSERT_EQ(t.qps_feedback.size(), 1u);
  EXPECT_EQ(t.qps_feedback[0].is_p99, 1u);
  EXPECT_EQ(t.qps_feedback[0].value, 41.5);

  ASSERT_EQ(t.decisions.size(), 1u);
  const TraceDecision& d = t.decisions[0];
  EXPECT_EQ(d.seq, 4u);
  EXPECT_EQ(d.hook, static_cast<uint8_t>(HookKind::kSelectDevice));
  EXPECT_EQ(d.task_id, 9);
  EXPECT_EQ(d.chosen_device, 1);
  EXPECT_EQ(d.wall_us, 42.7);
  EXPECT_EQ(d.displaced, (std::vector<std::pair<int32_t, uint32_t>>{{7, 3}}));
  ASSERT_EQ(d.actions.size(), 1u);
  EXPECT_EQ(d.actions[0].value, 0.625);
  ASSERT_EQ(d.candidates.size(), 2u);
  EXPECT_EQ(d.candidates[1].score, 0.75);
  ASSERT_EQ(d.snapshot.size(), 1u);
  EXPECT_EQ(d.snapshot[0].slowdown, 1.1);
  ASSERT_EQ(d.snapshot[0].trainings.size(), 1u);
  EXPECT_EQ(d.snapshot[0].trainings[0].mem_swapped_mb, 512.0);
  EXPECT_EQ(d.snapshot[0].trainings[0].paused, 1u);

  ASSERT_TRUE(t.summary.has_value());
  EXPECT_EQ(t.summary->makespan_ms, 1000.25);
  EXPECT_EQ(t.summary->tasks_completed, 16u);
  ASSERT_EQ(t.summary->services.size(), 1u);
  EXPECT_EQ(t.summary->services[0].service, "svc0");
  EXPECT_EQ(t.summary->services[0].windows_violated, 2u);

  std::string digest = SummarizeDecisionTrace(t);
  EXPECT_NE(digest.find(kDecisionTraceSchema), std::string::npos);
  EXPECT_NE(digest.find("select_device"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Corruption rejection (strict parser)
// ---------------------------------------------------------------------------

TEST(TraceCorruptionTest, RejectsTruncatedTail) {
  std::string bytes = SampleTraceBytes();
  EXPECT_FALSE(ParseDecisionTrace(bytes.substr(0, bytes.size() - 5), "mem").ok());
}

TEST(TraceCorruptionTest, RejectsMissingEndTrailer) {
  std::string bytes = SampleTraceBytes();
  // The kEnd trailer is the last 13 bytes: [u32 8][u8 kind][u64 count].
  EXPECT_FALSE(ParseDecisionTrace(bytes.substr(0, bytes.size() - 13), "mem").ok());
}

TEST(TraceCorruptionTest, RejectsInconsistentRecordCount) {
  std::string bytes = SampleTraceBytes();
  bytes[bytes.size() - 8] = static_cast<char>(bytes[bytes.size() - 8] + 1);
  EXPECT_FALSE(ParseDecisionTrace(bytes, "mem").ok());
}

TEST(TraceCorruptionTest, RejectsUnknownRecordKind) {
  std::string bytes = SampleTraceBytes();
  size_t first_record = bytes.find('\n') + 1;
  ASSERT_LT(first_record + 4, bytes.size());
  bytes[first_record + 4] = 0x6f;  // not a RecordKind
  EXPECT_FALSE(ParseDecisionTrace(bytes, "mem").ok());
}

TEST(TraceCorruptionTest, RejectsPayloadLengthMismatch) {
  std::string bytes = SampleTraceBytes();
  size_t first_record = bytes.find('\n') + 1;
  bytes[first_record] = static_cast<char>(bytes[first_record] + 1);  // length low byte
  EXPECT_FALSE(ParseDecisionTrace(bytes, "mem").ok());
}

TEST(TraceCorruptionTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseDecisionTrace(SampleTraceBytes() + "xx", "mem").ok());
}

TEST(TraceCorruptionTest, RejectsHeaderOnlyAndEmptyInput) {
  EXPECT_FALSE(ParseDecisionTrace("", "mem").ok());
  EXPECT_FALSE(ParseDecisionTrace("{\"schema\":\"bogus\"}\n", "mem").ok());
}

// ---------------------------------------------------------------------------
// ReplaySource lookup semantics
// ---------------------------------------------------------------------------

TEST(ReplaySourceTest, FifoThenStickyThenMiss) {
  TraceWriter writer(SampleHeader());
  const uint64_t key = 0xabcdu;
  TraceObservation obs;
  obs.obs_kind = static_cast<uint8_t>(ObsKind::kProbeInference);
  obs.key = key;
  obs.value = 1.5;
  writer.AppendObservation(obs);
  obs.value = 2.5;
  writer.AppendObservation(obs);
  writer.Finish();
  StatusOr<DecisionTrace> trace = ParseDecisionTrace(writer.TakeBuffer(), "mem");
  ASSERT_TRUE(trace.ok()) << trace.status().message();

  ReplaySource source(std::move(*trace));
  EXPECT_EQ(source.TakeObservation(key), std::optional<double>(1.5));
  EXPECT_EQ(source.TakeObservation(key), std::optional<double>(2.5));
  // FIFO exhausted: the last value is served sticky.
  EXPECT_EQ(source.TakeObservation(key), std::optional<double>(2.5));
  EXPECT_EQ(source.hits(), 2u);
  EXPECT_EQ(source.sticky_hits(), 1u);
  EXPECT_EQ(source.TakeObservation(key + 1), std::nullopt);
  EXPECT_EQ(source.misses(), 1u);
}

TEST(ReplaySourceTest, PredictionsKeyedByServiceBatchMix) {
  TraceWriter writer(SampleHeader());
  TracePrediction prediction;
  prediction.service_index = 2;
  prediction.batch = 16;
  prediction.mix = {1, 4};
  prediction.k1 = 0.25;
  writer.AppendPrediction(prediction);
  prediction.k1 = 0.75;  // same key recurs after an online curve refresh
  writer.AppendPrediction(prediction);
  writer.Finish();
  StatusOr<DecisionTrace> trace = ParseDecisionTrace(writer.TakeBuffer(), "mem");
  ASSERT_TRUE(trace.ok()) << trace.status().message();

  ReplaySource source(std::move(*trace));
  std::optional<PredictedModel> first = source.TakePrediction(2, 16, {1, 4});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->k1, 0.25);
  std::optional<PredictedModel> second = source.TakePrediction(2, 16, {1, 4});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->k1, 0.75);
  EXPECT_FALSE(source.TakePrediction(2, 16, {1, 5}).has_value());
}

// ---------------------------------------------------------------------------
// trace_diff semantics (synthetic streams)
// ---------------------------------------------------------------------------

DecisionTrace SyntheticTrace() {
  DecisionTrace trace;
  trace.header = SampleHeader();
  for (uint64_t i = 0; i < 3; ++i) {
    TraceDecision d;
    d.seq = i;
    d.hook = static_cast<uint8_t>(i == 0 ? HookKind::kInitialize : HookKind::kSelectDevice);
    d.task_id = static_cast<int32_t>(i);
    d.chosen_device = static_cast<int32_t>(i % 2);
    d.wall_us = 10.0 * static_cast<double>(i + 1);
    trace.decisions.push_back(d);
  }
  return trace;
}

TEST(TraceDiffTest, IdenticalTracesReportNoDivergence) {
  DecisionTrace a = SyntheticTrace();
  TraceDiffResult diff = DiffTraces(a, a);
  EXPECT_FALSE(diff.first_divergence.has_value());
  EXPECT_EQ(diff.diverged_positions, 0u);
}

TEST(TraceDiffTest, ChoiceDivergenceIsPinpointed) {
  DecisionTrace a = SyntheticTrace();
  DecisionTrace b = SyntheticTrace();
  b.decisions[2].chosen_device = 3;
  TraceDiffResult diff = DiffTraces(a, b);
  ASSERT_TRUE(diff.first_divergence.has_value());
  EXPECT_EQ(diff.first_divergence->index, 2u);
  EXPECT_EQ(diff.first_divergence->kind, "choice");
  EXPECT_EQ(diff.diverged_positions, 1u);
}

TEST(TraceDiffTest, StructuralAndActionDivergenceClasses) {
  DecisionTrace a = SyntheticTrace();
  DecisionTrace b = SyntheticTrace();
  b.decisions[1].hook = static_cast<uint8_t>(HookKind::kOnQpsChange);
  TraceDiffResult structural = DiffTraces(a, b);
  ASSERT_TRUE(structural.first_divergence.has_value());
  EXPECT_EQ(structural.first_divergence->kind, "structural");

  // Same action count but a different actuation: the detail names both.
  DecisionTrace c = SyntheticTrace();
  DecisionTrace e = SyntheticTrace();
  c.decisions[1].actions = {{static_cast<uint8_t>(ActionKind::kApplyTrainingFraction), 0, 1, 0.5}};
  e.decisions[1].actions = {{static_cast<uint8_t>(ActionKind::kSetTrainingPaused), 0, 1, 1.0}};
  TraceDiffResult actions = DiffTraces(c, e);
  ASSERT_TRUE(actions.first_divergence.has_value());
  EXPECT_EQ(actions.first_divergence->kind, "actions");
  EXPECT_NE(FormatTraceDiff(actions).find("set_training_paused"), std::string::npos);

  // Mismatched action counts fall back to the count-only detail.
  TraceDiffResult counts = DiffTraces(a, e);
  ASSERT_TRUE(counts.first_divergence.has_value());
  EXPECT_EQ(counts.first_divergence->kind, "actions");
  EXPECT_NE(counts.first_divergence->detail.find("0 action(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: record a run, then counterfactual-replay it
// ---------------------------------------------------------------------------

ExperimentOptions SmallOptions(uint64_t seed) {
  ExperimentOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.num_services = 4;
  options.seed = seed;
  options.trace.num_tasks = 16;
  options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
  options.trace.duration_compression = 8000.0;
  options.trace.seed = seed + 1;
  return options;
}

TraceHeader HeaderFor(const ExperimentOptions& options, const std::string& policy) {
  TraceHeader header;
  header.policy = policy;
  header.seed = options.seed;
  header.oracle_seed = options.oracle_seed;
  header.num_devices = static_cast<uint32_t>(options.num_nodes * options.gpus_per_node);
  header.num_services = static_cast<uint32_t>(options.num_services);
  header.service_offset = static_cast<uint32_t>(options.service_offset);
  return header;
}

// Runs `policy` once with a recorder attached and returns the trace path.
std::string RecordRun(const std::string& policy_name, const ExperimentOptions& base_options,
                      const std::string& file_name) {
  std::string path = ::testing::TempDir() + file_name;
  auto recorder_or =
      DecisionRecorder::Create(path, HeaderFor(base_options, policy_name));
  EXPECT_TRUE(recorder_or.ok()) << recorder_or.status().message();
  ExperimentOptions options = base_options;
  options.recorder = recorder_or->get();
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(policy_name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  (void)experiment.Run();
  Status finish = (*recorder_or)->Close();
  EXPECT_TRUE(finish.ok()) << finish.message();
  EXPECT_GT((*recorder_or)->decisions_recorded(), 0u);
  return path;
}

TEST(ReplayEndToEndTest, RecordedTraceCapturesTheRun) {
  ExperimentOptions options = SmallOptions(/*seed=*/61);
  std::string path = RecordRun("Mudi", options, "e2e_record.trace");
  StatusOr<DecisionTrace> trace = ReadDecisionTrace(path);
  ASSERT_TRUE(trace.ok()) << trace.status().message();
  EXPECT_EQ(trace->header.policy, "Mudi");
  EXPECT_EQ(trace->device_table.size(), 4u);
  EXPECT_FALSE(trace->curves.empty()) << "Mudi's Initialize profiles latency curves";
  EXPECT_FALSE(trace->observations.empty()) << "Mudi probes during SelectDevice";
  EXPECT_FALSE(trace->decisions.empty());
  ASSERT_TRUE(trace->summary.has_value());
  EXPECT_GT(trace->summary->tasks_completed, 0u);
  std::remove(path.c_str());
}

TEST(ReplayEndToEndTest, SamePolicyWhatIfReproducesEveryDecision) {
  ExperimentOptions options = SmallOptions(/*seed=*/67);
  std::string path = RecordRun("Mudi", options, "e2e_whatif_same.trace");
  StatusOr<ReplaySource> source = ReplaySource::Load(path);
  ASSERT_TRUE(source.ok()) << source.status().message();

  PerfOracle profiling_oracle(source->trace().header.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  StatusOr<WhatIfResult> result = RunWhatIf(*source, *policy);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->decisions_replayed, source->trace().decisions.size());
  EXPECT_FALSE(result->diverged) << result->first_divergence_detail;
  EXPECT_EQ(result->diverged_decisions, 0u);
  // Non-vacuous: the what-if genuinely consulted the recorded observations.
  EXPECT_GT(result->probe_hits, 0u);
  std::remove(path.c_str());
}

TEST(ReplayEndToEndTest, DifferentPolicyDivergesAndTraceDiffPinpointsIt) {
  ExperimentOptions options = SmallOptions(/*seed=*/71);
  std::string recorded_path = RecordRun("Mudi", options, "e2e_whatif_diff.trace");
  StatusOr<ReplaySource> source = ReplaySource::Load(recorded_path);
  ASSERT_TRUE(source.ok()) << source.status().message();

  // What-if: replay the Mudi trace through the device-only ablation, writing
  // its own counterfactual trace for trace_diff.
  TraceHeader whatif_header = source->trace().header;
  whatif_header.policy = "Mudi-device-only";
  whatif_header.mode = "counterfactual";
  whatif_header.base_policy = source->trace().header.policy;
  std::string whatif_path = ::testing::TempDir() + "e2e_whatif_diff.counterfactual.trace";
  auto whatif_recorder = DecisionRecorder::Create(whatif_path, whatif_header);
  ASSERT_TRUE(whatif_recorder.ok()) << whatif_recorder.status().message();

  PerfOracle profiling_oracle(source->trace().header.oracle_seed);
  auto policy = MakePolicy("Mudi-device-only", profiling_oracle);
  WhatIfOptions whatif_options;
  whatif_options.recorder = whatif_recorder->get();
  StatusOr<WhatIfResult> result = RunWhatIf(*source, *policy, whatif_options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_TRUE((*whatif_recorder)->Close().ok());
  ASSERT_TRUE(result->diverged)
      << "device-only ablation unexpectedly reproduced every cluster-level choice";

  StatusOr<DecisionTrace> recorded = ReadDecisionTrace(recorded_path);
  ASSERT_TRUE(recorded.ok()) << recorded.status().message();
  StatusOr<DecisionTrace> counterfactual = ReadDecisionTrace(whatif_path);
  ASSERT_TRUE(counterfactual.ok()) << counterfactual.status().message();
  EXPECT_EQ(counterfactual->header.mode, "counterfactual");
  EXPECT_FALSE(counterfactual->summary.has_value())
      << "counterfactual traces carry no run summary (no data plane simulated)";

  TraceDiffResult diff = DiffTraces(*recorded, *counterfactual);
  ASSERT_TRUE(diff.first_divergence.has_value());
  EXPECT_EQ(diff.first_divergence->seq_a, result->first_divergence_seq);
  std::string report = FormatTraceDiff(diff);
  EXPECT_NE(report.find("FIRST DIVERGENCE"), std::string::npos);
  std::remove(recorded_path.c_str());
  std::remove(whatif_path.c_str());
}

}  // namespace
}  // namespace replay
}  // namespace mudi
