#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"

namespace mudi {
namespace {

// Small, fast experiment configuration shared by the integration tests:
// 2 nodes × 2 GPUs, constant 200-QPS replicas, a dozen short tasks.
ExperimentOptions TinyOptions(size_t num_tasks = 12, uint64_t seed = 3) {
  ExperimentOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.num_services = 4;
  options.seed = seed;
  options.trace.num_tasks = num_tasks;
  options.trace.mean_interarrival_ms = 2.0 * kMsPerSecond;
  options.trace.duration_compression = 8000.0;  // tasks finish in seconds
  options.trace.seed = seed + 1;
  return options;
}

ExperimentResult RunPolicy(const std::string& name, const ExperimentOptions& options) {
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy(name, profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  return experiment.Run();
}

// Parameterized over every end-to-end system.
class SystemIntegrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SystemIntegrationTest, CompletesAllTasks) {
  ExperimentResult result = RunPolicy(GetParam(), TinyOptions());
  EXPECT_EQ(result.CompletedTasks(), 12u) << GetParam();
  EXPECT_GT(result.makespan_ms, 0.0);
}

TEST_P(SystemIntegrationTest, MetricsWithinPhysicalBounds) {
  ExperimentResult result = RunPolicy(GetParam(), TinyOptions());
  EXPECT_GE(result.avg_sm_util, 0.0);
  EXPECT_LE(result.avg_sm_util, 1.0);
  EXPECT_GE(result.avg_mem_util, 0.0);
  EXPECT_LE(result.avg_mem_util, 1.0);
  EXPECT_GE(result.OverallSloViolationRate(), 0.0);
  EXPECT_LE(result.OverallSloViolationRate(), 1.0);
  for (const auto& task : result.tasks) {
    if (task.completed()) {
      EXPECT_GE(task.waiting_ms(), 0.0);
      EXPECT_GT(task.ct_ms(), 0.0);
      EXPECT_GE(task.ct_ms(), task.waiting_ms());
    }
  }
}

TEST_P(SystemIntegrationTest, DeterministicGivenSeed) {
  ExperimentResult a = RunPolicy(GetParam(), TinyOptions());
  ExperimentResult b = RunPolicy(GetParam(), TinyOptions());
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_DOUBLE_EQ(a.MeanCtMs(), b.MeanCtMs());
  EXPECT_DOUBLE_EQ(a.OverallSloViolationRate(), b.OverallSloViolationRate());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemIntegrationTest,
                         ::testing::Values("Mudi", "GSLICE", "gpulets", "MuxFlow", "Random",
                                           "Optimal"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Behavioural expectations
// ---------------------------------------------------------------------------

TEST(ExperimentBehaviourTest, MudiHoldsSlosOnTinyCluster) {
  ExperimentResult result = RunPolicy("Mudi", TinyOptions(16, 5));
  EXPECT_LT(result.OverallSloViolationRate(), 0.05);
}

TEST(ExperimentBehaviourTest, MudiBeatsRandomOnTrainingEfficiency) {
  ExperimentOptions options = TinyOptions(20, 7);
  ExperimentResult mudi = RunPolicy("Mudi", options);
  ExperimentResult random = RunPolicy("Random", options);
  // Random's even split starves either side; Mudi should not be much worse
  // on CT and should hold SLOs at least as well.
  EXPECT_LE(mudi.OverallSloViolationRate(), random.OverallSloViolationRate() + 0.02);
}

TEST(ExperimentBehaviourTest, UtilSeriesRecordedWhenEnabled) {
  ExperimentOptions options = TinyOptions(6, 9);
  options.record_util_series = true;
  ExperimentResult result = RunPolicy("GSLICE", options);
  EXPECT_FALSE(result.util_series.empty());
  for (const auto& sample : result.util_series) {
    EXPECT_GE(sample.sm_util, 0.0);
    EXPECT_LE(sample.sm_util, 1.0);
  }
}

TEST(ExperimentBehaviourTest, DeviceSeriesTracesConfiguredDevice) {
  ExperimentOptions options = TinyOptions(6, 9);
  options.trace_device_id = 0;
  ExperimentResult result = RunPolicy("Mudi", options);
  EXPECT_FALSE(result.device_series.empty());
  for (const auto& sample : result.device_series) {
    EXPECT_GT(sample.batch, 0);
    EXPECT_GT(sample.inference_fraction, 0.0);
  }
}

TEST(ExperimentBehaviourTest, HorizonStopsEarly) {
  ExperimentOptions options = TinyOptions(100, 11);
  options.horizon_ms = 10.0 * kMsPerSecond;
  ExperimentResult result = RunPolicy("GSLICE", options);
  EXPECT_LT(result.CompletedTasks(), 100u);
}

TEST(ExperimentBehaviourTest, QueuePoliciesAllRun) {
  for (QueuePolicy policy : {QueuePolicy::kFcfs, QueuePolicy::kShortestJobFirst,
                             QueuePolicy::kPriority, QueuePolicy::kFairShare}) {
    ExperimentOptions options = TinyOptions(10, 13);
    options.queue_policy = policy;
    ExperimentResult result = RunPolicy("Mudi", options);
    EXPECT_EQ(result.CompletedTasks(), 10u) << QueuePolicyName(policy);
  }
}

TEST(ExperimentBehaviourTest, HigherLoadRaisesViolationsForBaselines) {
  ExperimentOptions base = TinyOptions(10, 15);
  ExperimentOptions heavy = TinyOptions(10, 15);
  // Constant-QPS default comes from the experiment; scale via factory.
  heavy.qps_factory = [](size_t, int) -> std::shared_ptr<const QpsProfile> {
    return std::make_shared<ConstantQps>(200.0 * 3.0);
  };
  ExperimentResult normal = RunPolicy("gpulets", base);
  ExperimentResult stressed = RunPolicy("gpulets", heavy);
  EXPECT_GE(stressed.OverallSloViolationRate(), normal.OverallSloViolationRate());
}

TEST(ExperimentBehaviourTest, MudiMorePacksMultipleTrainings) {
  ExperimentOptions options = TinyOptions(12, 17);
  // Burst of simultaneous arrivals so co-location pressure exists.
  options.trace.mean_interarrival_ms = 100.0;
  ExperimentResult more = RunPolicy("Mudi-more", options);
  EXPECT_EQ(more.CompletedTasks(), 12u);
  // With 4 devices and 12 near-simultaneous tasks, Mudi-more should wait
  // less than plain Mudi (which queues beyond 4 concurrent tasks).
  ExperimentResult plain = RunPolicy("Mudi", options);
  EXPECT_LE(more.MeanWaitingMs(), plain.MeanWaitingMs() + 1.0);
}

TEST(ExperimentBehaviourTest, AblationVariantsRun) {
  for (const char* name : {"Mudi-cluster-only", "Mudi-device-only"}) {
    ExperimentResult result = RunPolicy(name, TinyOptions(8, 19));
    EXPECT_EQ(result.CompletedTasks(), 8u) << name;
    EXPECT_EQ(result.policy_name, name);
  }
}

TEST(ExperimentBehaviourTest, OverheadsRecorded) {
  ExperimentResult result = RunPolicy("Mudi", TinyOptions(8, 21));
  EXPECT_FALSE(result.placement_overheads_ms.empty());
  EXPECT_FALSE(result.tuning_iterations.empty());
  for (size_t iters : result.tuning_iterations) {
    EXPECT_LE(iters, 25u);  // §7.5: tuning converges within 25 iterations
  }
}

TEST(ExperimentBehaviourTest, SwapAccountingPresentForMudi) {
  ExperimentOptions options = TinyOptions(10, 23);
  ExperimentResult result = RunPolicy("Mudi", options);
  // Swap fractions exist per hosted service (values may be zero).
  EXPECT_EQ(result.swap_time_fraction.size(), 4u);
  for (const auto& [name, frac] : result.swap_time_fraction) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
  }
}

TEST(ExperimentBehaviourTest, ScaleQpsMultipliesFactory) {
  ExperimentOptions options = PhysicalClusterOptions(1);
  auto before = options.qps_factory(0, 0)->QpsAt(0.0);
  ScaleQps(options, 2.0);
  auto after = options.qps_factory(0, 0)->QpsAt(0.0);
  EXPECT_DOUBLE_EQ(after, 2.0 * before);
}

}  // namespace
}  // namespace mudi
