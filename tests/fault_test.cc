// Fault-injection subsystem tests: plan validation, injector edge semantics,
// and end-to-end failure recovery through ClusterExperiment.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/exp/cluster_experiment.h"
#include "src/exp/presets.h"
#include "src/fault/control_fault_injector.h"
#include "src/fault/control_fault_plan.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulator.h"

namespace mudi {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, BuildersProduceExpectedSpecs) {
  FaultPlan plan;
  plan.FailDevice(2, 100.0, 50.0)
      .FailDevicePermanently(3, 200.0)
      .FailNode(1, 300.0, 40.0)
      .AddStraggler(0, 150.0, 60.0, 2.0)
      .LoseFeedback(1, 180.0, 30.0);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kTransientDeviceFailure);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kPermanentDeviceFailure);
  EXPECT_LE(plan.faults[1].duration_ms, 0.0);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kNodeFailure);
  EXPECT_EQ(plan.faults[2].node_id, 1);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(plan.faults[3].severity, 2.0);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kMonitorFeedbackLoss);
  EXPECT_TRUE(plan.Validate(4, 2).ok());
}

TEST(FaultPlanTest, ValidateRejectsBadSpecs) {
  {
    FaultPlan plan;
    plan.FailDevice(9, 10.0, 5.0);  // device out of range
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
  {
    FaultPlan plan;
    plan.FailNode(5, 10.0, 5.0);  // node out of range
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
  {
    FaultPlan plan;
    plan.FailDevice(0, -1.0, 5.0);  // negative timestamp
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
  {
    FaultPlan plan;
    plan.AddStraggler(0, 10.0, 5.0, 0.5);  // severity < 1
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
  {
    FaultPlan plan;
    plan.AddStraggler(0, 10.0, 0.0, 2.0);  // episode needs a duration
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
  {
    FaultPlan plan;
    plan.LoseFeedback(0, 10.0, -5.0);  // episode needs a duration
    EXPECT_FALSE(plan.Validate(4, 2).ok());
  }
}

TEST(FaultPlanTest, StandardChaosPlanValidatesForCommonShapes) {
  EXPECT_TRUE(StandardChaosPlan(12, 3).Validate(12, 3).ok());
  EXPECT_TRUE(StandardChaosPlan(4, 2).Validate(4, 2).ok());
  EXPECT_TRUE(StandardChaosPlan(1000, 250).Validate(1000, 250).ok());
  EXPECT_TRUE(StandardChaosPlan(1, 1).Validate(1, 1).ok());
  EXPECT_FALSE(StandardChaosPlan(12, 3).empty());
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

struct SinkEvent {
  std::string what;
  int device_id;
  double value;  // factor for stragglers, permanent flag for down
  TimeMs at;
};

class RecordingSink : public FaultSink {
 public:
  void OnDeviceDown(int device_id, bool permanent, TimeMs now) override {
    events.push_back({"down", device_id, permanent ? 1.0 : 0.0, now});
  }
  void OnDeviceUp(int device_id, TimeMs now) override {
    events.push_back({"up", device_id, 0.0, now});
  }
  void OnStragglerFactor(int device_id, double factor, TimeMs now) override {
    events.push_back({"straggler", device_id, factor, now});
  }
  void OnFeedbackLost(int device_id, TimeMs now) override {
    events.push_back({"feedback_lost", device_id, 0.0, now});
  }
  void OnFeedbackRestored(int device_id, TimeMs now) override {
    events.push_back({"feedback_restored", device_id, 0.0, now});
  }

  std::vector<SinkEvent> events;
};

TEST(FaultInjectorTest, EmptyPlanSchedulesNothing) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 4, 2);
  EXPECT_TRUE(injector.Arm(FaultPlan{}).ok());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultInjectorTest, ArmRejectsInvalidAndPastFaults) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 4, 2);
  FaultPlan bad;
  bad.FailDevice(99, 10.0, 5.0);
  EXPECT_FALSE(injector.Arm(bad).ok());

  sim.RunUntil(100.0);
  FaultPlan past;
  past.FailDevice(0, 50.0, 5.0);  // already in the past
  EXPECT_FALSE(injector.Arm(past).ok());
}

TEST(FaultInjectorTest, OverlappingFailuresCollapseToOneEdgePair) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 2, 1);  // one node of two devices
  FaultPlan plan;
  plan.FailDevice(0, 10.0, 50.0);   // device 0 down 10..60
  plan.FailNode(0, 30.0, 100.0);    // both devices down 30..130
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntilIdle();

  // Device 0: one down edge at 10, one up edge at 130 (not at 60).
  std::vector<SinkEvent> d0;
  for (const auto& e : sink.events) {
    if (e.device_id == 0 && (e.what == "down" || e.what == "up")) {
      d0.push_back(e);
    }
  }
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[0].what, "down");
  EXPECT_DOUBLE_EQ(d0[0].at, 10.0);
  EXPECT_EQ(d0[1].what, "up");
  EXPECT_DOUBLE_EQ(d0[1].at, 130.0);
  // Device 1 rides only the node fault: 30..130.
  std::vector<SinkEvent> d1;
  for (const auto& e : sink.events) {
    if (e.device_id == 1 && (e.what == "down" || e.what == "up")) {
      d1.push_back(e);
    }
  }
  ASSERT_EQ(d1.size(), 2u);
  EXPECT_DOUBLE_EQ(d1[0].at, 30.0);
  EXPECT_DOUBLE_EQ(d1[1].at, 130.0);

  EXPECT_DOUBLE_EQ(injector.TotalDowntimeMs(130.0), 120.0 + 100.0);
}

TEST(FaultInjectorTest, PermanentFailurePinsDeviceDown) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 2, 1);
  FaultPlan plan;
  plan.FailDevice(0, 10.0, 20.0);        // transient 10..30
  plan.FailDevicePermanently(0, 15.0);   // permanent from 15
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntilIdle();

  EXPECT_TRUE(injector.device_down(0));
  EXPECT_TRUE(injector.device_permanently_down(0));
  // No "up" event was ever delivered for device 0.
  for (const auto& e : sink.events) {
    EXPECT_NE(e.what, "up");
  }
  EXPECT_DOUBLE_EQ(injector.TotalDowntimeMs(100.0), 90.0);
}

TEST(FaultInjectorTest, ConcurrentStragglersMultiply) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 1, 1);
  FaultPlan plan;
  plan.AddStraggler(0, 10.0, 40.0, 2.0);  // 10..50
  plan.AddStraggler(0, 20.0, 10.0, 3.0);  // 20..30
  ASSERT_TRUE(injector.Arm(plan).ok());

  sim.RunUntil(25.0);
  EXPECT_DOUBLE_EQ(injector.straggler_factor(0), 6.0);
  sim.RunUntil(35.0);
  EXPECT_DOUBLE_EQ(injector.straggler_factor(0), 2.0);
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(injector.straggler_factor(0), 1.0);

  // The sink saw the effective factor at every change: 2, 6, 2, 1.
  std::vector<double> factors;
  for (const auto& e : sink.events) {
    if (e.what == "straggler") {
      factors.push_back(e.value);
    }
  }
  EXPECT_EQ(factors, (std::vector<double>{2.0, 6.0, 2.0, 1.0}));
}

TEST(FaultInjectorTest, FeedbackLossWindowsNest) {
  Simulator sim;
  RecordingSink sink;
  FaultInjector injector(&sim, &sink, 1, 1);
  FaultPlan plan;
  plan.LoseFeedback(0, 10.0, 40.0);  // 10..50
  plan.LoseFeedback(0, 20.0, 10.0);  // 20..30, nested
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntilIdle();

  std::vector<SinkEvent> fb;
  for (const auto& e : sink.events) {
    if (e.what == "feedback_lost" || e.what == "feedback_restored") {
      fb.push_back(e);
    }
  }
  ASSERT_EQ(fb.size(), 2u);  // nested window produced no extra edges
  EXPECT_EQ(fb[0].what, "feedback_lost");
  EXPECT_DOUBLE_EQ(fb[0].at, 10.0);
  EXPECT_EQ(fb[1].what, "feedback_restored");
  EXPECT_DOUBLE_EQ(fb[1].at, 50.0);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through ClusterExperiment
// ---------------------------------------------------------------------------

ExperimentOptions SmallClusterOptions(size_t num_tasks) {
  ExperimentOptions options = PhysicalClusterOptions(num_tasks, 5);
  options.num_nodes = 2;
  options.gpus_per_node = 2;
  options.trace.duration_compression = 2000.0;
  return options;
}

ExperimentResult RunMudi(const ExperimentOptions& options) {
  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  return experiment.Run();
}

TEST(FaultRecoveryTest, TransientFailureRecoversAndAllTasksComplete) {
  ExperimentOptions options = SmallClusterOptions(10);
  options.fault_plan.FailDevice(1, 30.0 * kMsPerSecond, 45.0 * kMsPerSecond);

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  EXPECT_EQ(result.CompletedTasks(), 10u);
  EXPECT_EQ(result.faults.faults_injected, 1u);
  EXPECT_EQ(result.faults.device_failures, 1u);
  EXPECT_EQ(result.faults.devices_recovered, 1u);
  EXPECT_NEAR(result.faults.total_downtime_ms, 45.0 * kMsPerSecond, 1.0);
  // The device rejoined the registry as healthy.
  auto status = experiment.registry().GetRequired("/devices/1/status");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, "up");
  EXPECT_TRUE(experiment.device(1).healthy());
}

TEST(FaultRecoveryTest, PermanentFailureDisplacesReplacesAndCompletes) {
  ExperimentOptions options = SmallClusterOptions(16);
  options.fault_plan.FailDevicePermanently(3, 120.0 * kMsPerSecond);

  PerfOracle profiling_oracle(options.oracle_seed);
  auto policy = MakePolicy("Mudi", profiling_oracle);
  ClusterExperiment experiment(options, policy.get());
  ExperimentResult result = experiment.Run();

  // Every task completes even though a quarter of the cluster died: the
  // displaced trainings rolled back to their checkpoints and were re-placed
  // on surviving devices.
  EXPECT_EQ(result.CompletedTasks(), 16u);
  EXPECT_GE(result.faults.trainings_displaced, 1u);
  EXPECT_EQ(result.faults.trainings_replaced, result.faults.trainings_displaced);
  EXPECT_GT(result.faults.work_lost_ms, 0.0);  // checkpoint rollback redid work
  // Re-placement can be instantaneous in virtual time when survivors have
  // free capacity, so the mean is only required to be well-defined.
  EXPECT_GE(result.faults.mean_replacement_ms, 0.0);
  EXPECT_FALSE(experiment.device(3).healthy());

  // Registry: status pinned to "failed", task subtree wiped.
  auto status = experiment.registry().GetRequired("/devices/3/status");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, "failed");
  for (const auto& t : result.tasks) {
    auto entry = experiment.registry().GetRequired("/devices/3/tasks/" +
                                                   std::to_string(t.task_id));
    EXPECT_FALSE(entry.ok());
  }

  // Per-task accounting: displaced tasks carry failure counts and lost work.
  size_t failures = 0;
  double lost = 0.0;
  for (const auto& t : result.tasks) {
    failures += t.failures;
    lost += t.work_lost_ms;
  }
  EXPECT_EQ(failures, result.faults.trainings_displaced);
  EXPECT_DOUBLE_EQ(lost, result.faults.work_lost_ms);
}

TEST(FaultRecoveryTest, ChaosRunsAreDeterministic) {
  ExperimentOptions options = SmallClusterOptions(8);
  options.fault_plan = StandardChaosPlan(4, 2);

  ExperimentResult a = RunMudi(options);
  ExperimentResult b = RunMudi(options);

  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_DOUBLE_EQ(a.OverallSloViolationRate(), b.OverallSloViolationRate());
  EXPECT_EQ(a.TotalWindowsViolatedFailure(), b.TotalWindowsViolatedFailure());
  EXPECT_EQ(a.faults.trainings_displaced, b.faults.trainings_displaced);
  EXPECT_DOUBLE_EQ(a.faults.work_lost_ms, b.faults.work_lost_ms);
  EXPECT_DOUBLE_EQ(a.faults.total_downtime_ms, b.faults.total_downtime_ms);
  EXPECT_DOUBLE_EQ(a.faults.failed_requests, b.faults.failed_requests);
  EXPECT_DOUBLE_EQ(a.faults.rerouted_requests, b.faults.rerouted_requests);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].completion_ms, b.tasks[i].completion_ms);
    EXPECT_EQ(a.tasks[i].failures, b.tasks[i].failures);
  }
}

TEST(FaultRecoveryTest, StragglerInflatesServingLatency) {
  ExperimentOptions options = SmallClusterOptions(0);
  options.horizon_ms = 80.0 * kMsPerSecond;

  ExperimentResult clean = RunMudi(options);

  ExperimentOptions slow = options;
  slow.fault_plan.AddStraggler(0, 10.0 * kMsPerSecond, 65.0 * kMsPerSecond, 3.0);
  ExperimentResult straggled = RunMudi(slow);

  EXPECT_EQ(straggled.faults.faults_injected, 1u);
  // Device 0's service sees 3x-inflated batch latencies for most of the run.
  PerfOracle probe(options.oracle_seed);
  auto policy = MakePolicy("Mudi", probe);
  ClusterExperiment shape(options, policy.get());
  const std::string service = shape.ServiceOnDevice(0).name;
  ASSERT_TRUE(straggled.per_service.count(service));
  ASSERT_TRUE(clean.per_service.count(service));
  EXPECT_GT(straggled.per_service.at(service).mean_latency_ms,
            clean.per_service.at(service).mean_latency_ms);
}

TEST(FaultRecoveryTest, RequestsRerouteToSurvivingReplicas) {
  // Single-service cluster: when one replica dies its traffic must land on
  // the survivors, not vanish.
  ExperimentOptions options = SmallClusterOptions(0);
  options.num_services = 1;
  options.horizon_ms = 60.0 * kMsPerSecond;
  options.fault_plan.FailDevice(0, 10.0 * kMsPerSecond, 40.0 * kMsPerSecond);

  ExperimentResult result = RunMudi(options);
  EXPECT_GT(result.faults.rerouted_requests, 0.0);
  // Failure-attributed violations never exceed total violations.
  EXPECT_LE(result.TotalWindowsViolatedFailure(),
            result.TotalWindowsViolatedFailure() + result.TotalWindowsViolatedLoad());
}

TEST(FaultRecoveryTest, EmptyPlanLeavesFaultMetricsZero) {
  ExperimentOptions options = SmallClusterOptions(6);
  ExperimentResult result = RunMudi(options);
  EXPECT_FALSE(result.faults.any());
  EXPECT_EQ(result.faults.device_failures, 0u);
  EXPECT_DOUBLE_EQ(result.faults.total_downtime_ms, 0.0);
  EXPECT_EQ(result.TotalWindowsViolatedFailure(), 0u);
  EXPECT_EQ(result.CompletedTasks(), 6u);
}

// ---------------------------------------------------------------------------
// ControlFaultPlan
// ---------------------------------------------------------------------------

TEST(ControlFaultPlanTest, BuildersProduceExpectedSpecs) {
  ControlFaultPlan plan;
  plan.DegradeWatches(100.0, 50.0, 0.1)
      .StaleReads(0.2, 4)
      .Partition(10.0 * kMsPerSecond, 5.0 * kMsPerSecond)
      .LoseWatches(20.0 * kMsPerSecond)
      .CrashScheduler(30.0 * kMsPerSecond, 2.0 * kMsPerSecond);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.degrade.watch_delay_ms, 100.0);
  EXPECT_DOUBLE_EQ(plan.degrade.stale_read_prob, 0.2);
  EXPECT_EQ(plan.degrade.stale_rev_lag, 4u);
  EXPECT_EQ(plan.events[0].kind, ControlFaultKind::kKvPartition);
  EXPECT_EQ(plan.events[1].kind, ControlFaultKind::kWatchLoss);
  EXPECT_EQ(plan.events[2].kind, ControlFaultKind::kSchedulerCrash);
  EXPECT_DOUBLE_EQ(plan.events[2].duration_ms, 2.0 * kMsPerSecond);
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(ControlFaultPlanTest, ValidateRejectsBadSpecs) {
  {
    ControlFaultPlan plan;
    plan.DegradeWatches(-1.0, 0.0, 0.0);  // negative delay
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    ControlFaultPlan plan;
    plan.DegradeWatches(0.0, 0.0, 1.0);  // dropping everything deadlocks
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    ControlFaultPlan plan;
    plan.StaleReads(0.5, 0);  // stale reads need a lag bound
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    ControlFaultPlan plan;
    plan.Partition(10.0, 0.0);  // a window needs a duration
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    ControlFaultPlan plan;
    plan.CrashScheduler(10.0, -1.0);  // negative restart delay
    EXPECT_FALSE(plan.Validate().ok());
  }
}

TEST(ControlFaultPlanTest, StandardControlChaosPlanValidates) {
  ControlFaultPlan plan = StandardControlChaosPlan();
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.degrade.any());
  EXPECT_GE(plan.size(), 4u);
}

// ---------------------------------------------------------------------------
// ControlFaultInjector
// ---------------------------------------------------------------------------

class RecordingCtrlSink : public ControlFaultSink {
 public:
  struct Event {
    std::string what;
    TimeMs at;
    double arg;
  };

  void OnKvPartitionStart(TimeMs now) override { events.push_back({"partition_start", now, 0.0}); }
  void OnKvPartitionEnd(TimeMs now) override { events.push_back({"partition_end", now, 0.0}); }
  void OnWatchesLost(TimeMs now) override { events.push_back({"watch_loss", now, 0.0}); }
  void OnSchedulerCrash(TimeMs restart_delay_ms, TimeMs now) override {
    events.push_back({"crash", now, restart_delay_ms});
  }

  std::vector<Event> events;
};

TEST(ControlFaultInjectorTest, EmptyPlanSchedulesNothing) {
  Simulator sim;
  RecordingCtrlSink sink;
  ControlFaultInjector injector(&sim, &sink);
  EXPECT_TRUE(injector.Arm(ControlFaultPlan{}).ok());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(injector.events_injected(), 0u);
}

TEST(ControlFaultInjectorTest, ArmRejectsInvalidAndPastEvents) {
  Simulator sim;
  RecordingCtrlSink sink;
  ControlFaultInjector injector(&sim, &sink);
  ControlFaultPlan bad;
  bad.Partition(10.0, 0.0);
  EXPECT_FALSE(injector.Arm(bad).ok());

  sim.RunUntil(100.0);
  ControlFaultPlan past;
  past.LoseWatches(50.0);
  EXPECT_FALSE(injector.Arm(past).ok());
}

TEST(ControlFaultInjectorTest, OverlappingPartitionsCollapseToOneEdgePair) {
  Simulator sim;
  RecordingCtrlSink sink;
  ControlFaultInjector injector(&sim, &sink);
  ControlFaultPlan plan;
  plan.Partition(100.0, 100.0);  // 100..200
  plan.Partition(150.0, 100.0);  // 150..250, overlapping
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntilIdle();

  ASSERT_EQ(sink.events.size(), 2u);  // one edge pair, not two
  EXPECT_EQ(sink.events[0].what, "partition_start");
  EXPECT_DOUBLE_EQ(sink.events[0].at, 100.0);
  EXPECT_EQ(sink.events[1].what, "partition_end");
  EXPECT_DOUBLE_EQ(sink.events[1].at, 250.0);
  EXPECT_EQ(injector.events_injected(), 2u);
  EXPECT_EQ(injector.partitions(), 1u);
  EXPECT_FALSE(injector.partitioned());
}

TEST(ControlFaultInjectorTest, BackToBackPartitionsKeepSeparateEdges) {
  Simulator sim;
  RecordingCtrlSink sink;
  ControlFaultInjector injector(&sim, &sink);
  ControlFaultPlan plan;
  plan.Partition(100.0, 50.0);  // 100..150
  plan.Partition(200.0, 50.0);  // 200..250, disjoint
  ASSERT_TRUE(injector.Arm(plan).ok());
  sim.RunUntilIdle();
  ASSERT_EQ(sink.events.size(), 4u);
  EXPECT_EQ(injector.partitions(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end control-plane recovery through ClusterExperiment
// ---------------------------------------------------------------------------

TEST(CtrlFaultRecoveryTest, EmptyCtrlPlanLeavesCtrlMetricsZero) {
  ExperimentOptions options = SmallClusterOptions(6);
  ExperimentResult result = RunMudi(options);
  EXPECT_FALSE(result.ctrl.any());
  EXPECT_EQ(result.ctrl.configs_published, 0u);
  EXPECT_EQ(result.ctrl.retries, 0u);
  EXPECT_EQ(result.ctrl.scheduler_crashes, 0u);
}

TEST(CtrlFaultRecoveryTest, SchedulerCrashRecoversAndTasksComplete) {
  ExperimentOptions options = SmallClusterOptions(10);
  options.ctrl_fault_plan.CrashScheduler(15.0 * kMsPerSecond, 2.0 * kMsPerSecond);

  ExperimentResult result = RunMudi(options);
  EXPECT_EQ(result.CompletedTasks(), 10u);
  EXPECT_EQ(result.ctrl.scheduler_crashes, 1u);
  EXPECT_EQ(result.ctrl.scheduler_recoveries, 1u);
  // Recovery takes at least the restart delay (crash -> scan start).
  EXPECT_GE(result.ctrl.total_recovery_ms, 2.0 * kMsPerSecond);
}

TEST(CtrlFaultRecoveryTest, CrashDuringRecoveryRestartsTheLoop) {
  ExperimentOptions options = SmallClusterOptions(10);
  // The first crash's replacement would only begin scanning at t=40s; the
  // second crash at t=20s kills it mid-recovery and restarts with a 1s
  // delay. Exactly one recovery completes, and its latency is measured from
  // the first crash (the span the scheduler was actually absent).
  options.ctrl_fault_plan.CrashScheduler(10.0 * kMsPerSecond, 30.0 * kMsPerSecond);
  options.ctrl_fault_plan.CrashScheduler(20.0 * kMsPerSecond, 1.0 * kMsPerSecond);

  ExperimentResult result = RunMudi(options);
  EXPECT_EQ(result.CompletedTasks(), 10u);
  EXPECT_EQ(result.ctrl.scheduler_crashes, 2u);
  EXPECT_EQ(result.ctrl.scheduler_recoveries, 1u);
  EXPECT_GE(result.ctrl.total_recovery_ms, 11.0 * kMsPerSecond);
  EXPECT_LT(result.ctrl.total_recovery_ms, 30.0 * kMsPerSecond);
}

TEST(CtrlFaultRecoveryTest, PartitionStretchesRecoveryThroughRetry) {
  ExperimentOptions options = SmallClusterOptions(10);
  // The recovery scan starts at t=11s, inside a partition that heals at
  // t=16s: every scan before then fails Unavailable and must back off
  // through src/sim/retry.h.
  options.ctrl_fault_plan.CrashScheduler(10.0 * kMsPerSecond, 1.0 * kMsPerSecond);
  options.ctrl_fault_plan.Partition(10.5 * kMsPerSecond, 5.5 * kMsPerSecond);

  ExperimentResult result = RunMudi(options);
  EXPECT_EQ(result.CompletedTasks(), 10u);
  EXPECT_EQ(result.ctrl.scheduler_recoveries, 1u);
  EXPECT_GE(result.ctrl.retries, 1u);
  EXPECT_GE(result.ctrl.unavailable_reads, 1u);
  EXPECT_GE(result.ctrl.total_recovery_ms, 6.0 * kMsPerSecond);
}

TEST(CtrlFaultRecoveryTest, ConfigsFlowThroughDegradedWatches) {
  ExperimentOptions options = SmallClusterOptions(8);
  options.ctrl_fault_plan.DegradeWatches(/*delay_ms=*/50.0, /*jitter_ms=*/25.0,
                                         /*drop_prob=*/0.05);

  ExperimentResult result = RunMudi(options);
  EXPECT_EQ(result.CompletedTasks(), 8u);
  EXPECT_GT(result.ctrl.configs_published, 0u);
  EXPECT_GT(result.ctrl.configs_applied, 0u);
  EXPECT_LE(result.ctrl.configs_applied, result.ctrl.configs_published);
  // Publication accounting is closed: every config was delivered, dropped,
  // or lost to a partition.
  EXPECT_EQ(result.ctrl.watch_delivered + result.ctrl.watch_dropped +
                result.ctrl.watch_lost_partition,
            result.ctrl.configs_published);
}

TEST(CtrlFaultRecoveryTest, WatchLossReestablishesAndCatchesUp) {
  ExperimentOptions options = SmallClusterOptions(10);
  options.ctrl_fault_plan.DegradeWatches(50.0, 0.0, 0.0);
  options.ctrl_fault_plan.LoseWatches(15.0 * kMsPerSecond);

  ExperimentResult result = RunMudi(options);
  EXPECT_EQ(result.CompletedTasks(), 10u);
  EXPECT_EQ(result.ctrl.watch_losses, 1u);
  // Config delivery kept working after re-establishment.
  EXPECT_GT(result.ctrl.configs_applied, 0u);
}

TEST(CtrlFaultRecoveryTest, DeleteEventsFlagPreservesFailoverOutcome) {
  // The PR-2 failover scenario must be byte-identical with tombstone delete
  // events off (the default) and still pass with them on: nothing in the
  // experiment watches the deleted subtrees, so only the revision counter
  // differs.
  ExperimentOptions options = SmallClusterOptions(10);
  options.fault_plan.FailDevice(1, 30.0 * kMsPerSecond, 45.0 * kMsPerSecond);

  ExperimentResult off = RunMudi(options);
  ExperimentOptions with_events = options;
  with_events.registry_delete_events = true;
  ExperimentResult on = RunMudi(with_events);

  for (const ExperimentResult* result : {&off, &on}) {
    EXPECT_EQ(result->CompletedTasks(), 10u);
    EXPECT_EQ(result->faults.devices_recovered, 1u);
  }
  EXPECT_DOUBLE_EQ(off.makespan_ms, on.makespan_ms);
  ASSERT_EQ(off.tasks.size(), on.tasks.size());
  for (size_t i = 0; i < off.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(off.tasks[i].completion_ms, on.tasks[i].completion_ms);
    EXPECT_EQ(off.tasks[i].failures, on.tasks[i].failures);
  }
}

TEST(CtrlFaultRecoveryTest, CtrlChaosRunsAreDeterministic) {
  ExperimentOptions options = SmallClusterOptions(8);
  options.ctrl_fault_plan.DegradeWatches(100.0, 100.0, 0.1);
  options.ctrl_fault_plan.StaleReads(0.2, 4);
  options.ctrl_fault_plan.Partition(10.0 * kMsPerSecond, 5.0 * kMsPerSecond);
  options.ctrl_fault_plan.LoseWatches(20.0 * kMsPerSecond);
  options.ctrl_fault_plan.CrashScheduler(25.0 * kMsPerSecond, 2.0 * kMsPerSecond);

  ExperimentResult a = RunMudi(options);
  ExperimentResult b = RunMudi(options);

  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_DOUBLE_EQ(a.OverallSloViolationRate(), b.OverallSloViolationRate());
  EXPECT_EQ(a.ctrl.configs_published, b.ctrl.configs_published);
  EXPECT_EQ(a.ctrl.configs_applied, b.ctrl.configs_applied);
  EXPECT_EQ(a.ctrl.watch_dropped, b.ctrl.watch_dropped);
  EXPECT_EQ(a.ctrl.stale_reads, b.ctrl.stale_reads);
  EXPECT_EQ(a.ctrl.retries, b.ctrl.retries);
  EXPECT_DOUBLE_EQ(a.ctrl.total_recovery_ms, b.ctrl.total_recovery_ms);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].completion_ms, b.tasks[i].completion_ms);
  }
}

}  // namespace
}  // namespace mudi
