#include "src/ml/polynomial.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/ml/matrix.h"

namespace mudi {

PolynomialModel PolynomialModel::Fit(const std::vector<double>& x, const std::vector<double>& y,
                                     int degree) {
  MUDI_CHECK_EQ(x.size(), y.size());
  MUDI_CHECK_GE(degree, 0);
  MUDI_CHECK_GE(x.size(), static_cast<size_t>(degree) + 1);

  PolynomialModel model;
  auto [min_it, max_it] = std::minmax_element(x.begin(), x.end());
  model.x_center_ = 0.5 * (*min_it + *max_it);
  double half = 0.5 * (*max_it - *min_it);
  model.x_half_range_ = half > 1e-12 ? half : 1.0;

  size_t n = x.size();
  Matrix design(n, static_cast<size_t>(degree) + 1);
  for (size_t i = 0; i < n; ++i) {
    double t = (x[i] - model.x_center_) / model.x_half_range_;
    double p = 1.0;
    for (int d = 0; d <= degree; ++d) {
      design.At(i, static_cast<size_t>(d)) = p;
      p *= t;
    }
  }
  model.coeffs_ = RidgeSolve(design, y, 1e-8);
  return model;
}

double PolynomialModel::Eval(double x) const {
  MUDI_CHECK(!coeffs_.empty());
  double t = (x - x_center_) / x_half_range_;
  double value = 0.0;
  double p = 1.0;
  for (double c : coeffs_) {
    value += c * p;
    p *= t;
  }
  return value;
}

}  // namespace mudi
