#include "src/ml/mlp.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace mudi {

void MlpRegressor::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  MUDI_CHECK(!x.empty());
  MUDI_CHECK_EQ(x.size(), y.size());
  scaler_.Fit(x);
  auto xs = scaler_.TransformAll(x);
  size_t n = xs.size();
  size_t d = xs[0].size();
  size_t h = options_.hidden_units;

  y_mean_ = Mean(y);
  double sd = StdDev(y);
  y_scale_ = sd > 1e-9 ? sd : 1.0;
  std::vector<double> yn(n);
  for (size_t i = 0; i < n; ++i) {
    yn[i] = (y[i] - y_mean_) / y_scale_;
  }

  Rng rng(options_.seed);
  double init = 1.0 / std::sqrt(static_cast<double>(d));
  w1_.assign(h, std::vector<double>(d));
  b1_.assign(h, 0.0);
  w2_.assign(h, 0.0);
  b2_ = 0.0;
  for (size_t u = 0; u < h; ++u) {
    for (size_t j = 0; j < d; ++j) {
      w1_[u][j] = rng.Uniform(-init, init);
    }
    w2_[u] = rng.Uniform(-init, init);
  }

  // Adam state.
  auto zeros_like_w1 = [&] { return std::vector<std::vector<double>>(h, std::vector<double>(d)); };
  auto m_w1 = zeros_like_w1(), v_w1 = zeros_like_w1();
  std::vector<double> m_b1(h), v_b1(h), m_w2(h), v_w2(h);
  double m_b2 = 0.0, v_b2 = 0.0;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double lr = options_.learning_rate;

  std::vector<double> hidden(h), act(h);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }

  int step = 0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t oi = 0; oi < n; ++oi) {
      size_t i = order[oi];
      // Forward.
      for (size_t u = 0; u < h; ++u) {
        double z = b1_[u];
        for (size_t j = 0; j < d; ++j) {
          z += w1_[u][j] * xs[i][j];
        }
        hidden[u] = z;
        act[u] = std::tanh(z);
      }
      double pred = b2_;
      for (size_t u = 0; u < h; ++u) {
        pred += w2_[u] * act[u];
      }
      double err = pred - yn[i];

      // Backward (squared loss) with Adam updates.
      ++step;
      double bc1 = 1.0 - std::pow(beta1, step);
      double bc2 = 1.0 - std::pow(beta2, step);
      auto adam = [&](double& w, double& m, double& v, double grad) {
        m = beta1 * m + (1.0 - beta1) * grad;
        v = beta2 * v + (1.0 - beta2) * grad * grad;
        w -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
      };
      adam(b2_, m_b2, v_b2, err);
      for (size_t u = 0; u < h; ++u) {
        double g_w2 = err * act[u];
        double delta = err * w2_[u] * (1.0 - act[u] * act[u]);
        adam(w2_[u], m_w2[u], v_w2[u], g_w2);
        adam(b1_[u], m_b1[u], v_b1[u], delta);
        for (size_t j = 0; j < d; ++j) {
          adam(w1_[u][j], m_w1[u][j], v_w1[u][j], delta * xs[i][j]);
        }
      }
    }
  }
}

double MlpRegressor::Predict(const std::vector<double>& x) const {
  MUDI_CHECK(!w1_.empty());
  auto q = scaler_.Transform(x);
  double pred = b2_;
  for (size_t u = 0; u < w1_.size(); ++u) {
    double z = b1_[u];
    for (size_t j = 0; j < q.size(); ++j) {
      z += w1_[u][j] * q[j];
    }
    pred += w2_[u] * std::tanh(z);
  }
  return pred * y_scale_ + y_mean_;
}

}  // namespace mudi
