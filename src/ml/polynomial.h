// 1-D polynomial least-squares fitting — the baseline latency-curve model the
// paper compares against piece-wise linear in Tab. 2.
#ifndef SRC_ML_POLYNOMIAL_H_
#define SRC_ML_POLYNOMIAL_H_

#include <vector>

namespace mudi {

class PolynomialModel {
 public:
  PolynomialModel() = default;

  // Fits a degree-`degree` polynomial by ridge-regularized least squares.
  // Inputs are internally rescaled to [-1, 1] for conditioning.
  static PolynomialModel Fit(const std::vector<double>& x, const std::vector<double>& y,
                             int degree);

  double Eval(double x) const;
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

 private:
  std::vector<double> coeffs_;  // in the rescaled variable, low order first
  double x_center_ = 0.0;
  double x_half_range_ = 1.0;
};

}  // namespace mudi

#endif  // SRC_ML_POLYNOMIAL_H_
