#include "src/ml/bayesopt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/perf/perf_collector.h"

namespace mudi {

GpLcbOptimizer::GpLcbOptimizer(std::vector<double> candidates, BayesOptOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  MUDI_CHECK(!candidates_.empty());
  auto [lo, hi] = std::minmax_element(candidates_.begin(), candidates_.end());
  scale_center_ = 0.5 * (*lo + *hi);
  double half = 0.5 * (*hi - *lo);
  scale_half_ = half > 1e-12 ? half : 1.0;
}

double GpLcbOptimizer::Beta(size_t num_candidates, size_t iteration) {
  MUDI_CHECK_GE(iteration, 1u);
  double beta = 2.0 * std::log(static_cast<double>(num_candidates) /
                               (static_cast<double>(iteration) * static_cast<double>(iteration)));
  return beta > 0.0 ? beta : 0.0;
}

BayesOptResult GpLcbOptimizer::Minimize(const Objective& objective,
                                        const Feasible& feasible) const {
  BayesOptResult result;

  std::vector<double> feasible_candidates;
  for (double c : candidates_) {
    if (feasible(c)) {
      feasible_candidates.push_back(c);
    }
  }
  if (feasible_candidates.empty()) {
    return result;
  }

  GaussianProcess gp(options_.gp);
  gp.SetPerf(options_.perf);
  perf::LatencyStat* acq_stat =
      options_.perf != nullptr && options_.perf->enabled()
          ? &options_.perf->GetRegionStat("mudi.gp_lcb.acquisition")
          : nullptr;
  auto to_feature = [&](double c) {
    return std::vector<double>{(c - scale_center_) / scale_half_};
  };

  std::vector<bool> evaluated(feasible_candidates.size(), false);
  double best_obj = std::numeric_limits<double>::infinity();
  std::optional<double> best_cand;
  size_t repeats = 0;
  double last_pick = std::numeric_limits<double>::quiet_NaN();

  // Initial design: evenly spaced coverage before the LCB loop.
  size_t design = std::min({options_.initial_design, options_.max_iterations,
                            feasible_candidates.size()});
  for (size_t d = 0; d < design; ++d) {
    size_t idx = design <= 1 ? 0
                             : d * (feasible_candidates.size() - 1) / (design - 1);
    if (evaluated[idx]) {
      continue;
    }
    double cand = feasible_candidates[idx];
    double obj = objective(cand);
    evaluated[idx] = true;
    gp.AddObservation(to_feature(cand), obj);
    result.history.emplace_back(cand, obj);
    if (obj < best_obj) {
      best_obj = obj;
      best_cand = cand;
    }
    ++result.iterations_used;
  }

  for (size_t n = result.iterations_used + 1; n <= options_.max_iterations; ++n) {
    double beta_sqrt = std::sqrt(Beta(feasible_candidates.size(), n));
    // Pick the acquisition minimizer; prefer unevaluated candidates at equal
    // acquisition to avoid premature cycling.
    size_t pick = 0;
    double best_acq = std::numeric_limits<double>::infinity();
    {
      perf::PerfRegion region(acq_stat);
      for (size_t i = 0; i < feasible_candidates.size(); ++i) {
        GpPosterior post = gp.Predict(to_feature(feasible_candidates[i]));
        // Eq. (3): μ − β_n^{1/2}·sqrt(σ), with σ the posterior variance.
        double acq = post.mean - beta_sqrt * std::sqrt(post.variance + 1e-12);
        if (acq < best_acq - 1e-12 || (std::abs(acq - best_acq) <= 1e-12 && !evaluated[i])) {
          best_acq = acq;
          pick = i;
        }
      }
    }
    double cand = feasible_candidates[pick];
    double obj = objective(cand);
    evaluated[pick] = true;
    gp.AddObservation(to_feature(cand), obj);
    result.history.emplace_back(cand, obj);
    if (obj < best_obj) {
      best_obj = obj;
      best_cand = cand;
    }
    result.iterations_used = n;

    if (!std::isnan(last_pick) && cand == last_pick) {
      ++repeats;
      if (repeats + 1 >= options_.convergence_repeats) {
        break;
      }
    } else {
      repeats = 0;
    }
    last_pick = cand;
    // All candidates tried at least once and the GP is exploiting: stop early.
    if (std::all_of(evaluated.begin(), evaluated.end(), [](bool b) { return b; }) &&
        repeats >= 1) {
      break;
    }
  }
  result.best_candidate = best_cand;
  result.best_objective = best_obj;
  return result;
}

}  // namespace mudi
