// The one sanctioned home of raw threads in the codebase (enforced by the
// mudi_lint `mudi-fit-thread` check). Offline model fitting is the only
// workload allowed to fan out: each shard is a pure, internally-seeded
// function of its inputs, shards are indexed 0..n-1 in a fixed order, and
// every result lands in a pre-sized slot — so the reduction reads identical
// values no matter how shards were interleaved across workers. Anything that
// touches the simulation clock, an Rng stream, or shared mutable state stays
// single-threaded; route new parallelism through ParallelFor or keep it out.
#ifndef SRC_ML_FIT_POOL_H_
#define SRC_ML_FIT_POOL_H_

#include <atomic>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/thread_annotations.h"

namespace mudi {

class FitPool {
 public:
  // Worker count from MUDI_FIT_THREADS: unset or "0" means auto (hardware
  // concurrency clamped to 8); an explicit positive value is taken verbatim
  // (oversubscription is fine — shards are CPU-bound and independent).
  static size_t ConfiguredThreads() {
    std::optional<std::string> env = GetEnv("MUDI_FIT_THREADS");
    if (env.has_value() && !env->empty()) {
      char* end = nullptr;
      long parsed = std::strtol(env->c_str(), &end, 10);
      // A malformed MUDI_FIT_THREADS is a hard error: silently falling back
      // to some thread count would mask a typo in a reproducibility recipe.
      MUDI_CHECK(end != nullptr && *end == '\0' && parsed >= 0);
      if (parsed > 0) {
        return static_cast<size_t>(parsed);
      }
    }
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
      hw = 1;
    }
    return hw < 8 ? static_cast<size_t>(hw) : 8;
  }

  // Runs fn(0) .. fn(n-1), fanning out across ConfiguredThreads() workers.
  // Shards are handed out via an atomic counter, so which worker runs which
  // shard is nondeterministic — fn must therefore write only to its own
  // index's slot and read only immutable shared inputs. Determinism of the
  // overall fit is the *caller's* obligation (per-shard seeding + fixed-order
  // reduction); this helper only guarantees every index runs exactly once
  // and all work is done on return.
  static void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    size_t workers = ConfiguredThreads();
    if (workers > n) {
      workers = n;
    }
    if (workers <= 1) {
      for (size_t i = 0; i < n; ++i) {
        fn(i);
      }
      return;
    }
    // Work-stealing shard counter, local to one ParallelFor call. It orders
    // nothing the results depend on (each shard writes only its own slot).
    MUDI_GUARDED_STATE("hands out shard indices; result slots are disjoint");
    std::atomic<size_t> next{0};
    auto drain = [&]() {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w) {
      threads.emplace_back(drain);
    }
    drain();  // the calling thread is worker 0
    for (auto& t : threads) {
      t.join();
    }
  }
};

}  // namespace mudi

#endif  // SRC_ML_FIT_POOL_H_
