// Ridge linear regression over standardized features; one of the lightweight
// candidate models for the Interference Modeler.
#ifndef SRC_ML_LINEAR_REGRESSION_H_
#define SRC_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

class LinearRegressor : public Regressor {
 public:
  explicit LinearRegressor(double lambda = 1e-3) : lambda_(lambda) {}

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "Linear"; }

 private:
  double lambda_;
  FeatureScaler scaler_;
  std::vector<double> weights_;  // last entry is the bias
};

}  // namespace mudi

#endif  // SRC_ML_LINEAR_REGRESSION_H_
