#include "src/ml/gaussian_process.h"

#include <cmath>

#include "src/common/check.h"
#include "src/perf/perf_collector.h"

namespace mudi {

GaussianProcess::GaussianProcess(GpOptions options) : options_(options) {
  MUDI_CHECK_GT(options_.length_scale, 0.0);
  MUDI_CHECK_GT(options_.signal_var, 0.0);
  MUDI_CHECK_GE(options_.noise_var, 0.0);
}

double GaussianProcess::Kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  MUDI_CHECK_EQ(a.size(), b.size());
  double d2 = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double diff = (a[j] - b[j]) / options_.length_scale;
    d2 += diff * diff;
  }
  return options_.signal_var * std::exp(-0.5 * d2);
}

void GaussianProcess::AddObservation(const std::vector<double>& x, double y) {
  train_x_.push_back(x);
  train_y_.push_back(y);
  Refit();
}

void GaussianProcess::SetObservations(const std::vector<std::vector<double>>& x,
                                      const std::vector<double>& y) {
  MUDI_CHECK_EQ(x.size(), y.size());
  train_x_ = x;
  train_y_ = y;
  Refit();
}

void GaussianProcess::SetPerf(perf::PerfCollector* perf) {
  if (perf == nullptr || !perf->enabled()) {
    kernel_stat_ = nullptr;
    chol_stat_ = nullptr;
    return;
  }
  kernel_stat_ = &perf->GetRegionStat("mudi.gp_lcb.kernel_build");
  chol_stat_ = &perf->GetRegionStat("mudi.gp_lcb.cholesky");
}

void GaussianProcess::Refit() {
  size_t n = train_x_.size();
  if (n == 0) {
    alpha_.clear();
    return;
  }
  y_mean_ = 0.0;
  for (double v : train_y_) {
    y_mean_ += v;
  }
  y_mean_ /= static_cast<double>(n);

  Matrix k(n, n);
  {
    perf::PerfRegion region(kernel_stat_);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double v = Kernel(train_x_[i], train_x_[j]);
        k.At(i, j) = v;
        k.At(j, i) = v;
      }
      k.At(i, i) += options_.noise_var + 1e-10;
    }
  }
  perf::PerfRegion region(chol_stat_);
  double jitter = 1e-8;
  while (!CholeskyDecompose(k, chol_)) {
    for (size_t i = 0; i < n; ++i) {
      k.At(i, i) += jitter;
    }
    jitter *= 10.0;
    MUDI_CHECK_LT(jitter, 1.0);
  }
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) {
    centered[i] = train_y_[i] - y_mean_;
  }
  alpha_ = CholeskySolve(chol_, centered);
}

GpPosterior GaussianProcess::Predict(const std::vector<double>& x) const {
  GpPosterior post;
  size_t n = train_x_.size();
  if (n == 0) {
    post.mean = 0.0;
    post.variance = options_.signal_var;
    return post;
  }
  std::vector<double> kx(n);
  for (size_t i = 0; i < n; ++i) {
    kx[i] = Kernel(train_x_[i], x);
  }
  double mean = y_mean_;
  for (size_t i = 0; i < n; ++i) {
    mean += kx[i] * alpha_[i];
  }
  // Variance: k(x,x) − vᵀv where L·v = k_x (forward substitution).
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = kx[i];
    for (size_t j = 0; j < i; ++j) {
      sum -= chol_.At(i, j) * v[j];
    }
    v[i] = sum / chol_.At(i, i);
  }
  double var = Kernel(x, x);
  for (size_t i = 0; i < n; ++i) {
    var -= v[i] * v[i];
  }
  post.mean = mean;
  post.variance = var > 0.0 ? var : 0.0;
  return post;
}

}  // namespace mudi
