// GP-LCB Bayesian optimization over a discrete candidate set (paper §5.3.1).
//
// Minimizes a black-box objective (training iteration time) subject to a
// deterministic feasibility predicate (the SLO constraint, evaluated through
// Mudi's explicit latency quantification). The acquisition is the lower
// confidence bound of Eq. (3):
//
//   A(b) = μ(b) − β_n^{1/2} · sqrt(σ(b)),   β_n = 2·log(|R| / n²)
//
// β_n shrinks as iterations n grow, shifting from exploration to
// exploitation; it is clamped at 0 once n² exceeds |R|.
#ifndef SRC_ML_BAYESOPT_H_
#define SRC_ML_BAYESOPT_H_

#include <functional>
#include <optional>
#include <vector>

#include "src/ml/gaussian_process.h"

namespace mudi {

struct BayesOptOptions {
  size_t max_iterations = 25;
  // Stop when the chosen candidate repeats this many consecutive times.
  size_t convergence_repeats = 3;
  // Evenly spaced candidates evaluated before the LCB loop starts. β_n decays
  // as 2·log(|R|/n²), so with small candidate sets exploration dies within a
  // couple of iterations; the initial design guarantees coverage first.
  size_t initial_design = 6;
  GpOptions gp;
  // Optional self-profiling sink: breaks the coarse mudi.gp_lcb region down
  // into kernel build / Cholesky solve / acquisition scan. Observe-only.
  perf::PerfCollector* perf = nullptr;
};

struct BayesOptResult {
  // Best feasible candidate found; nullopt when no candidate is feasible.
  std::optional<double> best_candidate;
  double best_objective = 0.0;
  size_t iterations_used = 0;
  // Every (candidate, objective) pair that was evaluated, in order.
  std::vector<std::pair<double, double>> history;
};

class GpLcbOptimizer {
 public:
  using Objective = std::function<double(double candidate)>;
  using Feasible = std::function<bool(double candidate)>;

  GpLcbOptimizer(std::vector<double> candidates, BayesOptOptions options = {});

  // Runs the full optimization loop: repeatedly picks the LCB-minimizing
  // feasible candidate, evaluates `objective` there, updates the GP, and
  // stops at convergence or the iteration cap.
  BayesOptResult Minimize(const Objective& objective, const Feasible& feasible) const;

  // β_n per Eq. (3), clamped to >= 0.
  static double Beta(size_t num_candidates, size_t iteration);

 private:
  std::vector<double> candidates_;
  BayesOptOptions options_;
  double scale_center_ = 0.0;
  double scale_half_ = 1.0;
};

}  // namespace mudi

#endif  // SRC_ML_BAYESOPT_H_
