#include "src/ml/fit_cache.h"

#include <cstring>

#include "src/common/thread_annotations.h"

namespace mudi {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline void Mix(uint64_t word, uint64_t* hi, uint64_t* lo) {
  // Two FNV-1a lanes over the same word stream, decorrelated by a Weyl
  // constant, give 128 bits — enough that accidental collisions across the
  // few hundred datasets a process ever fits are not a practical concern.
  *lo = (*lo ^ word) * kFnvPrime;
  *hi = (*hi ^ (word + 0x9e3779b97f4a7c15ull)) * kFnvPrime;
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

FitFingerprint FingerprintSamples(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y, size_t folds) {
  uint64_t hi = kFnvOffset;
  uint64_t lo = kFnvOffset ^ 0x6a09e667f3bcc908ull;
  Mix(static_cast<uint64_t>(folds), &hi, &lo);
  Mix(static_cast<uint64_t>(x.size()), &hi, &lo);
  for (const auto& row : x) {
    Mix(static_cast<uint64_t>(row.size()), &hi, &lo);
    for (double v : row) {
      Mix(DoubleBits(v), &hi, &lo);
    }
  }
  Mix(static_cast<uint64_t>(y.size()), &hi, &lo);
  for (double v : y) {
    Mix(DoubleBits(v), &hi, &lo);
  }
  return FitFingerprint{hi, lo};
}

FitCache& FitCache::Global() {
  // Content-addressed: a hit returns the same bits a recompute would, so
  // cross-shard sharing (or not sharing) of the cache is result-invisible.
  MUDI_SHARD_SHARED("content-addressed memo; hits are bit-identical to recompute");
  static FitCache* cache = new FitCache();
  return *cache;
}

std::shared_ptr<const CachedFit> FitCache::Find(const FitFingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void FitCache::Insert(const FitFingerprint& key, std::shared_ptr<const CachedFit> fit) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = std::move(fit);
}

void FitCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

uint64_t FitCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t FitCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t FitCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace mudi
