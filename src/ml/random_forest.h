// Random-forest regressor: bagged CART trees with variance-reduction splits
// and per-split feature subsampling. The paper's Interference Modeler lists
// RF among its lightweight candidate learners (§4.1.2).
#ifndef SRC_ML_RANDOM_FOREST_H_
#define SRC_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/regressor.h"

namespace mudi {

struct RandomForestOptions {
  size_t num_trees = 40;
  size_t max_depth = 8;
  size_t min_samples_leaf = 2;
  // Fraction of features considered at each split (0 < f <= 1).
  double feature_fraction = 0.8;
  uint64_t seed = 7;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(RandomForestOptions options = {});
  ~RandomForestRegressor() override;

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "RF"; }

 private:
  struct Node;
  struct Tree;

  RandomForestOptions options_;
  std::vector<std::unique_ptr<Tree>> trees_;
};

}  // namespace mudi

#endif  // SRC_ML_RANDOM_FOREST_H_
