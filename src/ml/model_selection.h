// K-fold cross-validation and best-model selection. The Interference Modeler
// "determines the optimal model as the learner for each metric individually"
// (§4.1.2); this module implements that selection over the Regressor zoo.
#ifndef SRC_ML_MODEL_SELECTION_H_
#define SRC_ML_MODEL_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

// Mean |pred − true| / max(|true|, eps) over k-fold CV splits.
double KFoldRelativeError(const RegressorFactory& factory,
                          const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, size_t folds = 5);

struct ModelSelectionResult {
  std::unique_ptr<Regressor> model;  // refit on all data
  std::string model_name;
  double cv_error = 0.0;
};

// Factories for the default candidate zoo: RF, SVR, kNN, Linear, MLP.
std::vector<RegressorFactory> DefaultRegressorZoo();

// Cross-validates every factory and returns the winner refit on all data.
ModelSelectionResult SelectBestModel(const std::vector<RegressorFactory>& factories,
                                     const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y, size_t folds = 5);

// One independent selection problem in a batch; the pointed-to data must
// outlive the SelectBestModelsCached call.
struct FitTask {
  const std::vector<std::vector<double>>* x = nullptr;
  const std::vector<double>* y = nullptr;
  size_t folds = 5;
};

struct SharedSelectionResult {
  std::shared_ptr<const Regressor> model;  // winner refit on all data
  std::string model_name;
  double cv_error = 0.0;
  bool from_cache = false;
};

// Batch counterpart of SelectBestModel: memoized through FitCache and
// parallelized through FitPool. Tasks already in the cache are returned
// immediately; the rest are cross-validated one (task, factory) shard at a
// time across the pool, winners picked serially in factory order with the
// same strict `<` rule as SelectBestModel, then refit in parallel. Every
// shard is an internally-seeded pure function of its inputs and every result
// lands in a pre-sized slot read back in task order, so the returned vector
// is bit-identical for any MUDI_FIT_THREADS setting.
std::vector<SharedSelectionResult> SelectBestModelsCached(
    const std::vector<RegressorFactory>& factories, const std::vector<FitTask>& tasks);

}  // namespace mudi

#endif  // SRC_ML_MODEL_SELECTION_H_
