// K-fold cross-validation and best-model selection. The Interference Modeler
// "determines the optimal model as the learner for each metric individually"
// (§4.1.2); this module implements that selection over the Regressor zoo.
#ifndef SRC_ML_MODEL_SELECTION_H_
#define SRC_ML_MODEL_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

// Mean |pred − true| / max(|true|, eps) over k-fold CV splits.
double KFoldRelativeError(const RegressorFactory& factory,
                          const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, size_t folds = 5);

struct ModelSelectionResult {
  std::unique_ptr<Regressor> model;  // refit on all data
  std::string model_name;
  double cv_error = 0.0;
};

// Factories for the default candidate zoo: RF, SVR, kNN, Linear, MLP.
std::vector<RegressorFactory> DefaultRegressorZoo();

// Cross-validates every factory and returns the winner refit on all data.
ModelSelectionResult SelectBestModel(const std::vector<RegressorFactory>& factories,
                                     const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y, size_t folds = 5);

}  // namespace mudi

#endif  // SRC_ML_MODEL_SELECTION_H_
