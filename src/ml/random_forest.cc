#include "src/ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace mudi {

struct RandomForestRegressor::Node {
  // Leaf when feature < 0.
  int feature = -1;
  double threshold = 0.0;
  double value = 0.0;
  int left = -1;
  int right = -1;
};

struct RandomForestRegressor::Tree {
  std::vector<Node> nodes;

  double Predict(const std::vector<double>& x) const {
    int idx = 0;
    while (nodes[static_cast<size_t>(idx)].feature >= 0) {
      const Node& n = nodes[static_cast<size_t>(idx)];
      idx = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    }
    return nodes[static_cast<size_t>(idx)].value;
  }
};

namespace {

struct SplitResult {
  int feature = -1;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // weighted child SSE
};

double SubsetMean(const std::vector<double>& y, const std::vector<size_t>& idx) {
  double sum = 0.0;
  for (size_t i : idx) {
    sum += y[i];
  }
  return idx.empty() ? 0.0 : sum / static_cast<double>(idx.size());
}

double SubsetSse(const std::vector<double>& y, const std::vector<size_t>& idx) {
  double mean = SubsetMean(y, idx);
  double sse = 0.0;
  for (size_t i : idx) {
    sse += (y[i] - mean) * (y[i] - mean);
  }
  return sse;
}

SplitResult FindBestSplit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
                          const std::vector<size_t>& idx, const std::vector<int>& features,
                          size_t min_samples_leaf) {
  SplitResult best;
  std::vector<std::pair<double, double>> col;  // (feature value, target)
  col.reserve(idx.size());
  for (int f : features) {
    col.clear();
    for (size_t i : idx) {
      col.emplace_back(x[i][static_cast<size_t>(f)], y[i]);
    }
    std::sort(col.begin(), col.end());
    // Prefix sums enable O(n) evaluation of every split position.
    size_t n = col.size();
    std::vector<double> prefix_sum(n + 1, 0.0), prefix_sq(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      prefix_sum[i + 1] = prefix_sum[i] + col[i].second;
      prefix_sq[i + 1] = prefix_sq[i] + col[i].second * col[i].second;
    }
    for (size_t split = min_samples_leaf; split + min_samples_leaf <= n; ++split) {
      if (col[split - 1].first == col[split].first) {
        continue;  // cannot separate equal feature values
      }
      double ls = prefix_sum[split];
      double lq = prefix_sq[split];
      double rs = prefix_sum[n] - ls;
      double rq = prefix_sq[n] - lq;
      double nl = static_cast<double>(split);
      double nr = static_cast<double>(n - split);
      double sse = (lq - ls * ls / nl) + (rq - rs * rs / nr);
      if (sse < best.score) {
        best.score = sse;
        best.feature = f;
        best.threshold = 0.5 * (col[split - 1].first + col[split].first);
      }
    }
  }
  return best;
}

}  // namespace

RandomForestRegressor::RandomForestRegressor(RandomForestOptions options)
    : options_(options) {
  MUDI_CHECK_GT(options_.num_trees, 0u);
  MUDI_CHECK_GT(options_.feature_fraction, 0.0);
  MUDI_CHECK_LE(options_.feature_fraction, 1.0);
}

RandomForestRegressor::~RandomForestRegressor() = default;

void RandomForestRegressor::Fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y) {
  MUDI_CHECK(!x.empty());
  MUDI_CHECK_EQ(x.size(), y.size());
  size_t d = x[0].size();
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(options_.num_trees);

  size_t features_per_split =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(options_.feature_fraction *
                                                        static_cast<double>(d))));

  for (size_t t = 0; t < options_.num_trees; ++t) {
    auto tree = std::make_unique<Tree>();
    // Bootstrap sample.
    std::vector<size_t> root_idx(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      root_idx[i] = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(x.size()) - 1));
    }

    // Iterative depth-first construction.
    struct WorkItem {
      std::vector<size_t> idx;
      size_t depth;
      int node_slot;
    };
    std::vector<WorkItem> stack;
    tree->nodes.emplace_back();
    stack.push_back({std::move(root_idx), 0, 0});
    while (!stack.empty()) {
      WorkItem item = std::move(stack.back());
      stack.pop_back();
      Node& node = tree->nodes[static_cast<size_t>(item.node_slot)];
      node.value = SubsetMean(y, item.idx);
      bool should_split = item.depth < options_.max_depth &&
                          item.idx.size() >= 2 * options_.min_samples_leaf &&
                          SubsetSse(y, item.idx) > 1e-12;
      if (!should_split) {
        continue;
      }
      // Random feature subset for this split.
      std::vector<int> all_features(d);
      for (size_t j = 0; j < d; ++j) {
        all_features[j] = static_cast<int>(j);
      }
      rng.Shuffle(all_features);
      all_features.resize(features_per_split);

      SplitResult split =
          FindBestSplit(x, y, item.idx, all_features, options_.min_samples_leaf);
      if (split.feature < 0) {
        continue;
      }
      std::vector<size_t> left_idx, right_idx;
      for (size_t i : item.idx) {
        if (x[i][static_cast<size_t>(split.feature)] <= split.threshold) {
          left_idx.push_back(i);
        } else {
          right_idx.push_back(i);
        }
      }
      if (left_idx.size() < options_.min_samples_leaf ||
          right_idx.size() < options_.min_samples_leaf) {
        continue;
      }
      int left_slot = static_cast<int>(tree->nodes.size());
      tree->nodes.emplace_back();
      int right_slot = static_cast<int>(tree->nodes.size());
      tree->nodes.emplace_back();
      // `node` reference may be invalidated by the emplace_backs above.
      Node& fresh = tree->nodes[static_cast<size_t>(item.node_slot)];
      fresh.feature = split.feature;
      fresh.threshold = split.threshold;
      fresh.left = left_slot;
      fresh.right = right_slot;
      stack.push_back({std::move(left_idx), item.depth + 1, left_slot});
      stack.push_back({std::move(right_idx), item.depth + 1, right_slot});
    }
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::Predict(const std::vector<double>& x) const {
  MUDI_CHECK(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) {
    sum += tree->Predict(x);
  }
  return sum / static_cast<double>(trees_.size());
}

}  // namespace mudi
