// Gaussian-process regression with an RBF kernel — the surrogate model for
// the Tuner's adaptive-batching Bayesian optimization (§5.3.1).
#ifndef SRC_ML_GAUSSIAN_PROCESS_H_
#define SRC_ML_GAUSSIAN_PROCESS_H_

#include <vector>

#include "src/ml/matrix.h"

namespace mudi {

namespace perf {
class PerfCollector;
class LatencyStat;
}  // namespace perf

struct GpOptions {
  double length_scale = 1.0;   // RBF length scale on (caller-normalized) inputs
  double signal_var = 1.0;     // kernel amplitude σ_f²
  double noise_var = 1e-4;     // observation noise σ_n²
};

struct GpPosterior {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {});

  // Adds one observation and refits the posterior (O(n³) in observations —
  // fine for the ≤25-iteration tuning loops this backs).
  void AddObservation(const std::vector<double>& x, double y);

  // Replaces all observations.
  void SetObservations(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  GpPosterior Predict(const std::vector<double>& x) const;

  size_t num_observations() const { return train_x_.size(); }

  // Fine-grained self-profiling of the refit path: kernel-matrix build and
  // Cholesky factor/solve each get their own region ("mudi.gp_lcb.kernel_build"
  // / "mudi.gp_lcb.cholesky"). Stats are resolved once here because Refit runs
  // on every AddObservation inside the BO loop. Observe-only.
  void SetPerf(perf::PerfCollector* perf);

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;
  void Refit();

  GpOptions options_;
  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_;
  double y_mean_ = 0.0;
  Matrix chol_;                 // Cholesky factor of (K + σ_n²·I)
  std::vector<double> alpha_;   // (K + σ_n²·I)⁻¹·(y − mean)
  perf::LatencyStat* kernel_stat_ = nullptr;
  perf::LatencyStat* chol_stat_ = nullptr;
};

}  // namespace mudi

#endif  // SRC_ML_GAUSSIAN_PROCESS_H_
