// Piece-wise linear latency model (paper Eq. 1):
//
//   L(Δ) = k1·(Δ − Δ0) + l0   for Δ ≤ Δ0
//   L(Δ) = k2·(Δ − Δ0) + l0   otherwise
//
// i.e. two line segments joined continuously at the cutoff point (Δ0, l0).
// Fitting follows §4.1.1: curvature over each triple of consecutive samples
// nominates candidate cutoffs (the "kneedle" heuristic), then the breakpoint
// and slopes are refined by least squares, picking the candidate with the
// lowest residual. For latency-vs-GPU% curves both slopes are negative and
// |k1| >> |k2|: steep improvement up to the knee, marginal beyond it.
#ifndef SRC_ML_PIECEWISE_LINEAR_H_
#define SRC_ML_PIECEWISE_LINEAR_H_

#include <optional>
#include <vector>

namespace mudi {

struct PiecewiseLinearModel {
  double k1 = 0.0;  // slope below the cutoff
  double k2 = 0.0;  // slope above the cutoff
  double x0 = 0.0;  // cutoff abscissa (Δ0)
  double y0 = 0.0;  // cutoff ordinate (l0)

  double Eval(double x) const {
    double k = x <= x0 ? k1 : k2;
    return k * (x - x0) + y0;
  }

  // Mean of the two slopes — the cluster-level interference score (§5.2).
  double AverageSlope() const { return 0.5 * (k1 + k2); }

  // For a monotone-decreasing curve (k1, k2 < 0), the smallest x in
  // [x_min, x_max] with Eval(x) <= target; nullopt if even x_max misses it.
  std::optional<double> MinXForValueAtMost(double target, double x_min, double x_max) const;
};

// Menger curvature of three points (inverse circumradius); 0 for collinear.
double MengerCurvature(double x1, double y1, double x2, double y2, double x3, double y3);

// Fits Eq. (1) to (x, y) samples (x need not be sorted; >= 4 samples).
// Candidate cutoffs are the interior sample points ranked by curvature; for
// each candidate the continuous two-segment least-squares fit is computed and
// the lowest-SSE fit wins.
PiecewiseLinearModel FitPiecewiseLinear(const std::vector<double>& x,
                                        const std::vector<double>& y);

// Sum of squared residuals of `model` on the samples.
double PiecewiseSse(const PiecewiseLinearModel& model, const std::vector<double>& x,
                    const std::vector<double>& y);

}  // namespace mudi

#endif  // SRC_ML_PIECEWISE_LINEAR_H_
