#include "src/ml/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.h"
#include "src/ml/matrix.h"

namespace mudi {

std::optional<double> PiecewiseLinearModel::MinXForValueAtMost(double target, double x_min,
                                                               double x_max) const {
  MUDI_CHECK_LE(x_min, x_max);
  if (Eval(x_max) > target) {
    return std::nullopt;
  }
  if (Eval(x_min) <= target) {
    return x_min;
  }
  // The curve is piece-wise linear and decreasing; invert the segment that
  // crosses `target`.
  auto invert = [&](double k, double anchor_x, double anchor_y) {
    // Solve k·(x − anchor_x) + anchor_y = target for x.
    return anchor_x + (target - anchor_y) / k;
  };
  double x;
  if (x0 > x_min && Eval(std::min(x0, x_max)) <= target) {
    // Crossing happens on the first (steep) segment.
    MUDI_CHECK_NE(k1, 0.0);
    x = invert(k1, x0, y0);
  } else {
    MUDI_CHECK_NE(k2, 0.0);
    x = invert(k2, x0, y0);
  }
  return std::clamp(x, x_min, x_max);
}

double MengerCurvature(double x1, double y1, double x2, double y2, double x3, double y3) {
  double area2 = std::abs((x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1));
  double d12 = std::hypot(x2 - x1, y2 - y1);
  double d23 = std::hypot(x3 - x2, y3 - y2);
  double d13 = std::hypot(x3 - x1, y3 - y1);
  double denom = d12 * d23 * d13;
  if (denom < 1e-12) {
    return 0.0;
  }
  return 2.0 * area2 / denom;
}

namespace {

// Least-squares fit of the continuous two-segment model with fixed cutoff
// abscissa `x0`: y = l0 + k1·min(x − x0, 0) + k2·max(x − x0, 0).
PiecewiseLinearModel FitWithCutoff(const std::vector<double>& x, const std::vector<double>& y,
                                   double x0) {
  size_t n = x.size();
  Matrix design(n, 3);
  for (size_t i = 0; i < n; ++i) {
    design.At(i, 0) = 1.0;
    design.At(i, 1) = std::min(x[i] - x0, 0.0);
    design.At(i, 2) = std::max(x[i] - x0, 0.0);
  }
  std::vector<double> w = RidgeSolve(design, y, 1e-9);
  PiecewiseLinearModel model;
  model.y0 = w[0];
  model.k1 = w[1];
  model.k2 = w[2];
  model.x0 = x0;
  return model;
}

}  // namespace

double PiecewiseSse(const PiecewiseLinearModel& model, const std::vector<double>& x,
                    const std::vector<double>& y) {
  MUDI_CHECK_EQ(x.size(), y.size());
  double sse = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double r = model.Eval(x[i]) - y[i];
    sse += r * r;
  }
  return sse;
}

PiecewiseLinearModel FitPiecewiseLinear(const std::vector<double>& x,
                                        const std::vector<double>& y) {
  MUDI_CHECK_EQ(x.size(), y.size());
  MUDI_CHECK_GE(x.size(), 4u);

  // Sort samples by x.
  std::vector<size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> xs(x.size()), ys(y.size());
  for (size_t i = 0; i < order.size(); ++i) {
    xs[i] = x[order[i]];
    ys[i] = y[order[i]];
  }

  // Every interior sorted sample is a cutoff candidate; curvature ranks them
  // but with <= ~10 profiling samples we can afford to evaluate all.
  PiecewiseLinearModel best;
  double best_sse = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i + 1 < xs.size(); ++i) {
    PiecewiseLinearModel model = FitWithCutoff(xs, ys, xs[i]);
    double sse = PiecewiseSse(model, xs, ys);
    if (sse < best_sse) {
      best_sse = sse;
      best = model;
    }
  }
  // Also consider midpoints between samples near the highest-curvature triple,
  // which refines the knee when the true cutoff falls between profile points.
  double best_curv = -1.0;
  size_t curv_idx = 1;
  for (size_t i = 1; i + 1 < xs.size(); ++i) {
    double c =
        MengerCurvature(xs[i - 1], ys[i - 1], xs[i], ys[i], xs[i + 1], ys[i + 1]);
    if (c > best_curv) {
      best_curv = c;
      curv_idx = i;
    }
  }
  for (double frac : {0.25, 0.5, 0.75}) {
    for (size_t base : {curv_idx - 1, curv_idx}) {
      if (base + 1 >= xs.size()) {
        continue;
      }
      double cand = xs[base] + frac * (xs[base + 1] - xs[base]);
      PiecewiseLinearModel model = FitWithCutoff(xs, ys, cand);
      double sse = PiecewiseSse(model, xs, ys);
      if (sse < best_sse) {
        best_sse = sse;
        best = model;
      }
    }
  }
  return best;
}

}  // namespace mudi
