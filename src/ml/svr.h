// Support-vector-regression-style kernel model. We use the kernel ridge
// (least-squares SVR) formulation: dual coefficients α solve
// (K + λI)·α = y, prediction is Σ αᵢ k(xᵢ, x) with an RBF kernel. This is the
// LS-SVM variant of SVR — same hypothesis class, closed-form training —
// fitting the paper's "lightweight models such as RF, SVR" requirement.
#ifndef SRC_ML_SVR_H_
#define SRC_ML_SVR_H_

#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

struct SvrOptions {
  double gamma = 0.5;    // RBF width: k(a,b) = exp(-gamma·|a-b|²) on scaled features
  double lambda = 1e-2;  // ridge regularization of the dual system
};

class SvrRegressor : public Regressor {
 public:
  explicit SvrRegressor(SvrOptions options = {}) : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "SVR"; }

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvrOptions options_;
  FeatureScaler scaler_;
  std::vector<std::vector<double>> support_;  // scaled training inputs
  std::vector<double> alpha_;
  double y_mean_ = 0.0;
};

}  // namespace mudi

#endif  // SRC_ML_SVR_H_
