// k-nearest-neighbour regressor (inverse-distance weighted) over standardized
// features; candidate model for the Interference Modeler.
#ifndef SRC_ML_KNN_H_
#define SRC_ML_KNN_H_

#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(size_t k = 3) : k_(k) {}

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "kNN"; }

 private:
  size_t k_;
  FeatureScaler scaler_;
  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_;
};

}  // namespace mudi

#endif  // SRC_ML_KNN_H_
