// Memoization for offline model selection. A fitted regressor is a pure
// function of its training data and fold count (every model in the zoo is
// internally seeded), so a fit keyed by a fingerprint of exactly those inputs
// can be reused across repeated `policy.initialize` calls, re-tunes, and
// runs that profile identical curves — which is what makes warm Mudi runs
// skip the ~2 s model-selection bill entirely (see DESIGN.md §12).
#ifndef SRC_ML_FIT_CACHE_H_
#define SRC_ML_FIT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/ml/regressor.h"

namespace mudi {

// 128-bit FNV-style digest over the bit patterns of the training doubles.
// Bit patterns — not values — so two datasets fingerprint equal only if every
// float is identical to the last bit, matching the repo's determinism bar.
struct FitFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const FitFingerprint& o) const { return hi == o.hi && lo == o.lo; }
  bool operator<(const FitFingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

FitFingerprint FingerprintSamples(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y, size_t folds);

// One memoized selection outcome: the winning model refit on all data, plus
// the metadata callers surface (Fig. 11 labels, CV score). The model is
// shared immutably — Regressor::Predict is const, so concurrent readers and
// multiple InterferenceModelers can hold the same instance.
struct CachedFit {
  std::shared_ptr<const Regressor> model;
  std::string model_name;
  double cv_error = 0.0;
};

// Process-global, mutex-guarded cache. Deliberately unbounded: an entry is
// ~one small fitted model, and a process fits at most a few hundred distinct
// (service, param) datasets. Clear() exists for tests that must exercise the
// cold path.
class FitCache {
 public:
  static FitCache& Global();

  // Returns the cached fit or nullptr. Counts a hit or miss either way.
  std::shared_ptr<const CachedFit> Find(const FitFingerprint& key);
  void Insert(const FitFingerprint& key, std::shared_ptr<const CachedFit> fit);
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  // Guards entries_/hits_/misses_ against concurrent FitPool shards; the map
  // is content-addressed, so lock order never influences fitted values.
  MUDI_GUARDED_STATE("protects the memo map during parallel fit shards");
  mutable std::mutex mu_;
  std::map<FitFingerprint, std::shared_ptr<const CachedFit>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mudi

#endif  // SRC_ML_FIT_CACHE_H_
