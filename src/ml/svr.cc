#include "src/ml/svr.h"

#include <cmath>

#include "src/common/check.h"
#include "src/ml/matrix.h"

namespace mudi {

double SvrRegressor::Kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  double d2 = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    double diff = a[j] - b[j];
    d2 += diff * diff;
  }
  return std::exp(-options_.gamma * d2);
}

void SvrRegressor::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  MUDI_CHECK(!x.empty());
  MUDI_CHECK_EQ(x.size(), y.size());
  scaler_.Fit(x);
  support_ = scaler_.TransformAll(x);

  size_t n = support_.size();
  y_mean_ = 0.0;
  for (double v : y) {
    y_mean_ += v;
  }
  y_mean_ /= static_cast<double>(n);
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) {
    centered[i] = y[i] - y_mean_;
  }

  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double v = Kernel(support_[i], support_[j]);
      k.At(i, j) = v;
      k.At(j, i) = v;
    }
    k.At(i, i) += options_.lambda;
  }
  Matrix l;
  double jitter = 1e-8;
  while (!CholeskyDecompose(k, l)) {
    for (size_t i = 0; i < n; ++i) {
      k.At(i, i) += jitter;
    }
    jitter *= 10.0;
    MUDI_CHECK_LT(jitter, 1.0);
  }
  alpha_ = CholeskySolve(l, centered);
}

double SvrRegressor::Predict(const std::vector<double>& x) const {
  MUDI_CHECK(!support_.empty());
  auto q = scaler_.Transform(x);
  double out = y_mean_;
  for (size_t i = 0; i < support_.size(); ++i) {
    out += alpha_[i] * Kernel(support_[i], q);
  }
  return out;
}

}  // namespace mudi
