#include "src/ml/matrix.h"

#include <cmath>
#include "src/common/float_eq.h"

namespace mudi {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) {
    m.At(i, 0) = values[i];
  }
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  MUDI_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (ExactEq(a, 0.0)) {  // skip zero rows: sparse speedup
        continue;
      }
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  MUDI_CHECK_EQ(rows_, other.rows_);
  MUDI_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * factor;
  }
  return out;
}

std::vector<double> Matrix::Column(size_t c) const {
  MUDI_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    out[r] = At(r, c);
  }
  return out;
}

bool CholeskyDecompose(const Matrix& a, Matrix& l) {
  MUDI_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  l = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= l.At(i, k) * l.At(j, k);
      }
      if (i == j) {
        if (sum <= 1e-12) {
          return false;
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return true;
}

std::vector<double> CholeskySolve(const Matrix& l, const std::vector<double>& b) {
  size_t n = l.rows();
  MUDI_CHECK_EQ(n, b.size());
  // Forward substitution: L·z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) {
      sum -= l.At(i, k) * z[k];
    }
    z[i] = sum / l.At(i, i);
  }
  // Back substitution: Lᵀ·x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) {
      sum -= l.At(k, ii) * x[k];
    }
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

std::vector<double> RidgeSolve(const Matrix& x, const std::vector<double>& y, double lambda) {
  MUDI_CHECK_EQ(x.rows(), y.size());
  MUDI_CHECK_GE(lambda, 0.0);
  Matrix xt = x.Transpose();
  Matrix gram = xt.Multiply(x);
  for (size_t i = 0; i < gram.rows(); ++i) {
    gram.At(i, i) += lambda;
  }
  Matrix rhs_mat = xt.Multiply(Matrix::ColumnVector(y));
  std::vector<double> rhs = rhs_mat.Column(0);

  Matrix l;
  double jitter = 1e-10;
  while (!CholeskyDecompose(gram, l)) {
    for (size_t i = 0; i < gram.rows(); ++i) {
      gram.At(i, i) += jitter;
    }
    jitter *= 10.0;
    MUDI_CHECK_LT(jitter, 1.0);  // would indicate a degenerate design matrix
  }
  return CholeskySolve(l, rhs);
}

}  // namespace mudi
