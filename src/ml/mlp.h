// Small fully-connected MLP regressor (one hidden tanh layer, Adam), used
// both as an Interference-Modeler candidate and as the "MLP fitting" baseline
// of Tab. 2.
#ifndef SRC_ML_MLP_H_
#define SRC_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/regressor.h"

namespace mudi {

struct MlpOptions {
  size_t hidden_units = 16;
  size_t epochs = 600;
  double learning_rate = 1e-2;
  uint64_t seed = 13;
};

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpOptions options = {}) : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "MLP"; }

 private:
  MlpOptions options_;
  FeatureScaler scaler_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  // Weights: hidden layer (h × d) + bias (h), output layer (h) + bias.
  std::vector<std::vector<double>> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace mudi

#endif  // SRC_ML_MLP_H_
