#include "src/ml/knn.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace mudi {

void KnnRegressor::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  MUDI_CHECK(!x.empty());
  MUDI_CHECK_EQ(x.size(), y.size());
  scaler_.Fit(x);
  train_x_ = scaler_.TransformAll(x);
  train_y_ = y;
}

double KnnRegressor::Predict(const std::vector<double>& x) const {
  MUDI_CHECK(!train_x_.empty());
  auto q = scaler_.Transform(x);
  std::vector<std::pair<double, double>> dist_y;  // (distance, target)
  dist_y.reserve(train_x_.size());
  for (size_t i = 0; i < train_x_.size(); ++i) {
    double d2 = 0.0;
    for (size_t j = 0; j < q.size(); ++j) {
      double diff = train_x_[i][j] - q[j];
      d2 += diff * diff;
    }
    dist_y.emplace_back(std::sqrt(d2), train_y_[i]);
  }
  size_t k = std::min(k_, dist_y.size());
  std::partial_sort(dist_y.begin(), dist_y.begin() + static_cast<long>(k), dist_y.end());
  double weight_sum = 0.0;
  double value = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double w = 1.0 / (dist_y[i].first + 1e-6);
    weight_sum += w;
    value += w * dist_y[i].second;
  }
  return value / weight_sum;
}

}  // namespace mudi
