// Common interface for the lightweight regression models the Interference
// Modeler chooses among (random forest, SVR, kNN, linear, MLP). The paper
// (§4.1.2) trains one model per output metric and selects the best per metric.
#ifndef SRC_ML_REGRESSOR_H_
#define SRC_ML_REGRESSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mudi {

class Regressor {
 public:
  virtual ~Regressor() = default;

  // Fits on feature rows x (n × d) and targets y (n). Must tolerate repeated
  // calls (refit from scratch each time).
  virtual void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) = 0;

  // Predicts the target for one feature row. Only valid after Fit().
  virtual double Predict(const std::vector<double>& x) const = 0;

  virtual std::string name() const = 0;
};

using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

// Per-feature standardization (zero mean, unit variance) shared by the
// distance- and gradient-based models.
class FeatureScaler {
 public:
  void Fit(const std::vector<std::vector<double>>& x);
  std::vector<double> Transform(const std::vector<double>& x) const;
  std::vector<std::vector<double>> TransformAll(const std::vector<std::vector<double>>& x) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace mudi

#endif  // SRC_ML_REGRESSOR_H_
