#include "src/ml/linear_regression.h"

#include "src/common/check.h"
#include "src/ml/matrix.h"

namespace mudi {

void LinearRegressor::Fit(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) {
  MUDI_CHECK(!x.empty());
  MUDI_CHECK_EQ(x.size(), y.size());
  scaler_.Fit(x);
  auto xs = scaler_.TransformAll(x);
  size_t d = xs[0].size();
  Matrix design(xs.size(), d + 1);
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      design.At(i, j) = xs[i][j];
    }
    design.At(i, d) = 1.0;  // bias
  }
  weights_ = RidgeSolve(design, y, lambda_);
}

double LinearRegressor::Predict(const std::vector<double>& x) const {
  MUDI_CHECK(!weights_.empty());
  auto xs = scaler_.Transform(x);
  double out = weights_.back();
  for (size_t j = 0; j < xs.size(); ++j) {
    out += weights_[j] * xs[j];
  }
  return out;
}

}  // namespace mudi
