#include "src/ml/regressor.h"

#include <cmath>

#include "src/common/check.h"

namespace mudi {

void FeatureScaler::Fit(const std::vector<std::vector<double>>& x) {
  MUDI_CHECK(!x.empty());
  size_t d = x[0].size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : x) {
    MUDI_CHECK_EQ(row.size(), d);
    for (size_t j = 0; j < d; ++j) {
      mean_[j] += row[j];
    }
  }
  for (size_t j = 0; j < d; ++j) {
    mean_[j] /= static_cast<double>(x.size());
  }
  std::vector<double> var(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      var[j] += (row[j] - mean_[j]) * (row[j] - mean_[j]);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> FeatureScaler::Transform(const std::vector<double>& x) const {
  MUDI_CHECK_EQ(x.size(), mean_.size());
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

std::vector<std::vector<double>> FeatureScaler::TransformAll(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    out.push_back(Transform(row));
  }
  return out;
}

}  // namespace mudi
