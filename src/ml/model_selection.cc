#include "src/ml/model_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/ml/knn.h"
#include "src/ml/linear_regression.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"

namespace mudi {

double KFoldRelativeError(const RegressorFactory& factory,
                          const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, size_t folds) {
  MUDI_CHECK_EQ(x.size(), y.size());
  MUDI_CHECK_GE(x.size(), 2u);
  folds = std::min(folds, x.size());
  MUDI_CHECK_GE(folds, 2u);

  double total_err = 0.0;
  size_t total_count = 0;
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < x.size(); ++i) {
      if (i % folds == fold) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    if (train_x.empty() || test_x.empty()) {
      continue;
    }
    auto model = factory();
    model->Fit(train_x, train_y);
    for (size_t i = 0; i < test_x.size(); ++i) {
      double pred = model->Predict(test_x[i]);
      double denom = std::max(std::abs(test_y[i]), 1e-6);
      total_err += std::abs(pred - test_y[i]) / denom;
      ++total_count;
    }
  }
  MUDI_CHECK_GT(total_count, 0u);
  return total_err / static_cast<double>(total_count);
}

std::vector<RegressorFactory> DefaultRegressorZoo() {
  return {
      [] { return std::unique_ptr<Regressor>(std::make_unique<RandomForestRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<SvrRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<KnnRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<LinearRegressor>()); },
      [] {
        MlpOptions options;
        options.epochs = 300;  // selection-time budget; the winner refits fully
        return std::unique_ptr<Regressor>(std::make_unique<MlpRegressor>(options));
      },
  };
}

ModelSelectionResult SelectBestModel(const std::vector<RegressorFactory>& factories,
                                     const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y, size_t folds) {
  MUDI_CHECK(!factories.empty());
  ModelSelectionResult result;
  double best_err = std::numeric_limits<double>::infinity();
  const RegressorFactory* best_factory = nullptr;
  for (const auto& factory : factories) {
    double err = KFoldRelativeError(factory, x, y, folds);
    if (err < best_err) {
      best_err = err;
      best_factory = &factory;
    }
  }
  MUDI_CHECK(best_factory != nullptr);
  result.model = (*best_factory)();
  result.model->Fit(x, y);
  result.model_name = result.model->name();
  result.cv_error = best_err;
  return result;
}

}  // namespace mudi
