#include "src/ml/model_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/ml/fit_cache.h"
#include "src/ml/fit_pool.h"
#include "src/ml/knn.h"
#include "src/ml/linear_regression.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"

namespace mudi {

double KFoldRelativeError(const RegressorFactory& factory,
                          const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y, size_t folds) {
  MUDI_CHECK_EQ(x.size(), y.size());
  MUDI_CHECK_GE(x.size(), 2u);
  folds = std::min(folds, x.size());
  MUDI_CHECK_GE(folds, 2u);

  double total_err = 0.0;
  size_t total_count = 0;
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < x.size(); ++i) {
      if (i % folds == fold) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    if (train_x.empty() || test_x.empty()) {
      continue;
    }
    auto model = factory();
    model->Fit(train_x, train_y);
    for (size_t i = 0; i < test_x.size(); ++i) {
      double pred = model->Predict(test_x[i]);
      double denom = std::max(std::abs(test_y[i]), 1e-6);
      total_err += std::abs(pred - test_y[i]) / denom;
      ++total_count;
    }
  }
  MUDI_CHECK_GT(total_count, 0u);
  return total_err / static_cast<double>(total_count);
}

std::vector<RegressorFactory> DefaultRegressorZoo() {
  return {
      [] { return std::unique_ptr<Regressor>(std::make_unique<RandomForestRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<SvrRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<KnnRegressor>()); },
      [] { return std::unique_ptr<Regressor>(std::make_unique<LinearRegressor>()); },
      [] {
        MlpOptions options;
        options.epochs = 300;  // selection-time budget; the winner refits fully
        return std::unique_ptr<Regressor>(std::make_unique<MlpRegressor>(options));
      },
  };
}

ModelSelectionResult SelectBestModel(const std::vector<RegressorFactory>& factories,
                                     const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y, size_t folds) {
  MUDI_CHECK(!factories.empty());
  ModelSelectionResult result;
  double best_err = std::numeric_limits<double>::infinity();
  const RegressorFactory* best_factory = nullptr;
  for (const auto& factory : factories) {
    double err = KFoldRelativeError(factory, x, y, folds);
    if (err < best_err) {
      best_err = err;
      best_factory = &factory;
    }
  }
  MUDI_CHECK(best_factory != nullptr);
  result.model = (*best_factory)();
  result.model->Fit(x, y);
  result.model_name = result.model->name();
  result.cv_error = best_err;
  return result;
}

std::vector<SharedSelectionResult> SelectBestModelsCached(
    const std::vector<RegressorFactory>& factories, const std::vector<FitTask>& tasks) {
  MUDI_CHECK(!factories.empty());
  std::vector<SharedSelectionResult> results(tasks.size());

  // Resolve cache hits first so only genuinely new datasets pay for CV.
  std::vector<size_t> pending;  // indices into tasks, ascending
  std::vector<FitFingerprint> keys(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const FitTask& task = tasks[i];
    MUDI_CHECK(task.x != nullptr && task.y != nullptr);
    keys[i] = FingerprintSamples(*task.x, *task.y, task.folds);
    if (std::shared_ptr<const CachedFit> hit = FitCache::Global().Find(keys[i])) {
      results[i].model = hit->model;
      results[i].model_name = hit->model_name;
      results[i].cv_error = hit->cv_error;
      results[i].from_cache = true;
    } else {
      pending.push_back(i);
    }
  }
  if (pending.empty()) {
    return results;
  }

  // Phase A — cross-validate every (pending task, factory) shard. Shard
  // order is fixed (task-major), each shard is pure and internally seeded,
  // and each writes only errors[shard], so the matrix is thread-count
  // independent.
  const size_t num_factories = factories.size();
  std::vector<double> errors(pending.size() * num_factories, 0.0);
  FitPool::ParallelFor(errors.size(), [&](size_t shard) {
    const FitTask& task = tasks[pending[shard / num_factories]];
    errors[shard] =
        KFoldRelativeError(factories[shard % num_factories], *task.x, *task.y, task.folds);
  });

  // Phase B — serial winner pick, factory order, strict `<`: byte-for-byte
  // the SelectBestModel rule, applied to the deterministic error matrix.
  std::vector<size_t> winner(pending.size(), 0);
  for (size_t p = 0; p < pending.size(); ++p) {
    double best_err = std::numeric_limits<double>::infinity();
    for (size_t f = 0; f < num_factories; ++f) {
      double err = errors[p * num_factories + f];
      if (err < best_err) {
        best_err = err;
        winner[p] = f;
      }
    }
    results[pending[p]].cv_error = best_err;
  }

  // Phase C — refit each winner on all data, one shard per pending task.
  std::vector<std::shared_ptr<const Regressor>> refit(pending.size());
  FitPool::ParallelFor(pending.size(), [&](size_t p) {
    const FitTask& task = tasks[pending[p]];
    std::unique_ptr<Regressor> model = factories[winner[p]]();
    model->Fit(*task.x, *task.y);
    refit[p] = std::shared_ptr<const Regressor>(std::move(model));
  });

  // Fixed-order reduction + cache fill on the calling thread.
  for (size_t p = 0; p < pending.size(); ++p) {
    size_t i = pending[p];
    results[i].model = refit[p];
    results[i].model_name = refit[p]->name();
    auto cached = std::make_shared<CachedFit>();
    cached->model = results[i].model;
    cached->model_name = results[i].model_name;
    cached->cv_error = results[i].cv_error;
    FitCache::Global().Insert(keys[i], std::move(cached));
  }
  return results;
}

}  // namespace mudi
