// Small dense linear-algebra kernel backing the ML substrate: just enough for
// ridge regression normal equations, Gaussian-process posteriors (Cholesky),
// and MLP forward/backward passes. Row-major, bounds-checked via MUDI_CHECK.
#ifndef SRC_ML_MATRIX_H_
#define SRC_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace mudi {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);
  // Builds a column vector from `values`.
  static Matrix ColumnVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    MUDI_CHECK_LT(r, rows_);
    MUDI_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    MUDI_CHECK_LT(r, rows_);
    MUDI_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  Matrix Add(const Matrix& other) const;
  Matrix Scale(double factor) const;

  // Extracts column c as a flat vector.
  std::vector<double> Column(size_t c) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
// Returns false (leaving `l` unspecified) if A is not SPD within tolerance;
// callers typically retry with more jitter on the diagonal.
bool CholeskyDecompose(const Matrix& a, Matrix& l);

// Solves A·x = b given the Cholesky factor L of A (forward+back substitution).
std::vector<double> CholeskySolve(const Matrix& l, const std::vector<double>& b);

// Solves the ridge-regularized least squares (XᵀX + λI)·w = Xᵀy.
// X is n×d (rows = samples); returns the d weights.
std::vector<double> RidgeSolve(const Matrix& x, const std::vector<double>& y, double lambda);

}  // namespace mudi

#endif  // SRC_ML_MATRIX_H_
