// Inference request-arrival generation.
//
// QpsProfile abstracts the request rate of a service over virtual time; the
// serving simulator draws per-interval Poisson counts (or exponential gaps)
// against it. Implementations cover the paper's scenarios: constant-rate
// Poisson (§7.1: mean inter-arrival 5 ms), the Alibaba-style fluctuating
// traces of Fig. 1(a) (random walk with inflection points, no periodicity),
// load scaling for Fig. 15, and transient bursts for Fig. 16.
#ifndef SRC_WORKLOAD_REQUEST_GENERATOR_H_
#define SRC_WORKLOAD_REQUEST_GENERATOR_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace mudi {

class QpsProfile {
 public:
  virtual ~QpsProfile() = default;
  // Instantaneous queries-per-second at virtual time t.
  virtual double QpsAt(TimeMs t) const = 0;
};

class ConstantQps : public QpsProfile {
 public:
  explicit ConstantQps(double qps);
  double QpsAt(TimeMs t) const override;

 private:
  double qps_;
};

// Random-walk QPS between [min_qps, max_qps] with occasional inflection
// points where the drift direction/steepness changes (Fig. 1(a) shape).
// The walk is pre-sampled on a fixed grid so QpsAt is deterministic.
class FluctuatingQps : public QpsProfile {
 public:
  struct Options {
    double min_qps = 50.0;
    double max_qps = 400.0;
    TimeMs horizon_ms = 2.0 * kMsPerHour;
    TimeMs step_ms = 5.0 * kMsPerSecond;
    // Probability per step of an inflection (drift re-draw).
    double inflection_prob = 0.02;
    // Per-step noise as a fraction of the qps range.
    double noise_frac = 0.01;
    uint64_t seed = 1;
  };

  explicit FluctuatingQps(Options options);
  double QpsAt(TimeMs t) const override;

 private:
  Options options_;
  std::vector<double> samples_;
};

// Multiplies an underlying profile by a constant factor (Fig. 15 loads).
class ScaledQps : public QpsProfile {
 public:
  ScaledQps(std::shared_ptr<const QpsProfile> base, double factor);
  double QpsAt(TimeMs t) const override;

 private:
  std::shared_ptr<const QpsProfile> base_;
  double factor_;
};

// Injects multiplicative bursts into a base profile during fixed windows
// (Fig. 16: QPS momentarily bursts to 3× at t=100 s).
class BurstyQps : public QpsProfile {
 public:
  struct Burst {
    TimeMs start_ms;
    TimeMs end_ms;
    double factor;
  };

  BurstyQps(std::shared_ptr<const QpsProfile> base, std::vector<Burst> bursts);
  double QpsAt(TimeMs t) const override;

 private:
  std::shared_ptr<const QpsProfile> base_;
  std::vector<Burst> bursts_;
};

// Draws the next exponential inter-arrival gap for the instantaneous rate at
// time `now` (thinning-free approximation: adequate when rate varies slowly
// relative to gaps, which holds for all profiles above).
TimeMs NextArrivalGap(const QpsProfile& profile, TimeMs now, Rng& rng);

}  // namespace mudi

#endif  // SRC_WORKLOAD_REQUEST_GENERATOR_H_
