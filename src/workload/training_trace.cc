#include "src/workload/training_trace.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace mudi {

void ScaleGpuHourRange(TaskScale scale, double* lo_hours, double* hi_hours) {
  switch (scale) {
    case TaskScale::kSmall:
      *lo_hours = 0.1;
      *hi_hours = 1.0;
      return;
    case TaskScale::kMedium:
      *lo_hours = 1.0;
      *hi_hours = 10.0;
      return;
    case TaskScale::kLarge:
      *lo_hours = 10.0;
      *hi_hours = 100.0;
      return;
    case TaskScale::kXLarge:
      // Paper: > 100 GPU-hours; capped so the XL tail does not dominate the
      // compressed-simulation makespan.
      *lo_hours = 100.0;
      *hi_hours = 160.0;
      return;
  }
  MUDI_CHECK(false);
}

std::vector<TrainingArrival> GenerateTrainingTrace(const TrainingTraceOptions& options) {
  MUDI_CHECK_GT(options.num_tasks, 0u);
  MUDI_CHECK_GT(options.mean_interarrival_ms, 0.0);
  MUDI_CHECK_GT(options.duration_compression, 0.0);

  const auto& types = ModelZoo::TrainingTasks();
  std::vector<double> mix;
  mix.reserve(types.size());
  for (const auto& t : types) {
    mix.push_back(t.mix_fraction);
  }

  Rng rng(options.seed);
  std::vector<TrainingArrival> trace;
  trace.reserve(options.num_tasks);
  TimeMs now = 0.0;
  for (size_t i = 0; i < options.num_tasks; ++i) {
    // Diurnal modulation: rate swings 3:1 across the period, so inter-arrival
    // gaps stretch during the "night" phase.
    double rate_factor = 1.0;
    if (options.diurnal) {
      double phase = 2.0 * M_PI * now / options.diurnal_period_ms;
      rate_factor = 1.0 + 0.5 * std::sin(phase);  // in [0.5, 1.5]
    }
    now += rng.ExponentialMean(options.mean_interarrival_ms / rate_factor);

    TrainingArrival arrival;
    arrival.task_id = static_cast<int>(i);
    arrival.arrival_ms = now;
    arrival.type_index = rng.WeightedIndex(mix);

    double lo = 0.0, hi = 0.0;
    ScaleGpuHourRange(types[arrival.type_index].scale, &lo, &hi);
    // Log-uniform within the class: heavy-tailed durations like Philly.
    double hours = std::exp(rng.Uniform(std::log(lo), std::log(hi)));
    arrival.work_full_gpu_ms = hours * kMsPerHour / options.duration_compression;
    trace.push_back(arrival);
  }
  return trace;
}

}  // namespace mudi
