#include "src/workload/models.h"

#include "src/common/check.h"

namespace mudi {

const char* TaskScaleName(TaskScale scale) {
  switch (scale) {
    case TaskScale::kSmall:
      return "S";
    case TaskScale::kMedium:
      return "M";
    case TaskScale::kLarge:
      return "L";
    case TaskScale::kXLarge:
      return "XL";
  }
  return "?";
}

namespace {

std::vector<InferenceServiceSpec> BuildInferenceServices() {
  std::vector<InferenceServiceSpec> services;

  {
    InferenceServiceSpec s;
    s.name = "ResNet50";
    s.domain = "Image Classification";
    s.dataset = "ImageNet";
    s.params_millions = 25.6;
    s.slo_ms = 150.0;
    s.arch = MakeArchitecture({{LayerType::kConv, 53},
                               {LayerType::kBatchNorm, 53},
                               {LayerType::kActivation, 49},
                               {LayerType::kPooling, 2},
                               {LayerType::kFc, 1},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 16}});
    s.preprocess_ms_per_sample = 0.03;  // image decode/resize, multi-threaded
    s.transfer_ms_per_sample = 0.30;    // 224x224x3 fp32 over contended PCIe
    s.exec_ms_per_sample_full = 0.09;
    s.batch_overhead_ms = 2.0;
    s.control_flow_fraction = 0.15;
    s.saturation_base = 0.15;
    s.saturation_per_sample = 0.0020;
    s.weights_mb = 100.0;
    s.activation_mb_per_sample = 30.0;
    s.mem_bw_intensity = 0.70;
    services.push_back(s);
  }
  {
    InferenceServiceSpec s;
    s.name = "Inception";
    s.domain = "Image Classification";
    s.dataset = "ImageNet";
    s.params_millions = 23.8;
    s.slo_ms = 120.0;
    s.arch = MakeArchitecture({{LayerType::kConv, 149},
                               {LayerType::kBatchNorm, 149},
                               {LayerType::kActivation, 149},
                               {LayerType::kPooling, 14},
                               {LayerType::kFc, 1},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 30}});
    s.preprocess_ms_per_sample = 0.028;
    s.transfer_ms_per_sample = 0.22;
    s.exec_ms_per_sample_full = 0.08;
    s.batch_overhead_ms = 2.5;
    s.control_flow_fraction = 0.18;
    s.saturation_base = 0.15;
    s.saturation_per_sample = 0.0018;
    s.weights_mb = 95.0;
    s.activation_mb_per_sample = 26.0;
    s.mem_bw_intensity = 0.65;
    services.push_back(s);
  }
  {
    InferenceServiceSpec s;
    s.name = "GPT2";
    s.domain = "Text Generation";
    s.dataset = "SQuAD";
    s.params_millions = 335.0;
    s.slo_ms = 100.0;
    s.arch = MakeArchitecture({{LayerType::kDecoder, 24},
                               {LayerType::kEmbedding, 2},
                               {LayerType::kLinear, 97},
                               {LayerType::kActivation, 24},
                               {LayerType::kOther, 50}});
    s.preprocess_ms_per_sample = 0.025;  // tokenization
    s.transfer_ms_per_sample = 0.05;     // token ids only
    s.exec_ms_per_sample_full = 0.20;
    s.batch_overhead_ms = 3.0;
    s.control_flow_fraction = 0.72;  // sequential generation control flow (§2.2.1)
    s.saturation_base = 0.20;
    s.saturation_per_sample = 0.0015;
    s.weights_mb = 1340.0;
    s.activation_mb_per_sample = 40.0;
    s.mem_bw_intensity = 0.80;
    services.push_back(s);
  }
  {
    InferenceServiceSpec s;
    s.name = "BERT";
    s.domain = "Question Answering";
    s.dataset = "SQuAD";
    s.params_millions = 110.0;
    s.slo_ms = 330.0;
    s.arch = MakeArchitecture({{LayerType::kEncoder, 12},
                               {LayerType::kEmbedding, 3},
                               {LayerType::kLinear, 74},
                               {LayerType::kActivation, 12},
                               {LayerType::kFc, 1},
                               {LayerType::kOther, 25}});
    s.preprocess_ms_per_sample = 0.022;
    s.transfer_ms_per_sample = 0.05;
    s.exec_ms_per_sample_full = 0.35;
    s.batch_overhead_ms = 3.0;
    s.control_flow_fraction = 0.35;
    s.saturation_base = 0.22;
    s.saturation_per_sample = 0.0016;
    s.weights_mb = 440.0;
    s.activation_mb_per_sample = 28.0;
    s.mem_bw_intensity = 0.75;
    services.push_back(s);
  }
  {
    InferenceServiceSpec s;
    s.name = "RoBERTa";
    s.domain = "Language Modeling";
    s.dataset = "SQuAD";
    s.params_millions = 125.0;
    s.slo_ms = 110.0;
    s.arch = MakeArchitecture({{LayerType::kEncoder, 12},
                               {LayerType::kEmbedding, 3},
                               {LayerType::kLinear, 74},
                               {LayerType::kActivation, 12},
                               {LayerType::kFc, 1},
                               {LayerType::kOther, 26}});
    s.preprocess_ms_per_sample = 0.024;
    s.transfer_ms_per_sample = 0.04;
    s.exec_ms_per_sample_full = 0.18;
    s.batch_overhead_ms = 2.8;
    s.control_flow_fraction = 0.32;
    s.saturation_base = 0.22;
    s.saturation_per_sample = 0.0016;
    s.weights_mb = 500.0;
    s.activation_mb_per_sample = 28.0;
    s.mem_bw_intensity = 0.75;
    services.push_back(s);
  }
  {
    InferenceServiceSpec s;
    s.name = "YOLOS";
    s.domain = "Object Detection";
    s.dataset = "COCO";
    s.params_millions = 30.7;
    s.slo_ms = 2200.0;
    s.arch = MakeArchitecture({{LayerType::kEncoder, 12},
                               {LayerType::kEmbedding, 2},
                               {LayerType::kLinear, 74},
                               {LayerType::kConv, 1},
                               {LayerType::kActivation, 12},
                               {LayerType::kFc, 1},
                               {LayerType::kOther, 24}});
    s.preprocess_ms_per_sample = 0.06;  // high-res image preprocessing
    s.transfer_ms_per_sample = 0.40;
    s.exec_ms_per_sample_full = 1.50;
    s.batch_overhead_ms = 5.0;
    s.control_flow_fraction = 0.25;
    s.saturation_base = 0.30;
    s.saturation_per_sample = 0.0022;
    s.weights_mb = 125.0;
    s.activation_mb_per_sample = 60.0;
    s.mem_bw_intensity = 0.60;
    services.push_back(s);
  }
  return services;
}

std::vector<TrainingTaskSpec> BuildTrainingTasks() {
  std::vector<TrainingTaskSpec> tasks;

  {
    TrainingTaskSpec t;
    t.name = "VGG16";
    t.domain = "Image Classification";
    t.dataset = "CIFAR10";
    t.optimizer = "Adam";
    t.batch_size = 512;
    t.scale = TaskScale::kSmall;
    t.mix_fraction = 0.14;
    t.arch = MakeArchitecture({{LayerType::kConv, 13},
                               {LayerType::kFc, 3},
                               {LayerType::kActivation, 15},
                               {LayerType::kPooling, 5},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 2}});
    t.iter_ms_full = 90.0;
    t.saturation_gpu = 0.95;
    t.cpu_load = 0.12;
    t.pcie_mb_per_iter = 6.0;
    t.weights_mb = 528.0;
    t.optimizer_state_factor = 3.0;  // Adam
    t.activation_mb = 12000.0;
    t.mem_bw_intensity = 0.75;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "SqueezeNet";
    t.domain = "Image Classification";
    t.dataset = "CIFAR10";
    t.optimizer = "Adam";
    t.batch_size = 512;
    t.scale = TaskScale::kSmall;
    t.mix_fraction = 0.14;
    t.arch = MakeArchitecture({{LayerType::kConv, 26},
                               {LayerType::kActivation, 26},
                               {LayerType::kPooling, 4},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 9}});
    t.iter_ms_full = 40.0;
    t.saturation_gpu = 0.60;
    t.cpu_load = 0.10;
    t.pcie_mb_per_iter = 6.0;
    t.weights_mb = 5.0;
    t.optimizer_state_factor = 3.0;
    t.activation_mb = 5000.0;
    t.mem_bw_intensity = 0.45;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "ResNet50";
    t.domain = "Image Classification";
    t.dataset = "CIFAR100";
    t.optimizer = "Adam";
    t.batch_size = 1024;
    t.scale = TaskScale::kSmall;
    t.mix_fraction = 0.14;
    t.arch = MakeArchitecture({{LayerType::kConv, 53},
                               {LayerType::kBatchNorm, 53},
                               {LayerType::kActivation, 49},
                               {LayerType::kPooling, 2},
                               {LayerType::kFc, 1},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 16}});
    t.iter_ms_full = 140.0;
    t.saturation_gpu = 0.95;
    t.cpu_load = 0.15;
    t.pcie_mb_per_iter = 12.0;
    t.weights_mb = 100.0;
    t.optimizer_state_factor = 3.0;
    t.activation_mb = 20000.0;
    t.mem_bw_intensity = 0.80;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "NCF";
    t.domain = "Recommendation System";
    t.dataset = "MovieLens";
    t.optimizer = "SGD";
    t.batch_size = 1024;
    t.scale = TaskScale::kMedium;
    t.mix_fraction = 0.12;
    t.arch = MakeArchitecture({{LayerType::kEmbedding, 4},
                               {LayerType::kLinear, 4},
                               {LayerType::kFc, 1},
                               {LayerType::kActivation, 4},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 2}});
    t.iter_ms_full = 25.0;
    t.saturation_gpu = 0.50;
    t.cpu_load = 0.08;
    t.pcie_mb_per_iter = 2.0;
    t.weights_mb = 60.0;
    t.optimizer_state_factor = 2.0;  // SGD
    t.activation_mb = 4000.0;
    t.mem_bw_intensity = 0.35;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "LSTM";
    t.domain = "Language Modeling";
    t.dataset = "Wikitext-2";
    t.optimizer = "Adadelta";
    t.batch_size = 256;
    t.scale = TaskScale::kMedium;
    t.mix_fraction = 0.12;
    t.arch = MakeArchitecture({{LayerType::kEmbedding, 1},
                               {LayerType::kFc, 1},
                               {LayerType::kActivation, 2},
                               {LayerType::kOther, 3}});
    t.iter_ms_full = 70.0;
    t.saturation_gpu = 0.55;  // launch-bound RNN steps
    t.cpu_load = 0.10;
    t.pcie_mb_per_iter = 1.0;
    t.weights_mb = 85.0;
    t.optimizer_state_factor = 3.0;
    t.activation_mb = 6000.0;
    t.mem_bw_intensity = 0.40;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "AD-GCL";
    t.domain = "Social Network";
    t.dataset = "Reddit";
    t.optimizer = "Adam";
    t.batch_size = 64;
    t.scale = TaskScale::kMedium;
    t.mix_fraction = 0.12;
    t.arch = MakeArchitecture({{LayerType::kLinear, 4},
                               {LayerType::kActivation, 5},
                               {LayerType::kBatchNorm, 5},
                               {LayerType::kPooling, 1},
                               {LayerType::kOther, 10}});
    t.iter_ms_full = 110.0;
    t.saturation_gpu = 0.70;
    t.cpu_load = 0.18;  // graph sampling on CPU
    t.pcie_mb_per_iter = 8.0;
    t.weights_mb = 20.0;
    t.optimizer_state_factor = 3.0;
    t.activation_mb = 8000.0;
    t.mem_bw_intensity = 0.55;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "BERT";
    t.domain = "Question Answering";
    t.dataset = "SQuAD";
    t.optimizer = "AdamW";
    t.batch_size = 32;
    t.scale = TaskScale::kLarge;
    t.mix_fraction = 0.12;
    t.arch = MakeArchitecture({{LayerType::kEncoder, 12},
                               {LayerType::kEmbedding, 3},
                               {LayerType::kLinear, 74},
                               {LayerType::kActivation, 12},
                               {LayerType::kFc, 1},
                               {LayerType::kOther, 25}});
    t.iter_ms_full = 180.0;
    t.saturation_gpu = 1.00;
    t.cpu_load = 0.10;
    t.pcie_mb_per_iter = 2.0;
    t.weights_mb = 440.0;
    t.optimizer_state_factor = 3.0;
    t.activation_mb = 25500.0;
    t.mem_bw_intensity = 0.85;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "YOLOv5";
    t.domain = "Object Detection";
    t.dataset = "COCO";
    t.optimizer = "SGD";
    t.batch_size = 64;
    t.scale = TaskScale::kLarge;
    t.mix_fraction = 0.10;
    t.arch = MakeArchitecture({{LayerType::kConv, 60},
                               {LayerType::kBatchNorm, 60},
                               {LayerType::kActivation, 60},
                               {LayerType::kPooling, 1},
                               {LayerType::kOther, 20}});
    t.iter_ms_full = 160.0;
    t.saturation_gpu = 0.95;
    t.cpu_load = 0.22;  // mosaic augmentation
    t.pcie_mb_per_iter = 80.0;
    t.weights_mb = 55.0;
    t.optimizer_state_factor = 2.0;
    t.activation_mb = 25500.0;
    t.mem_bw_intensity = 0.78;
    tasks.push_back(t);
  }
  {
    TrainingTaskSpec t;
    t.name = "ResNet18";
    t.domain = "Image Classification";
    t.dataset = "ImageNet";
    t.optimizer = "SGD";
    t.batch_size = 128;
    t.scale = TaskScale::kXLarge;
    t.mix_fraction = 0.02;
    t.arch = MakeArchitecture({{LayerType::kConv, 20},
                               {LayerType::kBatchNorm, 20},
                               {LayerType::kActivation, 17},
                               {LayerType::kPooling, 2},
                               {LayerType::kFc, 1},
                               {LayerType::kFlatten, 1},
                               {LayerType::kOther, 8}});
    t.iter_ms_full = 120.0;
    t.saturation_gpu = 0.90;
    t.cpu_load = 0.20;  // JPEG decode pipeline
    t.pcie_mb_per_iter = 75.0;
    t.weights_mb = 45.0;
    t.optimizer_state_factor = 2.0;
    t.activation_mb = 18000.0;
    t.mem_bw_intensity = 0.72;
    tasks.push_back(t);
  }
  return tasks;
}

}  // namespace

const std::vector<InferenceServiceSpec>& ModelZoo::InferenceServices() {
  static const std::vector<InferenceServiceSpec>* services =
      new std::vector<InferenceServiceSpec>(BuildInferenceServices());
  return *services;
}

const std::vector<TrainingTaskSpec>& ModelZoo::TrainingTasks() {
  static const std::vector<TrainingTaskSpec>* tasks =
      new std::vector<TrainingTaskSpec>(BuildTrainingTasks());
  return *tasks;
}

const InferenceServiceSpec& ModelZoo::InferenceServiceByName(const std::string& name) {
  for (const auto& s : InferenceServices()) {
    if (s.name == name) {
      return s;
    }
  }
  MUDI_CHECK(false);
  __builtin_unreachable();
}

const TrainingTaskSpec& ModelZoo::TrainingTaskByName(const std::string& name) {
  for (const auto& t : TrainingTasks()) {
    if (t.name == name) {
      return t;
    }
  }
  MUDI_CHECK(false);
  __builtin_unreachable();
}

const std::vector<int>& ProfilingBatchSizes() {
  static const std::vector<int>* sizes = new std::vector<int>{16, 32, 64, 128, 256, 512};
  return *sizes;
}

const std::vector<double>& ProfilingGpuFractions() {
  static const std::vector<double>* fracs =
      new std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  return *fracs;
}

}  // namespace mudi
