// Training-task arrival trace generation.
//
// Models the Microsoft Philly production trace characteristics the paper
// replays (§7.1): bursty arrivals with a diurnal rate modulation, task types
// drawn from the Tab. 3 mix fractions, and heavy-tailed task durations by
// scale class (S < 1 GPU-hour ... XL > 100 GPU-hours). Durations are
// expressed as *work* in full-GPU milliseconds; the simulator divides work by
// the effective speed (GPU share × interference) to get wall time. A
// compression factor shrinks durations so benches finish quickly without
// changing scheduling structure.
#ifndef SRC_WORKLOAD_TRAINING_TRACE_H_
#define SRC_WORKLOAD_TRAINING_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"
#include "src/workload/models.h"

namespace mudi {

struct TrainingArrival {
  int task_id = 0;
  TimeMs arrival_ms = 0.0;
  size_t type_index = 0;           // index into ModelZoo::TrainingTasks()
  double work_full_gpu_ms = 0.0;   // total compute at 100% GPU, solo
};

struct TrainingTraceOptions {
  size_t num_tasks = 300;
  // Mean inter-arrival time before diurnal modulation.
  TimeMs mean_interarrival_ms = 20.0 * kMsPerSecond;
  // Divide nominal GPU-hour durations by this factor (sim compression).
  double duration_compression = 400.0;
  // Apply a Philly-like day/night rate modulation (ratio ~3:1).
  bool diurnal = true;
  // Period of the diurnal cycle in virtual time.
  TimeMs diurnal_period_ms = 30.0 * kMsPerMinute;
  uint64_t seed = 11;
};

// Generates `num_tasks` arrivals sorted by time. Task types follow the
// Tab. 3 mix fractions; per-task work is sampled log-uniformly within the
// scale class range, then compressed.
std::vector<TrainingArrival> GenerateTrainingTrace(const TrainingTraceOptions& options);

// Nominal GPU-hour range for a scale class (paper §7.1 categorization).
void ScaleGpuHourRange(TaskScale scale, double* lo_hours, double* hi_hours);

}  // namespace mudi

#endif  // SRC_WORKLOAD_TRAINING_TRACE_H_
