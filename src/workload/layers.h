// Network-architecture representation (paper Fig. 7 / §4.1.2).
//
// The Interference Modeler characterizes a training task by the *counts* of
// the layer types that dominate GPU-cycle and memory-bandwidth consumption:
// [conv, linear, activations, embeddings, encoder, decoder, flatten,
//  batch_normalization, fc, pooling, other_layers]. Unpopular layers are
// folded into other_layers to avoid overfitting to unseen tasks.
#ifndef SRC_WORKLOAD_LAYERS_H_
#define SRC_WORKLOAD_LAYERS_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mudi {

enum class LayerType : int {
  kConv = 0,
  kLinear,
  kActivation,
  kEmbedding,
  kEncoder,
  kDecoder,
  kFlatten,
  kBatchNorm,
  kFc,
  kPooling,
  kOther,
};

inline constexpr size_t kNumLayerTypes = 11;

const char* LayerTypeName(LayerType type);

// Layer-count census of a model; the feature vector the predictor consumes.
class NetworkArchitecture {
 public:
  NetworkArchitecture() { counts_.fill(0); }

  int count(LayerType type) const { return counts_[static_cast<size_t>(type)]; }
  void set_count(LayerType type, int count) { counts_[static_cast<size_t>(type)] = count; }

  int total_layers() const;

  // Flattened (double) feature vector, index order = LayerType order.
  std::vector<double> ToFeatureVector() const;

  // Element-wise sum — used when multiple training tasks co-locate with one
  // inference service (§5.5: "cumulative feature layers").
  NetworkArchitecture Plus(const NetworkArchitecture& other) const;

  bool operator==(const NetworkArchitecture& other) const { return counts_ == other.counts_; }

 private:
  std::array<int, kNumLayerTypes> counts_;
};

// Convenience builder: {{LayerType::kConv, 53}, ...}.
NetworkArchitecture MakeArchitecture(
    const std::vector<std::pair<LayerType, int>>& counts);

}  // namespace mudi

#endif  // SRC_WORKLOAD_LAYERS_H_
