#include "src/workload/layers.h"

namespace mudi {

const char* LayerTypeName(LayerType type) {
  switch (type) {
    case LayerType::kConv:
      return "conv";
    case LayerType::kLinear:
      return "linear";
    case LayerType::kActivation:
      return "activations";
    case LayerType::kEmbedding:
      return "embeddings";
    case LayerType::kEncoder:
      return "encoder";
    case LayerType::kDecoder:
      return "decoder";
    case LayerType::kFlatten:
      return "flatten";
    case LayerType::kBatchNorm:
      return "batch_normalization";
    case LayerType::kFc:
      return "fc";
    case LayerType::kPooling:
      return "pooling";
    case LayerType::kOther:
      return "other_layers";
  }
  return "unknown";
}

int NetworkArchitecture::total_layers() const {
  int total = 0;
  for (int c : counts_) {
    total += c;
  }
  return total;
}

std::vector<double> NetworkArchitecture::ToFeatureVector() const {
  std::vector<double> out(kNumLayerTypes);
  for (size_t i = 0; i < kNumLayerTypes; ++i) {
    out[i] = static_cast<double>(counts_[i]);
  }
  return out;
}

NetworkArchitecture NetworkArchitecture::Plus(const NetworkArchitecture& other) const {
  NetworkArchitecture sum;
  for (size_t i = 0; i < kNumLayerTypes; ++i) {
    sum.counts_[i] = counts_[i] + other.counts_[i];
  }
  return sum;
}

NetworkArchitecture MakeArchitecture(
    const std::vector<std::pair<LayerType, int>>& counts) {
  NetworkArchitecture arch;
  for (const auto& [type, count] : counts) {
    arch.set_count(type, count);
  }
  return arch;
}

}  // namespace mudi
