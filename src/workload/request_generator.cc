#include "src/workload/request_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace mudi {

ConstantQps::ConstantQps(double qps) : qps_(qps) { MUDI_CHECK_GE(qps, 0.0); }

double ConstantQps::QpsAt(TimeMs) const { return qps_; }

FluctuatingQps::FluctuatingQps(Options options) : options_(options) {
  MUDI_CHECK_LT(options_.min_qps, options_.max_qps);
  MUDI_CHECK_GT(options_.step_ms, 0.0);
  Rng rng(options_.seed);
  size_t n = static_cast<size_t>(options_.horizon_ms / options_.step_ms) + 2;
  samples_.reserve(n);
  double range = options_.max_qps - options_.min_qps;
  double level = rng.Uniform(options_.min_qps + 0.25 * range, options_.max_qps - 0.25 * range);
  // Drift per step, re-drawn at inflection points.
  double drift = rng.Uniform(-0.01, 0.01) * range;
  for (size_t i = 0; i < n; ++i) {
    samples_.push_back(level);
    if (rng.Uniform() < options_.inflection_prob) {
      drift = rng.Uniform(-0.02, 0.02) * range;
    }
    level += drift + rng.Normal(0.0, options_.noise_frac * range);
    if (level < options_.min_qps) {
      level = options_.min_qps;
      drift = std::abs(drift);
    } else if (level > options_.max_qps) {
      level = options_.max_qps;
      drift = -std::abs(drift);
    }
  }
}

double FluctuatingQps::QpsAt(TimeMs t) const {
  if (t <= 0.0) {
    return samples_.front();
  }
  double pos = t / options_.step_ms;
  size_t idx = static_cast<size_t>(pos);
  if (idx + 1 >= samples_.size()) {
    return samples_.back();
  }
  double frac = pos - static_cast<double>(idx);
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

ScaledQps::ScaledQps(std::shared_ptr<const QpsProfile> base, double factor)
    : base_(std::move(base)), factor_(factor) {
  MUDI_CHECK(base_ != nullptr);
  MUDI_CHECK_GE(factor, 0.0);
}

double ScaledQps::QpsAt(TimeMs t) const { return factor_ * base_->QpsAt(t); }

BurstyQps::BurstyQps(std::shared_ptr<const QpsProfile> base, std::vector<Burst> bursts)
    : base_(std::move(base)), bursts_(std::move(bursts)) {
  MUDI_CHECK(base_ != nullptr);
  for (const Burst& b : bursts_) {
    MUDI_CHECK_LT(b.start_ms, b.end_ms);
    MUDI_CHECK_GT(b.factor, 0.0);
  }
}

double BurstyQps::QpsAt(TimeMs t) const {
  double qps = base_->QpsAt(t);
  for (const Burst& b : bursts_) {
    if (t >= b.start_ms && t < b.end_ms) {
      qps *= b.factor;
    }
  }
  return qps;
}

TimeMs NextArrivalGap(const QpsProfile& profile, TimeMs now, Rng& rng) {
  double qps = profile.QpsAt(now);
  if (qps <= 0.0) {
    // No load right now; probe again after a second.
    return kMsPerSecond;
  }
  double mean_gap_ms = kMsPerSecond / qps;
  return rng.ExponentialMean(mean_gap_ms);
}

}  // namespace mudi
