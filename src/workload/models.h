// The DL workload zoo: the six inference services of Tab. 1 and the nine
// training tasks of Tab. 3, each with the architecture census and the
// resource-behaviour parameters the ground-truth oracle consumes
// (preprocess CPU cost, PCIe volume, GPU kernel work, saturation knee,
// memory footprint, bandwidth intensity).
//
// Absolute numbers are calibrated so that (a) solo-phase fractions roughly
// match the paper's §2.2.1 measurements (GPT2 4/10/86, ResNet50 7/71/22),
// (b) every service can meet its SLO at the paper's 200 QPS with a partial
// GPU, leaving headroom for co-located training, and (c) co-location memory
// pressure occasionally exceeds 40 GB so the Memory Manager has real work.
#ifndef SRC_WORKLOAD_MODELS_H_
#define SRC_WORKLOAD_MODELS_H_

#include <string>
#include <vector>

#include "src/workload/layers.h"

namespace mudi {

enum class TaskScale : int {
  kSmall = 0,   // < 1 GPU-hour
  kMedium,      // 1–10 GPU-hours
  kLarge,       // 10–100 GPU-hours
  kXLarge,      // > 100 GPU-hours
};

const char* TaskScaleName(TaskScale scale);

// An online inference service (paper Tab. 1).
struct InferenceServiceSpec {
  std::string name;
  std::string domain;
  std::string dataset;
  double params_millions = 0.0;
  double slo_ms = 0.0;
  NetworkArchitecture arch;

  // --- oracle parameters (ground truth; hidden from Mudi's predictors) ---
  double preprocess_ms_per_sample = 0.0;  // CPU preprocess/tokenize, uncontended
  double transfer_ms_per_sample = 0.0;    // host->device PCIe time, uncontended
  double exec_ms_per_sample_full = 0.0;   // GPU execute at 100% GPU, amortized
  double batch_overhead_ms = 0.0;         // fixed per-batch launch/dispatch cost
  double control_flow_fraction = 0.0;     // CPU-bound share of the execute phase
  double saturation_base = 0.2;           // knee: g_sat(b) = clamp(base + slope·b)
  double saturation_per_sample = 0.002;
  double weights_mb = 0.0;
  double activation_mb_per_sample = 0.0;
  double mem_bw_intensity = 0.5;          // sensitivity to HBM-bandwidth contention
};

// A DL training task type (paper Tab. 3).
struct TrainingTaskSpec {
  std::string name;
  std::string domain;
  std::string dataset;
  std::string optimizer;
  int batch_size = 0;
  TaskScale scale = TaskScale::kSmall;
  double mix_fraction = 0.0;  // share of this type in the arrival mix
  NetworkArchitecture arch;

  // --- oracle parameters ---
  double iter_ms_full = 0.0;     // solo mini-batch time at 100% GPU
  double saturation_gpu = 1.0;   // GPU share beyond which no further speedup
  double cpu_load = 0.1;         // single-threaded data-loading CPU share
  double pcie_mb_per_iter = 1.0; // input volume per iteration
  double weights_mb = 0.0;
  double optimizer_state_factor = 2.0;  // memory multiple of weights (SGD 2x, Adam 3x)
  double activation_mb = 0.0;           // working-set at its batch size
  double mem_bw_intensity = 0.5;
};

// Static registry of the paper's workloads.
class ModelZoo {
 public:
  // Tab. 1, in paper order: ResNet50, Inception, GPT2, BERT, RoBERTa, YOLOS.
  static const std::vector<InferenceServiceSpec>& InferenceServices();

  // Tab. 3, in paper order: VGG16, SqueezeNet, ResNet50, NCF, LSTM, AD-GCL,
  // BERT, YOLOv5, ResNet18.
  static const std::vector<TrainingTaskSpec>& TrainingTasks();

  // Number of training-task types included in offline profiling (§7.1:
  // "profiling is constrained to include only the first five types").
  static constexpr size_t kNumObservedTrainingTypes = 5;

  static const InferenceServiceSpec& InferenceServiceByName(const std::string& name);
  static const TrainingTaskSpec& TrainingTaskByName(const std::string& name);

  // Total device memory per GPU in MB (A100-40GB).
  static constexpr double kGpuMemoryMb = 40960.0;
};

// Batching sizes Mudi profiles and tunes over (§4.1.1, §5.2).
const std::vector<int>& ProfilingBatchSizes();

// GPU% values used for offline profiling: 10%..90% step 10%.
const std::vector<double>& ProfilingGpuFractions();

}  // namespace mudi

#endif  // SRC_WORKLOAD_MODELS_H_
