#include "src/fault/control_fault_injector.h"

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

ControlFaultInjector::ControlFaultInjector(Simulator* sim, ControlFaultSink* sink,
                                           Telemetry* telemetry)
    : sim_(sim), sink_(sink), telemetry_(telemetry) {
  MUDI_CHECK(sim_ != nullptr);
  MUDI_CHECK(sink_ != nullptr);
}

Status ControlFaultInjector::Arm(const ControlFaultPlan& plan) {
  if (plan.events.empty()) {
    return Status::Ok();
  }
  MUDI_RETURN_IF_ERROR(plan.Validate());
  for (const ControlFaultSpec& spec : plan.events) {
    if (spec.at_ms < sim_->Now()) {
      return InvalidArgumentError("control fault scheduled in the past: " +
                                  ControlFaultSpecDebugString(spec));
    }
  }
  for (const ControlFaultSpec& spec : plan.events) {
    ++events_injected_;
    switch (spec.kind) {
      case ControlFaultKind::kKvPartition:
        sim_->ScheduleAt(spec.at_ms, [this] { PartitionStart(); });
        sim_->ScheduleAt(spec.at_ms + spec.duration_ms, [this] { PartitionEnd(); });
        break;
      case ControlFaultKind::kWatchLoss:
        sim_->ScheduleAt(spec.at_ms, [this] { WatchesLost(); });
        break;
      case ControlFaultKind::kSchedulerCrash: {
        TimeMs restart = spec.duration_ms;
        sim_->ScheduleAt(spec.at_ms, [this, restart] { SchedulerCrash(restart); });
        break;
      }
    }
  }
  return Status::Ok();
}

void ControlFaultInjector::EmitInstant(const char* name, double arg_value, const char* arg_key) {
  MUDI_TRACE_INSTANT(telemetry_, "ctrl", name, /*device_id=*/-1, sim_->Now(),
                     telemetry::TraceArgs{telemetry::TraceArg::Num(arg_key, arg_value)});
}

void ControlFaultInjector::PartitionStart() {
  if (partition_depth_++ > 0) {
    return;  // Already partitioned: the new window only extends the outage.
  }
  ++partitions_;
  EmitInstant("kv_partition_start", 1.0, "active");
  sink_->OnKvPartitionStart(sim_->Now());
}

void ControlFaultInjector::PartitionEnd() {
  MUDI_CHECK_GT(partition_depth_, 0);
  if (--partition_depth_ > 0) {
    return;  // Still covered by another window.
  }
  EmitInstant("kv_partition_end", 0.0, "active");
  sink_->OnKvPartitionEnd(sim_->Now());
}

void ControlFaultInjector::WatchesLost() {
  ++watch_losses_;
  EmitInstant("watch_loss", 1.0, "count");
  sink_->OnWatchesLost(sim_->Now());
}

void ControlFaultInjector::SchedulerCrash(TimeMs restart_delay_ms) {
  ++scheduler_crashes_;
  EmitInstant("scheduler_crash", restart_delay_ms, "restart_delay_ms");
  sink_->OnSchedulerCrash(restart_delay_ms, sim_->Now());
}

}  // namespace mudi
