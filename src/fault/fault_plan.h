// Declarative fault schedules for the simulation stack.
//
// A FaultPlan is a list of typed faults pinned to virtual timestamps. Plans
// are plain data: building one performs no side effects, and arming the same
// plan against the same seeded experiment reproduces the exact same run —
// fault injection never draws randomness of its own. An empty plan is the
// degenerate case and must leave every experiment byte-identical to a run
// without fault machinery at all.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace mudi {

enum class FaultKind {
  // Device stops serving and drops its trainings; comes back after
  // `duration_ms` with a restarted (initial-config) inference replica.
  kTransientDeviceFailure,
  // Device never comes back; displaced work must be re-placed elsewhere.
  kPermanentDeviceFailure,
  // All devices of one node fail at once (transient when duration_ms > 0,
  // permanent otherwise).
  kNodeFailure,
  // Straggler episode: every oracle latency on the device is inflated by
  // `severity` (>= 1) for `duration_ms`. The device keeps serving.
  kStraggler,
  // The device's QPS/latency monitor stops receiving feedback for
  // `duration_ms`: measured QPS freezes at its last value and stays stale for
  // one monitor window after restoration.
  kMonitorFeedbackLoss,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kTransientDeviceFailure;
  TimeMs at_ms = 0.0;
  // For failures: <= 0 means permanent. Required > 0 for straggler and
  // feedback-loss episodes.
  TimeMs duration_ms = 0.0;
  int device_id = -1;  // target for everything except kNodeFailure
  int node_id = -1;    // target for kNodeFailure
  double severity = 1.0;  // straggler latency multiplier (>= 1)
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  size_t size() const { return faults.size(); }

  FaultPlan& Add(FaultSpec spec) {
    faults.push_back(spec);
    return *this;
  }

  // Convenience builders.
  FaultPlan& FailDevice(int device_id, TimeMs at_ms, TimeMs duration_ms);
  FaultPlan& FailDevicePermanently(int device_id, TimeMs at_ms);
  FaultPlan& FailNode(int node_id, TimeMs at_ms, TimeMs duration_ms);
  FaultPlan& AddStraggler(int device_id, TimeMs at_ms, TimeMs duration_ms, double severity);
  FaultPlan& LoseFeedback(int device_id, TimeMs at_ms, TimeMs duration_ms);

  // Checks targets and timings against the cluster shape.
  Status Validate(int num_devices, int num_nodes) const;
};

// The standard deterministic chaos schedule used by the `chaos` preset and
// bench_fig19: a transient device failure, a straggler episode, a
// monitor-feedback loss window, a permanent device failure, and a transient
// node blackout, spread over the first ~6 minutes of virtual time. Targets
// are derived from the cluster shape so the schedule is valid for any
// cluster with at least one node of at least one device.
FaultPlan StandardChaosPlan(int num_devices, int num_nodes);

std::string FaultSpecDebugString(const FaultSpec& spec);

}  // namespace mudi

#endif  // SRC_FAULT_FAULT_PLAN_H_
