#include "src/fault/control_fault_plan.h"

#include <sstream>

namespace mudi {

const char* ControlFaultKindName(ControlFaultKind kind) {
  switch (kind) {
    case ControlFaultKind::kKvPartition:
      return "kv_partition";
    case ControlFaultKind::kWatchLoss:
      return "watch_loss";
    case ControlFaultKind::kSchedulerCrash:
      return "scheduler_crash";
  }
  return "unknown";
}

ControlFaultPlan& ControlFaultPlan::DegradeWatches(TimeMs delay_ms, TimeMs jitter_ms,
                                                   double drop_prob) {
  degrade.watch_delay_ms = delay_ms;
  degrade.watch_delay_jitter_ms = jitter_ms;
  degrade.watch_drop_prob = drop_prob;
  return *this;
}

ControlFaultPlan& ControlFaultPlan::StaleReads(double prob, uint64_t rev_lag) {
  degrade.stale_read_prob = prob;
  degrade.stale_rev_lag = rev_lag;
  return *this;
}

ControlFaultPlan& ControlFaultPlan::Partition(TimeMs at_ms, TimeMs duration_ms) {
  ControlFaultSpec spec;
  spec.kind = ControlFaultKind::kKvPartition;
  spec.at_ms = at_ms;
  spec.duration_ms = duration_ms;
  return Add(spec);
}

ControlFaultPlan& ControlFaultPlan::LoseWatches(TimeMs at_ms) {
  ControlFaultSpec spec;
  spec.kind = ControlFaultKind::kWatchLoss;
  spec.at_ms = at_ms;
  spec.duration_ms = 0.0;
  return Add(spec);
}

ControlFaultPlan& ControlFaultPlan::CrashScheduler(TimeMs at_ms, TimeMs restart_delay_ms) {
  ControlFaultSpec spec;
  spec.kind = ControlFaultKind::kSchedulerCrash;
  spec.at_ms = at_ms;
  spec.duration_ms = restart_delay_ms;
  return Add(spec);
}

Status ControlFaultPlan::Validate() const {
  if (degrade.watch_delay_ms < 0.0 || degrade.watch_delay_jitter_ms < 0.0) {
    return InvalidArgumentError("control fault plan: negative watch delay");
  }
  if (degrade.watch_drop_prob < 0.0 || degrade.watch_drop_prob >= 1.0) {
    return InvalidArgumentError(
        "control fault plan: watch_drop_prob outside [0, 1) — dropping every "
        "update would deadlock config delivery");
  }
  if (degrade.stale_read_prob < 0.0 || degrade.stale_read_prob > 1.0) {
    return InvalidArgumentError("control fault plan: stale_read_prob outside [0, 1]");
  }
  if (degrade.stale_read_prob > 0.0 && degrade.stale_rev_lag == 0) {
    return InvalidArgumentError(
        "control fault plan: stale_read_prob > 0 requires stale_rev_lag >= 1");
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const ControlFaultSpec& spec = events[i];
    std::string where =
        "control fault #" + std::to_string(i) + " (" + ControlFaultKindName(spec.kind) + "): ";
    if (spec.at_ms < 0.0) {
      return InvalidArgumentError(where + "at_ms must be >= 0");
    }
    switch (spec.kind) {
      case ControlFaultKind::kKvPartition:
        if (spec.duration_ms <= 0.0) {
          return InvalidArgumentError(where + "duration_ms must be > 0");
        }
        break;
      case ControlFaultKind::kSchedulerCrash:
        if (spec.duration_ms < 0.0) {
          return InvalidArgumentError(where + "restart delay must be >= 0");
        }
        break;
      case ControlFaultKind::kWatchLoss:
        break;
    }
  }
  return Status::Ok();
}

ControlFaultPlan StandardControlChaosPlan() {
  ControlFaultPlan plan;
  plan.DegradeWatches(/*delay_ms=*/250.0, /*jitter_ms=*/250.0, /*drop_prob=*/0.05);
  plan.StaleReads(/*prob=*/0.1, /*rev_lag=*/4);
  plan.Partition(90 * kMsPerSecond, 20 * kMsPerSecond);
  plan.LoseWatches(150 * kMsPerSecond);
  plan.CrashScheduler(210 * kMsPerSecond, 2 * kMsPerSecond);
  // Second crash arrives inside a partition window: the recovery scan fails
  // Unavailable and must back off through retry until the window closes.
  plan.CrashScheduler(270 * kMsPerSecond, 1 * kMsPerSecond);
  plan.Partition(270 * kMsPerSecond, 15 * kMsPerSecond);
  return plan;
}

std::string ControlFaultSpecDebugString(const ControlFaultSpec& spec) {
  std::ostringstream os;
  os << ControlFaultKindName(spec.kind) << "@" << spec.at_ms << "ms";
  if (spec.kind == ControlFaultKind::kKvPartition) {
    os << " duration=" << spec.duration_ms << "ms";
  } else if (spec.kind == ControlFaultKind::kSchedulerCrash) {
    os << " restart_delay=" << spec.duration_ms << "ms";
  }
  return os.str();
}

}  // namespace mudi
