// Arms a ControlFaultPlan against the virtual clock and drives a
// ControlFaultSink through control-plane fault transitions.
//
// Mirrors FaultInjector for the coordination layer: the injector owns the
// timeline semantics so the sink (the experiment harness) only sees clean
// edges — overlapping KvStore partition windows collapse into a single
// start/end edge pair via depth counting. The store-wide degradation in
// ControlFaultPlan::degrade is NOT applied here; the harness enables it on
// its KvStore directly (the injector only drives timed events).
// Every transition is recorded as a typed telemetry instant in the "ctrl"
// category.
#ifndef SRC_FAULT_CONTROL_FAULT_INJECTOR_H_
#define SRC_FAULT_CONTROL_FAULT_INJECTOR_H_

#include <cstddef>

#include "src/common/status.h"
#include "src/fault/control_fault_plan.h"
#include "src/sim/simulator.h"

namespace mudi {

class Telemetry;

// Implemented by the experiment harness; all callbacks run at the fault's
// virtual timestamp, from inside a simulator event.
class ControlFaultSink {
 public:
  virtual ~ControlFaultSink() = default;

  // The KvStore just became unreachable / reachable again (first covering
  // window began / last covering window ended).
  virtual void OnKvPartitionStart(TimeMs now) = 0;
  virtual void OnKvPartitionEnd(TimeMs now) = 0;
  // Every registered watch died; the sink must unregister and re-establish.
  virtual void OnWatchesLost(TimeMs now) = 0;
  // The scheduler crashed; its replacement starts recovering
  // `restart_delay_ms` from now.
  virtual void OnSchedulerCrash(TimeMs restart_delay_ms, TimeMs now) = 0;
};

class ControlFaultInjector {
 public:
  ControlFaultInjector(Simulator* sim, ControlFaultSink* sink, Telemetry* telemetry = nullptr);
  ControlFaultInjector(const ControlFaultInjector&) = delete;
  ControlFaultInjector& operator=(const ControlFaultInjector&) = delete;

  // Validates `plan` and schedules every timed event on the simulator. An
  // empty event list schedules nothing at all. Events in the past
  // (at_ms < sim->Now()) are rejected.
  Status Arm(const ControlFaultPlan& plan);

  bool partitioned() const { return partition_depth_ > 0; }

  // Aggregates for ExperimentResult / bench tables.
  size_t events_injected() const { return events_injected_; }
  size_t partitions() const { return partitions_; }
  size_t watch_losses() const { return watch_losses_; }
  size_t scheduler_crashes() const { return scheduler_crashes_; }

 private:
  void PartitionStart();
  void PartitionEnd();
  void WatchesLost();
  void SchedulerCrash(TimeMs restart_delay_ms);
  void EmitInstant(const char* name, double arg_value, const char* arg_key);

  Simulator* sim_;
  ControlFaultSink* sink_;
  Telemetry* telemetry_;
  int partition_depth_ = 0;
  size_t events_injected_ = 0;
  size_t partitions_ = 0;
  size_t watch_losses_ = 0;
  size_t scheduler_crashes_ = 0;
};

}  // namespace mudi

#endif  // SRC_FAULT_CONTROL_FAULT_INJECTOR_H_
