// Declarative control-plane fault schedules (DESIGN.md §13).
//
// A ControlFaultPlan mirrors FaultPlan's validated-schedule idiom for the
// coordination layer instead of the devices: a store-wide KvStore
// degradation (delayed/lossy watch delivery, stale reads) that is active for
// the whole run, plus typed events pinned to virtual timestamps — KvStore
// partition windows, watch-loss episodes, and scheduler crashes. Plans are
// plain data; arming one draws all randomness from a forked, seeded Rng, so
// same-seed chaos runs are bit-identical. An empty plan must leave every
// experiment byte-identical to a run without control-fault machinery at all.
#ifndef SRC_FAULT_CONTROL_FAULT_PLAN_H_
#define SRC_FAULT_CONTROL_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/cluster/kv_store.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace mudi {

enum class ControlFaultKind {
  // The KvStore is unreachable for `duration_ms`: watch notifications inside
  // the window are lost (not buffered) and control-plane reads fail
  // Unavailable. Overlapping windows collapse into one partition edge pair.
  kKvPartition,
  // Every registered watch dies at `at_ms` (the etcd-connection-drop
  // analogue), killing in-flight deliveries too; consumers must re-establish
  // through src/sim/retry.h and catch up with a control-plane read.
  kWatchLoss,
  // The scheduler/coordinator process crashes at `at_ms` and restarts
  // `duration_ms` later, then reconstructs its view from a KvStore scan
  // (routed through retry, so a concurrent partition stretches recovery).
  kSchedulerCrash,
};

const char* ControlFaultKindName(ControlFaultKind kind);

struct ControlFaultSpec {
  ControlFaultKind kind = ControlFaultKind::kKvPartition;
  TimeMs at_ms = 0.0;
  // kKvPartition: window length. kSchedulerCrash: restart delay (the time
  // until the replacement process begins its recovery scan). kWatchLoss:
  // unused.
  TimeMs duration_ms = 0.0;
};

struct ControlFaultPlan {
  // Store-wide degradation, active from Run() start to end. all-zero = the
  // pristine synchronous store.
  KvDegradeOptions degrade;
  std::vector<ControlFaultSpec> events;

  bool empty() const { return !degrade.any() && events.empty(); }
  size_t size() const { return events.size(); }

  ControlFaultPlan& Add(ControlFaultSpec spec) {
    events.push_back(spec);
    return *this;
  }

  // Convenience builders.
  ControlFaultPlan& DegradeWatches(TimeMs delay_ms, TimeMs jitter_ms, double drop_prob);
  ControlFaultPlan& StaleReads(double prob, uint64_t rev_lag);
  ControlFaultPlan& Partition(TimeMs at_ms, TimeMs duration_ms);
  ControlFaultPlan& LoseWatches(TimeMs at_ms);
  ControlFaultPlan& CrashScheduler(TimeMs at_ms, TimeMs restart_delay_ms);

  Status Validate() const;
};

// The standard deterministic control-chaos schedule used by the
// `--ctrl-chaos` preset and bench_ctrl_fault: delayed/lossy watch delivery
// and stale reads for the whole run, a partition window, a watch-loss
// episode, and two scheduler crashes — the second one inside a partition so
// the recovery scan has to back off through retry, and close enough to the
// first that a slow recovery exercises the crash-during-recovery path.
ControlFaultPlan StandardControlChaosPlan();

std::string ControlFaultSpecDebugString(const ControlFaultSpec& spec);

}  // namespace mudi

#endif  // SRC_FAULT_CONTROL_FAULT_PLAN_H_
