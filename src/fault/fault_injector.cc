#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

FaultInjector::FaultInjector(Simulator* sim, FaultSink* sink, int num_devices, int num_nodes,
                             Telemetry* telemetry)
    : sim_(sim),
      sink_(sink),
      num_devices_(num_devices),
      num_nodes_(num_nodes),
      telemetry_(telemetry),
      state_(static_cast<size_t>(num_devices)) {
  MUDI_CHECK(sim_ != nullptr);
  MUDI_CHECK(sink_ != nullptr);
  MUDI_CHECK_GT(num_devices_, 0);
  MUDI_CHECK_GT(num_nodes_, 0);
  MUDI_CHECK_EQ(num_devices_ % num_nodes_, 0);
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  if (plan.empty()) {
    return Status::Ok();
  }
  MUDI_RETURN_IF_ERROR(plan.Validate(num_devices_, num_nodes_));
  for (const FaultSpec& spec : plan.faults) {
    if (spec.at_ms < sim_->Now()) {
      return InvalidArgumentError("fault scheduled in the past: " + FaultSpecDebugString(spec));
    }
  }
  int gpus_per_node = num_devices_ / num_nodes_;
  for (const FaultSpec& spec : plan.faults) {
    ++faults_injected_;
    switch (spec.kind) {
      case FaultKind::kTransientDeviceFailure: {
        int d = spec.device_id;
        sim_->ScheduleAt(spec.at_ms, [this, d] { DeviceDown(d, /*permanent=*/false); });
        sim_->ScheduleAt(spec.at_ms + spec.duration_ms, [this, d] { DeviceUp(d); });
        break;
      }
      case FaultKind::kPermanentDeviceFailure: {
        int d = spec.device_id;
        sim_->ScheduleAt(spec.at_ms, [this, d] { DeviceDown(d, /*permanent=*/true); });
        break;
      }
      case FaultKind::kNodeFailure: {
        bool permanent = spec.duration_ms <= 0.0;
        for (int i = 0; i < gpus_per_node; ++i) {
          int d = spec.node_id * gpus_per_node + i;
          sim_->ScheduleAt(spec.at_ms, [this, d, permanent] { DeviceDown(d, permanent); });
          if (!permanent) {
            sim_->ScheduleAt(spec.at_ms + spec.duration_ms, [this, d] { DeviceUp(d); });
          }
        }
        break;
      }
      case FaultKind::kStraggler: {
        int d = spec.device_id;
        double severity = spec.severity;
        sim_->ScheduleAt(spec.at_ms, [this, d, severity] { StragglerStart(d, severity); });
        sim_->ScheduleAt(spec.at_ms + spec.duration_ms,
                         [this, d, severity] { StragglerEnd(d, severity); });
        break;
      }
      case FaultKind::kMonitorFeedbackLoss: {
        int d = spec.device_id;
        sim_->ScheduleAt(spec.at_ms, [this, d] { FeedbackLost(d); });
        sim_->ScheduleAt(spec.at_ms + spec.duration_ms, [this, d] { FeedbackRestored(d); });
        break;
      }
    }
  }
  return Status::Ok();
}

double FaultInjector::straggler_factor(int device_id) const {
  double factor = 1.0;
  for (double f : state_[device_id].straggler_factors) {
    factor *= f;
  }
  return factor;
}

double FaultInjector::TotalDowntimeMs(TimeMs end) const {
  double total = 0.0;
  for (const DeviceState& st : state_) {
    total += st.downtime_accum_ms;
    if (st.down_count > 0 || (st.permanent && st.down_since >= 0.0)) {
      total += std::max(0.0, end - st.down_since);
    }
  }
  return total;
}

void FaultInjector::EmitInstant(const char* name, int device_id, double arg_value,
                                const char* arg_key) {
  MUDI_TRACE_INSTANT(telemetry_, "fault", name, device_id, sim_->Now(),
                     telemetry::TraceArgs{telemetry::TraceArg::Num(arg_key, arg_value)});
}

void FaultInjector::DeviceDown(int device_id, bool permanent) {
  DeviceState& st = state_[device_id];
  bool was_down = st.down_count > 0 || st.permanent;
  ++st.down_count;
  st.permanent = st.permanent || permanent;
  if (was_down) {
    return;  // Already down: the new fault only extends the outage.
  }
  st.down_since = sim_->Now();
  ++device_failures_;
  EmitInstant("device_down", device_id, permanent ? 1.0 : 0.0, "permanent");
  sink_->OnDeviceDown(device_id, permanent, sim_->Now());
}

void FaultInjector::DeviceUp(int device_id) {
  DeviceState& st = state_[device_id];
  MUDI_CHECK_GT(st.down_count, 0);
  --st.down_count;
  if (st.down_count > 0 || st.permanent) {
    return;  // Still covered by another fault (or dead for good).
  }
  st.downtime_accum_ms += sim_->Now() - st.down_since;
  st.down_since = -1.0;
  ++devices_recovered_;
  EmitInstant("device_up", device_id, st.downtime_accum_ms, "downtime_ms");
  sink_->OnDeviceUp(device_id, sim_->Now());
}

void FaultInjector::StragglerStart(int device_id, double severity) {
  DeviceState& st = state_[device_id];
  st.straggler_factors.push_back(severity);
  double factor = straggler_factor(device_id);
  EmitInstant("straggler_start", device_id, factor, "factor");
  sink_->OnStragglerFactor(device_id, factor, sim_->Now());
}

void FaultInjector::StragglerEnd(int device_id, double severity) {
  DeviceState& st = state_[device_id];
  auto it = std::find(st.straggler_factors.begin(), st.straggler_factors.end(), severity);
  MUDI_CHECK(it != st.straggler_factors.end());
  st.straggler_factors.erase(it);
  double factor = straggler_factor(device_id);
  EmitInstant("straggler_end", device_id, factor, "factor");
  sink_->OnStragglerFactor(device_id, factor, sim_->Now());
}

void FaultInjector::FeedbackLost(int device_id) {
  DeviceState& st = state_[device_id];
  if (st.feedback_loss_count++ == 0) {
    EmitInstant("feedback_lost", device_id, 1.0, "active");
    sink_->OnFeedbackLost(device_id, sim_->Now());
  }
}

void FaultInjector::FeedbackRestored(int device_id) {
  DeviceState& st = state_[device_id];
  MUDI_CHECK_GT(st.feedback_loss_count, 0);
  if (--st.feedback_loss_count == 0) {
    EmitInstant("feedback_restored", device_id, 0.0, "active");
    sink_->OnFeedbackRestored(device_id, sim_->Now());
  }
}

}  // namespace mudi
