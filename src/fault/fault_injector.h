// Arms a FaultPlan against the virtual clock and drives a FaultSink through
// failure / recovery transitions.
//
// The injector owns the fault *timeline* semantics so the sink (the
// experiment harness) only sees clean edge transitions:
//   - overlapping failures of one device (e.g. a node blackout over an
//     already-failed GPU) collapse into a single down/up edge pair;
//   - a permanent failure pins the device down even when an overlapping
//     transient fault "recovers";
//   - concurrent straggler episodes multiply, and the sink is always handed
//     the effective latency factor (1.0 when no episode is active);
//   - feedback-loss windows nest the same way failures do.
// Every transition is also recorded as a typed telemetry instant in the
// "fault" category on the device's trace lane, which is what
// tools/trace_summary uses to attribute downtime.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/sim/simulator.h"

namespace mudi {

class Telemetry;

// Implemented by the experiment harness; all callbacks run at the fault's
// virtual timestamp, from inside a simulator event.
class FaultSink {
 public:
  virtual ~FaultSink() = default;

  // The device just went down (first covering fault began). `permanent` is
  // true when no recovery will ever be delivered for it.
  virtual void OnDeviceDown(int device_id, bool permanent, TimeMs now) = 0;
  // The device came back (last covering transient fault ended).
  virtual void OnDeviceUp(int device_id, TimeMs now) = 0;
  // The effective straggler latency multiplier for the device changed;
  // `factor` is the product of all active episodes (1.0 = healthy speed).
  virtual void OnStragglerFactor(int device_id, double factor, TimeMs now) = 0;
  // Monitor feedback for the device was lost / restored.
  virtual void OnFeedbackLost(int device_id, TimeMs now) = 0;
  virtual void OnFeedbackRestored(int device_id, TimeMs now) = 0;
};

class FaultInjector {
 public:
  FaultInjector(Simulator* sim, FaultSink* sink, int num_devices, int num_nodes,
                Telemetry* telemetry = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Validates `plan` against the cluster shape and schedules every fault
  // (plus its paired recovery) on the simulator. An empty plan schedules
  // nothing at all. Faults in the past (at_ms < sim->Now()) are rejected.
  Status Arm(const FaultPlan& plan);

  // Device state, readable at any time between events.
  bool device_down(int device_id) const { return state_[device_id].down_count > 0; }
  bool device_permanently_down(int device_id) const { return state_[device_id].permanent; }
  double straggler_factor(int device_id) const;

  // Aggregates for ExperimentResult / bench tables.
  size_t faults_injected() const { return faults_injected_; }
  size_t device_failures() const { return device_failures_; }
  size_t devices_recovered() const { return devices_recovered_; }
  // Total device-down time summed over devices; `end` closes intervals of
  // devices still down (e.g. permanent failures) at that timestamp.
  double TotalDowntimeMs(TimeMs end) const;

 private:
  struct DeviceState {
    int down_count = 0;
    bool permanent = false;
    TimeMs down_since = -1.0;
    double downtime_accum_ms = 0.0;
    std::vector<double> straggler_factors;
    int feedback_loss_count = 0;
  };

  void DeviceDown(int device_id, bool permanent);
  void DeviceUp(int device_id);
  void StragglerStart(int device_id, double severity);
  void StragglerEnd(int device_id, double severity);
  void FeedbackLost(int device_id);
  void FeedbackRestored(int device_id);
  void EmitInstant(const char* name, int device_id, double arg_value, const char* arg_key);

  Simulator* sim_;
  FaultSink* sink_;
  int num_devices_;
  int num_nodes_;
  Telemetry* telemetry_;
  std::vector<DeviceState> state_;
  size_t faults_injected_ = 0;
  size_t device_failures_ = 0;
  size_t devices_recovered_ = 0;
};

}  // namespace mudi

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
