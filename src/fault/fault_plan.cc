#include "src/fault/fault_plan.h"

#include <sstream>

namespace mudi {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientDeviceFailure:
      return "transient_device_failure";
    case FaultKind::kPermanentDeviceFailure:
      return "permanent_device_failure";
    case FaultKind::kNodeFailure:
      return "node_failure";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kMonitorFeedbackLoss:
      return "monitor_feedback_loss";
  }
  return "unknown";
}

FaultPlan& FaultPlan::FailDevice(int device_id, TimeMs at_ms, TimeMs duration_ms) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransientDeviceFailure;
  spec.device_id = device_id;
  spec.at_ms = at_ms;
  spec.duration_ms = duration_ms;
  return Add(spec);
}

FaultPlan& FaultPlan::FailDevicePermanently(int device_id, TimeMs at_ms) {
  FaultSpec spec;
  spec.kind = FaultKind::kPermanentDeviceFailure;
  spec.device_id = device_id;
  spec.at_ms = at_ms;
  spec.duration_ms = 0.0;
  return Add(spec);
}

FaultPlan& FaultPlan::FailNode(int node_id, TimeMs at_ms, TimeMs duration_ms) {
  FaultSpec spec;
  spec.kind = FaultKind::kNodeFailure;
  spec.node_id = node_id;
  spec.at_ms = at_ms;
  spec.duration_ms = duration_ms;
  return Add(spec);
}

FaultPlan& FaultPlan::AddStraggler(int device_id, TimeMs at_ms, TimeMs duration_ms,
                                   double severity) {
  FaultSpec spec;
  spec.kind = FaultKind::kStraggler;
  spec.device_id = device_id;
  spec.at_ms = at_ms;
  spec.duration_ms = duration_ms;
  spec.severity = severity;
  return Add(spec);
}

FaultPlan& FaultPlan::LoseFeedback(int device_id, TimeMs at_ms, TimeMs duration_ms) {
  FaultSpec spec;
  spec.kind = FaultKind::kMonitorFeedbackLoss;
  spec.device_id = device_id;
  spec.at_ms = at_ms;
  spec.duration_ms = duration_ms;
  return Add(spec);
}

Status FaultPlan::Validate(int num_devices, int num_nodes) const {
  for (size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& spec = faults[i];
    std::string where = "fault #" + std::to_string(i) + " (" + FaultKindName(spec.kind) + "): ";
    if (spec.at_ms < 0.0) {
      return InvalidArgumentError(where + "at_ms must be >= 0");
    }
    if (spec.kind == FaultKind::kNodeFailure) {
      if (spec.node_id < 0 || spec.node_id >= num_nodes) {
        return InvalidArgumentError(where + "node_id " + std::to_string(spec.node_id) +
                                    " out of range [0, " + std::to_string(num_nodes) + ")");
      }
    } else {
      if (spec.device_id < 0 || spec.device_id >= num_devices) {
        return InvalidArgumentError(where + "device_id " + std::to_string(spec.device_id) +
                                    " out of range [0, " + std::to_string(num_devices) + ")");
      }
    }
    switch (spec.kind) {
      case FaultKind::kStraggler:
        if (spec.duration_ms <= 0.0) {
          return InvalidArgumentError(where + "duration_ms must be > 0");
        }
        if (spec.severity < 1.0) {
          return InvalidArgumentError(where + "severity must be >= 1 (latency multiplier)");
        }
        break;
      case FaultKind::kMonitorFeedbackLoss:
        if (spec.duration_ms <= 0.0) {
          return InvalidArgumentError(where + "duration_ms must be > 0");
        }
        break;
      case FaultKind::kTransientDeviceFailure:
        if (spec.duration_ms <= 0.0) {
          return InvalidArgumentError(where +
                                      "duration_ms must be > 0 (use "
                                      "kPermanentDeviceFailure for permanent faults)");
        }
        break;
      case FaultKind::kPermanentDeviceFailure:
      case FaultKind::kNodeFailure:
        break;
    }
  }
  return Status::Ok();
}

FaultPlan StandardChaosPlan(int num_devices, int num_nodes) {
  FaultPlan plan;
  if (num_devices <= 0 || num_nodes <= 0) {
    return plan;
  }
  // Deterministic targets spread across the cluster; modulo keeps the plan
  // valid for small test clusters.
  int transient_target = 3 % num_devices;
  int straggler_target = 7 % num_devices;
  int feedback_target = 1 % num_devices;
  int permanent_target = (num_devices - 1) % num_devices;
  plan.FailDevice(transient_target, 60 * kMsPerSecond, 45 * kMsPerSecond);
  plan.AddStraggler(straggler_target, 120 * kMsPerSecond, 60 * kMsPerSecond, /*severity=*/2.5);
  plan.LoseFeedback(feedback_target, 180 * kMsPerSecond, 30 * kMsPerSecond);
  plan.FailDevicePermanently(permanent_target, 240 * kMsPerSecond);
  if (num_nodes > 1) {
    // Blackout a node that does not contain the permanently-dead device so
    // the cluster always keeps capacity to absorb displaced work.
    plan.FailNode(0, 300 * kMsPerSecond, 40 * kMsPerSecond);
  }
  return plan;
}

std::string FaultSpecDebugString(const FaultSpec& spec) {
  std::ostringstream os;
  os << FaultKindName(spec.kind) << "@" << spec.at_ms << "ms";
  if (spec.kind == FaultKind::kNodeFailure) {
    os << " node=" << spec.node_id;
  } else {
    os << " device=" << spec.device_id;
  }
  if (spec.duration_ms > 0.0) {
    os << " duration=" << spec.duration_ms << "ms";
  } else if (spec.kind != FaultKind::kStraggler && spec.kind != FaultKind::kMonitorFeedbackLoss) {
    os << " permanent";
  }
  if (spec.kind == FaultKind::kStraggler) {
    os << " severity=" << spec.severity;
  }
  return os.str();
}

}  // namespace mudi
