#include "src/solver/monotone_solver.h"

#include <limits>

#include "src/common/check.h"

namespace mudi {

std::optional<double> MinFeasibleMonotone(const std::function<double(double)>& f, double target,
                                          double lo, double hi, double tolerance) {
  MUDI_CHECK_LE(lo, hi);
  MUDI_CHECK_GT(tolerance, 0.0);
  if (f(hi) > target) {
    return std::nullopt;
  }
  if (f(lo) <= target) {
    return lo;
  }
  // Invariant: f(lo) > target >= f(hi).
  while (hi - lo > tolerance) {
    double mid = 0.5 * (lo + hi);
    if (f(mid) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

GridSearchResult ExhaustiveGridSearch(
    const std::vector<int>& batches, const std::vector<double>& fractions,
    const std::function<double(int, double)>& objective,
    const std::function<bool(int, double)>& feasible) {
  GridSearchResult result;
  double best = std::numeric_limits<double>::infinity();
  for (int b : batches) {
    for (double g : fractions) {
      ++result.evaluations;
      if (!feasible(b, g)) {
        continue;
      }
      double obj = objective(b, g);
      if (obj < best) {
        best = obj;
        result.best_batch = b;
        result.best_fraction = g;
        result.best_objective = obj;
        result.feasible = true;
      }
    }
  }
  return result;
}

}  // namespace mudi
