// Constrained 1-D solvers replacing the paper's CVXPY/ECOS usage for Eq. (4):
//
//   Δ* = argmin Δ  s.t.  (W/b)·P(b, Δ, Ψ) ≤ SLO
//
// The constraint's left side is monotone non-increasing in Δ, so the minimum
// feasible Δ is found exactly by bisection. An exhaustive grid search over
// (batch, Δ) pairs backs the Optimal baseline (§5.4, §7.2).
#ifndef SRC_SOLVER_MONOTONE_SOLVER_H_
#define SRC_SOLVER_MONOTONE_SOLVER_H_

#include <functional>
#include <optional>
#include <vector>

namespace mudi {

// Smallest x in [lo, hi] with f(x) <= target, assuming f is monotone
// non-increasing; nullopt if f(hi) > target. Bisection to `tolerance`.
std::optional<double> MinFeasibleMonotone(const std::function<double(double)>& f, double target,
                                          double lo, double hi, double tolerance = 1e-4);

struct GridSearchResult {
  int best_batch = 0;
  double best_fraction = 0.0;
  double best_objective = 0.0;
  bool feasible = false;
  size_t evaluations = 0;
};

// Exhaustive joint search: minimizes objective(b, Δ) over the cross product
// of `batches` × `fractions` subject to feasible(b, Δ).
GridSearchResult ExhaustiveGridSearch(
    const std::vector<int>& batches, const std::vector<double>& fractions,
    const std::function<double(int, double)>& objective,
    const std::function<bool(int, double)>& feasible);

}  // namespace mudi

#endif  // SRC_SOLVER_MONOTONE_SOLVER_H_
