#include "src/telemetry/telemetry.h"

#include <cstdlib>
#include <fstream>

#include "src/common/env.h"
#include "src/common/logging.h"
#include "src/common/thread_annotations.h"

namespace mudi {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void WriteJsonEscapedLabel(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\';
    }
    os << c;
  }
  os << '"';
}

}  // namespace

void TelemetryOptions::ApplyEnvOverrides() {
  if (auto v = GetEnv("MUDI_TRACE_FILE"); v.has_value() && !v->empty()) {
    enabled = true;
    tracing = true;
    trace_file = *v;
  }
  if (auto v = GetEnv("MUDI_TRACE_RING"); v.has_value() && !v->empty()) {
    trace_ring_capacity = static_cast<size_t>(std::strtoull(v->c_str(), nullptr, 10));
  }
  if (auto v = GetEnv("MUDI_TELEMETRY_JSON"); v.has_value() && !v->empty()) {
    enabled = true;
    metrics_json = *v;
  }
  if (auto v = GetEnv("MUDI_METRICS_CSV"); v.has_value() && !v->empty()) {
    enabled = true;
    metrics_csv = *v;
  }
}

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options)),
      tracing_enabled_(options_.enabled && options_.tracing && CompiledWithTracing()),
      trace_(telemetry::TraceRecorder::Options{options_.trace_ring_capacity}) {}

Telemetry& Telemetry::Global() {
  // Process-wide singleton, leaked on purpose (no shutdown-order hazards). A
  // sharded run gives each shard its own process and thus its own instance.
  MUDI_SHARD_SHARED("per-process singleton; shards run in separate processes");
  static Telemetry* instance = [] {
    TelemetryOptions options;
    options.enabled = true;
    options.ApplyEnvOverrides();
    return new Telemetry(options);
  }();
  return *instance;
}

bool Telemetry::WriteTraceFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) {
    MUDI_LOG(Warning) << "telemetry: cannot open trace file " << path;
    return false;
  }
  if (EndsWith(path, ".json")) {
    trace_.ExportChromeJson(os);
  } else {
    trace_.WriteBinary(os);
  }
  return true;
}

void Telemetry::Flush(const std::string& label) {
  if (!options_.enabled) {
    return;
  }
  if (!options_.trace_file.empty() && tracing_enabled_) {
    if (WriteTraceFile(options_.trace_file)) {
      MUDI_LOG(Info) << "telemetry: wrote " << trace_.size() << " trace events ("
                     << trace_.dropped_events() << " dropped) to " << options_.trace_file;
    }
  }
  if (!options_.metrics_json.empty()) {
    std::ofstream os(options_.metrics_json, std::ios::app);
    if (os.is_open()) {
      os << "{\"label\":";
      WriteJsonEscapedLabel(os, label);
      os << ",\"telemetry\":";
      metrics_.WriteJson(os);
      os << "}\n";
    } else {
      MUDI_LOG(Warning) << "telemetry: cannot open metrics JSON " << options_.metrics_json;
    }
  }
  if (!options_.metrics_csv.empty()) {
    std::ofstream os(options_.metrics_csv);
    if (os.is_open()) {
      metrics_.WriteSnapshotsCsv(os);
    } else {
      MUDI_LOG(Warning) << "telemetry: cannot open metrics CSV " << options_.metrics_csv;
    }
  }
}

}  // namespace mudi
