#include "src/telemetry/trace_recorder.h"

#include <cstdio>
#include <ostream>
#include <unordered_map>

namespace mudi {
namespace telemetry {

namespace {

void WriteJsonEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void WriteArgs(std::ostream& os, const TraceArgs& args) {
  os << "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ',';
    WriteJsonEscaped(os, args[i].key);
    os << ':';
    if (args[i].is_number) {
      os << args[i].number;
    } else {
      WriteJsonEscaped(os, args[i].text);
    }
  }
  os << "}";
}

template <typename T>
void WriteRaw(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteLenString(std::ostream& os, const std::string& s) {
  WriteRaw<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Deterministic insertion-ordered string table.
class StringTable {
 public:
  uint32_t Intern(const std::string& s) {
    auto [it, inserted] = index_.emplace(s, static_cast<uint32_t>(strings_.size()));
    if (inserted) {
      strings_.push_back(s);
    }
    return it->second;
  }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace

void TraceRecorder::Push(TraceEvent event) {
  ++total_recorded_;
  if (options_.ring_capacity == 0) {
    events_.push_back(std::move(event));
    return;
  }
  if (events_.size() < options_.ring_capacity) {
    events_.push_back(std::move(event));
    return;
  }
  events_[ring_head_] = std::move(event);
  ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
  ++dropped_;
}

void TraceRecorder::Complete(const std::string& cat, const std::string& name, int tid,
                             double start_ms, double dur_ms, TraceArgs args) {
  TraceEvent e;
  e.phase = kPhaseComplete;
  e.cat = cat;
  e.name = name;
  e.tid = tid;
  e.ts_ms = start_ms;
  e.dur_ms = dur_ms;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceRecorder::Instant(const std::string& cat, const std::string& name, int tid,
                            double ts_ms, TraceArgs args) {
  TraceEvent e;
  e.phase = kPhaseInstant;
  e.cat = cat;
  e.name = name;
  e.tid = tid;
  e.ts_ms = ts_ms;
  e.args = std::move(args);
  Push(std::move(e));
}

void TraceRecorder::Counter(const std::string& name, int tid, double ts_ms, double value) {
  TraceEvent e;
  e.phase = kPhaseCounter;
  e.cat = "counter";
  e.name = name;
  e.tid = tid;
  e.ts_ms = ts_ms;
  e.args.push_back(TraceArg::Num("value", value));
  Push(std::move(e));
}

void TraceRecorder::SetThreadName(int tid, const std::string& name) {
  thread_names_[tid] = name;
}

std::vector<TraceEvent> TraceRecorder::ChronologicalEvents() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (options_.ring_capacity > 0 && events_.size() == options_.ring_capacity) {
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(ring_head_ + i) % events_.size()]);
    }
  } else {
    out = events_;
  }
  return out;
}

void TraceRecorder::ExportChromeJson(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  if (!process_name_.empty()) {
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    WriteJsonEscaped(os, process_name_);
    os << "}}";
    first = false;
  }
  for (const auto& [tid, name] : thread_names_) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    WriteJsonEscaped(os, name);
    os << "}}";
  }
  for (const TraceEvent& e : ChronologicalEvents()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_ms * 1000.0;
    if (e.phase == kPhaseComplete) {
      os << ",\"dur\":" << e.dur_ms * 1000.0;
    }
    os << ",\"cat\":";
    WriteJsonEscaped(os, e.cat);
    os << ",\"name\":";
    WriteJsonEscaped(os, e.name);
    if (!e.args.empty()) {
      os << ",\"args\":";
      WriteArgs(os, e.args);
    }
    os << '}';
  }
  os << "\n],\"otherData\":{\"droppedEvents\":" << dropped_
     << ",\"totalRecorded\":" << total_recorded_ << "}}\n";
}

void TraceRecorder::WriteBinary(std::ostream& os) const {
  std::vector<TraceEvent> events = ChronologicalEvents();

  StringTable table;
  for (const TraceEvent& e : events) {
    table.Intern(e.name);
    table.Intern(e.cat);
    for (const TraceArg& a : e.args) {
      table.Intern(a.key);
      if (!a.is_number) {
        table.Intern(a.text);
      }
    }
  }

  os.write("MUDITRC1", 8);
  WriteRaw<uint64_t>(os, events.size());
  WriteRaw<uint64_t>(os, dropped_);
  WriteRaw<uint64_t>(os, total_recorded_);
  WriteLenString(os, process_name_);
  WriteRaw<uint32_t>(os, static_cast<uint32_t>(thread_names_.size()));
  for (const auto& [tid, name] : thread_names_) {
    WriteRaw<int32_t>(os, tid);
    WriteLenString(os, name);
  }
  WriteRaw<uint32_t>(os, static_cast<uint32_t>(table.strings().size()));
  for (const std::string& s : table.strings()) {
    WriteLenString(os, s);
  }
  for (const TraceEvent& e : events) {
    WriteRaw<double>(os, e.ts_ms);
    WriteRaw<double>(os, e.dur_ms);
    WriteRaw<int32_t>(os, e.pid);
    WriteRaw<int32_t>(os, e.tid);
    WriteRaw<uint8_t>(os, static_cast<uint8_t>(e.phase));
    WriteRaw<uint32_t>(os, table.Intern(e.name));
    WriteRaw<uint32_t>(os, table.Intern(e.cat));
    WriteRaw<uint16_t>(os, static_cast<uint16_t>(e.args.size()));
    for (const TraceArg& a : e.args) {
      WriteRaw<uint32_t>(os, table.Intern(a.key));
      WriteRaw<uint8_t>(os, a.is_number ? 1 : 0);
      if (a.is_number) {
        WriteRaw<double>(os, a.number);
      } else {
        WriteRaw<uint32_t>(os, table.Intern(a.text));
      }
    }
  }
}

void TraceRecorder::Clear() {
  events_.clear();
  ring_head_ = 0;
  total_recorded_ = 0;
  dropped_ = 0;
}

}  // namespace telemetry
}  // namespace mudi
