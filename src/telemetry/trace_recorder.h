// Typed event tracing with virtual timestamps on per-device "thread" lanes.
//
// Events follow the Chrome trace_event model (phases X/i/C plus thread-name
// metadata), so an exported trace loads directly in chrome://tracing or
// Perfetto. Two retention modes: unbounded (small runs, tests) and a fixed
// ring buffer that overwrites the oldest events so tracing memory stays
// bounded on 1000-GPU campaigns; the recorder counts what it dropped.
// A compact binary dump (`WriteBinary`) avoids JSON cost for large traces —
// `tools/trace_summary` and the reader in trace_reader.h consume both.
#ifndef SRC_TELEMETRY_TRACE_RECORDER_H_
#define SRC_TELEMETRY_TRACE_RECORDER_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mudi {
namespace telemetry {

// One event argument: a number or a string (shown in the trace viewer).
struct TraceArg {
  std::string key;
  bool is_number = true;
  double number = 0.0;
  std::string text;

  static TraceArg Num(std::string key, double value) {
    TraceArg a;
    a.key = std::move(key);
    a.number = value;
    return a;
  }
  static TraceArg Str(std::string key, std::string value) {
    TraceArg a;
    a.key = std::move(key);
    a.is_number = false;
    a.text = std::move(value);
    return a;
  }
};
using TraceArgs = std::vector<TraceArg>;

// Chrome trace_event phases used here.
inline constexpr char kPhaseComplete = 'X';  // span with duration
inline constexpr char kPhaseInstant = 'i';   // point event
inline constexpr char kPhaseCounter = 'C';   // sampled counter value

struct TraceEvent {
  double ts_ms = 0.0;   // virtual time (simulation ms)
  double dur_ms = 0.0;  // only for kPhaseComplete
  int pid = 0;
  int tid = 0;  // lane: device id, or a control lane past the last device
  char phase = kPhaseInstant;
  std::string name;
  std::string cat;
  TraceArgs args;
};

class TraceRecorder {
 public:
  struct Options {
    // 0 = unbounded; otherwise keep only the newest `ring_capacity` events.
    size_t ring_capacity = 0;
  };

  TraceRecorder() = default;
  explicit TraceRecorder(Options options) : options_(options) {}

  void Complete(const std::string& cat, const std::string& name, int tid, double start_ms,
                double dur_ms, TraceArgs args = {});
  void Instant(const std::string& cat, const std::string& name, int tid, double ts_ms,
               TraceArgs args = {});
  // Counter sample: shown as a per-lane counter track; the value rides in
  // args["value"] so readers need no special case.
  void Counter(const std::string& name, int tid, double ts_ms, double value);

  // Lane labels, exported as thread_name metadata events.
  void SetThreadName(int tid, const std::string& name);
  void SetProcessName(const std::string& name) { process_name_ = name; }

  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped_events() const { return dropped_; }
  size_t size() const { return events_.size(); }
  const Options& options() const { return options_; }
  const std::map<int, std::string>& thread_names() const { return thread_names_; }

  // Retained events, oldest first (ring unwrapped into insertion order).
  std::vector<TraceEvent> ChronologicalEvents() const;

  // Chrome trace_event JSON ({"traceEvents": [...]}; ts/dur in microseconds).
  void ExportChromeJson(std::ostream& os) const;

  // Compact binary dump with a string table; see trace_reader.h.
  void WriteBinary(std::ostream& os) const;

  void Clear();

 private:
  void Push(TraceEvent event);

  Options options_;
  std::vector<TraceEvent> events_;
  size_t ring_head_ = 0;  // next overwrite position once the ring is full
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
  std::map<int, std::string> thread_names_;
  std::string process_name_;
};

}  // namespace telemetry
}  // namespace mudi

#endif  // SRC_TELEMETRY_TRACE_RECORDER_H_
