// Readers for the two trace formats TraceRecorder writes (Chrome trace_event
// JSON and the compact binary dump), plus the per-device aggregation that
// backs `tools/trace_summary` and the telemetry tests.
#ifndef SRC_TELEMETRY_TRACE_READER_H_
#define SRC_TELEMETRY_TRACE_READER_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/telemetry/trace_recorder.h"

namespace mudi {
namespace telemetry {

struct ParsedTrace {
  std::vector<TraceEvent> events;  // metadata events excluded
  std::map<int, std::string> thread_names;
  std::string process_name;
  uint64_t dropped_events = 0;
  uint64_t total_recorded = 0;
};

// Parses a Chrome trace_event JSON document (as ExportChromeJson writes it;
// tolerant of any standard JSON layout). Returns false with `*error` set on
// malformed input.
bool ParseChromeTraceJson(std::istream& is, ParsedTrace* out, std::string* error);

// Reads the "MUDITRC1" binary format.
bool ReadBinaryTrace(std::istream& is, ParsedTrace* out, std::string* error);

// Dispatches on the magic bytes / first character.
bool LoadTraceFile(const std::string& path, ParsedTrace* out, std::string* error);

// --- aggregation -----------------------------------------------------------

struct LaneSummary {
  int tid = 0;
  std::string name;
  // Time-weighted averages of the "sm_util" / "mem_util" counter samples
  // (matches GpuDevice::AccumulateUsage weighting, so it agrees with the
  // exp/metrics cluster-utilization aggregates).
  double avg_sm_util = 0.0;
  double avg_mem_util = 0.0;
  // Fraction of the trace span covered by "serving" complete spans.
  double serving_busy_fraction = 0.0;
  uint64_t serving_batches = 0;
  // Instant-event counts keyed by "cat/name" (placements, tunes, swaps, ...).
  std::map<std::string, uint64_t> decision_counts;
  // Downtime attributed from paired "fault"/device_down -> device_up
  // instants; an interval left open (permanent failure) runs to span end.
  double downtime_ms = 0.0;
};

struct TraceSummary {
  double span_ms = 0.0;  // max event end time
  std::map<int, LaneSummary> lanes;
  std::map<std::string, uint64_t> events_by_category;
  // Mean of avg_sm_util over lanes that carried sm_util samples.
  double cluster_avg_sm_util = 0.0;
  double cluster_avg_mem_util = 0.0;
  // Sum of per-lane downtime_ms (device-downtime, not wall-clock overlap).
  double total_downtime_ms = 0.0;
};

TraceSummary SummarizeTrace(const ParsedTrace& trace);

// Human-readable report (what `tools/trace_summary` prints).
void PrintTraceSummary(const TraceSummary& summary, std::ostream& os);

}  // namespace telemetry
}  // namespace mudi

#endif  // SRC_TELEMETRY_TRACE_READER_H_
