// Telemetry facade: one object bundling a MetricsRegistry and a
// TraceRecorder, handed (as a possibly-null pointer) to every instrumented
// layer. The MUDI_TRACE_* macro layer compiles to an unevaluated-operand
// no-op when the build sets MUDI_TRACING_ENABLED=0 (CMake option
// MUDI_ENABLE_TRACING), so hot paths pay nothing when tracing is off — and
// only a null-pointer check when it is compiled in but disabled at runtime.
//
// Telemetry never feeds back into the simulation (no RNG draws, no event
// scheduling), so enabling or disabling it cannot perturb experiment
// results — a property the telemetry tests pin down.
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <string>

#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/trace_recorder.h"

// Default to tracing compiled in when the build system does not say.
#if !defined(MUDI_TRACING_ENABLED)
#define MUDI_TRACING_ENABLED 1
#endif

namespace mudi {

struct TelemetryOptions {
  // Master switch: when false the experiment does not record anything and
  // instrumented components receive a null Telemetry pointer.
  bool enabled = false;
  // Record trace events (in addition to metrics). Requires the build to have
  // MUDI_ENABLE_TRACING=ON to have any effect.
  bool tracing = true;
  // 0 = unbounded; otherwise a ring buffer of the newest N events.
  size_t trace_ring_capacity = 0;

  // Output paths, written by Telemetry::Flush(); empty = skip.
  std::string trace_file;    // ".json" -> Chrome trace, anything else -> binary
  std::string metrics_json;  // appends one JSON line per Flush (JSONL)
  std::string metrics_csv;   // snapshot time-series CSV (overwritten)

  // Environment overrides, used by bench binaries without code changes:
  //   MUDI_TRACE_FILE=path      enable + write the trace there
  //   MUDI_TRACE_RING=N         ring-buffer capacity
  //   MUDI_TELEMETRY_JSON=path  enable + append a metrics JSON line
  //   MUDI_METRICS_CSV=path     enable + write the snapshot CSV
  void ApplyEnvOverrides();
};

class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(TelemetryOptions options);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Process-wide instance for tools and ad-hoc use; experiments own their
  // own instance so runs in one process stay independent.
  static Telemetry& Global();

  bool enabled() const { return options_.enabled; }
  bool tracing_enabled() const { return tracing_enabled_; }
  static constexpr bool CompiledWithTracing() { return MUDI_TRACING_ENABLED != 0; }

  const TelemetryOptions& options() const { return options_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  telemetry::TraceRecorder& trace() { return trace_; }
  const telemetry::TraceRecorder& trace() const { return trace_; }

  // Writes every configured output. `label` tags the metrics JSON line
  // (e.g. the policy name of the run that just finished).
  void Flush(const std::string& label = "");

  // Writes the trace to `path` (Chrome JSON if it ends in ".json", binary
  // otherwise). Returns false when the file cannot be opened.
  bool WriteTraceFile(const std::string& path) const;

 private:
  TelemetryOptions options_;
  bool tracing_enabled_ = false;
  telemetry::MetricsRegistry metrics_;
  telemetry::TraceRecorder trace_;
};

namespace telemetry_internal {
// Declared, never defined: MUDI_TRACE_* arguments land in an unevaluated
// sizeof() operand when tracing is compiled out, so they cost nothing yet
// still typecheck and count as used (no -Wunused warnings).
template <typename... Args>
int Sink(Args&&... args);
}  // namespace telemetry_internal

}  // namespace mudi

#if MUDI_TRACING_ENABLED

// MUDI_TRACE_COMPLETE(tel, cat, name, tid, start_ms, dur_ms [, args])
#define MUDI_TRACE_COMPLETE(tel, ...)                        \
  do {                                                       \
    ::mudi::Telemetry* mudi_trace_tel_ = (tel);              \
    if (mudi_trace_tel_ && mudi_trace_tel_->tracing_enabled()) \
      mudi_trace_tel_->trace().Complete(__VA_ARGS__);        \
  } while (0)

// MUDI_TRACE_INSTANT(tel, cat, name, tid, ts_ms [, args])
#define MUDI_TRACE_INSTANT(tel, ...)                         \
  do {                                                       \
    ::mudi::Telemetry* mudi_trace_tel_ = (tel);              \
    if (mudi_trace_tel_ && mudi_trace_tel_->tracing_enabled()) \
      mudi_trace_tel_->trace().Instant(__VA_ARGS__);         \
  } while (0)

// MUDI_TRACE_COUNTER(tel, name, tid, ts_ms, value)
#define MUDI_TRACE_COUNTER(tel, ...)                         \
  do {                                                       \
    ::mudi::Telemetry* mudi_trace_tel_ = (tel);              \
    if (mudi_trace_tel_ && mudi_trace_tel_->tracing_enabled()) \
      mudi_trace_tel_->trace().Counter(__VA_ARGS__);         \
  } while (0)

#else  // !MUDI_TRACING_ENABLED

#define MUDI_TRACE_COMPLETE(tel, ...) \
  ((void)sizeof(::mudi::telemetry_internal::Sink((tel), __VA_ARGS__)))
#define MUDI_TRACE_INSTANT(tel, ...) \
  ((void)sizeof(::mudi::telemetry_internal::Sink((tel), __VA_ARGS__)))
#define MUDI_TRACE_COUNTER(tel, ...) \
  ((void)sizeof(::mudi::telemetry_internal::Sink((tel), __VA_ARGS__)))

#endif  // MUDI_TRACING_ENABLED

#endif  // SRC_TELEMETRY_TELEMETRY_H_
