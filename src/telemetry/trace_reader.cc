#include "src/telemetry/trace_reader.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

namespace mudi {
namespace telemetry {

namespace {

// --- minimal JSON value + recursive-descent parser --------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  double NumberOr(double fallback) const { return type == Type::kNumber ? number : fallback; }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " (offset " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      size_t len = std::string(kw).size();
      if (text_.compare(pos_, len, kw) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("invalid keyword");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("invalid number");
    }
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("invalid number token '" + token + "'");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // ASCII only (all the recorder emits); others degrade to '?'.
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) {
      return Fail("expected '['");
    }
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']' in array");
      }
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) {
      return Fail("expected '{'");
    }
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}' in object");
      }
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

template <typename T>
bool ReadRaw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  return is.good() || (is.eof() && is.gcount() == sizeof(T));
}

bool ReadLenString(std::istream& is, std::string* out) {
  uint32_t len = 0;
  if (!ReadRaw(is, &len) || len > (1u << 28)) {
    return false;
  }
  out->resize(len);
  if (len > 0) {
    is.read(out->data(), len);
  }
  return !is.fail();
}

}  // namespace

bool ParseChromeTraceJson(std::istream& is, ParsedTrace* out, std::string* error) {
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string text = buf.str();

  JsonValue root;
  JsonParser parser(text, error);
  if (!parser.Parse(&root)) {
    return false;
  }
  const JsonValue* events = nullptr;
  if (root.type == JsonValue::Type::kObject) {
    events = root.Find("traceEvents");
    if (const JsonValue* other = root.Find("otherData");
        other != nullptr && other->type == JsonValue::Type::kObject) {
      if (const JsonValue* d = other->Find("droppedEvents")) {
        out->dropped_events = static_cast<uint64_t>(d->NumberOr(0.0));
      }
      if (const JsonValue* t = other->Find("totalRecorded")) {
        out->total_recorded = static_cast<uint64_t>(t->NumberOr(0.0));
      }
    }
  } else if (root.type == JsonValue::Type::kArray) {
    events = &root;  // bare-array trace files are also valid Chrome traces
  }
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    if (error != nullptr) {
      *error = "no traceEvents array found";
    }
    return false;
  }

  for (const JsonValue& ev : events->array) {
    if (ev.type != JsonValue::Type::kObject) {
      if (error != nullptr) {
        *error = "trace event is not an object";
      }
      return false;
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString || ph->str.empty()) {
      if (error != nullptr) {
        *error = "trace event missing 'ph'";
      }
      return false;
    }
    int tid = static_cast<int>(ev.Find("tid") ? ev.Find("tid")->NumberOr(0.0) : 0.0);
    if (ph->str == "M") {
      const JsonValue* name = ev.Find("name");
      const JsonValue* args = ev.Find("args");
      const JsonValue* value =
          (args != nullptr && args->type == JsonValue::Type::kObject) ? args->Find("name")
                                                                      : nullptr;
      if (name != nullptr && value != nullptr && value->type == JsonValue::Type::kString) {
        if (name->str == "thread_name") {
          out->thread_names[tid] = value->str;
        } else if (name->str == "process_name") {
          out->process_name = value->str;
        }
      }
      continue;
    }
    TraceEvent e;
    e.phase = ph->str[0];
    e.tid = tid;
    e.pid = static_cast<int>(ev.Find("pid") ? ev.Find("pid")->NumberOr(0.0) : 0.0);
    e.ts_ms = (ev.Find("ts") ? ev.Find("ts")->NumberOr(0.0) : 0.0) / 1000.0;
    e.dur_ms = (ev.Find("dur") ? ev.Find("dur")->NumberOr(0.0) : 0.0) / 1000.0;
    if (const JsonValue* name = ev.Find("name"); name != nullptr) {
      e.name = name->str;
    }
    if (const JsonValue* cat = ev.Find("cat"); cat != nullptr) {
      e.cat = cat->str;
    }
    if (const JsonValue* args = ev.Find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      for (const auto& [key, value] : args->object) {
        if (value.type == JsonValue::Type::kNumber) {
          e.args.push_back(TraceArg::Num(key, value.number));
        } else if (value.type == JsonValue::Type::kString) {
          e.args.push_back(TraceArg::Str(key, value.str));
        }
      }
    }
    out->events.push_back(std::move(e));
  }
  return true;
}

bool ReadBinaryTrace(std::istream& is, ParsedTrace* out, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  char magic[8];
  is.read(magic, 8);
  if (!is.good() || std::string(magic, 8) != "MUDITRC1") {
    return fail("bad magic (not a mudi binary trace)");
  }
  uint64_t event_count = 0;
  if (!ReadRaw(is, &event_count) || !ReadRaw(is, &out->dropped_events) ||
      !ReadRaw(is, &out->total_recorded)) {
    return fail("truncated header");
  }
  if (!ReadLenString(is, &out->process_name)) {
    return fail("truncated process name");
  }
  uint32_t num_threads = 0;
  if (!ReadRaw(is, &num_threads)) {
    return fail("truncated thread table");
  }
  for (uint32_t i = 0; i < num_threads; ++i) {
    int32_t tid = 0;
    std::string name;
    if (!ReadRaw(is, &tid) || !ReadLenString(is, &name)) {
      return fail("truncated thread table entry");
    }
    out->thread_names[tid] = std::move(name);
  }
  uint32_t num_strings = 0;
  if (!ReadRaw(is, &num_strings)) {
    return fail("truncated string table");
  }
  std::vector<std::string> table(num_strings);
  for (uint32_t i = 0; i < num_strings; ++i) {
    if (!ReadLenString(is, &table[i])) {
      return fail("truncated string table entry");
    }
  }
  auto lookup = [&](uint32_t idx, std::string* s) {
    if (idx >= table.size()) {
      return false;
    }
    *s = table[idx];
    return true;
  };
  out->events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    TraceEvent e;
    int32_t pid = 0;
    int32_t tid = 0;
    uint8_t phase = 0;
    uint32_t name_idx = 0;
    uint32_t cat_idx = 0;
    uint16_t n_args = 0;
    if (!ReadRaw(is, &e.ts_ms) || !ReadRaw(is, &e.dur_ms) || !ReadRaw(is, &pid) ||
        !ReadRaw(is, &tid) || !ReadRaw(is, &phase) || !ReadRaw(is, &name_idx) ||
        !ReadRaw(is, &cat_idx) || !ReadRaw(is, &n_args)) {
      return fail("truncated event record");
    }
    e.pid = pid;
    e.tid = tid;
    e.phase = static_cast<char>(phase);
    if (!lookup(name_idx, &e.name) || !lookup(cat_idx, &e.cat)) {
      return fail("string index out of range");
    }
    for (uint16_t a = 0; a < n_args; ++a) {
      uint32_t key_idx = 0;
      uint8_t is_num = 0;
      if (!ReadRaw(is, &key_idx) || !ReadRaw(is, &is_num)) {
        return fail("truncated arg record");
      }
      TraceArg arg;
      if (!lookup(key_idx, &arg.key)) {
        return fail("arg key index out of range");
      }
      arg.is_number = is_num != 0;
      if (arg.is_number) {
        if (!ReadRaw(is, &arg.number)) {
          return fail("truncated numeric arg");
        }
      } else {
        uint32_t text_idx = 0;
        if (!ReadRaw(is, &text_idx) || !lookup(text_idx, &arg.text)) {
          return fail("truncated string arg");
        }
      }
      e.args.push_back(std::move(arg));
    }
    out->events.push_back(std::move(e));
  }
  return true;
}

bool LoadTraceFile(const std::string& path, ParsedTrace* out, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  char first = static_cast<char>(is.peek());
  if (first == 'M') {  // "MUDITRC1"
    return ReadBinaryTrace(is, out, error);
  }
  return ParseChromeTraceJson(is, out, error);
}

// --- aggregation ------------------------------------------------------------

TraceSummary SummarizeTrace(const ParsedTrace& trace) {
  TraceSummary summary;
  struct Weighted {
    double weighted_sum = 0.0;
    double total_dt = 0.0;
    double last_ts = 0.0;  // matches the experiment's t=0 sampling origin
  };
  std::map<int, Weighted> sm_acc;
  std::map<int, Weighted> mem_acc;
  std::map<int, double> open_down;  // tid -> device_down timestamp, unmatched

  for (const TraceEvent& e : trace.events) {
    summary.span_ms = std::max(summary.span_ms, e.ts_ms + e.dur_ms);
    ++summary.events_by_category[e.cat];
    LaneSummary& lane = summary.lanes[e.tid];
    lane.tid = e.tid;
    if (e.phase == kPhaseComplete && e.cat == "serving") {
      lane.serving_busy_fraction += e.dur_ms;  // normalized after the span is known
      ++lane.serving_batches;
    } else if (e.phase == kPhaseInstant) {
      ++lane.decision_counts[e.cat + "/" + e.name];
      if (e.cat == "fault") {
        // The injector edge-collapses overlapping faults, so down/up instants
        // alternate per lane; pair them into downtime intervals.
        if (e.name == "device_down") {
          open_down.emplace(e.tid, e.ts_ms);
        } else if (e.name == "device_up") {
          auto it = open_down.find(e.tid);
          if (it != open_down.end()) {
            lane.downtime_ms += e.ts_ms - it->second;
            open_down.erase(it);
          }
        }
      }
    } else if (e.phase == kPhaseCounter && (e.name == "sm_util" || e.name == "mem_util")) {
      double value = 0.0;
      for (const TraceArg& a : e.args) {
        if (a.key == "value" && a.is_number) {
          value = a.number;
        }
      }
      Weighted& acc = e.name == "sm_util" ? sm_acc[e.tid] : mem_acc[e.tid];
      double dt = e.ts_ms - acc.last_ts;
      if (dt > 0.0) {
        acc.weighted_sum += value * dt;
        acc.total_dt += dt;
        acc.last_ts = e.ts_ms;
      }
    }
  }

  // Intervals never closed (permanent failures) run to the end of the span.
  for (const auto& [tid, since] : open_down) {
    summary.lanes[tid].downtime_ms += std::max(0.0, summary.span_ms - since);
  }
  for (auto& [tid, lane] : summary.lanes) {
    summary.total_downtime_ms += lane.downtime_ms;
    auto it = trace.thread_names.find(tid);
    if (it != trace.thread_names.end()) {
      lane.name = it->second;
    }
    if (summary.span_ms > 0.0) {
      lane.serving_busy_fraction =
          std::clamp(lane.serving_busy_fraction / summary.span_ms, 0.0, 1.0);
    }
  }
  double sm_sum = 0.0;
  size_t sm_n = 0;
  for (const auto& [tid, acc] : sm_acc) {
    if (acc.total_dt > 0.0) {
      summary.lanes[tid].avg_sm_util = acc.weighted_sum / acc.total_dt;
      sm_sum += summary.lanes[tid].avg_sm_util;
      ++sm_n;
    }
  }
  double mem_sum = 0.0;
  size_t mem_n = 0;
  for (const auto& [tid, acc] : mem_acc) {
    if (acc.total_dt > 0.0) {
      summary.lanes[tid].avg_mem_util = acc.weighted_sum / acc.total_dt;
      mem_sum += summary.lanes[tid].avg_mem_util;
      ++mem_n;
    }
  }
  summary.cluster_avg_sm_util = sm_n == 0 ? 0.0 : sm_sum / static_cast<double>(sm_n);
  summary.cluster_avg_mem_util = mem_n == 0 ? 0.0 : mem_sum / static_cast<double>(mem_n);
  return summary;
}

void PrintTraceSummary(const TraceSummary& summary, std::ostream& os) {
  os << "trace span: " << summary.span_ms / 1000.0 << " s\n";
  os << "events by category:";
  for (const auto& [cat, n] : summary.events_by_category) {
    os << "  " << cat << "=" << n;
  }
  os << "\n\nper-device lanes:\n";
  for (const auto& [tid, lane] : summary.lanes) {
    bool has_util = lane.avg_sm_util > 0.0 || lane.avg_mem_util > 0.0;
    if (!has_util && lane.serving_batches == 0 && lane.decision_counts.empty()) {
      continue;
    }
    os << "  lane " << tid;
    if (!lane.name.empty()) {
      os << " (" << lane.name << ")";
    }
    os << ": sm_util=" << lane.avg_sm_util << " mem_util=" << lane.avg_mem_util
       << " serving_busy=" << lane.serving_busy_fraction
       << " batches=" << lane.serving_batches;
    if (lane.downtime_ms > 0.0) {
      os << " downtime=" << lane.downtime_ms / 1000.0 << "s";
    }
    os << "\n";
    for (const auto& [key, n] : lane.decision_counts) {
      os << "      " << key << ": " << n << "\n";
    }
  }
  os << "\ncluster avg sm_util: " << summary.cluster_avg_sm_util
     << "  mem_util: " << summary.cluster_avg_mem_util << "\n";
  if (summary.total_downtime_ms > 0.0) {
    os << "total device downtime: " << summary.total_downtime_ms / 1000.0 << " s\n";
  }
}

}  // namespace telemetry
}  // namespace mudi
