// Metrics registry: named counters, gauges, and fixed-bucket histograms with
// periodic time-series snapshots (paper §7 reports aggregates; the registry
// records how they evolved). Metric objects are owned by the registry and
// have stable addresses, so hot paths cache a pointer once and pay a single
// branch + add per update. Iteration order is the metric name order
// (std::map), so every export is deterministic.
#ifndef SRC_TELEMETRY_METRICS_REGISTRY_H_
#define SRC_TELEMETRY_METRICS_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mudi {
namespace telemetry {

class Counter {
 public:
  void Increment(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: `upper_bounds` are ascending inclusive upper edges;
// an implicit +inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // bucket_counts().size() == upper_bounds().size() + 1 (last = overflow).
  const std::vector<uint64_t>& bucket_counts() const { return bucket_counts_; }

  // Linear-interpolated quantile estimate from the bucket counts, q in [0, 1].
  double ApproxQuantile(double q) const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> bucket_counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Get-or-create; returned references stay valid for the registry lifetime.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `upper_bounds` is only consulted on first creation.
  Histogram& GetHistogram(const std::string& name, std::vector<double> upper_bounds);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Geometric 1ms..60s latency-style bucket edges (shared default).
  static std::vector<double> DefaultLatencyBucketsMs();

  // --- time series ---
  // Captures the current value of every counter and gauge plus (count, mean)
  // of every histogram, stamped with the virtual time.
  void RecordSnapshot(double time_ms);

  struct Snapshot {
    double time_ms = 0.0;
    // Sorted by key (flattened "histname.count"-style keys for histograms).
    std::vector<std::pair<std::string, double>> values;
  };
  const std::vector<Snapshot>& snapshots() const { return snapshots_; }

  // CSV with one row per snapshot; the column set is the union over all
  // snapshots (metrics created mid-run backfill as empty cells).
  void WriteSnapshotsCsv(std::ostream& os) const;

  // Current values of everything, as one JSON object (no trailing newline).
  void WriteJson(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace telemetry
}  // namespace mudi

#endif  // SRC_TELEMETRY_METRICS_REGISTRY_H_
