#include "src/telemetry/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>

namespace mudi {
namespace telemetry {

namespace {

// JSON-safe number: NaN/inf have no JSON representation, emit 0.
void WriteJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  os << v;
}

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  bucket_counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  ++bucket_counts_[i];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    double next = cum + static_cast<double>(bucket_counts_[i]);
    if (next >= target && bucket_counts_[i] > 0) {
      double lo = i == 0 ? min_ : upper_bounds_[i - 1];
      double hi = i < upper_bounds_.size() ? upper_bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi < lo) {
        return lo;
      }
      double frac = (target - cum) / static_cast<double>(bucket_counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::GetGauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
  }
  return it->second;
}

std::vector<double> MetricsRegistry::DefaultLatencyBucketsMs() {
  std::vector<double> edges;
  for (double e = 1.0; e <= 60000.0; e *= 2.0) {
    edges.push_back(e);
  }
  return edges;
}

void MetricsRegistry::RecordSnapshot(double time_ms) {
  Snapshot snap;
  snap.time_ms = time_ms;
  for (const auto& [name, c] : counters_) {
    snap.values.emplace_back(name, c.value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.values.emplace_back(name, g.value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.values.emplace_back(name + ".count", static_cast<double>(h.count()));
    snap.values.emplace_back(name + ".mean", h.mean());
  }
  std::sort(snap.values.begin(), snap.values.end());
  snapshots_.push_back(std::move(snap));
}

void MetricsRegistry::WriteSnapshotsCsv(std::ostream& os) const {
  std::set<std::string> columns;
  for (const auto& snap : snapshots_) {
    for (const auto& [key, value] : snap.values) {
      columns.insert(key);
    }
  }
  os << "time_ms";
  for (const auto& col : columns) {
    os << ',' << col;
  }
  os << '\n';
  for (const auto& snap : snapshots_) {
    os << snap.time_ms;
    // snap.values is sorted, columns is sorted: merge-scan.
    auto it = snap.values.begin();
    for (const auto& col : columns) {
      while (it != snap.values.end() && it->first < col) {
        ++it;
      }
      os << ',';
      if (it != snap.values.end() && it->first == col) {
        os << it->second;
      }
    }
    os << '\n';
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':';
    WriteJsonNumber(os, c.value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':';
    WriteJsonNumber(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ":{\"count\":" << h.count() << ",\"mean\":";
    WriteJsonNumber(os, h.mean());
    os << ",\"min\":";
    WriteJsonNumber(os, h.min());
    os << ",\"max\":";
    WriteJsonNumber(os, h.max());
    os << ",\"p50\":";
    WriteJsonNumber(os, h.ApproxQuantile(0.5));
    os << ",\"p99\":";
    WriteJsonNumber(os, h.ApproxQuantile(0.99));
    os << '}';
  }
  os << "}}";
}

}  // namespace telemetry
}  // namespace mudi
