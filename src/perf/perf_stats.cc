#include "src/perf/perf_stats.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace mudi {
namespace perf {

LatencyStat::LatencyStat(size_t max_samples) : max_samples_(max_samples) {
  MUDI_CHECK_GE(max_samples_, 2u);
  samples_.reserve(std::min<size_t>(max_samples_, 1024));
}

void LatencyStat::Record(double ms) {
  if (count_ == 0) {
    min_ms_ = ms;
    max_ms_ = ms;
  } else {
    min_ms_ = std::min(min_ms_, ms);
    max_ms_ = std::max(max_ms_, ms);
  }
  ++count_;
  total_ms_ += ms;

  // Stride admission: keep every stride_-th record in the quantile buffer.
  if (since_admit_ % stride_ == 0) {
    if (samples_.size() == max_samples_) {
      // Buffer full: drop every other retained sample (keeping the evenly
      // strided half) and halve the future admission rate.
      size_t w = 0;
      for (size_t r = 0; r < samples_.size(); r += 2) {
        samples_[w++] = samples_[r];
      }
      samples_.resize(w);
      stride_ *= 2;
    }
    samples_.push_back(ms);
    since_admit_ = 0;
  }
  ++since_admit_;
}

double LatencyStat::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  return Percentile(samples_, 100.0 * q);
}

void LatencyStat::Reset() {
  count_ = 0;
  total_ms_ = 0.0;
  min_ms_ = 0.0;
  max_ms_ = 0.0;
  stride_ = 1;
  since_admit_ = 0;
  samples_.clear();
}

}  // namespace perf
}  // namespace mudi
