#include "src/perf/json_check.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace mudi {
namespace perf {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    StatusOr<JsonValue> value = ParseValue(0);
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << " (offset " << pos_ << "): " << message;
    return InvalidArgumentError(os.str());
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting deeper than 64 levels");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        StatusOr<std::string> s = ParseString();
        if (!s.ok()) {
          return s.status();
        }
        return JsonValue::String(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) {
          return JsonValue::Bool(true);
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          return JsonValue::Bool(false);
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          return JsonValue::Null();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::Object(std::move(members));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string object key");
      }
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      members[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue::Object(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::Array(std::move(items));
    }
    for (;;) {
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) {
        return value;
      }
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue::Array(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error("truncated \\u escape");
            }
            // Validated but passed through verbatim: the perf artifacts are
            // ASCII and the validator only needs well-formedness.
            for (int i = 0; i < 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) == 0) {
                return Error("invalid \\u escape");
              }
            }
            out.append("\\u");
            out.append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Error("invalid escape character");
        }
        continue;
      }
      out.push_back(c);
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits_start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == digits_start) {
      return Error("invalid value");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- schema helpers ---

Status RequireKind(const JsonValue& parent, const std::string& key, JsonValue::Kind kind,
                   const std::string& where, const JsonValue** out) {
  const JsonValue* v = parent.Find(key);
  if (v == nullptr) {
    return InvalidArgumentError(where + ": missing required key '" + key + "'");
  }
  if (v->kind() != kind) {
    return InvalidArgumentError(where + ": key '" + key + "' has the wrong type");
  }
  if (out != nullptr) {
    *out = v;
  }
  return Status::Ok();
}

Status RequireNumberKeys(const JsonValue& obj, const std::vector<std::string>& keys,
                         const std::string& where) {
  for (const std::string& key : keys) {
    MUDI_RETURN_IF_ERROR(RequireKind(obj, key, JsonValue::Kind::kNumber, where, nullptr));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str());
}

Status ValidateBenchThroughputJson(const JsonValue& root) {
  if (!root.is_object()) {
    return InvalidArgumentError("bench JSON: top level must be an object");
  }
  const JsonValue* schema = nullptr;
  MUDI_RETURN_IF_ERROR(
      RequireKind(root, "schema", JsonValue::Kind::kString, "bench JSON", &schema));
  if (schema->string() != "mudi.bench_throughput.v1") {
    return InvalidArgumentError("bench JSON: unknown schema '" + schema->string() + "'");
  }
  MUDI_RETURN_IF_ERROR(
      RequireKind(root, "build", JsonValue::Kind::kObject, "bench JSON", nullptr));

  const JsonValue* records = nullptr;
  MUDI_RETURN_IF_ERROR(
      RequireKind(root, "records", JsonValue::Kind::kArray, "bench JSON", &records));
  if (records->array().empty()) {
    return InvalidArgumentError("bench JSON: 'records' is empty");
  }
  for (size_t i = 0; i < records->array().size(); ++i) {
    const JsonValue& rec = records->array()[i];
    std::string where = "records[" + std::to_string(i) + "]";
    if (!rec.is_object()) {
      return InvalidArgumentError(where + ": not an object");
    }
    MUDI_RETURN_IF_ERROR(RequireKind(rec, "preset", JsonValue::Kind::kString, where, nullptr));
    MUDI_RETURN_IF_ERROR(RequireKind(rec, "policy", JsonValue::Kind::kString, where, nullptr));
    MUDI_RETURN_IF_ERROR(RequireNumberKeys(
        rec, {"wall_ms", "sim_ms", "events_fired", "events_scheduled", "events_cancelled",
              "events_per_sec", "sim_seconds_per_wall_second"},
        where));
    const JsonValue* decision = nullptr;
    MUDI_RETURN_IF_ERROR(
        RequireKind(rec, "decision_latency_ms", JsonValue::Kind::kObject, where, &decision));
    MUDI_RETURN_IF_ERROR(RequireNumberKeys(*decision, {"count", "p50", "p95", "p99", "max"},
                                           where + ".decision_latency_ms"));
  }

  const JsonValue* optimizations = nullptr;
  MUDI_RETURN_IF_ERROR(
      RequireKind(root, "optimizations", JsonValue::Kind::kArray, "bench JSON", &optimizations));
  if (optimizations->array().empty()) {
    return InvalidArgumentError("bench JSON: 'optimizations' is empty — the trajectory must "
                                "record at least one before/after hot-path delta");
  }
  for (size_t i = 0; i < optimizations->array().size(); ++i) {
    const JsonValue& opt = optimizations->array()[i];
    std::string where = "optimizations[" + std::to_string(i) + "]";
    if (!opt.is_object()) {
      return InvalidArgumentError(where + ": not an object");
    }
    MUDI_RETURN_IF_ERROR(RequireKind(opt, "name", JsonValue::Kind::kString, where, nullptr));
    MUDI_RETURN_IF_ERROR(RequireNumberKeys(
        opt, {"before_events_per_sec", "after_events_per_sec", "speedup"}, where));
  }
  return Status::Ok();
}

}  // namespace perf
}  // namespace mudi
