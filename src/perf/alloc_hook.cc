// Opt-in global allocation counting (library `mudi_perf_alloc_hook`).
//
// Linking this translation unit replaces the global allocation operators
// with thin counting forwarders over malloc/free, feeding the atomics in
// src/perf/mem_probe.h. Only binaries that *measure* allocation behaviour
// (bench_throughput, perf_test) link it — production simulation binaries
// keep the default operators and pay nothing.
//
// The replacements follow the standard contract: throwing forms loop on
// std::get_new_handler() before giving up with std::bad_alloc; nothrow and
// sized/aligned forms forward consistently. malloc/free stay the backing
// store, so sanitizer interceptors keep working underneath.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "src/common/thread_annotations.h"
#include "src/perf/mem_probe.h"

namespace {

using mudi::perf::alloc_hook_internal::g_allocations;
using mudi::perf::alloc_hook_internal::g_bytes_allocated;
using mudi::perf::alloc_hook_internal::g_deallocations;
using mudi::perf::alloc_hook_internal::g_hook_linked;

struct HookMarker {
  HookMarker() { g_hook_linked.store(true, std::memory_order_relaxed); }
};
// Static-init side effect only: flips g_hook_linked once at startup so the
// probe can report whether counting operators are present in this binary.
MUDI_SHARD_SHARED("write-once link marker; set before main, never mutated after");
HookMarker g_hook_marker;

void CountAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes_allocated.fetch_add(size, std::memory_order_relaxed);
}

void CountFree() { g_deallocations.fetch_add(1, std::memory_order_relaxed); }

void* CountedAlloc(std::size_t size) {
  for (;;) {
    void* p = std::malloc(size == 0 ? 1 : size);
    if (p != nullptr) {
      CountAlloc(size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      return nullptr;
    }
    handler();
  }
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) == 0) {
      CountAlloc(size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      return nullptr;
    }
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    CountFree();
    std::free(p);
  }
}

void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { operator delete(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::align_val_t) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { operator delete(p); }
