// Process-memory and heap-allocation probes for the self-profiling layer.
//
// ReadMemoryUsage() samples the kernel's accounting (/proc/self/status on
// Linux) — zero cost to the simulation itself, observe-only. Allocation
// counting is opt-in at link time: binaries that want real new/delete counts
// (bench_throughput, perf_test) additionally link `mudi_perf_alloc_hook`,
// which replaces the global allocation operators with counting forwarders.
// Binaries that do not link the hook read all-zero counters with
// `hooked == false`, so the probe degrades gracefully.
#ifndef SRC_PERF_MEM_PROBE_H_
#define SRC_PERF_MEM_PROBE_H_

#include <atomic>
#include <cstdint>

#include "src/common/thread_annotations.h"

namespace mudi {
namespace perf {

struct MemoryUsage {
  // Resident set size right now / peak over the process lifetime, in bytes.
  // Zero when the platform exposes no accounting (non-Linux).
  uint64_t current_rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
};

MemoryUsage ReadMemoryUsage();

struct AllocStats {
  bool hooked = false;  // true iff mudi_perf_alloc_hook is linked in
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t bytes_allocated = 0;
};

AllocStats ReadAllocStats();

// Convenience: stats_now - baseline, for per-run deltas.
AllocStats AllocStatsSince(const AllocStats& baseline);

namespace alloc_hook_internal {
// Defined in mem_probe.cc (always present); incremented only by the
// replacement operators in alloc_hook.cc when that library is linked.
// Atomics because allocation can happen on any thread (gtest, sanitizers).
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
extern std::atomic<uint64_t> g_allocations;
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
extern std::atomic<uint64_t> g_deallocations;
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
extern std::atomic<uint64_t> g_bytes_allocated;
MUDI_GUARDED_STATE("write-once link marker set during static init");
extern std::atomic<bool> g_hook_linked;
}  // namespace alloc_hook_internal

}  // namespace perf
}  // namespace mudi

#endif  // SRC_PERF_MEM_PROBE_H_
