// PerfReport — end-of-run aggregation of a PerfCollector into a flat,
// serializable summary: per-region latency distributions (count, total,
// p50/p95/p99, max), monotonic counters, process-memory and allocation
// probes, plus build metadata so a recorded trajectory (BENCH_*.json) stays
// interpretable across toolchain changes.
#ifndef SRC_PERF_PERF_REPORT_H_
#define SRC_PERF_PERF_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/perf/mem_probe.h"
#include "src/perf/perf_collector.h"

namespace mudi {
namespace perf {

struct RegionSummary {
  std::string name;
  uint64_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct BuildMetadata {
  std::string schema_version;
  std::string compiler;
  std::string build_type;  // "release" (NDEBUG) or "debug"
  bool tracing_compiled_in = false;

  static BuildMetadata Current();
  void WriteJson(std::ostream& os) const;
};

struct PerfReport {
  std::vector<RegionSummary> regions;                    // name-sorted
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  MemoryUsage memory;
  AllocStats allocs;

  // Snapshots the collector and samples the memory/alloc probes.
  static PerfReport FromCollector(const PerfCollector& collector);

  const RegionSummary* FindRegion(const std::string& name) const;
  uint64_t CounterValue(const std::string& name) const;  // 0 when absent

  // One JSON object (no trailing newline), deterministic key order.
  void WriteJson(std::ostream& os) const;
  std::string ToJsonString() const;
};

// Shared JSON-fragment helpers for perf writers (escaped strings, finite
// numbers). Exposed so bench emitters serialize consistently.
void WriteJsonEscaped(std::ostream& os, const std::string& s);
void WriteJsonNumber(std::ostream& os, double v);

}  // namespace perf
}  // namespace mudi

#endif  // SRC_PERF_PERF_REPORT_H_
