#include "src/perf/perf_report.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace mudi {
namespace perf {

void WriteJsonEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void WriteJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  os << v;
}

BuildMetadata BuildMetadata::Current() {
  BuildMetadata meta;
  meta.schema_version = "mudi.perf.v1";
#if defined(__VERSION__)
  meta.compiler = __VERSION__;
#else
  meta.compiler = "unknown";
#endif
#if defined(NDEBUG)
  meta.build_type = "release";
#else
  meta.build_type = "debug";
#endif
#if defined(MUDI_TRACING_ENABLED) && MUDI_TRACING_ENABLED
  meta.tracing_compiled_in = true;
#else
  meta.tracing_compiled_in = false;
#endif
  return meta;
}

void BuildMetadata::WriteJson(std::ostream& os) const {
  os << "{\"schema_version\":";
  WriteJsonEscaped(os, schema_version);
  os << ",\"compiler\":";
  WriteJsonEscaped(os, compiler);
  os << ",\"build_type\":";
  WriteJsonEscaped(os, build_type);
  os << ",\"tracing_compiled_in\":" << (tracing_compiled_in ? "true" : "false") << "}";
}

PerfReport PerfReport::FromCollector(const PerfCollector& collector) {
  PerfReport report;
  for (const auto& [name, stat] : collector.regions()) {
    RegionSummary summary;
    summary.name = name;
    summary.count = stat.count();
    summary.total_ms = stat.total_ms();
    summary.mean_ms = stat.mean_ms();
    summary.min_ms = stat.min_ms();
    summary.max_ms = stat.max_ms();
    summary.p50_ms = stat.Quantile(0.50);
    summary.p95_ms = stat.Quantile(0.95);
    summary.p99_ms = stat.Quantile(0.99);
    report.regions.push_back(std::move(summary));
  }
  for (const auto& [name, value] : collector.counters()) {
    report.counters.emplace_back(name, value);
  }
  report.memory = ReadMemoryUsage();
  report.allocs = ReadAllocStats();
  return report;
}

const RegionSummary* PerfReport::FindRegion(const std::string& name) const {
  for (const RegionSummary& region : regions) {
    if (region.name == name) {
      return &region;
    }
  }
  return nullptr;
}

uint64_t PerfReport::CounterValue(const std::string& name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) {
      return value;
    }
  }
  return 0;
}

void PerfReport::WriteJson(std::ostream& os) const {
  os << "{\"regions\":{";
  bool first = true;
  for (const RegionSummary& region : regions) {
    if (!first) {
      os << ',';
    }
    first = false;
    WriteJsonEscaped(os, region.name);
    os << ":{\"count\":" << region.count << ",\"total_ms\":";
    WriteJsonNumber(os, region.total_ms);
    os << ",\"mean_ms\":";
    WriteJsonNumber(os, region.mean_ms);
    os << ",\"min_ms\":";
    WriteJsonNumber(os, region.min_ms);
    os << ",\"max_ms\":";
    WriteJsonNumber(os, region.max_ms);
    os << ",\"p50_ms\":";
    WriteJsonNumber(os, region.p50_ms);
    os << ",\"p95_ms\":";
    WriteJsonNumber(os, region.p95_ms);
    os << ",\"p99_ms\":";
    WriteJsonNumber(os, region.p99_ms);
    os << "}";
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      os << ',';
    }
    first = false;
    WriteJsonEscaped(os, name);
    os << ":" << value;
  }
  os << "},\"memory\":{\"current_rss_bytes\":" << memory.current_rss_bytes
     << ",\"peak_rss_bytes\":" << memory.peak_rss_bytes << "}";
  os << ",\"allocs\":{\"hooked\":" << (allocs.hooked ? "true" : "false")
     << ",\"allocations\":" << allocs.allocations
     << ",\"deallocations\":" << allocs.deallocations
     << ",\"bytes_allocated\":" << allocs.bytes_allocated << "}}";
}

std::string PerfReport::ToJsonString() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace perf
}  // namespace mudi
