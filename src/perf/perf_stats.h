// Bounded-memory latency statistics for the self-profiling layer.
//
// LatencyStat accumulates wall-time samples for one profiled region. Exact
// aggregates (count, sum, min, max) are always maintained; for quantiles a
// capped sample buffer is kept, thinned by deterministic stride decimation
// when full (keep every other retained sample and double the admission
// stride). Decimation is deterministic by construction — no RNG — so the
// perf layer never draws from the simulation's seeded randomness and stays
// observe-only (mudi-determinism lint discipline).
#ifndef SRC_PERF_PERF_STATS_H_
#define SRC_PERF_PERF_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mudi {
namespace perf {

class LatencyStat {
 public:
  static constexpr size_t kDefaultMaxSamples = 16384;

  LatencyStat() : LatencyStat(kDefaultMaxSamples) {}
  // `max_samples` caps the quantile buffer; must be >= 2.
  explicit LatencyStat(size_t max_samples);

  void Record(double ms);

  uint64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double mean_ms() const {
    return count_ == 0 ? 0.0 : total_ms_ / static_cast<double>(count_);
  }
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }
  double max_ms() const { return count_ == 0 ? 0.0 : max_ms_; }

  // Linear-interpolated quantile over the retained samples, q in [0, 1].
  // Exact while count() <= max_samples; an evenly-strided estimate after
  // decimation kicks in.
  double Quantile(double q) const;

  // Retained quantile samples (unsorted, admission order).
  const std::vector<double>& samples() const { return samples_; }
  // Current admission stride (1 until the buffer first fills).
  uint64_t stride() const { return stride_; }

  void Reset();

 private:
  size_t max_samples_;
  uint64_t count_ = 0;
  double total_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
  uint64_t stride_ = 1;
  uint64_t since_admit_ = 0;  // records seen since the last admitted sample
  std::vector<double> samples_;
};

}  // namespace perf
}  // namespace mudi

#endif  // SRC_PERF_PERF_STATS_H_
