// Minimal JSON parser for validating the machine-readable perf artifacts
// (BENCH_*.json, PerfReport output). Parses standard JSON into a small DOM;
// no writer (the writers live next to the data they serialize) and no
// streaming — these documents are kilobytes.
//
// This backs `bench_throughput --validate FILE` (the check.sh --bench gate)
// and the schema assertions in tests/perf_test.cc.
#ifndef SRC_PERF_JSON_CHECK_H_
#define SRC_PERF_JSON_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mudi {
namespace perf {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one complete JSON document (trailing whitespace allowed, anything
// else after the document is an error). Errors carry line/offset context.
StatusOr<JsonValue> ParseJson(const std::string& text);

// Reads and parses a JSON file.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

// Schema gate for the repo-root throughput trajectory (BENCH_throughput.json,
// schema mudi.bench_throughput.v1). Checks: schema tag, build metadata, a
// non-empty `records` array where every record names {preset, policy} and
// carries events/sec, sim-seconds-per-wall-second, and decision-latency
// p50/p95, and a non-empty `optimizations` array where every entry records a
// before/after events-per-second delta.
Status ValidateBenchThroughputJson(const JsonValue& root);

}  // namespace perf
}  // namespace mudi

#endif  // SRC_PERF_JSON_CHECK_H_
