// PerfCollector — the self-profiling hub: named scoped-timer regions
// (LatencyStat each) plus named monotonic counters, all with stable
// addresses so hot paths cache a pointer once.
//
// Design rules (the same contract as src/telemetry):
//  * Observe-only. The collector never schedules events, never draws from a
//    seeded Rng, and never feeds a measured value back into a scheduling
//    decision — attaching or detaching a collector must leave a run
//    bit-identical (determinism_test pins this down).
//  * All wall time flows through the sanctioned mudi::WallTimer
//    (src/common/wallclock.h); no raw std::chrono here (mudi-determinism).
//  * Single-threaded, like the simulator it profiles.
//
// PerfRegion is the RAII scoped timer: construct at the top of the profiled
// scope, destruction records the elapsed wall milliseconds. A null collector
// (or a disabled one) makes the region a near-no-op — one branch, no clock
// read on the disabled path.
#ifndef SRC_PERF_PERF_COLLECTOR_H_
#define SRC_PERF_PERF_COLLECTOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/wallclock.h"
#include "src/perf/perf_stats.h"

namespace mudi {
namespace perf {

class PerfCollector {
 public:
  PerfCollector() = default;
  PerfCollector(const PerfCollector&) = delete;
  PerfCollector& operator=(const PerfCollector&) = delete;

  // Runtime master switch. Regions and counter writers check it through the
  // pointers they cached, so flipping it mid-run only affects new regions.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Get-or-create; returned references stay valid for the collector's
  // lifetime (std::map nodes have stable addresses).
  LatencyStat& GetRegionStat(const std::string& name) { return regions_[name]; }
  uint64_t& GetCounter(const std::string& name) { return counters_[name]; }

  void IncrementCounter(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  // Overwrites (for end-of-run exported snapshots, e.g. simulator totals).
  void SetCounter(const std::string& name, uint64_t value) { counters_[name] = value; }

  // Records a free-standing sample (same sink as a region, without RAII).
  void RecordValue(const std::string& name, double ms) { regions_[name].Record(ms); }

  const std::map<std::string, LatencyStat>& regions() const { return regions_; }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  void Clear() {
    regions_.clear();
    counters_.clear();
  }

 private:
  bool enabled_ = true;
  // std::map: deterministic name-ordered iteration for every export.
  std::map<std::string, LatencyStat> regions_;
  std::map<std::string, uint64_t> counters_;
};

class PerfRegion {
 public:
  // Looks the region up by name; null/disabled collector disables the region.
  PerfRegion(PerfCollector* collector, const char* name)
      : stat_(collector != nullptr && collector->enabled() ? &collector->GetRegionStat(name)
                                                           : nullptr) {
    if (stat_ != nullptr) {
      timer_.Restart();
    }
  }

  // Cached-stat variant for hot call sites: resolve the stat once, reuse it.
  explicit PerfRegion(LatencyStat* stat) : stat_(stat) {
    if (stat_ != nullptr) {
      timer_.Restart();
    }
  }

  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  ~PerfRegion() {
    if (stat_ != nullptr) {
      stat_->Record(timer_.ElapsedMs());
    }
  }

 private:
  LatencyStat* stat_;
  // Unstarted: the disabled path never reads the clock; the enabled branch
  // in the constructors calls Restart().
  WallTimer timer_{WallTimer::Unstarted{}};
};

}  // namespace perf
}  // namespace mudi

#endif  // SRC_PERF_PERF_COLLECTOR_H_
