#include "src/perf/mem_probe.h"

#include <cstdio>
#include <cstring>

#include "src/common/thread_annotations.h"

namespace mudi {
namespace perf {

namespace alloc_hook_internal {
// Observe-only allocation tally (see mem_probe.h): counters feed perf
// reports, never simulation decisions, so per-shard divergence is harmless.
MUDI_SHARD_SHARED("observe-only perf counters; never read by simulation logic");
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
std::atomic<uint64_t> g_allocations{0};
MUDI_SHARD_SHARED("observe-only perf counters; never read by simulation logic");
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
std::atomic<uint64_t> g_deallocations{0};
MUDI_SHARD_SHARED("observe-only perf counters; never read by simulation logic");
MUDI_GUARDED_STATE("relaxed monotonic counters; no cross-counter ordering");
std::atomic<uint64_t> g_bytes_allocated{0};
MUDI_SHARD_SHARED("write-once link marker; set during static init, read-only after");
MUDI_GUARDED_STATE("write-once link marker set during static init");
std::atomic<bool> g_hook_linked{false};
}  // namespace alloc_hook_internal

namespace {

// Parses "VmRSS:   123456 kB"-style lines; returns bytes, 0 if absent.
uint64_t StatusLineKb(const char* line) {
  const char* p = line;
  while (*p != '\0' && (*p < '0' || *p > '9')) {
    ++p;
  }
  uint64_t kb = 0;
  while (*p >= '0' && *p <= '9') {
    kb = kb * 10 + static_cast<uint64_t>(*p - '0');
    ++p;
  }
  return kb * 1024;
}

}  // namespace

MemoryUsage ReadMemoryUsage() {
  MemoryUsage usage;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return usage;  // non-Linux: no accounting available
  }
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      usage.current_rss_bytes = StatusLineKb(line);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      usage.peak_rss_bytes = StatusLineKb(line);
    }
  }
  std::fclose(f);
  return usage;
}

AllocStats ReadAllocStats() {
  namespace hook = alloc_hook_internal;
  AllocStats stats;
  stats.hooked = hook::g_hook_linked.load(std::memory_order_relaxed);
  stats.allocations = hook::g_allocations.load(std::memory_order_relaxed);
  stats.deallocations = hook::g_deallocations.load(std::memory_order_relaxed);
  stats.bytes_allocated = hook::g_bytes_allocated.load(std::memory_order_relaxed);
  return stats;
}

AllocStats AllocStatsSince(const AllocStats& baseline) {
  AllocStats now = ReadAllocStats();
  now.allocations -= baseline.allocations;
  now.deallocations -= baseline.deallocations;
  now.bytes_allocated -= baseline.bytes_allocated;
  return now;
}

}  // namespace perf
}  // namespace mudi
