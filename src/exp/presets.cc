#include "src/exp/presets.h"

#include "src/baselines/gpulets_policy.h"
#include "src/baselines/gslice_policy.h"
#include "src/baselines/muxflow_policy.h"
#include "src/baselines/optimal_policy.h"
#include "src/baselines/random_policy.h"
#include "src/common/check.h"
#include "src/core/mudi_policy.h"

namespace mudi {

namespace {

// Per-replica fluctuating request rate centred on the paper's 200 QPS
// (Poisson with 5 ms mean inter-arrival), with Fig. 1(a)-style random
// drift so the Monitor's QPS-change triggers fire during the run.
std::function<std::shared_ptr<const QpsProfile>(size_t, int)> FluctuatingFactory(uint64_t seed) {
  return [seed](size_t service_index, int device_id) -> std::shared_ptr<const QpsProfile> {
    FluctuatingQps::Options options;
    options.min_qps = 130.0;
    options.max_qps = 250.0;
    options.horizon_ms = 6.0 * kMsPerHour;
    options.step_ms = 5.0 * kMsPerSecond;
    options.inflection_prob = 0.03;
    options.seed = seed * 1000003ull + static_cast<uint64_t>(device_id) * 131ull +
                   static_cast<uint64_t>(service_index);
    return std::make_shared<FluctuatingQps>(options);
  };
}

}  // namespace

ExperimentOptions PhysicalClusterOptions(size_t num_tasks, uint64_t seed) {
  ExperimentOptions options;
  options.num_nodes = 3;
  options.gpus_per_node = 4;
  options.num_services = 6;
  options.seed = seed;
  options.qps_factory = FluctuatingFactory(seed);

  options.trace.num_tasks = num_tasks;
  options.trace.mean_interarrival_ms = 5.0 * kMsPerSecond;
  options.trace.duration_compression = 800.0;
  options.trace.diurnal = true;
  options.trace.seed = seed + 100;
  return options;
}

ExperimentOptions SimulatedClusterOptions(size_t num_tasks, uint64_t seed) {
  ExperimentOptions options;
  options.num_nodes = 250;
  options.gpus_per_node = 4;
  options.num_services = 6;
  options.seed = seed;
  options.qps_factory = FluctuatingFactory(seed + 7);

  options.trace.num_tasks = num_tasks;
  // Arrival process scaled ×80 relative to the physical cluster (§7.1).
  options.trace.mean_interarrival_ms = 5.0 * kMsPerSecond / 80.0;
  options.trace.duration_compression = 1200.0;
  options.trace.diurnal = true;
  options.trace.seed = seed + 200;

  // Coarser cohorts keep the 1000-device event rate tractable.
  options.arrival_tick_ms = 20.0;
  return options;
}

ExperimentOptions ChaosClusterOptions(size_t num_tasks, uint64_t seed) {
  ExperimentOptions options = PhysicalClusterOptions(num_tasks, seed);
  options.fault_plan = StandardChaosPlan(options.num_nodes * options.gpus_per_node,
                                         options.num_nodes);
  return options;
}

ExperimentOptions CtrlChaosClusterOptions(size_t num_tasks, uint64_t seed) {
  ExperimentOptions options = PhysicalClusterOptions(num_tasks, seed);
  options.ctrl_fault_plan = StandardControlChaosPlan();
  return options;
}

std::unique_ptr<MultiplexPolicy> MakePolicy(const std::string& name,
                                            const PerfOracle& profiling_oracle) {
  if (name == "Mudi") {
    return std::make_unique<MudiPolicy>(profiling_oracle);
  }
  if (name == "Mudi-more") {
    MudiPolicy::Options options;
    options.max_trainings_per_device = 3;
    return std::make_unique<MudiPolicy>(profiling_oracle, options);
  }
  if (name == "Mudi-cluster-only") {
    MudiPolicy::Options options;
    options.device_policy = MudiPolicy::DevicePolicy::kStatic;
    return std::make_unique<MudiPolicy>(profiling_oracle, options);
  }
  if (name == "Mudi-device-only") {
    MudiPolicy::Options options;
    options.cluster_policy = MudiPolicy::ClusterPolicy::kRandom;
    return std::make_unique<MudiPolicy>(profiling_oracle, options);
  }
  if (name == "GSLICE") {
    return std::make_unique<GslicePolicy>();
  }
  if (name == "gpulets") {
    return std::make_unique<GpuletsPolicy>();
  }
  if (name == "MuxFlow") {
    return std::make_unique<MuxflowPolicy>(profiling_oracle);
  }
  if (name == "Random") {
    return std::make_unique<RandomPolicy>();
  }
  if (name == "Optimal") {
    return std::make_unique<OptimalPolicy>();
  }
  MUDI_CHECK(false);
  __builtin_unreachable();
}

std::vector<std::string> EndToEndSystemNames() {
  return {"Mudi", "GSLICE", "gpulets", "MuxFlow"};
}

void ScaleQps(ExperimentOptions& options, double factor) {
  MUDI_CHECK_GT(factor, 0.0);
  auto base = options.qps_factory;
  MUDI_CHECK(base != nullptr);
  options.qps_factory = [base, factor](size_t service_index,
                                       int device_id) -> std::shared_ptr<const QpsProfile> {
    return std::make_shared<ScaledQps>(base(service_index, device_id), factor);
  };
}

}  // namespace mudi
