#include "src/exp/metrics.h"

#include "src/common/stats.h"

namespace mudi {

double ExperimentResult::OverallSloViolationRate() const {
  size_t total = 0;
  size_t violated = 0;
  for (const auto& [name, m] : per_service) {
    total += m.windows_total;
    violated += m.windows_violated;
  }
  return total == 0 ? 0.0 : static_cast<double>(violated) / static_cast<double>(total);
}

size_t ExperimentResult::TotalWindowsViolatedFailure() const {
  size_t n = 0;
  for (const auto& [name, m] : per_service) {
    n += m.windows_violated_failure;
  }
  return n;
}

size_t ExperimentResult::TotalWindowsViolatedLoad() const {
  size_t n = 0;
  for (const auto& [name, m] : per_service) {
    n += m.windows_violated_load();
  }
  return n;
}

double ExperimentResult::MeanCtMs() const {
  std::vector<double> cts;
  for (const auto& t : tasks) {
    if (t.completed()) {
      cts.push_back(t.ct_ms());
    }
  }
  return Mean(cts);
}

double ExperimentResult::MeanWaitingMs() const {
  std::vector<double> waits;
  for (const auto& t : tasks) {
    if (t.start_ms >= 0.0) {
      waits.push_back(t.waiting_ms());
    }
  }
  return Mean(waits);
}

double ExperimentResult::P95CtMs() const {
  std::vector<double> cts;
  for (const auto& t : tasks) {
    if (t.completed()) {
      cts.push_back(t.ct_ms());
    }
  }
  if (cts.empty()) {
    return 0.0;
  }
  return Percentile(std::move(cts), 95.0);
}

size_t ExperimentResult::CompletedTasks() const {
  size_t n = 0;
  for (const auto& t : tasks) {
    if (t.completed()) {
      ++n;
    }
  }
  return n;
}

}  // namespace mudi
