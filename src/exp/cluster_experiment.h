// End-to-end cluster experiment: a discrete-event simulation of inference
// serving (request cohorts, batching, SLO windows) multiplexed with training
// tasks on a GPU cluster, driven by a pluggable MultiplexPolicy.
//
// This is the runtime counterpart of the paper's testbeds: every device
// hosts one inference-service replica (service s on device d where
// d % num_services == s) receiving its own Poisson/fluctuating request
// stream; training tasks arrive per the trace, wait in the scheduling queue,
// are placed by the policy, and progress at a speed set by the ground-truth
// oracle under the current co-location and configuration. The Memory
// Manager resolves device-memory overcommit by host swap for swap-capable
// policies.
#ifndef SRC_EXP_CLUSTER_EXPERIMENT_H_
#define SRC_EXP_CLUSTER_EXPERIMENT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/cluster/monitor.h"
#include "src/cluster/policy.h"
#include "src/cluster/task_queue.h"
#include "src/common/rng.h"
#include "src/core/memory_manager.h"
#include "src/exp/metrics.h"
#include "src/gpu/perf_oracle.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/request_generator.h"
#include "src/workload/training_trace.h"

namespace mudi {

struct ExperimentOptions {
  int num_nodes = 3;
  int gpus_per_node = 4;
  size_t num_services = 6;
  // Rotates the device->service mapping: device d hosts service
  // (d % num_services + service_offset) % 6. With num_services=1 this pins
  // every device to one chosen service (single-service benches).
  size_t service_offset = 0;

  // Request-rate profile per (service_index, device_id); default constant
  // 200 QPS per replica (paper: mean inter-arrival 5 ms).
  std::function<std::shared_ptr<const QpsProfile>(size_t, int)> qps_factory;

  // Training workload: explicit trace wins over generated options.
  TrainingTraceOptions trace;
  std::vector<TrainingArrival> trace_override;

  QueuePolicy queue_policy = QueuePolicy::kFcfs;

  // 0 = run until all training tasks complete; otherwise hard stop.
  TimeMs horizon_ms = 0.0;
  // Liveness backstop for horizon_ms == 0: stop anyway after this much
  // virtual time (sustained-overload scenarios can leave training paused
  // indefinitely — §5.3.2's "until suitable resources become available").
  TimeMs max_sim_ms = 4.0 * kMsPerHour;
  // Extra time simulated after the last completion (lets SLO windows close).
  TimeMs drain_ms = 5.0 * kMsPerSecond;

  TimeMs monitor_period_ms = 2.0 * kMsPerSecond;
  // Forced per-device re-tune period: the 50% QPS-change threshold is an
  // edge trigger and can latch a transient rate (e.g. mid-burst decay);
  // periodic reconciliation bounds how long a stale config can persist.
  TimeMs periodic_retune_ms = 30.0 * kMsPerSecond;
  TimeMs slo_window_ms = 10.0 * kMsPerSecond;
  TimeMs util_sample_ms = 1.0 * kMsPerSecond;
  // Shadow-instance switchover for GPU% reconfiguration (§5.3.2).
  TimeMs reconfig_latency_ms = 1.5 * kMsPerSecond;

  // Arrival-cohort tick: 0 = auto (SLO/15 clamped to [5, 100] ms).
  TimeMs arrival_tick_ms = 0.0;

  bool record_util_series = false;
  // Device id to trace for Fig. 16 (-1 = none).
  int trace_device_id = -1;

  uint64_t seed = 5;
  uint64_t oracle_seed = 42;

  // Telemetry sinks (off by default; env vars like MUDI_TRACE_FILE override —
  // see TelemetryOptions::ApplyEnvOverrides, applied in the constructor).
  TelemetryOptions telemetry;
};

class ClusterExperiment : public SchedulingEnv {
 public:
  ClusterExperiment(ExperimentOptions options, MultiplexPolicy* policy);
  ~ClusterExperiment() override;

  // Runs the full experiment and returns the metrics.
  ExperimentResult Run();

  // --- SchedulingEnv ---
  TimeMs Now() const override;
  std::vector<GpuDevice>& devices() override;
  const GpuDevice& device(int device_id) const override;
  const InferenceServiceSpec& ServiceOnDevice(int device_id) const override;
  double MeasuredQps(int device_id) override;
  double MeasuredP99(int device_id) override;
  double ProbeInferenceLatencyMs(int device_id, int batch, double gpu_fraction) override;
  double ProbeTrainingIterMs(int device_id, int task_id, double train_fraction, int inf_batch,
                             double inf_fraction) override;
  void ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) override;
  void ApplyTrainingFraction(int device_id, int task_id, double fraction) override;
  void SetTrainingPaused(int device_id, int task_id, bool paused) override;
  bool CanFitTraining(int device_id, const TrainingTaskSpec& spec) const override;
  const PerfOracle& oracle() const override { return oracle_; }
  Telemetry* telemetry() override { return telemetry_.enabled() ? &telemetry_ : nullptr; }

  const PerfOracle& ground_truth() const { return oracle_; }
  const Telemetry& telemetry_sink() const { return telemetry_; }

 private:
  struct Cohort {
    TimeMs arrival_ms;
    double count;
  };

  struct Replica {
    std::shared_ptr<const QpsProfile> qps;
    QpsMonitor monitor;
    std::deque<Cohort> queue;
    double queued = 0.0;
    bool busy = false;
    TimeMs busy_start = 0.0;
    TimeMs busy_accum_ms = 0.0;  // busy time since last util sample
    Simulator::EventId timeout_event = Simulator::kInvalidEventId;
    // Pending GPU% reconfiguration (shadow instance warming up).
    std::optional<std::pair<int, double>> pending_config;
    Simulator::EventId pending_event = Simulator::kInvalidEventId;
    // SLO window accounting.
    std::vector<std::pair<double, double>> window_latencies;  // (latency, weight)
    size_t windows_total = 0;
    size_t windows_violated = 0;
    double latency_weighted_sum = 0.0;
    double served = 0.0;
    // Swap-time accounting.
    double swapped_time_ms = 0.0;
    double observed_time_ms = 0.0;
    TimeMs last_trigger_ms = 0.0;
  };

  struct RunningTask {
    int device_id = -1;
    double speed = 0.0;  // full-GPU work ms per wall ms
    TimeMs last_sync_ms = 0.0;
    Simulator::EventId completion_event = Simulator::kInvalidEventId;
  };

  // --- serving path ---
  void ArrivalTick(int device_id);
  void TryStartBatch(int device_id);
  void FinishBatch(int device_id, double latency_ms,
                   std::vector<std::pair<TimeMs, double>> consumed);
  TimeMs WaitTimeoutMs(int device_id) const;
  void CloseSloWindow(int device_id);

  // --- training path ---
  void OnTrainingArrival(const TrainingArrival& arrival);
  void TryDispatchQueue();
  void PlaceTask(const TrainingArrival& arrival, int device_id);
  void SyncTrainingProgress(int device_id, int task_id);
  void UpdateTrainingSpeeds(int device_id);
  void OnTrainingComplete(int device_id, int task_id);

  // --- periodic ---
  void MonitorTick();
  void UtilSampleTick();

  std::vector<ColocatedTraining> ActiveColocation(const GpuDevice& dev) const;
  InferenceLoad CurrentInferenceLoad(int device_id);
  void RebalanceMemory(int device_id);

  ExperimentOptions options_;
  MultiplexPolicy* policy_;
  Telemetry telemetry_;
  Simulator sim_;
  PerfOracle oracle_;
  ClusterState cluster_;
  Rng rng_;
  Rng probe_rng_;
  MemoryManager memory_manager_;
  TaskQueue queue_;

  std::vector<Replica> replicas_;
  std::map<int, RunningTask> running_;          // task_id -> runtime state
  std::map<int, TaskRecord> task_records_;      // task_id -> record
  size_t tasks_remaining_ = 0;
  TimeMs last_completion_ms_ = 0.0;
  TimeMs first_arrival_ms_ = 0.0;

  std::vector<UtilSample> util_series_;
  std::vector<DeviceSeriesSample> device_series_;
  TimeMs last_util_sample_ms_ = 0.0;
};

}  // namespace mudi

#endif  // SRC_EXP_CLUSTER_EXPERIMENT_H_
