// End-to-end cluster experiment: a discrete-event simulation of inference
// serving (request cohorts, batching, SLO windows) multiplexed with training
// tasks on a GPU cluster, driven by a pluggable MultiplexPolicy.
//
// This is the runtime counterpart of the paper's testbeds: every device
// hosts one inference-service replica (service s on device d where
// d % num_services == s) receiving its own Poisson/fluctuating request
// stream; training tasks arrive per the trace, wait in the scheduling queue,
// are placed by the policy, and progress at a speed set by the ground-truth
// oracle under the current co-location and configuration. The Memory
// Manager resolves device-memory overcommit by host swap for swap-capable
// policies.
#ifndef SRC_EXP_CLUSTER_EXPERIMENT_H_
#define SRC_EXP_CLUSTER_EXPERIMENT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/cluster_state.h"
#include "src/cluster/kv_store.h"
#include "src/cluster/monitor.h"
#include "src/cluster/policy.h"
#include "src/cluster/task_queue.h"
#include "src/common/rng.h"
#include "src/sim/retry.h"
#include "src/core/memory_manager.h"
#include "src/exp/metrics.h"
#include "src/fault/control_fault_injector.h"
#include "src/fault/control_fault_plan.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/gpu/perf_oracle.h"
#include "src/perf/perf_collector.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/replay_source.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/request_generator.h"
#include "src/workload/training_trace.h"

namespace mudi {

struct ExperimentOptions {
  int num_nodes = 3;
  int gpus_per_node = 4;
  size_t num_services = 6;
  // Rotates the device->service mapping: device d hosts service
  // (d % num_services + service_offset) % 6. With num_services=1 this pins
  // every device to one chosen service (single-service benches).
  size_t service_offset = 0;

  // Request-rate profile per (service_index, device_id); default constant
  // 200 QPS per replica (paper: mean inter-arrival 5 ms).
  std::function<std::shared_ptr<const QpsProfile>(size_t, int)> qps_factory;

  // Training workload: explicit trace wins over generated options.
  TrainingTraceOptions trace;
  std::vector<TrainingArrival> trace_override;

  QueuePolicy queue_policy = QueuePolicy::kFcfs;

  // 0 = run until all training tasks complete; otherwise hard stop.
  TimeMs horizon_ms = 0.0;
  // Liveness backstop for horizon_ms == 0: stop anyway after this much
  // virtual time (sustained-overload scenarios can leave training paused
  // indefinitely — §5.3.2's "until suitable resources become available").
  TimeMs max_sim_ms = 4.0 * kMsPerHour;
  // Extra time simulated after the last completion (lets SLO windows close).
  TimeMs drain_ms = 5.0 * kMsPerSecond;

  TimeMs monitor_period_ms = 2.0 * kMsPerSecond;
  // Forced per-device re-tune period: the 50% QPS-change threshold is an
  // edge trigger and can latch a transient rate (e.g. mid-burst decay);
  // periodic reconciliation bounds how long a stale config can persist.
  TimeMs periodic_retune_ms = 30.0 * kMsPerSecond;
  TimeMs slo_window_ms = 10.0 * kMsPerSecond;
  TimeMs util_sample_ms = 1.0 * kMsPerSecond;
  // Shadow-instance switchover for GPU% reconfiguration (§5.3.2).
  TimeMs reconfig_latency_ms = 1.5 * kMsPerSecond;

  // Arrival-cohort tick: 0 = auto (SLO/15 clamped to [5, 100] ms).
  TimeMs arrival_tick_ms = 0.0;

  // Deterministic fault schedule, armed when Run() starts. An empty plan
  // schedules nothing and leaves the run byte-identical to one without any
  // fault machinery.
  FaultPlan fault_plan;
  // Periodic training-checkpoint interval: a task displaced by a device
  // failure resumes from its last checkpoint (progress since then is lost).
  TimeMs checkpoint_period_ms = 60.0 * kMsPerSecond;

  // Control-plane fault schedule (degraded KvStore watches/reads, partition
  // windows, watch loss, scheduler crashes), armed when Run() starts. While
  // the plan is non-empty the scheduler's inference configs travel through
  // the registry (Put + watch) instead of being applied directly, and its
  // reads route through CtrlGet/CtrlList + retry. An empty plan adds zero
  // events and zero registry traffic: the run stays byte-identical to one
  // without any control-fault machinery (ctrl_fault_test pins this).
  ControlFaultPlan ctrl_fault_plan;
  // Opt-in tombstone delete events on the registry (KvStore delete events).
  // Forced on while a control fault plan is armed so recovery can observe
  // deregistration. With no watchers registered this only affects revision
  // numbers, never results.
  bool registry_delete_events = false;
  // Scheduler state-checkpoint period while the control fault domain is
  // active: the coordinator heartbeats its epoch into the registry so the
  // recovery scan can tell how stale its view is.
  TimeMs ctrl_checkpoint_period_ms = 10.0 * kMsPerSecond;
  // Backoff discipline for control-plane reads and watch re-establishment.
  RetryPolicy ctrl_retry;

  bool record_util_series = false;
  // Device id to trace for Fig. 16 (-1 = none).
  int trace_device_id = -1;

  uint64_t seed = 5;
  uint64_t oracle_seed = 42;

  // Telemetry sinks (off by default; env vars like MUDI_TRACE_FILE override —
  // see TelemetryOptions::ApplyEnvOverrides, applied in the constructor).
  TelemetryOptions telemetry;

  // Self-profiling collector (src/perf), not owned; null = run unprofiled.
  // Observe-only: attaching a collector must leave results bit-identical
  // (determinism_test pins this). The harness records scoped regions around
  // every policy decision ("policy.select_device", "policy.on_placed",
  // "policy.on_qps_change", "policy.initialize") and exports the simulator's
  // event totals at the end of Run().
  perf::PerfCollector* perf = nullptr;

  // Decision-trace recorder (src/replay), not owned; null = no recording.
  // Observe-only like perf: a recorded run must be bit-identical to an
  // unrecorded same-seed run (determinism_test pins this too). The harness
  // opens one decision scope per policy hook and streams every probe
  // observation and feedback read into it.
  replay::DecisionRecorder* recorder = nullptr;
  // Recorded-observation source (src/replay), not owned; non-null switches
  // the run to fidelity replay: probes and predictions are served from the
  // trace instead of the oracle, and Mudi's Initialize preloads recorded
  // curves instead of profiling.
  replay::ReplaySource* replay = nullptr;
};

class ClusterExperiment : public SchedulingEnv, public FaultSink, public ControlFaultSink {
 public:
  ClusterExperiment(ExperimentOptions options, MultiplexPolicy* policy);
  ~ClusterExperiment() override;

  // Runs the full experiment and returns the metrics.
  ExperimentResult Run();

  // --- SchedulingEnv ---
  TimeMs Now() const override;
  std::vector<GpuDevice>& devices() override;
  const GpuDevice& device(int device_id) const override;
  const InferenceServiceSpec& ServiceOnDevice(int device_id) const override;
  double MeasuredQps(int device_id) override;
  double MeasuredP99(int device_id) override;
  double ProbeInferenceLatencyMs(int device_id, int batch, double gpu_fraction) override;
  double ProbeTrainingIterMs(int device_id, int task_id, double train_fraction, int inf_batch,
                             double inf_fraction) override;
  void ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) override;
  void ApplyTrainingFraction(int device_id, int task_id, double fraction) override;
  void SetTrainingPaused(int device_id, int task_id, bool paused) override;
  bool CanFitTraining(int device_id, const TrainingTaskSpec& spec) const override;
  const PerfOracle& oracle() const override { return oracle_; }
  Telemetry* telemetry() override { return telemetry_.enabled() ? &telemetry_ : nullptr; }
  perf::PerfCollector* perf() override {
    return options_.perf != nullptr && options_.perf->enabled() ? options_.perf : nullptr;
  }
  replay::DecisionRecorder* recorder() override { return options_.recorder; }
  replay::ReplaySource* replay() override { return options_.replay; }

  // Total virtual time reached by the run (>= makespan; includes drain).
  // Bench_throughput divides this by wall time for sim-sec/wall-sec.
  TimeMs SimNowMs() const { return sim_.Now(); }

  const PerfOracle& ground_truth() const { return oracle_; }
  const Telemetry& telemetry_sink() const { return telemetry_; }
  // Device registry (etcd-style): "/devices/<d>/status" plus one
  // "/devices/<d>/tasks/<task_id>" entry per resident training. A failed
  // device's subtree is deleted, so readers must handle missing keys.
  const KvStore& registry() const { return registry_; }

  // --- FaultSink (driven by the FaultInjector) ---
  void OnDeviceDown(int device_id, bool permanent, TimeMs now) override;
  void OnDeviceUp(int device_id, TimeMs now) override;
  void OnStragglerFactor(int device_id, double factor, TimeMs now) override;
  void OnFeedbackLost(int device_id, TimeMs now) override;
  void OnFeedbackRestored(int device_id, TimeMs now) override;

  // --- ControlFaultSink (driven by the ControlFaultInjector) ---
  void OnKvPartitionStart(TimeMs now) override;
  void OnKvPartitionEnd(TimeMs now) override;
  void OnWatchesLost(TimeMs now) override;
  void OnSchedulerCrash(TimeMs restart_delay_ms, TimeMs now) override;

  // Whether the scheduler process is up (always true without a control
  // fault plan; exposed for tests).
  bool scheduler_up() const { return scheduler_up_; }

 private:
  struct Cohort {
    TimeMs arrival_ms;
    double count;
  };

  struct Replica {
    std::shared_ptr<const QpsProfile> qps;
    QpsMonitor monitor;
    std::deque<Cohort> queue;
    double queued = 0.0;
    bool busy = false;
    TimeMs busy_start = 0.0;
    TimeMs busy_accum_ms = 0.0;  // busy time since last util sample
    Simulator::EventId timeout_event = Simulator::kInvalidEventId;
    // In-flight batch: its completion event and the request cohorts it
    // carries, so a device failure can fail them instead of losing them.
    Simulator::EventId batch_event = Simulator::kInvalidEventId;
    std::vector<std::pair<TimeMs, double>> inflight;  // (arrival, count)
    // Pending GPU% reconfiguration (shadow instance warming up).
    std::optional<std::pair<int, double>> pending_config;
    Simulator::EventId pending_event = Simulator::kInvalidEventId;
    // Per-device periodic events, cancellable at failure time.
    Simulator::EventId arrival_event = Simulator::kInvalidEventId;
    Simulator::EventId slo_event = Simulator::kInvalidEventId;
    // While the device is down its traffic fails over to surviving replicas.
    Simulator::EventId failover_event = Simulator::kInvalidEventId;
    size_t reroute_cursor = 0;  // deterministic round-robin over survivors
    // SLO window accounting.
    std::vector<std::pair<double, double>> window_latencies;  // (latency, weight)
    // Failure touched this window (failed/re-routed requests landed in it):
    // a violation is attributed to the fault, not to load.
    bool window_failure_tainted = false;
    size_t windows_total = 0;
    size_t windows_violated = 0;
    size_t windows_violated_failure = 0;
    double latency_weighted_sum = 0.0;
    double served = 0.0;
    // Swap-time accounting.
    double swapped_time_ms = 0.0;
    double observed_time_ms = 0.0;
    TimeMs last_trigger_ms = 0.0;
  };

  struct RunningTask {
    int device_id = -1;
    double speed = 0.0;  // full-GPU work ms per wall ms
    TimeMs last_sync_ms = 0.0;
    Simulator::EventId completion_event = Simulator::kInvalidEventId;
    // Periodic-checkpoint state: the exact work level at the last checkpoint
    // boundary, maintained lazily in SyncTrainingProgress (speed is constant
    // between syncs, so boundary crossings are computed analytically).
    TimeMs next_checkpoint_ms = 0.0;
    double work_at_checkpoint = 0.0;
  };

  // --- serving path ---
  void ArrivalTick(int device_id);
  void TryStartBatch(int device_id);
  void FinishBatch(int device_id, double latency_ms,
                   std::vector<std::pair<TimeMs, double>> consumed);
  TimeMs WaitTimeoutMs(int device_id) const;
  TimeMs ArrivalTickMs(int device_id) const;
  void CloseSloWindow(int device_id);

  // --- fault path ---
  // Hands a cohort of the failed device's service to a surviving replica
  // (round-robin), or counts it failed when none survives.
  void RouteCohort(int failed_device, const Cohort& cohort);
  // Poisson arrivals for a down replica, re-routed to survivors.
  void FailoverArrivalTick(int failed_device);
  // Checkpoint-rollback + requeue of every training on a dying device.
  std::vector<TrainingTaskInfo> DisplaceTrainings(int device_id, TimeMs now);
  std::string DeviceStatusKey(int device_id) const;
  std::string DeviceTaskKey(int device_id, int task_id) const;

  // --- control-plane path (active only with a non-empty ctrl_fault_plan) ---
  std::string SchedConfigKey(int device_id) const;
  // Turns on the degraded registry, registers per-device config watches,
  // arms the control injector, and starts the coordinator heartbeat.
  void StartControlPlane();
  // Applies a batch/GPU% pair on the device agent (the pre-control-plane
  // direct path; also the endpoint of a delivered config watch event).
  void ApplyInferenceConfigDirect(int device_id, int batch, double gpu_fraction);
  // Watch endpoint: parse, guard revision monotonicity, apply.
  void OnConfigDelivered(int device_id, const std::string& value, uint64_t revision);
  void RegisterConfigWatch(int device_id);
  // Catch-up read of a device's config through the control path (used after
  // partitions heal and watches re-establish).
  Status CatchUpConfig(int device_id);
  // The recovery scan: reconstruct the scheduler's view from the registry.
  Status AttemptSchedulerRecovery();
  void FinishSchedulerRecovery();

  // --- training path ---
  void OnTrainingArrival(const TrainingArrival& arrival);
  void TryDispatchQueue();
  void PlaceTask(const TrainingArrival& arrival, int device_id);
  void SyncTrainingProgress(int device_id, int task_id);
  void UpdateTrainingSpeeds(int device_id);
  void OnTrainingComplete(int device_id, int task_id);

  // --- periodic ---
  void MonitorTick();
  void UtilSampleTick();

  std::vector<ColocatedTraining> ActiveColocation(const GpuDevice& dev) const;
  InferenceLoad CurrentInferenceLoad(int device_id);
  void RebalanceMemory(int device_id);

  ExperimentOptions options_;
  MultiplexPolicy* policy_;
  Telemetry telemetry_;
  Simulator sim_;
  PerfOracle oracle_;
  ClusterState cluster_;
  Rng rng_;
  Rng probe_rng_;
  MemoryManager memory_manager_;
  TaskQueue queue_;
  KvStore registry_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<ControlFaultInjector> ctrl_injector_;

  // Cached perf-region stats (null when unprofiled): resolved once in the
  // constructor so each profiled decision costs a branch plus two clock
  // reads, and nothing at all when options_.perf is null.
  perf::LatencyStat* perf_select_stat_ = nullptr;
  perf::LatencyStat* perf_place_stat_ = nullptr;
  perf::LatencyStat* perf_qps_stat_ = nullptr;

  std::vector<Replica> replicas_;
  std::map<int, RunningTask> running_;          // task_id -> runtime state
  std::map<int, TaskRecord> task_records_;      // task_id -> record
  size_t tasks_remaining_ = 0;
  TimeMs last_completion_ms_ = 0.0;
  TimeMs first_arrival_ms_ = 0.0;

  std::vector<UtilSample> util_series_;
  std::vector<DeviceSeriesSample> device_series_;
  TimeMs last_util_sample_ms_ = 0.0;

  // Fault/recovery accounting.
  size_t trainings_displaced_ = 0;
  size_t trainings_replaced_ = 0;
  double work_lost_ms_ = 0.0;
  double failed_requests_ = 0.0;
  double rerouted_requests_ = 0.0;
  double replacement_time_sum_ms_ = 0.0;
  std::map<int, TimeMs> displaced_at_;  // task_id -> displacement time

  // Control-plane fault state (inert without a ctrl fault plan).
  bool ctrl_enabled_ = false;
  bool scheduler_up_ = true;
  TimeMs scheduler_crashed_at_ = 0.0;
  size_t scheduler_recoveries_ = 0;
  double recovery_ms_sum_ = 0.0;
  size_t configs_published_ = 0;
  size_t configs_applied_ = 0;
  size_t stale_scan_entries_ = 0;
  uint64_t ckpt_epoch_ = 0;
  std::vector<KvStore::WatchId> config_watches_;   // per device; 0 = none
  std::vector<uint64_t> config_applied_rev_;       // monotonic delivery guard
  // Highest publication sequence number applied per device: catch-up reads
  // re-deliver the same publication, and this keeps configs_applied_ a true
  // count of publications that reached the device (never double-counted).
  std::vector<uint64_t> config_applied_seq_;
  // Retriers for the two retried control flows. Constructed in
  // StartControlPlane so fault-free runs never touch them.
  std::unique_ptr<Retrier> recovery_retrier_;
  std::unique_ptr<Retrier> watch_retrier_;
};

}  // namespace mudi

#endif  // SRC_EXP_CLUSTER_EXPERIMENT_H_
