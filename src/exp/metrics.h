// Experiment metrics: everything the paper's evaluation section reports —
// per-service SLO violation rates (windowed P99 vs SLO), training efficiency
// (CT / WaitingT / makespan), cluster utilization time series, memory-swap
// statistics, and decision overheads.
#ifndef SRC_EXP_METRICS_H_
#define SRC_EXP_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace mudi {

struct TaskRecord {
  int task_id = -1;
  size_t type_index = 0;
  TimeMs arrival_ms = 0.0;
  TimeMs start_ms = -1.0;       // placement time; <0 if never placed
  TimeMs completion_ms = -1.0;  // <0 if not finished within the horizon
  int device_id = -1;
  // Fault-recovery accounting: how often the task was displaced by a device
  // failure and how much checkpointed progress it lost (full-GPU ms redone).
  size_t failures = 0;
  double work_lost_ms = 0.0;

  bool completed() const { return completion_ms >= 0.0; }
  double ct_ms() const { return completion_ms - arrival_ms; }
  double waiting_ms() const { return start_ms - arrival_ms; }
};

struct ServiceMetrics {
  std::string service_name;
  size_t windows_total = 0;
  size_t windows_violated = 0;
  // Of windows_violated, how many were tainted by a device failure (failed
  // or re-routed requests landed in the window) vs. pure load/interference.
  size_t windows_violated_failure = 0;
  double mean_latency_ms = 0.0;
  double served_requests = 0.0;

  double slo_violation_rate() const {
    return windows_total == 0
               ? 0.0
               : static_cast<double>(windows_violated) / static_cast<double>(windows_total);
  }
  size_t windows_violated_load() const { return windows_violated - windows_violated_failure; }
};

struct UtilSample {
  TimeMs time_ms = 0.0;
  double sm_util = 0.0;   // cluster average
  double mem_util = 0.0;  // cluster average
};

struct DeviceSeriesSample {
  TimeMs time_ms = 0.0;
  double qps = 0.0;
  int batch = 0;
  double inference_fraction = 0.0;
  double swapped_mb = 0.0;
  double mem_resident_mb = 0.0;
};

// Availability / recovery aggregates for runs with a fault plan armed.
// All-zero (and absent from reports) when the plan is empty.
struct FaultMetrics {
  size_t faults_injected = 0;
  size_t device_failures = 0;    // distinct down transitions
  size_t devices_recovered = 0;  // distinct up transitions
  double total_downtime_ms = 0.0;
  size_t trainings_displaced = 0;
  double work_lost_ms = 0.0;  // checkpoint rollback, full-GPU ms
  // Virtual ms from displacement to re-placement, averaged over displaced
  // trainings that were re-placed within the run.
  double mean_replacement_ms = 0.0;
  size_t trainings_replaced = 0;
  double failed_requests = 0.0;    // in-flight or unroutable at failure time
  double rerouted_requests = 0.0;  // moved to surviving replicas
  // Served requests per wall-second of the run — the paper-style goodput
  // figure that faults depress.
  double goodput_rps = 0.0;

  bool any() const { return faults_injected > 0; }
};

// Control-plane fault/recovery aggregates (DESIGN.md §13) for runs with a
// ControlFaultPlan armed. All-zero (and absent from reports) when the plan
// is empty.
struct ControlMetrics {
  size_t events_injected = 0;     // timed control faults armed
  size_t kv_partitions = 0;       // collapsed partition windows
  size_t watch_losses = 0;        // watch-loss episodes
  size_t scheduler_crashes = 0;
  size_t scheduler_recoveries = 0;
  size_t retries = 0;             // sanctioned backoff re-attempts (ctrl.retries)
  size_t stale_reads = 0;         // control reads served at a lagged revision
  size_t unavailable_reads = 0;   // control reads rejected by a partition
  size_t watch_delivered = 0;     // degraded-mode notifications that arrived
  size_t watch_dropped = 0;       // lossy delivery / dead-watch deliveries
  size_t watch_lost_partition = 0;  // notifications lost inside a partition
  size_t configs_published = 0;   // inference configs written to the store
  size_t configs_applied = 0;     // configs that reached a device agent
  size_t stale_scan_entries = 0;  // recovery-scan rows contradicting live state
  double total_recovery_ms = 0.0;  // crash to recovered-view, summed

  double MeanRecoveryMs() const {
    return scheduler_recoveries == 0
               ? 0.0
               : total_recovery_ms / static_cast<double>(scheduler_recoveries);
  }
  // Configs published but never applied: dropped deliveries, partition
  // losses, and in-flight updates at run end.
  size_t configs_lost() const {
    return configs_published >= configs_applied ? configs_published - configs_applied : 0;
  }
  bool any() const { return events_injected > 0 || watch_delivered > 0 || watch_dropped > 0 ||
                            stale_reads > 0 || configs_published > 0; }
};

struct ExperimentResult {
  std::string policy_name;
  std::map<std::string, ServiceMetrics> per_service;

  std::vector<TaskRecord> tasks;
  double makespan_ms = 0.0;

  double avg_sm_util = 0.0;
  double avg_mem_util = 0.0;
  std::vector<UtilSample> util_series;

  // Fraction of device-time with training memory swapped out, per service
  // hosted on the device (Tab. 4).
  std::map<std::string, double> swap_time_fraction;
  size_t swap_events = 0;
  double swap_total_mb = 0.0;

  std::vector<double> placement_overheads_ms;
  std::vector<size_t> tuning_iterations;

  std::vector<DeviceSeriesSample> device_series;  // when a device is traced

  FaultMetrics faults;
  ControlMetrics ctrl;

  // --- derived aggregates ---
  double OverallSloViolationRate() const;
  // Failure-attributed share of violated windows, summed over services.
  size_t TotalWindowsViolatedFailure() const;
  size_t TotalWindowsViolatedLoad() const;
  double MeanCtMs() const;
  double MeanWaitingMs() const;
  double P95CtMs() const;
  size_t CompletedTasks() const;
};

}  // namespace mudi

#endif  // SRC_EXP_METRICS_H_
