// Experiment metrics: everything the paper's evaluation section reports —
// per-service SLO violation rates (windowed P99 vs SLO), training efficiency
// (CT / WaitingT / makespan), cluster utilization time series, memory-swap
// statistics, and decision overheads.
#ifndef SRC_EXP_METRICS_H_
#define SRC_EXP_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace mudi {

struct TaskRecord {
  int task_id = -1;
  size_t type_index = 0;
  TimeMs arrival_ms = 0.0;
  TimeMs start_ms = -1.0;       // placement time; <0 if never placed
  TimeMs completion_ms = -1.0;  // <0 if not finished within the horizon
  int device_id = -1;

  bool completed() const { return completion_ms >= 0.0; }
  double ct_ms() const { return completion_ms - arrival_ms; }
  double waiting_ms() const { return start_ms - arrival_ms; }
};

struct ServiceMetrics {
  std::string service_name;
  size_t windows_total = 0;
  size_t windows_violated = 0;
  double mean_latency_ms = 0.0;
  double served_requests = 0.0;

  double slo_violation_rate() const {
    return windows_total == 0
               ? 0.0
               : static_cast<double>(windows_violated) / static_cast<double>(windows_total);
  }
};

struct UtilSample {
  TimeMs time_ms = 0.0;
  double sm_util = 0.0;   // cluster average
  double mem_util = 0.0;  // cluster average
};

struct DeviceSeriesSample {
  TimeMs time_ms = 0.0;
  double qps = 0.0;
  int batch = 0;
  double inference_fraction = 0.0;
  double swapped_mb = 0.0;
  double mem_resident_mb = 0.0;
};

struct ExperimentResult {
  std::string policy_name;
  std::map<std::string, ServiceMetrics> per_service;

  std::vector<TaskRecord> tasks;
  double makespan_ms = 0.0;

  double avg_sm_util = 0.0;
  double avg_mem_util = 0.0;
  std::vector<UtilSample> util_series;

  // Fraction of device-time with training memory swapped out, per service
  // hosted on the device (Tab. 4).
  std::map<std::string, double> swap_time_fraction;
  size_t swap_events = 0;
  double swap_total_mb = 0.0;

  std::vector<double> placement_overheads_ms;
  std::vector<size_t> tuning_iterations;

  std::vector<DeviceSeriesSample> device_series;  // when a device is traced

  // --- derived aggregates ---
  double OverallSloViolationRate() const;
  double MeanCtMs() const;
  double MeanWaitingMs() const;
  double P95CtMs() const;
  size_t CompletedTasks() const;
};

}  // namespace mudi

#endif  // SRC_EXP_METRICS_H_
