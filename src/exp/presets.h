// Canonical experiment configurations and policy factories matching the
// paper's setups (§7.1): the 12-GPU "physical" cluster (3 nodes × 4 A100,
// 300 training tasks) and the 1000-GPU "simulated" cluster (5000 tasks,
// arrivals scaled ×80). Benches share these so every figure runs against
// the same setup the corresponding paper experiment used.
#ifndef SRC_EXP_PRESETS_H_
#define SRC_EXP_PRESETS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/policy.h"
#include "src/exp/cluster_experiment.h"
#include "src/gpu/perf_oracle.h"

namespace mudi {

// The 3×4-A100 physical-cluster setup. `num_tasks` defaults to the paper's
// 300 small-scale workload; benches that only need serving behaviour pass 0
// and set a horizon.
ExperimentOptions PhysicalClusterOptions(size_t num_tasks = 300, uint64_t seed = 5);

// The 1000-GPU simulated-cluster setup (5000 tasks by default). Durations
// and arrivals are compressed more aggressively so benches stay fast; the
// scheduling structure (queueing, co-location churn) is preserved.
ExperimentOptions SimulatedClusterOptions(size_t num_tasks = 5000, uint64_t seed = 5);

// The physical-cluster setup with the standard chaos schedule armed
// (StandardChaosPlan: transient GPU failure, straggler episode, monitor
// feedback loss, one permanent GPU failure, one transient node failure).
// Identical to PhysicalClusterOptions apart from the fault plan, so
// side-by-side runs isolate the availability cost of the faults.
ExperimentOptions ChaosClusterOptions(size_t num_tasks = 120, uint64_t seed = 5);

// The physical-cluster setup with the standard control-plane chaos schedule
// armed (StandardControlChaosPlan: degraded KvStore watch delivery, stale
// reads, partition windows, a watch-loss event, and two scheduler crashes —
// one inside a partition). Device hardware stays healthy, so side-by-side
// runs with ChaosClusterOptions separate data-plane from control-plane
// availability costs.
ExperimentOptions CtrlChaosClusterOptions(size_t num_tasks = 120, uint64_t seed = 5);

// Named policy factory. `profiling_oracle` must outlive the returned policy
// (it backs Mudi's and MuxFlow's offline profiling) and must be configured
// with the same seed as the experiment's runtime oracle so offline profiles
// describe the same hardware.
std::unique_ptr<MultiplexPolicy> MakePolicy(const std::string& name,
                                            const PerfOracle& profiling_oracle);

// The four end-to-end systems of Fig. 8/9: Mudi, GSLICE, gpulets, MuxFlow.
std::vector<std::string> EndToEndSystemNames();

// Applies a uniform QPS scale factor (Fig. 15 heavy loads).
void ScaleQps(ExperimentOptions& options, double factor);

}  // namespace mudi

#endif  // SRC_EXP_PRESETS_H_
